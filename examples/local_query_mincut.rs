//! Min-cut in the local query model: run the BGMP21 algorithm (original
//! and the paper's Section 5.4 modification) against the Section 5.2
//! lower-bound graph `G_{x,y}`, counting every query and every
//! simulated communication bit.
//!
//! Run with: `cargo run --release --example local_query_mincut`

use dircut::comm::TwoSumInstance;
use dircut::core::mincut_lb::{solve_twosum_via_mincut, GxyGraph};
use dircut::localquery::{global_min_cut_local, SearchVariant, VerifyGuessConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A 2-SUM(t = 8, L = 128, α = 2) instance; t·L = 1024 = 32².
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let inst = TwoSumInstance::sample(8, 128, 2, 3, &mut rng);
    assert!(inst.promise_holds());
    println!(
        "2-SUM instance: t = {}, L = {}, α = {}, DISJ sum = {}, INT sum = {}",
        inst.num_pairs(),
        inst.len(),
        inst.alpha,
        inst.disj_sum(),
        inst.int_sum()
    );

    // Inspect the graph the reduction builds.
    let (x, y) = inst.concatenated();
    let g = GxyGraph::build(&x, &y);
    println!(
        "G_xy: {} nodes, {} edges, γ = INT(x,y) = {}, min-cut (verified) = {}",
        g.graph().num_nodes(),
        g.graph().num_edges(),
        g.gamma(),
        g.verify_lemma_5_5()
    );
    println!();

    // Run both min-cut variants through the bit-counting oracle.
    for (name, variant) in [
        ("BGMP21 original", SearchVariant::Original),
        (
            "Theorem 5.7 modified",
            SearchVariant::Modified { beta0: 0.25 },
        ),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let result = solve_twosum_via_mincut(&inst, |oracle| {
            let res =
                global_min_cut_local(oracle, 0.2, variant, VerifyGuessConfig::default(), &mut rng);
            println!(
                "{name}: min-cut estimate {:.1} with {} local queries ({} VERIFY-GUESS calls)",
                res.estimate, res.total_queries, res.verify_calls
            );
            res.estimate
        });
        println!(
            "{name}: 2-SUM answer {:.2} (truth {}), {} bits of simulated communication\n",
            result.disj_estimate, result.disj_truth, result.bits_exchanged
        );
    }
}
