//! Reproduces Figure 2 of the paper as a Graphviz drawing: the graph
//! `G_{x,y}` for `x = 000000100`, `y = 100010100`, with the single
//! intersection's "red" edges called out, plus the verified min-cut.
//!
//! Run with: `cargo run --release --example gxy_figure`
//! Pipe the DOT block into `dot -Tpng` to render it.

use dircut::core::mincut_lb::GxyGraph;
use dircut::core::Region;

fn main() {
    let x: Vec<bool> = "000000100".chars().map(|c| c == '1').collect();
    let y: Vec<bool> = "100010100".chars().map(|c| c == '1').collect();
    let g = GxyGraph::build(&x, &y);

    println!("G_xy for x = 000000100, y = 100010100 (Figure 2 of the paper)");
    println!(
        "ℓ = {}, γ = INT(x, y) = {}, min-cut (verified by max-flow) = {}\n",
        g.ell(),
        g.gamma(),
        g.verify_lemma_5_5()
    );

    // Region-aware DOT output: intersection edges (A↔B′, B↔A′) in red,
    // the rest in green — matching the paper's figure.
    println!("digraph gxy {{");
    println!("  graph [rankdir=LR];");
    println!("  node [shape=circle, fontsize=10];");
    let label = |v: dircut::graph::NodeId| -> String {
        let idx = v.index() % g.ell();
        match g.region(v) {
            Region::A => format!("a{}", idx + 1),
            Region::APrime => format!("a'{}", idx + 1),
            Region::B => format!("b{}", idx + 1),
            Region::BPrime => format!("b'{}", idx + 1),
        }
    };
    for (u, v) in g.graph().edges() {
        let crossing = matches!(
            (g.region(u), g.region(v)),
            (Region::A, Region::BPrime)
                | (Region::BPrime, Region::A)
                | (Region::B, Region::APrime)
                | (Region::APrime, Region::B)
        );
        let color = if crossing { "red" } else { "darkgreen" };
        println!(
            "  \"{}\" -> \"{}\" [dir=none, color={color}];",
            label(u),
            label(v)
        );
    }
    println!("}}");

    println!("\nthe two red edges are the min cut: removing them separates");
    println!("A ∪ A' from B ∪ B', and Lemma 5.5 says nothing smaller exists.");
}
