//! The Section 3 lower bound, played live: Alice encodes a random sign
//! string into a balanced digraph; Bob decodes single bits with 4 cut
//! queries through oracles of varying quality. The success rate
//! collapses exactly when the oracle's error crosses the
//! `Θ(ε/ln(1/ε))` threshold — the observable face of Theorem 1.1.
//!
//! Run with: `cargo run --release --example lower_bound_game`

use dircut::core::reduction::{run_reduction_game, ForEachIndexReduction, OracleSpec};
use dircut::core::ForEachParams;
use dircut::sketch::adversarial::NoiseModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let params = ForEachParams::new(8, 2, 2);
    println!(
        "Construction: n = {}, β = {}, ε = {}, encoding {} sign bits",
        params.num_nodes(),
        params.beta(),
        params.epsilon(),
        params.total_bits()
    );
    println!(
        "Theorem 1.1: any for-each sketch supporting Bob needs Ω̃({}) bits\n",
        params.lower_bound_bits()
    );

    let trials = 150;

    println!("{:<34} {:>14}", "oracle", "success rate");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let report = run_reduction_game(
        &ForEachIndexReduction {
            params,
            oracle: OracleSpec::Exact,
        },
        trials,
        &mut rng,
    );
    println!("{:<34} {:>14.3}", "exact", report.success_rate());

    // Noisy oracles: a (1±err) for-each sketch is allowed to be this
    // bad. Below the threshold Bob still decodes; above it he cannot.
    for err in [0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = run_reduction_game(
            &ForEachIndexReduction {
                params,
                oracle: OracleSpec::Noisy {
                    err,
                    model: NoiseModel::SignedRelative,
                },
            },
            trials,
            &mut rng,
        );
        println!(
            "{:<34} {:>14.3}",
            format!("noisy (1±{err})"),
            report.success_rate()
        );
    }

    // Budgeted sketches: keep only the heaviest edges that fit B bits.
    // Decoding degrades as the budget sinks below the Ω̃(n√β/ε) line.
    println!();
    for budget in [1 << 18, 1 << 16, 1 << 14, 1 << 12, 1 << 10] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = run_reduction_game(
            &ForEachIndexReduction {
                params,
                oracle: OracleSpec::Budgeted { bits: budget },
            },
            trials,
            &mut rng,
        );
        println!(
            "{:<34} {:>14.3}",
            format!("budgeted ({budget} bits)"),
            report.success_rate()
        );
    }
}
