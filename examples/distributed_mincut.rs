//! Distributed min-cut over cut sketches (the Section 1 application):
//! servers sketch their edge shares on real threads, the coordinator
//! enumerates candidate cuts from the coarse sketches and re-queries
//! them through the fine for-each sketches. The fine communication
//! scales like 1/ε — the rate the paper proves optimal.
//!
//! Run with: `cargo run --release --example distributed_mincut`

use dircut::dist::{distributed_min_cut, symmetric_graph, ProtocolConfig};
use dircut::graph::mincut::stoer_wagner;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A 40-node dense weighted graph, symmetric (undirected semantics).
    let n = 40;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(0.5) {
                edges.push((u, v, rng.gen_range(0.5..2.0)));
            }
        }
        edges.push((u, (u + 1) % n, 1.0));
    }
    let g = symmetric_graph(n, &edges);
    let truth = stoer_wagner(&g).value / 2.0;
    println!(
        "graph: {} nodes, {} arcs, true min cut = {truth:.3}\n",
        n,
        g.num_edges()
    );

    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>14} {:>12}",
        "ε", "servers", "estimate", "coarse bits", "fine bits", "candidates"
    );
    for eps in [0.4, 0.2, 0.1, 0.05] {
        let mut cfg = ProtocolConfig::new(eps);
        cfg.enumeration_trials = 120;
        let res = distributed_min_cut(&g, 4, cfg, 17);
        println!(
            "{eps:>6} {:>8} {:>12.3} {:>14} {:>14} {:>12}",
            4, res.estimate, res.coarse_bits, res.fine_bits, res.candidates
        );
    }
    println!(
        "\nCoarse bits are ε-independent; fine bits grow ∝ 1/ε (for-each), \
         not 1/ε² (for-all) — the separation Theorems 1.1/1.2 prove tight."
    );
}
