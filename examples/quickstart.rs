//! Quickstart: build a β-balanced directed graph, sketch it in both
//! models, and query directed cut values.
//!
//! Run with: `cargo run --release --example quickstart`

use dircut::graph::balance::{edgewise_balance_bound, exact_balance_factor};
use dircut::graph::generators::random_balanced_digraph;
use dircut::graph::NodeSet;
use dircut::sketch::{
    BalancedForAllSketcher, BalancedForEachSketcher, CutOracle, CutSketch, CutSketcher,
    EdgeListSketch,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // A 16-node, 4-balanced directed graph: forward weights in [1, 2],
    // each with a reverse edge of 1/4 of the weight.
    let beta = 4.0;
    let g = random_balanced_digraph(16, 0.6, beta, &mut rng);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Certify balance two ways: the O(m) edgewise certificate and the
    // exact (exponential, small-n) factor.
    let certificate = edgewise_balance_bound(&g).expect("every edge has a reverse");
    let exact = exact_balance_factor(&g);
    println!("balance: edgewise certificate β ≤ {certificate:.3}, exact β = {exact:.3}");

    // Query a directed cut exactly.
    let s = NodeSet::from_indices(16, 0..8);
    let (out, into) = g.cut_both(&s);
    println!("cut S = {{0..8}}: w(S, V∖S) = {out:.3}, w(V∖S, S) = {into:.3}");

    // Sketch in both models and compare answers and honest sizes.
    let eps = 0.25;
    let exact_sketch = EdgeListSketch::from_graph(&g);
    let for_all = BalancedForAllSketcher::new(eps, beta).sketch(&g, &mut rng);
    let for_each = BalancedForEachSketcher::new(eps, beta).sketch(&g, &mut rng);

    println!("\n{:<28} {:>12} {:>14}", "sketch", "bits", "answer on S");
    for (name, bits, answer) in [
        (
            "exact edge list",
            exact_sketch.size_bits(),
            exact_sketch.cut_out_estimate(&s),
        ),
        (
            "for-all (1±0.25)",
            for_all.size_bits(),
            for_all.cut_out_estimate(&s),
        ),
        (
            "for-each (1±0.25)",
            for_each.size_bits(),
            for_each.cut_out_estimate(&s),
        ),
    ] {
        println!("{name:<28} {bits:>12} {answer:>14.3}");
    }
    println!(
        "\nTheorem 1.1 lower bound for this (n, β, ε): any for-each sketch needs \
         Ω̃(n√β/ε) = Ω̃({}) bits",
        (16.0 * beta.sqrt() / eps) as usize
    );
    println!(
        "Theorem 1.2 lower bound: any for-all sketch needs Ω(nβ/ε²) = Ω({}) bits",
        (16.0 * beta / (eps * eps)) as usize
    );
}
