//! Sparsify a dense β-balanced digraph and watch every cut survive:
//! the for-all sketch of [IT18, CCPS21] in action, with measured
//! worst-case cut error over *all* cuts and honest bit sizes — the
//! upper-bound side of Theorem 1.2.
//!
//! Run with: `cargo run --release --example balanced_sparsify`

use dircut::graph::generators::random_balanced_digraph;
use dircut::sketch::sampling::max_relative_cut_error;
use dircut::sketch::{BalancedForAllSketcher, CutSketch, CutSketcher, EdgeListSketch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let n = 14;
    println!(
        "{:>4} {:>6} {:>9} {:>12} {:>12} {:>14}",
        "β", "ε", "edges", "kept", "bits", "max cut err"
    );
    for beta in [1.0, 4.0, 16.0] {
        // Dense balanced digraph: every pair connected both ways.
        let g = random_balanced_digraph(n, 1.0, beta, &mut rng);
        let exact_bits = EdgeListSketch::from_graph(&g).size_bits();
        for eps in [0.5, 0.3] {
            let sketcher = BalancedForAllSketcher::new(eps, beta);
            let sk = sketcher.sketch(&g, &mut rng);
            let err = max_relative_cut_error(&g, &sk);
            println!(
                "{beta:>4} {eps:>6} {:>9} {:>12} {:>12} {:>14.4}",
                g.num_edges(),
                sk.num_edges(),
                sk.size_bits(),
                err
            );
        }
        println!("      (exact edge list: {exact_bits} bits)");
    }
    println!(
        "\nEvery cut of the sketch is within the target error of the true graph \
         — the for-all guarantee (Definition 2.2) measured, not assumed."
    );
}
