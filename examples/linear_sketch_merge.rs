//! Mergeable linear cut sketches — the \[AGM12\] "sketching a massive
//! distributed graph" workflow: every site sketches its own edges with
//! an independent Rademacher projection, the sketches are *added*, and
//! the merged object answers cut queries about the union graph nobody
//! ever materialized.
//!
//! Run with: `cargo run --release --example linear_sketch_merge`

use dircut::graph::{DiGraph, NodeId, NodeSet};
use dircut::sketch::{CutSketch, CutSketcher, LinearSketcher};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 24;
    let sites = 6;
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    // Each site observes a random slice of a symmetric graph.
    let mut whole = DiGraph::new(n);
    let mut slices: Vec<DiGraph> = (0..sites).map(|_| DiGraph::new(n)).collect();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(0.5) {
                let w = rng.gen_range(0.5..2.0);
                let site = rng.gen_range(0..sites);
                whole.add_edge(NodeId::new(u), NodeId::new(v), w);
                whole.add_edge(NodeId::new(v), NodeId::new(u), w);
                slices[site].add_edge(NodeId::new(u), NodeId::new(v), w);
                slices[site].add_edge(NodeId::new(v), NodeId::new(u), w);
            }
        }
    }

    let eps = 0.2;
    let sketcher = LinearSketcher::new(eps);
    println!(
        "{} sites, ε = {eps}: each ships a {}-row linear sketch ({} bits)\n",
        sites,
        sketcher.num_rows(),
        64 + sketcher.num_rows() * n * 64,
    );

    // Sites sketch independently; the coordinator just adds matrices.
    let mut merged: Option<dircut::sketch::LinearCutSketch> = None;
    for slice in &slices {
        let sk = sketcher.sketch(slice, &mut rng);
        merged = Some(match merged {
            None => sk,
            Some(acc) => acc.merge(&sk),
        });
    }
    let merged = merged.expect("at least one site");

    println!(
        "{:>24} {:>12} {:>12} {:>10}",
        "cut", "true value", "estimate", "rel err"
    );
    for (label, s) in [
        ("first half", NodeSet::from_indices(n, 0..n / 2)),
        (
            "odd nodes",
            NodeSet::from_indices(n, (0..n).filter(|i| i % 2 == 1)),
        ),
        ("single node", NodeSet::from_indices(n, [5])),
        ("three nodes", NodeSet::from_indices(n, [1, 9, 17])),
    ] {
        let (out, into) = whole.cut_both(&s);
        let truth = out + into;
        let est = merged.undirected_cut_estimate(&s);
        println!(
            "{label:>24} {truth:>12.3} {est:>12.3} {:>10.3}",
            (est - truth).abs() / truth
        );
    }
    println!(
        "\nmerged sketch: {} bits for a graph with {} arcs — independent of m,\n\
         and no site ever saw another site's edges.",
        merged.size_bits(),
        whole.num_edges()
    );
}
