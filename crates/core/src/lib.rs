//! The paper's core: executable versions of every lower-bound
//! construction in *Tight Lower Bounds for Directed Cut Sparsification
//! and Distributed Min-Cut* (PODS 2024).
//!
//! * [`foreach`] — Section 3 / Theorem 1.1: the Hadamard-row encoding
//!   of Index into β-balanced graphs, with Bob's 4-cut-query decoder,
//! * [`forall`] — Section 4 / Theorem 1.2: the Gap-Hamming encoding
//!   with Bob's half-subset enumeration (Lemmas 4.3/4.4 as measurable
//!   events),
//! * [`mincut_lb`] — Section 5 / Theorem 1.3: the `G_{x,y}` gadget,
//!   Lemma 5.5 verified by max-flow, the 2-bits-per-query oracle
//!   simulation, and the 2-SUM reduction,
//! * [`reduction`] — all of the above behind one [`Reduction`] trait:
//!   sample → encode → decode → verify, with a resource bill per
//!   artifact; the `dircut-bench` trial engine fans any implementation
//!   over the deterministic worker pool,
//! * [`games`] — the aggregate report type and the Gap-Hamming
//!   instance planter shared by every game,
//! * [`protocol`] — the Theorem 1.1 game as a literal bit-counted
//!   one-way protocol (Alice's message = a serialized sketch),
//! * [`naive`] — the one-bit-per-edge encoding of Section 1.2 and its
//!   measurable failure (the obstacle Section 3 overcomes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forall;
pub mod foreach;
pub mod games;
pub mod mincut_lb;
pub mod naive;
pub mod protocol;
pub mod reduction;

pub use forall::{ForAllDecoder, ForAllEncoding, ForAllParams, SubsetSearch};
pub use foreach::{ForEachDecoder, ForEachEncoding, ForEachParams};
pub use games::{plant_gap_target, GameReport};
pub use mincut_lb::{solve_twosum_via_mincut, GxyGraph, GxyOracle, Region, TwoSumViaMinCut};
pub use naive::{NaiveDecoder, NaiveEncoding, NaiveParams};
pub use protocol::{ExactEdgeListSketcher, ForAllGapHammingProtocol, ForEachIndexProtocol};
pub use reduction::{
    run_reduction_game, AnyOracle, ForAllGapHammingReduction, ForAllHeadToHeadReduction,
    ForAllLemma43Reduction, ForAllProtocolReduction, ForAllSketchReduction, ForEachIndexReduction,
    ForEachProtocolReduction, ForEachSketchReduction, NaiveIndexReduction, OracleSpec, Reduction,
    Resources, TrialOutcome, TwoSumMinCutReduction,
};
