//! The for-all cut sketch lower bound construction (Section 4,
//! Theorem 1.2 of the paper).
//!
//! Alice holds Gap-Hamming strings `s_{i,j} ∈ {0,1}^{1/ε²}`. The
//! construction partitions `n` nodes into groups `V_1, …, V_ℓ` of
//! `k = β/ε²` nodes; between consecutive groups, the left side is the
//! flat list `ℓ_1, …, ℓ_k` and the right side is partitioned into `β`
//! clusters `R_1, …, R_β` of `1/ε²` nodes. String `s_{i,j}` becomes the
//! forward edges from `ℓ_i` to `R_j` with weights `s_{i,j}(v) + 1 ∈
//! {1, 2}`; every backward edge has weight `1/β`, so the graph is
//! `2β`-balanced edge-by-edge.
//!
//! Bob, holding `(i, j)` and a string `t` (set `T ⊂ R_j`), cannot read
//! `|N(ℓ_i) ∩ T|` from one noisy cut — the backward mass swamps the
//! `Θ(1/ε)` signal. Instead he uses the *for-all* guarantee: he
//! enumerates every half-size subset `U ⊂ L`, estimates `w(U, T)`, and
//! keeps the argmax `Q`. Lemmas 4.3/4.4 make `Q` capture ≥ 4/5 of
//! `L_high` (the nodes with large `|N(ℓ)∩T|`), so "`ℓ_i ∈ Q`" decides
//! the Gap-Hamming promise with probability ≥ 3/4 — which forces any
//! for-all sketch to carry Ω(nβ/ε²) bits.

use dircut_graph::{DiGraph, NodeId, NodeSet};
use dircut_sketch::CutOracle;
use rand::Rng;

/// Parameters of the Section 4 construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForAllParams {
    /// β ≥ 1 (integral here; the paper's β).
    pub beta: usize,
    /// `1/ε²` — the cluster size; must be even (Bob's `|T| = 1/(2ε²)`).
    pub inv_eps_sq: usize,
    /// Number of groups `ℓ ≥ 2`.
    pub ell: usize,
}

impl ForAllParams {
    /// Creates parameters, validating ranges.
    ///
    /// # Panics
    /// Panics if `beta == 0`, `inv_eps_sq` is odd or zero, or `ell < 2`.
    #[must_use]
    pub fn new(beta: usize, inv_eps_sq: usize, ell: usize) -> Self {
        assert!(beta >= 1, "β must be ≥ 1");
        assert!(
            inv_eps_sq >= 2 && inv_eps_sq.is_multiple_of(2),
            "1/ε² must be even and ≥ 2"
        );
        assert!(ell >= 2, "need at least two groups");
        Self {
            beta,
            inv_eps_sq,
            ell,
        }
    }

    /// ε as a float.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        1.0 / (self.inv_eps_sq as f64).sqrt()
    }

    /// Nodes per group: `k = β/ε²`.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.beta * self.inv_eps_sq
    }

    /// Total nodes `n = ℓ·k`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.ell * self.group_size()
    }

    /// Strings per group pair: `k·β = β²/ε²`.
    #[must_use]
    pub fn strings_per_pair(&self) -> usize {
        self.group_size() * self.beta
    }

    /// Total number of strings `h = (ℓ−1)·β²/ε²`.
    #[must_use]
    pub fn num_strings(&self) -> usize {
        (self.ell - 1) * self.strings_per_pair()
    }

    /// The Ω(nβ/ε²) bit lower bound the construction certifies
    /// (constant 1): `h/ε²` from Lemma 4.1.
    #[must_use]
    pub fn lower_bound_bits(&self) -> usize {
        self.num_strings() * self.inv_eps_sq
    }

    /// The edgewise balance certificate: `2β`.
    #[must_use]
    pub fn balance_bound(&self) -> f64 {
        2.0 * self.beta as f64
    }

    /// Node id of `ℓ_i` (the `i`-th node, 0-indexed) of group `g`.
    #[must_use]
    pub fn left_node(&self, g: usize, i: usize) -> NodeId {
        debug_assert!(g < self.ell && i < self.group_size());
        NodeId::new(g * self.group_size() + i)
    }

    /// Node id of the `v`-th node of cluster `R_j` inside group `g`.
    #[must_use]
    pub fn cluster_node(&self, g: usize, j: usize, v: usize) -> NodeId {
        debug_assert!(g < self.ell && j < self.beta && v < self.inv_eps_sq);
        NodeId::new(g * self.group_size() + j * self.inv_eps_sq + v)
    }

    /// Splits a global string index `q` into
    /// `(group pair, left node index i, cluster index j)`.
    ///
    /// # Panics
    /// Panics if `q ≥ num_strings()`.
    #[must_use]
    pub fn locate_string(&self, q: usize) -> StringLocation {
        assert!(q < self.num_strings(), "string index {q} out of range");
        let per_pair = self.strings_per_pair();
        let pair = q / per_pair;
        let rem = q % per_pair;
        StringLocation {
            pair,
            left: rem / self.beta,
            cluster: rem % self.beta,
        }
    }
}

/// Where one Gap-Hamming string lives inside the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StringLocation {
    /// Group pair index (encoded between `V_pair` and `V_{pair+1}`).
    pub pair: usize,
    /// The left node index `i` (so the string rides on `ℓ_i ∈ V_pair`).
    pub left: usize,
    /// The right cluster index `j` (edges land in `R_j ⊂ V_{pair+1}`).
    pub cluster: usize,
}

/// Alice's side: the strings encoded as a `2β`-balanced digraph.
#[derive(Debug, Clone)]
pub struct ForAllEncoding {
    params: ForAllParams,
    graph: DiGraph,
}

impl ForAllEncoding {
    /// Encodes `strings` (one per [`ForAllParams::num_strings`], each
    /// of length `1/ε²`).
    ///
    /// # Panics
    /// Panics on count or length mismatches.
    #[must_use]
    pub fn encode(params: ForAllParams, strings: &[Vec<bool>]) -> Self {
        assert_eq!(strings.len(), params.num_strings(), "string count mismatch");
        let k = params.group_size();
        let mut g = DiGraph::with_edge_capacity(params.num_nodes(), 2 * (params.ell - 1) * k * k);
        for (q, s) in strings.iter().enumerate() {
            assert_eq!(s.len(), params.inv_eps_sq, "string {q} has wrong length");
            let loc = params.locate_string(q);
            let from = params.left_node(loc.pair, loc.left);
            for (v, &bit) in s.iter().enumerate() {
                let to = params.cluster_node(loc.pair + 1, loc.cluster, v);
                g.add_edge(from, to, if bit { 2.0 } else { 1.0 });
            }
        }
        // Backward edges: complete V_{g+1} → V_g at weight 1/β.
        let back = 1.0 / params.beta as f64;
        for pair in 0..params.ell - 1 {
            for u in 0..k {
                for v in 0..k {
                    g.add_edge(
                        NodeId::new((pair + 1) * k + u),
                        NodeId::new(pair * k + v),
                        back,
                    );
                }
            }
        }
        Self { params, graph: g }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &ForAllParams {
        &self.params
    }

    /// The encoded graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }
}

/// How Bob searches over half-size subsets `U ⊂ L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetSearch {
    /// Exhaustive enumeration of all `C(k, k/2)` subsets — the paper's
    /// Bob. Feasible for `k ≤ 24`.
    Exact,
    /// Randomized hill-free search over `samples` random subsets — a
    /// documented substitution for larger `k` (DESIGN.md).
    Randomized {
        /// Number of random subsets to try.
        samples: usize,
    },
}

/// Bob's side: decides Gap-Hamming instances from a for-all oracle.
#[derive(Debug, Clone, Copy)]
pub struct ForAllDecoder {
    params: ForAllParams,
    search: SubsetSearch,
}

/// The outcome of one Gap-Hamming decision.
#[derive(Debug, Clone)]
pub struct ForAllDecision {
    /// Bob's answer: `true` = far case (`Δ ≥ 1/(2ε²) + c/ε`).
    pub is_far: bool,
    /// The argmax subset `Q ⊂ L` Bob found (indices into `L`).
    pub q_subset: Vec<usize>,
    /// Number of cut queries issued.
    pub cut_queries: usize,
}

impl ForAllDecoder {
    /// A decoder with the given search strategy.
    #[must_use]
    pub fn new(params: ForAllParams, search: SubsetSearch) -> Self {
        Self { params, search }
    }

    /// The fixed backward weight crossing cut `S` (public layout only),
    /// identical in shape to the Section 3 formula.
    #[must_use]
    pub fn fixed_backward_weight(&self, s: &NodeSet) -> f64 {
        let k = self.params.group_size();
        let mut total_pairs = 0usize;
        for j in 0..self.params.ell - 1 {
            let mut in_next = 0usize;
            let mut out_cur = 0usize;
            for u in 0..k {
                if s.contains(NodeId::new((j + 1) * k + u)) {
                    in_next += 1;
                }
                if !s.contains(NodeId::new(j * k + u)) {
                    out_cur += 1;
                }
            }
            total_pairs += in_next * out_cur;
        }
        total_pairs as f64 / self.params.beta as f64
    }

    /// Builds the cut-query set `S = U ∪ (V_{pair+1} ∖ T) ∪ V_{>pair+1}`
    /// for a half-subset `U` of `V_pair` and target set `T ⊂ R_j`.
    #[must_use]
    pub fn query_set(
        &self,
        pair: usize,
        u_subset: &[usize],
        cluster: usize,
        t: &[bool],
    ) -> NodeSet {
        let p = &self.params;
        let k = p.group_size();
        let mut s = NodeSet::empty(p.num_nodes());
        for &i in u_subset {
            s.insert(p.left_node(pair, i));
        }
        let mut t_nodes = NodeSet::empty(p.num_nodes());
        for (v, &bit) in t.iter().enumerate() {
            if bit {
                t_nodes.insert(p.cluster_node(pair + 1, cluster, v));
            }
        }
        for u in 0..k {
            let v = NodeId::new((pair + 1) * k + u);
            if !t_nodes.contains(v) {
                s.insert(v);
            }
        }
        for g in pair + 2..p.ell {
            for u in 0..k {
                s.insert(NodeId::new(g * k + u));
            }
        }
        s
    }

    /// Estimates `w(U, T)` through the oracle.
    #[must_use]
    pub fn estimate_w_u_t<O: CutOracle>(
        &self,
        oracle: &O,
        pair: usize,
        u_subset: &[usize],
        cluster: usize,
        t: &[bool],
    ) -> f64 {
        let s = self.query_set(pair, u_subset, cluster, t);
        oracle.cut_out_estimate(&s) - self.fixed_backward_weight(&s)
    }

    /// The single-cut baseline the paper's Section 4 rules out: query
    /// only `S = {ℓ_i} ∪ (V_{pair+1} ∖ T)`, recover
    /// `|N(ℓ_i) ∩ T| = w(ℓ_i, T) − |T|`, and threshold at `1/(4ε²)`.
    ///
    /// Correct on exact oracles, but a `(1±ε)` oracle has `Θ(β/ε³)`
    /// additive error against the `Θ(1/ε)` signal, so this decoder
    /// collapses under exactly the noise the enumeration decoder
    /// tolerates — the reason Bob must use the *for-all* guarantee.
    #[must_use]
    pub fn decide_single_cut<O: CutOracle>(&self, oracle: &O, q: usize, t: &[bool]) -> bool {
        let p = &self.params;
        assert_eq!(t.len(), p.inv_eps_sq, "Bob's string has wrong length");
        let loc = p.locate_string(q);
        let est_w = self.estimate_w_u_t(oracle, loc.pair, &[loc.left], loc.cluster, t);
        let t_size = t.iter().filter(|&&b| b).count() as f64;
        let intersection = est_w - t_size;
        // Large |N(ℓ_i) ∩ T| ⇔ small Δ(s, t) ⇔ close case.
        intersection < p.inv_eps_sq as f64 / 4.0
    }

    /// Runs Bob's full decision procedure for string index `q` and his
    /// string `t` against a for-all oracle.
    ///
    /// # Panics
    /// Panics if `t` has the wrong length or the group size is odd.
    #[must_use]
    pub fn decide<O: CutOracle, R: Rng>(
        &self,
        oracle: &O,
        q: usize,
        t: &[bool],
        rng: &mut R,
    ) -> ForAllDecision {
        let p = &self.params;
        assert_eq!(t.len(), p.inv_eps_sq, "Bob's string has wrong length");
        let k = p.group_size();
        assert!(
            k.is_multiple_of(2),
            "group size must be even for half subsets"
        );
        let loc = p.locate_string(q);

        // Subsets are estimated in blocks through the oracle's batched
        // entry point (64 queries per edge pass on edge-list oracles).
        // Subset generation stays one at a time in the original order —
        // the randomized search consumes the rng exactly as the
        // query-at-a-time loop did — and the argmax folds in subset
        // order with a strict `>`, so the winning subset (first max)
        // and the query count are unchanged.
        const BLOCK: usize = 256;
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut queries = 0usize;
        let consider_block = |subsets: Vec<Vec<usize>>,
                                  best: &mut Option<(f64, Vec<usize>)>,
                                  queries: &mut usize| {
            let sets: Vec<NodeSet> = subsets
                .iter()
                .map(|u| self.query_set(loc.pair, u, loc.cluster, t))
                .collect();
            let ests = oracle.cut_out_estimates(&sets);
            for (i, subset) in subsets.into_iter().enumerate() {
                let est = ests[i] - self.fixed_backward_weight(&sets[i]);
                *queries += 1;
                if best.as_ref().is_none_or(|(b, _)| est > *b) {
                    *best = Some((est, subset));
                }
            }
        };

        match self.search {
            SubsetSearch::Exact => {
                let mut subset: Vec<usize> = (0..k / 2).collect();
                let mut block: Vec<Vec<usize>> = Vec::with_capacity(BLOCK);
                loop {
                    block.push(subset.clone());
                    let more = next_combination(&mut subset, k);
                    if block.len() == BLOCK || !more {
                        consider_block(std::mem::take(&mut block), &mut best, &mut queries);
                    }
                    if !more {
                        break;
                    }
                }
            }
            SubsetSearch::Randomized { samples } => {
                let mut start = 0usize;
                while start < samples {
                    let end = samples.min(start + BLOCK);
                    let block: Vec<Vec<usize>> =
                        (start..end).map(|_| random_half_subset(k, rng)).collect();
                    consider_block(block, &mut best, &mut queries);
                    start = end;
                }
            }
        }

        let (_, q_subset) = best.expect("at least one subset considered");
        // ℓ_i ∈ Q ⇒ |N(ℓ_i) ∩ T| is large ⇒ Δ(s, t) is SMALL (close).
        let is_far = !q_subset.contains(&loc.left);
        ForAllDecision {
            is_far,
            q_subset,
            cut_queries: queries,
        }
    }
}

/// Advances `subset` (sorted, size r, values in `0..k`) to the next
/// combination in lexicographic order. Returns `false` after the last.
fn next_combination(subset: &mut [usize], k: usize) -> bool {
    let r = subset.len();
    let mut i = r;
    while i > 0 {
        i -= 1;
        if subset[i] < k - (r - i) {
            subset[i] += 1;
            for j in i + 1..r {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// A uniformly random half-size subset of `0..k`.
fn random_half_subset<R: Rng>(k: usize, rng: &mut R) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut all: Vec<usize> = (0..k).collect();
    all.shuffle(rng);
    all.truncate(k / 2);
    all.sort_unstable();
    all
}

/// The Lemma 4.3 statistics: which left nodes have
/// `|N(ℓ)∩T| ≥ ¼ε⁻² + c/(2ε)` (high) or `≤ ¼ε⁻² − c/(2ε)` (low).
#[derive(Debug, Clone)]
pub struct HighLowSplit {
    /// Indices of `L_high` within the left group.
    pub high: Vec<usize>,
    /// Indices of `L_low`.
    pub low: Vec<usize>,
}

/// Computes the `L_high`/`L_low` split of a concrete encoding for the
/// cluster and target set of string `q`, with gap constant `c`.
#[must_use]
pub fn high_low_split(enc: &ForAllEncoding, q: usize, t: &[bool], c: f64) -> HighLowSplit {
    let p = enc.params();
    let loc = p.locate_string(q);
    let eps = p.epsilon();
    let mid = p.inv_eps_sq as f64 / 4.0;
    let gap = c / (2.0 * eps);
    let mut split = HighLowSplit {
        high: Vec::new(),
        low: Vec::new(),
    };
    for i in 0..p.group_size() {
        let from = p.left_node(loc.pair, i);
        // |N(ℓ_i) ∩ T| = number of weight-2 edges from ℓ_i into T.
        let mut inter = 0usize;
        for (v, &bit) in t.iter().enumerate() {
            if bit {
                let to = p.cluster_node(loc.pair + 1, loc.cluster, v);
                if (enc.graph().pair_weight(from, to) - 2.0).abs() < 1e-9 {
                    inter += 1;
                }
            }
        }
        if inter as f64 >= mid + gap {
            split.high.push(i);
        } else if inter as f64 <= mid - gap {
            split.low.push(i);
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_comm::gap_hamming::random_weighted_string;
    use dircut_graph::balance::edgewise_balance_bound;
    use dircut_graph::connectivity::is_strongly_connected;
    use dircut_sketch::ExactOracle;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_strings(p: ForAllParams, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..p.num_strings())
            .map(|_| random_weighted_string(p.inv_eps_sq, p.inv_eps_sq / 2, &mut rng))
            .collect()
    }

    #[test]
    fn parameter_arithmetic() {
        let p = ForAllParams::new(2, 4, 3);
        assert_eq!(p.group_size(), 8);
        assert_eq!(p.num_nodes(), 24);
        assert_eq!(p.strings_per_pair(), 16);
        assert_eq!(p.num_strings(), 32);
        assert_eq!(p.lower_bound_bits(), 128);
        assert!((p.epsilon() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn locate_string_roundtrip() {
        let p = ForAllParams::new(2, 4, 3);
        let mut seen = std::collections::HashSet::new();
        for q in 0..p.num_strings() {
            let loc = p.locate_string(q);
            assert!(loc.pair < p.ell - 1);
            assert!(loc.left < p.group_size());
            assert!(loc.cluster < p.beta);
            seen.insert((loc.pair, loc.left, loc.cluster));
        }
        assert_eq!(seen.len(), p.num_strings());
    }

    #[test]
    fn encoding_shape_and_balance() {
        let p = ForAllParams::new(2, 4, 2);
        let enc = ForAllEncoding::encode(p, &random_strings(p, 0));
        let g = enc.graph();
        assert_eq!(g.num_nodes(), 16);
        // k² forward + k² backward per pair.
        assert_eq!(g.num_edges(), 2 * 64);
        assert!(is_strongly_connected(g));
        let bound = edgewise_balance_bound(g).unwrap();
        assert!(bound <= p.balance_bound() + 1e-9, "bound {bound}");
    }

    #[test]
    fn forward_weights_encode_the_strings() {
        let p = ForAllParams::new(2, 4, 2);
        let strings = random_strings(p, 1);
        let enc = ForAllEncoding::encode(p, &strings);
        for (q, s) in strings.iter().enumerate() {
            let loc = p.locate_string(q);
            for (v, &bit) in s.iter().enumerate() {
                let w = enc.graph().pair_weight(
                    p.left_node(loc.pair, loc.left),
                    p.cluster_node(loc.pair + 1, loc.cluster, v),
                );
                assert_eq!(w, if bit { 2.0 } else { 1.0 });
            }
        }
    }

    #[test]
    fn estimate_w_u_t_is_exact_on_exact_oracle() {
        let p = ForAllParams::new(2, 4, 2);
        let strings = random_strings(p, 2);
        let enc = ForAllEncoding::encode(p, &strings);
        let oracle = ExactOracle::new(enc.graph());
        let dec = ForAllDecoder::new(p, SubsetSearch::Exact);
        let q = 3;
        let loc = p.locate_string(q);
        let t = random_weighted_string(
            p.inv_eps_sq,
            p.inv_eps_sq / 2,
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        let u: Vec<usize> = (0..p.group_size() / 2).collect();
        let est = dec.estimate_w_u_t(&oracle, loc.pair, &u, loc.cluster, &t);
        // True w(U, T): sum of forward weights from U into T nodes.
        let mut truth = 0.0;
        for &i in &u {
            for (v, &bit) in t.iter().enumerate() {
                if bit {
                    truth += enc.graph().pair_weight(
                        p.left_node(loc.pair, i),
                        p.cluster_node(loc.pair + 1, loc.cluster, v),
                    );
                }
            }
        }
        assert!((est - truth).abs() < 1e-9, "est {est} vs truth {truth}");
    }

    #[test]
    fn next_combination_enumerates_binomially_many() {
        let mut subset = vec![0, 1, 2];
        let mut count = 1;
        while next_combination(&mut subset, 6) {
            count += 1;
        }
        assert_eq!(count, 20); // C(6,3)
    }

    #[test]
    fn high_low_split_is_near_half_half() {
        let p = ForAllParams::new(2, 16, 2);
        let strings = random_strings(p, 4);
        let enc = ForAllEncoding::encode(p, &strings);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let t = random_weighted_string(p.inv_eps_sq, p.inv_eps_sq / 2, &mut rng);
        let split = high_low_split(&enc, 0, &t, 0.05);
        let k = p.group_size();
        // Lemma 4.3: both sides close to half (loose check at small k).
        assert!(split.high.len() + split.low.len() <= k);
        assert!(split.high.len() >= k / 5, "high {}", split.high.len());
        assert!(split.low.len() >= k / 5, "low {}", split.low.len());
    }

    #[test]
    fn single_cut_decoder_works_exactly_but_collapses_under_noise() {
        use dircut_comm::gap_hamming::random_weighted_string as rws;
        use dircut_sketch::adversarial::{NoiseModel, NoisyOracle};
        let p = ForAllParams::new(1, 16, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let trials = 60;
        let mut exact_ok = 0;
        let mut noisy_single_ok = 0;
        let mut noisy_enum_ok = 0;
        let noise = 0.8 * p.epsilon();
        for trial in 0..trials {
            let mut strings: Vec<Vec<bool>> = (0..p.num_strings())
                .map(|_| rws(p.inv_eps_sq, p.inv_eps_sq / 2, &mut rng))
                .collect();
            let q = (trial * 5) % p.num_strings();
            let is_far = trial % 2 == 0;
            let t = rws(p.inv_eps_sq, p.inv_eps_sq / 2, &mut rng);
            strings[q] = crate::games::plant_gap_target(&t, 2, is_far, &mut rng);
            let enc = ForAllEncoding::encode(p, &strings);
            let dec = ForAllDecoder::new(p, SubsetSearch::Exact);
            // Exact oracle: single cut suffices.
            let exact = dircut_sketch::EdgeListSketch::from_graph(enc.graph());
            if dec.decide_single_cut(&exact, q, &t) == is_far {
                exact_ok += 1;
            }
            // Noisy for-all oracle: single cut collapses, enumeration holds.
            use rand::Rng as _;
            let noisy = NoisyOracle::new(
                enc.graph().clone(),
                noise,
                rng.gen(),
                NoiseModel::UniformRelative,
            );
            if dec.decide_single_cut(&noisy, q, &t) == is_far {
                noisy_single_ok += 1;
            }
            if dec.decide(&noisy, q, &t, &mut rng).is_far == is_far {
                noisy_enum_ok += 1;
            }
        }
        assert!(
            exact_ok * 10 >= trials * 9,
            "exact single-cut only {exact_ok}/{trials}"
        );
        assert!(
            noisy_enum_ok >= noisy_single_ok + trials / 10,
            "enumeration ({noisy_enum_ok}) not clearly above single-cut ({noisy_single_ok})"
        );
        assert!(
            noisy_single_ok * 4 <= trials * 3,
            "single cut survives noise at {noisy_single_ok}/{trials}?!"
        );
    }

    #[test]
    fn exact_oracle_decides_planted_instances_correctly() {
        // End-to-end: plant far/close instances and check Bob's answer
        // through an exact oracle (decoding must then be reliable).
        let p = ForAllParams::new(1, 16, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut correct = 0;
        let trials = 20;
        for trial in 0..trials {
            let mut strings = random_strings(p, 100 + trial);
            let q = (trial as usize * 7) % p.num_strings();
            // Plant: far (small overlap with T) or close (large overlap).
            let is_far = trial % 2 == 0;
            let t = random_weighted_string(p.inv_eps_sq, p.inv_eps_sq / 2, &mut rng);
            let target: Vec<bool> = if is_far {
                t.iter().map(|&b| !b).collect() // disjoint from T: minimal |N∩T|
            } else {
                t.clone() // equal to T: maximal |N∩T|
            };
            strings[q] = target;
            let enc = ForAllEncoding::encode(p, &strings);
            let oracle = ExactOracle::new(enc.graph());
            let dec = ForAllDecoder::new(p, SubsetSearch::Exact);
            let decision = dec.decide(&oracle, q, &t, &mut rng);
            if decision.is_far == is_far {
                correct += 1;
            }
        }
        assert!(
            correct * 10 >= trials * 9,
            "only {correct}/{trials} correct"
        );
    }
}
