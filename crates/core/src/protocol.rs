//! The Section 3 reduction as a literal one-way communication
//! protocol: Alice's message *is* a serialized cut sketch, and the
//! [`dircut_comm::protocol::measure`] harness counts every bit that
//! crosses the channel — the exact quantity Theorem 1.1 bounds.
//!
//! Alice: encode the Index string into the gadget graph, build a
//! sketch, serialize it. Bob: deserialize, run the 4-cut-query decoder
//! on the received sketch. Running [`measure`] over the Lemma 3.1
//! distribution yields `(success rate, measured bits)` pairs to set
//! against the Ω(n√β/ε) line.
//!
//! [`measure`]: dircut_comm::protocol::measure

use crate::foreach::{ForEachDecoder, ForEachEncoding, ForEachParams};
use dircut_comm::bitio::Message;
use dircut_comm::protocol::OneWayProtocol;
use dircut_graph::DiGraph;
use dircut_sketch::{CutSketcher, EdgeListSketch};
use rand::Rng;

/// Serializes an edge-list sketch into a bit-exact [`Message`] through
/// the [`WireEncode`](dircut_comm::WireEncode) format: 64-bit node
/// count, 32-bit edge count, then per edge two `⌈log₂ n⌉`-bit
/// endpoints and a 64-bit weight.
#[must_use]
pub fn serialize_edge_list(sketch: &EdgeListSketch) -> Message {
    dircut_comm::to_message(sketch)
}

/// Deserializes a [`serialize_edge_list`] message back into a sketch.
///
/// # Panics
/// Panics on truncated or malformed messages; receivers on a lossy
/// channel should use [`dircut_comm::from_message`] directly and
/// handle the [`WireError`](dircut_comm::WireError).
#[must_use]
pub fn deserialize_edge_list(msg: &Message) -> EdgeListSketch {
    dircut_comm::from_message(msg).expect("malformed edge-list message")
}

/// The Theorem 1.1 game as a [`OneWayProtocol`]: Alice's input is the
/// Index sign string, Bob's is the queried position, and the message is
/// a serialized sketch produced by `S`.
#[derive(Debug, Clone, Copy)]
pub struct ForEachIndexProtocol<S> {
    /// Construction parameters shared by both parties.
    pub params: ForEachParams,
    /// The sketching algorithm Alice runs on the encoded graph.
    pub sketcher: S,
}

impl<S> ForEachIndexProtocol<S> {
    /// Bundles parameters with a sketcher.
    #[must_use]
    pub fn new(params: ForEachParams, sketcher: S) -> Self {
        Self { params, sketcher }
    }
}

impl<S> OneWayProtocol for ForEachIndexProtocol<S>
where
    S: CutSketcher<Sketch = EdgeListSketch>,
{
    type AliceInput = Vec<i8>;
    type BobInput = usize;
    type Output = i8;
    /// The message is the sketch itself; the harness sizes it by
    /// serializing through [`WireEncode`](dircut_comm::WireEncode).
    type Msg = EdgeListSketch;

    fn alice<R: Rng>(&self, input: &Vec<i8>, rng: &mut R) -> EdgeListSketch {
        let enc = ForEachEncoding::encode(self.params, input);
        self.sketcher.sketch(enc.graph(), rng)
    }

    fn bob<R: Rng>(&self, input: &usize, msg: &EdgeListSketch, _rng: &mut R) -> i8 {
        ForEachDecoder::new(self.params)
            .decode_bit(msg, *input)
            .sign
    }
}

/// The Theorem 1.2 game as a [`OneWayProtocol`]: Alice holds the
/// Gap-Hamming strings, Bob holds `(index, t)` and answers far/close
/// by the Section 4 subset-enumeration decoder over the received
/// serialized sketch.
#[derive(Debug, Clone, Copy)]
pub struct ForAllGapHammingProtocol<S> {
    /// Construction parameters shared by both parties.
    pub params: crate::forall::ForAllParams,
    /// Bob's subset search strategy.
    pub search: crate::forall::SubsetSearch,
    /// The sketching algorithm Alice runs on the encoded graph.
    pub sketcher: S,
}

impl<S> ForAllGapHammingProtocol<S> {
    /// Bundles parameters with a sketcher and search strategy.
    #[must_use]
    pub fn new(
        params: crate::forall::ForAllParams,
        search: crate::forall::SubsetSearch,
        sketcher: S,
    ) -> Self {
        Self {
            params,
            search,
            sketcher,
        }
    }
}

impl<S> OneWayProtocol for ForAllGapHammingProtocol<S>
where
    S: CutSketcher<Sketch = EdgeListSketch>,
{
    /// Alice's strings (one per [`crate::forall::ForAllParams::num_strings`]).
    type AliceInput = Vec<Vec<bool>>;
    /// Bob's `(string index, target string t)`.
    type BobInput = (usize, Vec<bool>);
    /// `true` = far case.
    type Output = bool;
    /// The message is the sketch itself, sized by serialization.
    type Msg = EdgeListSketch;

    fn alice<R: Rng>(&self, input: &Vec<Vec<bool>>, rng: &mut R) -> EdgeListSketch {
        let enc = crate::forall::ForAllEncoding::encode(self.params, input);
        self.sketcher.sketch(enc.graph(), rng)
    }

    fn bob<R: Rng>(&self, input: &(usize, Vec<bool>), msg: &EdgeListSketch, rng: &mut R) -> bool {
        let decoder = crate::forall::ForAllDecoder::new(self.params, self.search);
        decoder.decide(msg, input.0, &input.1, rng).is_far
    }
}

/// A trivial "sketcher" that stores the graph exactly — the baseline
/// whose message length is the whole encoding.
#[derive(Debug, Clone, Copy)]
pub struct ExactEdgeListSketcher;

impl CutSketcher for ExactEdgeListSketcher {
    type Sketch = EdgeListSketch;

    fn kind(&self) -> dircut_sketch::SketchKind {
        dircut_sketch::SketchKind::ForAll
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, _rng: &mut R) -> EdgeListSketch {
        EdgeListSketch::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_comm::protocol::measure;
    use dircut_comm::IndexInstance;
    use dircut_sketch::{CutOracle, UniformSketcher};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn serialization_roundtrips() {
        let sk = EdgeListSketch::new(10, vec![(0, 7, 1.5), (3, 2, 0.25), (9, 0, 2.0)]);
        let msg = serialize_edge_list(&sk);
        let back = deserialize_edge_list(&msg);
        assert_eq!(back.num_edges(), 3);
        let s = dircut_graph::NodeSet::from_indices(10, [0, 3, 9]);
        assert_eq!(back.cut_out_estimate(&s), sk.cut_out_estimate(&s));
    }

    #[test]
    fn message_bits_are_exactly_accounted() {
        let sk = EdgeListSketch::new(16, vec![(0, 1, 1.0), (2, 3, 2.0)]);
        let msg = serialize_edge_list(&sk);
        // 64 (n) + 32 (m) + 2 edges × (4 + 4 + 64).
        assert_eq!(msg.bit_len(), 64 + 32 + 2 * 72);
    }

    #[test]
    fn measured_protocol_with_exact_sketcher_always_wins() {
        let params = ForEachParams::new(4, 1, 2);
        let protocol = ForEachIndexProtocol::new(params, ExactEdgeListSketcher);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let stats = measure(
            &protocol,
            25,
            &mut rng,
            |rng| {
                let inst = IndexInstance::sample(params.total_bits(), rng);
                let truth = inst.answer();
                (inst.s, inst.i, truth)
            },
            |a, b| a == b,
        );
        assert_eq!(stats.success_rate(), 1.0);
        // Message bits dominate the Ω(n√β/ε) line, as any correct
        // protocol must.
        assert!(stats.mean_bits >= params.lower_bound_bits() as f64);
    }

    #[test]
    fn forall_protocol_decides_gap_hamming_with_measured_bits() {
        use crate::forall::{ForAllParams, SubsetSearch};
        use crate::games::plant_gap_target;
        use dircut_comm::gap_hamming::random_weighted_string;
        let params = ForAllParams::new(1, 8, 2);
        let protocol =
            ForAllGapHammingProtocol::new(params, SubsetSearch::Exact, ExactEdgeListSketcher);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let stats = measure(
            &protocol,
            15,
            &mut rng,
            |rng| {
                use rand::Rng;
                let l = params.inv_eps_sq;
                let mut strings: Vec<Vec<bool>> = (0..params.num_strings())
                    .map(|_| random_weighted_string(l, l / 2, rng))
                    .collect();
                let q = rng.gen_range(0..params.num_strings());
                let is_far = rng.gen_bool(0.5);
                let t = random_weighted_string(l, l / 2, rng);
                strings[q] = plant_gap_target(&t, 2, is_far, rng);
                (strings, (q, t), is_far)
            },
            |a, b| a == b,
        );
        assert!(
            stats.success_rate() >= 0.85,
            "rate {}",
            stats.success_rate()
        );
        // Exact message carries at least the Ω(nβ/ε²) bits.
        assert!(stats.mean_bits >= params.lower_bound_bits() as f64);
    }

    #[test]
    fn measured_protocol_with_sampling_sketcher() {
        // A uniform sampler at tight ε keeps everything at gadget scale
        // (the construction's cuts are too small to subsample), so the
        // game still succeeds — and the message is sized accordingly.
        let params = ForEachParams::new(4, 1, 2);
        let protocol = ForEachIndexProtocol::new(params, UniformSketcher::new(0.05));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stats = measure(
            &protocol,
            20,
            &mut rng,
            |rng| {
                let inst = IndexInstance::sample(params.total_bits(), rng);
                let truth = inst.answer();
                (inst.s, inst.i, truth)
            },
            |a, b| a == b,
        );
        assert!(stats.success_rate() >= 0.9, "rate {}", stats.success_rate());
        assert!(stats.max_bits > 0);
    }
}
