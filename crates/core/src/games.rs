//! Shared vocabulary of the end-to-end Alice → Bob games.
//!
//! The games themselves — sample the hard distribution, encode it as a
//! gadget graph, hand Bob an oracle, record whether he decodes — live
//! in [`crate::reduction`] as [`Reduction`](crate::reduction::Reduction)
//! implementations, run either sequentially through
//! [`run_reduction_game`](crate::reduction::run_reduction_game) or in
//! parallel through the `dircut-bench` trial engine. This module keeps
//! the pieces every game shares: the aggregate [`GameReport`] and the
//! Gap-Hamming instance planter.

use dircut_comm::gap_hamming::hamming_distance;
use rand::Rng;

/// Outcome of a repeated decoding game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameReport {
    /// Trials run.
    pub trials: usize,
    /// Trials where Bob answered correctly.
    pub successes: usize,
    /// Mean cut queries Bob issued per trial.
    pub mean_queries: f64,
}

impl GameReport {
    /// Empirical success probability.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

/// Plants Bob's string `t` at Hamming distance `L/2 ± 2·half_gap` from
/// `s` (far or close), preserving Hamming weight `L/2`.
#[must_use]
pub fn plant_gap_target<R: Rng>(s: &[bool], half_gap: usize, far: bool, rng: &mut R) -> Vec<bool> {
    use rand::seq::SliceRandom;
    let l = s.len();
    let w = l / 2;
    let swaps = if far {
        w / 2 + half_gap
    } else {
        w / 2 - half_gap
    };
    let ones: Vec<usize> = s
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(p, _)| p)
        .collect();
    let zeros: Vec<usize> = s
        .iter()
        .enumerate()
        .filter(|(_, &b)| !b)
        .map(|(p, _)| p)
        .collect();
    assert!(
        swaps <= ones.len() && swaps <= zeros.len(),
        "gap too large for length {l}"
    );
    let mut t = s.to_vec();
    for &p in ones.choose_multiple(rng, swaps) {
        t[p] = false;
    }
    for &p in zeros.choose_multiple(rng, swaps) {
        t[p] = true;
    }
    debug_assert_eq!(hamming_distance(s, &t), 2 * swaps);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_comm::gap_hamming::random_weighted_string;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn plant_gap_target_hits_requested_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = random_weighted_string(32, 16, &mut rng);
        let far = plant_gap_target(&s, 3, true, &mut rng);
        let close = plant_gap_target(&s, 3, false, &mut rng);
        assert_eq!(hamming_distance(&s, &far), 16 + 6);
        assert_eq!(hamming_distance(&s, &close), 16 - 6);
        assert_eq!(far.iter().filter(|&&b| b).count(), 16);
        assert_eq!(close.iter().filter(|&&b| b).count(), 16);
    }
}
