//! End-to-end Alice → Bob games: the paper's reductions executed
//! against arbitrary cut oracles.
//!
//! These are the measurement harnesses behind experiments E1 and E2:
//! sample the hard distribution, encode it as a gadget graph, hand Bob
//! an oracle (exact, honest sketch, noisy, or budgeted), and record how
//! often he decodes correctly. The paper's theorems predict where the
//! success rate collapses.

use crate::forall::{ForAllDecoder, ForAllEncoding, ForAllParams, SubsetSearch};
use crate::foreach::{ForEachDecoder, ForEachEncoding, ForEachParams};
use dircut_comm::gap_hamming::{hamming_distance, random_weighted_string};
use dircut_graph::DiGraph;
use dircut_sketch::CutOracle;
use rand::Rng;

/// Outcome of a repeated decoding game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameReport {
    /// Trials run.
    pub trials: usize,
    /// Trials where Bob answered correctly.
    pub successes: usize,
    /// Mean cut queries Bob issued per trial.
    pub mean_queries: f64,
}

impl GameReport {
    /// Empirical success probability.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

/// Runs the Section 3 Index game: Alice encodes a random sign string,
/// Bob decodes one random bit through the oracle `make_oracle`
/// produces for the encoded graph.
pub fn run_foreach_index_game<R, F, O>(
    params: ForEachParams,
    trials: usize,
    mut make_oracle: F,
    rng: &mut R,
) -> GameReport
where
    R: Rng,
    F: FnMut(&DiGraph, &mut R) -> O,
    O: CutOracle,
{
    let decoder = ForEachDecoder::new(params);
    let mut successes = 0usize;
    for _ in 0..trials {
        let s: Vec<i8> = (0..params.total_bits())
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        let enc = ForEachEncoding::encode(params, &s);
        let q = rng.gen_range(0..params.total_bits());
        let oracle = make_oracle(enc.graph(), rng);
        let got = decoder.decode_bit(&oracle, q);
        if got.sign == s[q] {
            successes += 1;
        }
    }
    GameReport {
        trials,
        successes,
        mean_queries: 4.0,
    }
}

/// Plants Bob's string `t` at Hamming distance `L/2 ± 2·half_gap` from
/// `s` (far or close), preserving Hamming weight `L/2`.
#[must_use]
pub fn plant_gap_target<R: Rng>(s: &[bool], half_gap: usize, far: bool, rng: &mut R) -> Vec<bool> {
    use rand::seq::SliceRandom;
    let l = s.len();
    let w = l / 2;
    let swaps = if far {
        w / 2 + half_gap
    } else {
        w / 2 - half_gap
    };
    let ones: Vec<usize> = s
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(p, _)| p)
        .collect();
    let zeros: Vec<usize> = s
        .iter()
        .enumerate()
        .filter(|(_, &b)| !b)
        .map(|(p, _)| p)
        .collect();
    assert!(
        swaps <= ones.len() && swaps <= zeros.len(),
        "gap too large for length {l}"
    );
    let mut t = s.to_vec();
    for &p in ones.choose_multiple(rng, swaps) {
        t[p] = false;
    }
    for &p in zeros.choose_multiple(rng, swaps) {
        t[p] = true;
    }
    debug_assert_eq!(hamming_distance(s, &t), 2 * swaps);
    t
}

/// Runs the Section 4 Gap-Hamming game: Alice encodes random
/// weight-`L/2` strings; one of them gets a planted far/close partner
/// `t` handed to Bob, who decides the case through the oracle.
///
/// `half_gap` is the planted distance offset in units of 2 (so the
/// distance is `L/2 ± 2·half_gap`; the paper's `c/ε` gap corresponds
/// to `half_gap ≈ c/(2ε)`).
pub fn run_forall_gap_hamming_game<R, F, O>(
    params: ForAllParams,
    half_gap: usize,
    search: SubsetSearch,
    trials: usize,
    mut make_oracle: F,
    rng: &mut R,
) -> GameReport
where
    R: Rng,
    F: FnMut(&DiGraph, &mut R) -> O,
    O: CutOracle,
{
    let decoder = ForAllDecoder::new(params, search);
    let l = params.inv_eps_sq;
    let mut successes = 0usize;
    let mut total_queries = 0usize;
    for _ in 0..trials {
        let mut strings: Vec<Vec<bool>> = (0..params.num_strings())
            .map(|_| random_weighted_string(l, l / 2, rng))
            .collect();
        let q = rng.gen_range(0..params.num_strings());
        let is_far = rng.gen_bool(0.5);
        // Draw s_q and t jointly: t is random of weight L/2, s_q is
        // planted at the promised distance from it.
        let t = random_weighted_string(l, l / 2, rng);
        strings[q] = plant_gap_target(&t, half_gap, is_far, rng);
        let enc = ForAllEncoding::encode(params, &strings);
        let oracle = make_oracle(enc.graph(), rng);
        let decision = decoder.decide(&oracle, q, &t, rng);
        total_queries += decision.cut_queries;
        if decision.is_far == is_far {
            successes += 1;
        }
    }
    GameReport {
        trials,
        successes,
        mean_queries: total_queries as f64 / trials.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_sketch::adversarial::{NoiseModel, NoisyOracle};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn plant_gap_target_hits_requested_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = random_weighted_string(32, 16, &mut rng);
        let far = plant_gap_target(&s, 3, true, &mut rng);
        let close = plant_gap_target(&s, 3, false, &mut rng);
        assert_eq!(hamming_distance(&s, &far), 16 + 6);
        assert_eq!(hamming_distance(&s, &close), 16 - 6);
        assert_eq!(far.iter().filter(|&&b| b).count(), 16);
        assert_eq!(close.iter().filter(|&&b| b).count(), 16);
    }

    #[test]
    fn foreach_game_succeeds_with_exact_oracle() {
        let params = ForEachParams::new(4, 1, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = run_foreach_index_game(
            params,
            30,
            |g, _| dircut_sketch::EdgeListSketch::from_graph(g),
            &mut rng,
        );
        assert_eq!(report.success_rate(), 1.0);
    }

    #[test]
    fn foreach_game_fails_with_excessive_noise() {
        // Noise far above the c₂ε/ln(1/ε) threshold destroys decoding:
        // success should fall toward a coin flip.
        let params = ForEachParams::new(4, 1, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = run_foreach_index_game(
            params,
            200,
            |g, r| NoisyOracle::new(g.clone(), 0.5, r.gen(), NoiseModel::SignedRelative),
            &mut rng,
        );
        let rate = report.success_rate();
        assert!(rate < 0.75, "noise ε = 0.5 still decodes at rate {rate}");
    }

    #[test]
    fn forall_game_succeeds_with_exact_oracle() {
        let params = ForAllParams::new(1, 8, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = run_forall_gap_hamming_game(
            params,
            2,
            SubsetSearch::Exact,
            20,
            |g, _| dircut_sketch::EdgeListSketch::from_graph(g),
            &mut rng,
        );
        assert!(
            report.success_rate() >= 0.8,
            "exact oracle succeeds only at {}",
            report.success_rate()
        );
        assert_eq!(report.mean_queries, 70.0); // C(8,4)
    }
}
