//! The *naive* one-bit-per-edge encoding — and why it fails.
//!
//! Section 1.2 of the paper explains the key obstacle its Section 3
//! construction overcomes: if each bit `s_i` is encoded into a single
//! forward edge `(u, v)` (weight 1 or 2, as in the earlier
//! [ACK+16, CCPS21] constructions) and Bob queries the natural cut
//! `S = {u} ∪ (R ∖ {v})`, the `(k−1)² = Ω(β/ε²)` backward edges of
//! weight `1/β` push the cut value to `Ω(1/ε²)`, so a `(1±ε)` sketch
//! answers with `Ω(1/ε)` *additive* error — hopeless for reading a
//! `±1` signal. The Hadamard construction instead spreads `1/ε²` bits
//! across `1/ε²` edges so the decoded signal is `Θ(1/ε)`, matching the
//! error.
//!
//! This module implements the naive encoding so the failure is
//! *measurable*: with an exact oracle both encodings decode perfectly;
//! with the same `(1 ± c₂ε/ln(1/ε))` noisy oracle, the Hadamard
//! decoder keeps working while the naive decoder collapses to a coin
//! flip (see `exp_foreach` and the tests below).

use dircut_graph::{DiGraph, NodeId, NodeSet};
use dircut_sketch::CutOracle;

/// Parameters of the naive one-bit-per-edge gadget: a single `k×k`
/// bipartite pair (`k = √β/ε` in the paper's regime).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveParams {
    /// Side size `k` of the bipartite gadget.
    pub k: usize,
    /// Balance parameter β (backward edges have weight `1/β`).
    pub beta: f64,
}

impl NaiveParams {
    /// Creates parameters.
    ///
    /// # Panics
    /// Panics if `k < 2` or `beta < 1`.
    #[must_use]
    pub fn new(k: usize, beta: f64) -> Self {
        assert!(k >= 2, "gadget needs k ≥ 2");
        assert!(beta >= 1.0, "β must be ≥ 1");
        Self { k, beta }
    }

    /// Number of bits encoded: one per forward edge, `k²`.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.k * self.k
    }

    /// Total nodes `2k` (left `0..k`, right `k..2k`).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        2 * self.k
    }
}

/// The naive encoding: forward edge `(u, k+v)` has weight `1 + s[u·k+v]`,
/// every backward edge has weight `1/β`.
#[derive(Debug, Clone)]
pub struct NaiveEncoding {
    params: NaiveParams,
    graph: DiGraph,
}

impl NaiveEncoding {
    /// Encodes bits (`false → 1`, `true → 2`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn encode(params: NaiveParams, bits: &[bool]) -> Self {
        assert_eq!(
            bits.len(),
            params.total_bits(),
            "bit string length mismatch"
        );
        let k = params.k;
        let mut g = DiGraph::with_edge_capacity(2 * k, 2 * k * k);
        for u in 0..k {
            for v in 0..k {
                let w = if bits[u * k + v] { 2.0 } else { 1.0 };
                g.add_edge(NodeId::new(u), NodeId::new(k + v), w);
                g.add_edge(NodeId::new(k + v), NodeId::new(u), 1.0 / params.beta);
            }
        }
        Self { params, graph: g }
    }

    /// The encoded graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &NaiveParams {
        &self.params
    }
}

/// Bob's naive decoder: one cut query per bit.
#[derive(Debug, Clone, Copy)]
pub struct NaiveDecoder {
    params: NaiveParams,
}

impl NaiveDecoder {
    /// A decoder for the given public parameters.
    #[must_use]
    pub fn new(params: NaiveParams) -> Self {
        Self { params }
    }

    /// The query set `S = {u} ∪ (R ∖ {v})` for bit `(u, v)`.
    #[must_use]
    pub fn query_set(&self, q: usize) -> NodeSet {
        let k = self.params.k;
        assert!(q < self.params.total_bits(), "bit index out of range");
        let (u, v) = (q / k, q % k);
        let mut s = NodeSet::empty(2 * k);
        s.insert(NodeId::new(u));
        for r in 0..k {
            if r != v {
                s.insert(NodeId::new(k + r));
            }
        }
        s
    }

    /// The fixed backward weight crossing the query cut:
    /// `(k−1)²/β` (from `R∖{v}` to `L∖{u}`).
    #[must_use]
    pub fn fixed_backward_weight(&self) -> f64 {
        let k = self.params.k as f64;
        (k - 1.0) * (k - 1.0) / self.params.beta
    }

    /// Decodes bit `q`: the cut consists of the single forward edge
    /// `(u, v)` (weight 1 or 2) plus the fixed backward mass; after
    /// subtraction, ≥ 1.5 reads as `true`.
    #[must_use]
    pub fn decode_bit<O: CutOracle>(&self, oracle: &O, q: usize) -> bool {
        let s = self.query_set(q);
        let forward = oracle.cut_out_estimate(&s) - self.fixed_backward_weight();
        forward >= 1.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::{
        run_reduction_game, ForEachIndexReduction, NaiveIndexReduction, OracleSpec,
    };
    use crate::ForEachParams;
    use dircut_graph::balance::edgewise_balance_bound;
    use dircut_sketch::adversarial::NoiseModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_oracle_decodes_naive_encoding() {
        let params = NaiveParams::new(8, 4.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let rdx = NaiveIndexReduction {
            params,
            oracle: OracleSpec::Exact,
        };
        let report = run_reduction_game(&rdx, 40, &mut rng);
        assert_eq!(report.success_rate(), 1.0);
        assert_eq!(report.mean_queries, 1.0);
    }

    #[test]
    fn naive_gadget_is_2beta_balanced() {
        let params = NaiveParams::new(6, 3.0);
        let bits = vec![true; params.total_bits()];
        let enc = NaiveEncoding::encode(params, &bits);
        let cert = edgewise_balance_bound(enc.graph()).unwrap();
        assert!(cert <= 2.0 * 3.0 + 1e-9);
    }

    #[test]
    fn query_cut_is_dominated_by_backward_mass() {
        // The Section 1.2 observation: the queried cut has value
        // Θ(k²/β) ≫ the ±1 signal.
        let params = NaiveParams::new(16, 2.0);
        let bits = vec![false; params.total_bits()];
        let enc = NaiveEncoding::encode(params, &bits);
        let dec = NaiveDecoder::new(params);
        let s = dec.query_set(0);
        let cut = enc.graph().cut_out(&s);
        let backward = dec.fixed_backward_weight();
        assert!((cut - backward - 1.0).abs() < 1e-9);
        assert!(
            backward > 50.0,
            "backward mass {backward} too small to demonstrate"
        );
    }

    #[test]
    fn naive_encoding_collapses_under_the_noise_hadamard_survives() {
        // The head-to-head of Section 1.2: equal noise level, equal
        // β and ε regime; the Hadamard construction decodes, the naive
        // one cannot.
        let inv_eps = 8usize;
        let sqrt_beta = 2usize;
        let eps = 1.0 / inv_eps as f64;
        let noise = 0.25 * eps / (1.0 / eps).ln(); // the threshold level
        let trials = 200;

        let noisy = OracleSpec::Noisy {
            err: noise,
            model: NoiseModel::SignedRelative,
        };
        let hadamard = ForEachIndexReduction {
            params: ForEachParams::new(inv_eps, sqrt_beta, 2),
            oracle: noisy,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let good = run_reduction_game(&hadamard, trials, &mut rng);

        let naive = NaiveIndexReduction {
            params: NaiveParams::new(sqrt_beta * inv_eps, (sqrt_beta * sqrt_beta) as f64),
            oracle: noisy,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let bad = run_reduction_game(&naive, trials, &mut rng);

        assert!(
            good.success_rate() >= 0.9,
            "Hadamard rate {}",
            good.success_rate()
        );
        assert!(
            bad.success_rate() <= 0.65,
            "naive encoding still decodes at {} under noise {noise}",
            bad.success_rate()
        );
    }
}
