//! The one shape behind all three theorems: sample a hard input,
//! encode it, hand a bounded-resource artifact to a decoder, verify.
//!
//! Every lower bound in the paper — Theorem 1.1 (cut sketch → Index),
//! Theorem 1.2 (for-all sketch → Gap-Hamming), Theorem 1.3
//! (local-query min-cut → 2-SUM) — is a distributional game of exactly
//! that form, and so are the satellite measurements the experiment
//! binaries run (naive-encoding head-to-heads, Lemma 4.3/4.4 events,
//! serialized-sketch protocols). The [`Reduction`] trait factors the
//! shape out once; the `dircut-bench` `TrialEngine` fans any
//! implementation over the deterministic worker pool and collects
//! per-trial records.
//!
//! # Phase contract
//!
//! * [`Reduction::sample`] is the **only** phase allowed to consume the
//!   caller-provided randomness in a way that must replay byte-for-byte
//!   (the legacy experiment seeds thread one shared RNG through the
//!   trials in order). It receives the trial index because some hard
//!   distributions are stratified by trial (e.g. the for-all
//!   head-to-head plants `is_far = trial % 2 == 0`).
//! * [`Reduction::encode`] is deterministic: instance in, artifact out.
//!   The artifact is everything that crosses the channel — the oracle
//!   or serialized sketch plus Bob's query.
//! * [`Reduction::decode`] gets a per-trial RNG. All shipped decoders
//!   with [`SubsetSearch::Exact`] consume none of it, which is what
//!   makes the historical shared-RNG byte streams replayable; an
//!   RNG-consuming decoder stays deterministic per trial but cannot be
//!   byte-compared against a pre-refactor shared-stream run.
//! * [`Reduction::verify`] scores the answer against the instance and
//!   reports the reduction's own resource accounting (cut queries per
//!   the paper: 4 for the Hadamard decoder, 1 for the naive one, the
//!   enumeration count for for-all).

use crate::forall::{
    high_low_split, ForAllDecision, ForAllDecoder, ForAllEncoding, ForAllParams, HighLowSplit,
    SubsetSearch,
};
use crate::foreach::{ForEachDecoder, ForEachEncoding, ForEachParams};
use crate::games::{plant_gap_target, GameReport};
use crate::mincut_lb::{solve_twosum_via_mincut, GxyGraph, TwoSumViaMinCut};
use crate::naive::{NaiveDecoder, NaiveEncoding, NaiveParams};
use dircut_comm::bitio::Message;
use dircut_comm::gap_hamming::random_weighted_string;
use dircut_comm::{IndexInstance, TwoSumInstance};
use dircut_graph::{DiGraph, NodeSet};
use dircut_localquery::{global_min_cut_local, SearchVariant, VerifyGuessConfig};
use dircut_sketch::adversarial::{NoiseModel, NoisyOracle};
use dircut_sketch::{BudgetedSketch, CutOracle, CutSketch, CutSketcher, EdgeListSketch};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// What one trial of a reduction produced, as judged by the reduction
/// itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Did Bob answer correctly?
    pub success: bool,
    /// Cut queries the decoder issued, by the reduction's own
    /// accounting (the number the theorems talk about — 4 per bit for
    /// the Hadamard decoder even when an oracle implementation batches
    /// them).
    pub cut_queries: u64,
    /// Named per-trial measurements beyond success/queries (lemma
    /// event densities, estimator errors, sub-answer correctness).
    /// Consumers aggregate these however the table needs.
    pub aux: Vec<(&'static str, f64)>,
}

impl TrialOutcome {
    /// An outcome with no auxiliary measurements.
    #[must_use]
    pub fn new(success: bool, cut_queries: u64) -> Self {
        Self {
            success,
            cut_queries,
            aux: Vec::new(),
        }
    }

    /// Attaches a named auxiliary measurement.
    #[must_use]
    pub fn with_aux(mut self, name: &'static str, value: f64) -> Self {
        self.aux.push((name, value));
        self
    }
}

/// Static resource bill of one artifact: what the reduction *pays*,
/// independent of whether the decode succeeds.
///
/// The bill is **logical**: the query-result cache and flow
/// warm-starts in `dircut_graph::cache` never change these numbers (or
/// the measured `stats` counters they are checked against) — a solve
/// or cut query served from a memo bills exactly like a cold one. The
/// lower-bound games charge for information *requested*, not work
/// performed, so a cache hit is still a query against the oracle;
/// caching is observable only through
/// `dircut_graph::stats::total_cache_hits` and wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resources {
    /// Bits that cross the channel (serialized sketch / message size;
    /// 0 for oracles that are never materialized, like the noisy
    /// adversary).
    pub wire_bits: u64,
    /// Cut queries the decoder is budgeted to issue, where that number
    /// is fixed by construction (4 for Hadamard, 1 for naive; 0 when
    /// only known after decoding — see [`TrialOutcome::cut_queries`]).
    pub cut_queries: u64,
    /// Max-flow solves the encode phase is known to issue (Lemma 5.5
    /// verification); 0 elsewhere.
    pub flow_solves: u64,
}

/// One lower-bound pipeline: sample → encode → decode → verify.
pub trait Reduction {
    /// The sampled hard input (Alice's and Bob's joint state).
    type Instance;
    /// What crosses the channel: oracle or serialized sketch plus
    /// Bob's query.
    type Artifact;
    /// Bob's answer.
    type Answer;

    /// Stable identifier used in reports and `BENCH_reductions.json`.
    fn name(&self) -> &'static str;

    /// Draws one instance from the hard distribution. The only
    /// RNG-consuming phase under the legacy shared-stream seeding; see
    /// the module docs for the exact contract.
    fn sample<R: Rng>(&self, trial: usize, rng: &mut R) -> Self::Instance;

    /// Deterministically encodes the instance into the artifact Bob
    /// receives.
    fn encode(&self, inst: &Self::Instance) -> Self::Artifact;

    /// Bob's side: recover an answer from the artifact alone.
    fn decode<R: Rng>(&self, artifact: &Self::Artifact, rng: &mut R) -> Self::Answer;

    /// Scores the answer against the instance.
    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome;

    /// The artifact's static resource bill. Default: everything
    /// unknown/zero.
    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        let _ = artifact;
        Resources::default()
    }
}

/// Which oracle Bob decodes through — the experiment axis every
/// theorem's game sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OracleSpec {
    /// Exact answers (an [`EdgeListSketch`] of the whole encoding).
    Exact,
    /// Worst-case `(1±err)` noise, deterministic per cut; consumes one
    /// `u64` seed from the sample-phase RNG, exactly like the legacy
    /// `make_oracle` closures did.
    Noisy {
        /// Relative error magnitude.
        err: f64,
        /// Perturbation shape.
        model: NoiseModel,
    },
    /// The heaviest-edges straw man truncated to a bit budget.
    Budgeted {
        /// Bit budget for the kept edges.
        bits: usize,
    },
}

impl OracleSpec {
    /// Draws whatever randomness this oracle needs — in the same
    /// position of the sample stream where the legacy loops drew it.
    pub fn draw_seed<R: Rng>(&self, rng: &mut R) -> Option<u64> {
        match self {
            Self::Noisy { .. } => Some(rng.gen()),
            Self::Exact | Self::Budgeted { .. } => None,
        }
    }

    /// Builds the oracle over an encoded graph.
    ///
    /// # Panics
    /// Panics if a [`OracleSpec::Noisy`] spec is instantiated without
    /// the seed its [`OracleSpec::draw_seed`] drew.
    #[must_use]
    pub fn instantiate(&self, g: &DiGraph, seed: Option<u64>) -> AnyOracle {
        match *self {
            Self::Exact => AnyOracle::Exact(EdgeListSketch::from_graph(g)),
            Self::Noisy { err, model } => AnyOracle::Noisy(NoisyOracle::new(
                g.clone(),
                err,
                seed.expect("noisy oracle needs the seed drawn in sample()"),
                model,
            )),
            Self::Budgeted { bits } => AnyOracle::Budgeted(BudgetedSketch::new(g, bits)),
        }
    }
}

/// A closed enum over the oracle kinds the games run against, so
/// reduction artifact types stay object-safe and `Send`.
#[derive(Debug, Clone)]
pub enum AnyOracle {
    /// Exact edge-list oracle.
    Exact(EdgeListSketch),
    /// Worst-case noisy adversary.
    Noisy(NoisyOracle),
    /// Bit-budget truncated sketch.
    Budgeted(BudgetedSketch),
}

impl AnyOracle {
    /// Serialized size where the oracle is a materialized sketch; 0
    /// for the noisy adversary (it is an error model, not a message).
    #[must_use]
    pub fn size_bits(&self) -> u64 {
        match self {
            Self::Exact(sk) => sk.size_bits() as u64,
            Self::Noisy(_) => 0,
            Self::Budgeted(sk) => sk.size_bits() as u64,
        }
    }
}

impl CutOracle for AnyOracle {
    fn universe(&self) -> usize {
        match self {
            Self::Exact(o) => o.universe(),
            Self::Noisy(o) => o.universe(),
            Self::Budgeted(o) => o.universe(),
        }
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        match self {
            Self::Exact(o) => o.cut_out_estimate(s),
            Self::Noisy(o) => o.cut_out_estimate(s),
            Self::Budgeted(o) => o.cut_out_estimate(s),
        }
    }

    fn cut_out_estimates(&self, sets: &[NodeSet]) -> Vec<f64> {
        match self {
            Self::Exact(o) => o.cut_out_estimates(sets),
            Self::Noisy(o) => o.cut_out_estimates(sets),
            Self::Budgeted(o) => o.cut_out_estimates(sets),
        }
    }
}

/// Runs a reduction sequentially with one shared RNG — the reference
/// loop every parallel execution must agree with, and the direct
/// replacement for the three hand-rolled game loops this module
/// retired (`run_foreach_index_game`, `run_forall_gap_hamming_game`,
/// `run_naive_index_game`).
pub fn run_reduction_game<Rdx: Reduction, R: Rng>(
    rdx: &Rdx,
    trials: usize,
    rng: &mut R,
) -> GameReport {
    let mut successes = 0usize;
    let mut total_queries = 0u64;
    for trial in 0..trials {
        let inst = rdx.sample(trial, rng);
        let artifact = rdx.encode(&inst);
        let answer = rdx.decode(&artifact, rng);
        let outcome = rdx.verify(&inst, &answer);
        if outcome.success {
            successes += 1;
        }
        total_queries += outcome.cut_queries;
    }
    GameReport {
        trials,
        successes,
        mean_queries: total_queries as f64 / trials.max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// Theorem 1.1: cut sketch → Index (Section 3).
// ---------------------------------------------------------------------------

/// The Section 3 Index game: Alice encodes a random sign string into
/// the Hadamard gadget, Bob decodes one random bit with 4 cut queries.
#[derive(Debug, Clone, Copy)]
pub struct ForEachIndexReduction {
    /// Construction parameters.
    pub params: ForEachParams,
    /// The oracle Bob queries.
    pub oracle: OracleSpec,
}

/// Sampled state of one Index trial.
#[derive(Debug, Clone)]
pub struct ForEachIndexInstance {
    /// Alice's sign string.
    pub s: Vec<i8>,
    /// Bob's queried bit.
    pub q: usize,
    /// The noisy oracle's seed, when the spec needs one.
    pub oracle_seed: Option<u64>,
}

/// What Bob receives: the oracle over the encoded graph plus his query.
#[derive(Debug, Clone)]
pub struct ForEachIndexArtifact {
    /// The cut oracle over the gadget graph.
    pub oracle: AnyOracle,
    /// The queried bit index.
    pub q: usize,
}

impl Reduction for ForEachIndexReduction {
    type Instance = ForEachIndexInstance;
    type Artifact = ForEachIndexArtifact;
    type Answer = i8;

    fn name(&self) -> &'static str {
        "foreach-index"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        // Draw order replicates the retired loop exactly: sign string,
        // queried bit, then the oracle's seed (the encode in between
        // consumed no randomness).
        let s: Vec<i8> = (0..self.params.total_bits())
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        let q = rng.gen_range(0..self.params.total_bits());
        let oracle_seed = self.oracle.draw_seed(rng);
        ForEachIndexInstance { s, q, oracle_seed }
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        let enc = ForEachEncoding::encode(self.params, &inst.s);
        ForEachIndexArtifact {
            oracle: self.oracle.instantiate(enc.graph(), inst.oracle_seed),
            q: inst.q,
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        ForEachDecoder::new(self.params)
            .decode_bit(&artifact.oracle, artifact.q)
            .sign
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(*answer == inst.s[inst.q], 4)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.oracle.size_bits(),
            cut_queries: 4,
            flow_solves: 0,
        }
    }
}

/// The Section 1.2 naive one-bit-per-edge baseline, same game shape.
#[derive(Debug, Clone, Copy)]
pub struct NaiveIndexReduction {
    /// Naive gadget parameters.
    pub params: NaiveParams,
    /// The oracle Bob queries.
    pub oracle: OracleSpec,
}

/// Sampled state of one naive-Index trial.
#[derive(Debug, Clone)]
pub struct NaiveIndexInstance {
    /// Alice's bit string.
    pub bits: Vec<bool>,
    /// Bob's queried bit.
    pub q: usize,
    /// The noisy oracle's seed, when the spec needs one.
    pub oracle_seed: Option<u64>,
}

impl Reduction for NaiveIndexReduction {
    type Instance = NaiveIndexInstance;
    type Artifact = ForEachIndexArtifact;
    type Answer = bool;

    fn name(&self) -> &'static str {
        "naive-index"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        let bits: Vec<bool> = (0..self.params.total_bits())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let q = rng.gen_range(0..self.params.total_bits());
        let oracle_seed = self.oracle.draw_seed(rng);
        NaiveIndexInstance {
            bits,
            q,
            oracle_seed,
        }
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        let enc = NaiveEncoding::encode(self.params, &inst.bits);
        ForEachIndexArtifact {
            oracle: self.oracle.instantiate(enc.graph(), inst.oracle_seed),
            q: inst.q,
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        NaiveDecoder::new(self.params).decode_bit(&artifact.oracle, artifact.q)
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(*answer == inst.bits[inst.q], 1)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.oracle.size_bits(),
            cut_queries: 1,
            flow_solves: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Theorem 1.2: for-all sketch → Gap-Hamming (Section 4).
// ---------------------------------------------------------------------------

/// The Section 4 Gap-Hamming game: one planted far/close partner, Bob
/// answers by half-subset enumeration through the oracle.
#[derive(Debug, Clone, Copy)]
pub struct ForAllGapHammingReduction {
    /// Construction parameters.
    pub params: ForAllParams,
    /// Planted distance offset (`L/2 ± 2·half_gap`).
    pub half_gap: usize,
    /// Bob's subset search strategy.
    pub search: SubsetSearch,
    /// The oracle Bob queries.
    pub oracle: OracleSpec,
}

/// Sampled state of one Gap-Hamming trial.
#[derive(Debug, Clone)]
pub struct ForAllInstance {
    /// Alice's strings (with the planted partner substituted at `q`).
    pub strings: Vec<Vec<bool>>,
    /// The planted string's index.
    pub q: usize,
    /// The planted case (far = `true`).
    pub is_far: bool,
    /// Bob's target string.
    pub t: Vec<bool>,
    /// The noisy oracle's seed, when the spec needs one.
    pub oracle_seed: Option<u64>,
}

/// What Bob receives in the Gap-Hamming game.
#[derive(Debug, Clone)]
pub struct ForAllArtifact {
    /// The cut oracle over the encoded graph.
    pub oracle: AnyOracle,
    /// The planted string's index.
    pub q: usize,
    /// Bob's target string.
    pub t: Vec<bool>,
}

impl ForAllGapHammingReduction {
    fn sample_instance<R: Rng>(
        &self,
        q: usize,
        is_far: bool,
        strings: Vec<Vec<bool>>,
        rng: &mut R,
    ) -> ForAllInstance {
        let l = self.params.inv_eps_sq;
        let mut strings = strings;
        let t = random_weighted_string(l, l / 2, rng);
        strings[q] = plant_gap_target(&t, self.half_gap, is_far, rng);
        let oracle_seed = self.oracle.draw_seed(rng);
        ForAllInstance {
            strings,
            q,
            is_far,
            t,
            oracle_seed,
        }
    }

    fn random_strings<R: Rng>(&self, rng: &mut R) -> Vec<Vec<bool>> {
        let l = self.params.inv_eps_sq;
        (0..self.params.num_strings())
            .map(|_| random_weighted_string(l, l / 2, rng))
            .collect()
    }
}

impl Reduction for ForAllGapHammingReduction {
    type Instance = ForAllInstance;
    type Artifact = ForAllArtifact;
    type Answer = ForAllDecision;

    fn name(&self) -> &'static str {
        "forall-gap-hamming"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        // Legacy draw order: strings, q, is_far, t, plant, oracle seed.
        let strings = self.random_strings(rng);
        let q = rng.gen_range(0..self.params.num_strings());
        let is_far = rng.gen_bool(0.5);
        self.sample_instance(q, is_far, strings, rng)
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        let enc = ForAllEncoding::encode(self.params, &inst.strings);
        ForAllArtifact {
            oracle: self.oracle.instantiate(enc.graph(), inst.oracle_seed),
            q: inst.q,
            t: inst.t.clone(),
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, rng: &mut R) -> Self::Answer {
        ForAllDecoder::new(self.params, self.search).decide(
            &artifact.oracle,
            artifact.q,
            &artifact.t,
            rng,
        )
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(answer.is_far == inst.is_far, answer.cut_queries as u64)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.oracle.size_bits(),
            cut_queries: 0,
            flow_solves: 0,
        }
    }
}

/// The single-cut baseline vs enumeration head-to-head (experiment
/// E2's second table): the planted index and case are stratified by
/// trial, and both decoders run on the same noisy oracle.
#[derive(Debug, Clone, Copy)]
pub struct ForAllHeadToHeadReduction {
    /// Construction parameters.
    pub params: ForAllParams,
    /// Planted distance offset.
    pub half_gap: usize,
    /// Uniform-relative noise magnitude.
    pub noise: f64,
}

/// Answer of one head-to-head trial: both decoders' calls.
#[derive(Debug, Clone)]
pub struct HeadToHeadAnswer {
    /// The single-cut baseline's far/close call.
    pub single_is_far: bool,
    /// The enumeration decoder's decision.
    pub decision: ForAllDecision,
}

impl Reduction for ForAllHeadToHeadReduction {
    type Instance = ForAllInstance;
    type Artifact = ForAllArtifact;
    type Answer = HeadToHeadAnswer;

    fn name(&self) -> &'static str {
        "forall-single-vs-enum"
    }

    fn sample<R: Rng>(&self, trial: usize, rng: &mut R) -> Self::Instance {
        let inner = ForAllGapHammingReduction {
            params: self.params,
            half_gap: self.half_gap,
            search: SubsetSearch::Exact,
            oracle: OracleSpec::Noisy {
                err: self.noise,
                model: NoiseModel::UniformRelative,
            },
        };
        let strings = inner.random_strings(rng);
        let q = (trial * 5) % self.params.num_strings();
        let is_far = trial.is_multiple_of(2);
        inner.sample_instance(q, is_far, strings, rng)
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        let enc = ForAllEncoding::encode(self.params, &inst.strings);
        let spec = OracleSpec::Noisy {
            err: self.noise,
            model: NoiseModel::UniformRelative,
        };
        ForAllArtifact {
            oracle: spec.instantiate(enc.graph(), inst.oracle_seed),
            q: inst.q,
            t: inst.t.clone(),
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, rng: &mut R) -> Self::Answer {
        let dec = ForAllDecoder::new(self.params, SubsetSearch::Exact);
        let single_is_far = dec.decide_single_cut(&artifact.oracle, artifact.q, &artifact.t);
        let decision = dec.decide(&artifact.oracle, artifact.q, &artifact.t, rng);
        HeadToHeadAnswer {
            single_is_far,
            decision,
        }
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(
            answer.decision.is_far == inst.is_far,
            answer.decision.cut_queries as u64,
        )
        .with_aux(
            "single_ok",
            f64::from(u8::from(answer.single_is_far == inst.is_far)),
        )
        .with_aux(
            "enum_ok",
            f64::from(u8::from(answer.decision.is_far == inst.is_far)),
        )
    }
}

/// The measurable Lemma 4.3 / 4.4 events: `L_high`/`L_low` densities
/// and argmax-subset recall on close-planted instances.
#[derive(Debug, Clone, Copy)]
pub struct ForAllLemma43Reduction {
    /// Construction parameters.
    pub params: ForAllParams,
    /// The `high_low_split` threshold constant.
    pub c: f64,
}

/// Artifact of one Lemma 4.3 trial: the full encoding is retained
/// because the split is defined on it, not just on the oracle.
#[derive(Debug)]
pub struct Lemma43Artifact {
    /// The encoding (the split reads exact gadget weights).
    pub enc: ForAllEncoding,
    /// Exact oracle over the encoded graph.
    pub oracle: EdgeListSketch,
    /// The planted string's index.
    pub q: usize,
    /// Bob's target string.
    pub t: Vec<bool>,
}

/// Answer of one Lemma 4.3 trial.
#[derive(Debug, Clone)]
pub struct Lemma43Answer {
    /// The Lemma 4.3 high/low split.
    pub split: HighLowSplit,
    /// The enumeration decoder's decision (for argmax-Q recall).
    pub decision: ForAllDecision,
}

impl Reduction for ForAllLemma43Reduction {
    type Instance = ForAllInstance;
    type Artifact = Lemma43Artifact;
    type Answer = Lemma43Answer;

    fn name(&self) -> &'static str {
        "forall-lemma-4-3"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        // Legacy draw order: strings, q, t, plant (close case, gap 1).
        let l = self.params.inv_eps_sq;
        let mut strings: Vec<Vec<bool>> = (0..self.params.num_strings())
            .map(|_| random_weighted_string(l, l / 2, rng))
            .collect();
        let q = rng.gen_range(0..self.params.num_strings());
        let t = random_weighted_string(l, l / 2, rng);
        strings[q] = plant_gap_target(&t, 1, false, rng);
        ForAllInstance {
            strings,
            q,
            is_far: false,
            t,
            oracle_seed: None,
        }
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        let enc = ForAllEncoding::encode(self.params, &inst.strings);
        let oracle = EdgeListSketch::from_graph(enc.graph());
        Lemma43Artifact {
            enc,
            oracle,
            q: inst.q,
            t: inst.t.clone(),
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, rng: &mut R) -> Self::Answer {
        let split = high_low_split(&artifact.enc, artifact.q, &artifact.t, self.c);
        let decoder = ForAllDecoder::new(self.params, SubsetSearch::Exact);
        let decision = decoder.decide(&artifact.oracle, artifact.q, &artifact.t, rng);
        Lemma43Answer { split, decision }
    }

    fn verify(&self, _inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        let k = self.params.group_size() as f64;
        let recall = if answer.split.high.is_empty() {
            0.0
        } else {
            let captured = answer
                .split
                .high
                .iter()
                .filter(|i| answer.decision.q_subset.contains(i))
                .count();
            captured as f64 / answer.split.high.len() as f64
        };
        TrialOutcome::new(true, answer.decision.cut_queries as u64)
            .with_aux("high_frac", answer.split.high.len() as f64 / k)
            .with_aux("low_frac", answer.split.low.len() as f64 / k)
            .with_aux("recall", recall)
            .with_aux(
                "recall_sampled",
                f64::from(u8::from(!answer.split.high.is_empty())),
            )
    }
}

// ---------------------------------------------------------------------------
// Serialized-sketch protocols (experiment E8): the same games with the
// artifact as a literal wire message.
// ---------------------------------------------------------------------------

/// Theorem 1.1 as a bit-counted one-way protocol: Alice's sketch is
/// serialized through the wire format and Bob decodes the
/// deserialized copy.
#[derive(Debug, Clone, Copy)]
pub struct ForEachProtocolReduction<S> {
    /// Construction parameters.
    pub params: ForEachParams,
    /// Alice's sketching algorithm.
    pub sketcher: S,
}

/// Sampled state of one protocol trial: the message is built during
/// sampling because the sketcher consumes Alice's private randomness.
#[derive(Debug, Clone)]
pub struct ForEachProtocolInstance {
    /// The correct answer `s[i]`.
    pub truth: i8,
    /// Bob's index.
    pub q: usize,
    /// Alice's serialized sketch.
    pub msg: Message,
}

/// What crosses the channel: the serialized sketch and Bob's index.
#[derive(Debug, Clone)]
pub struct ForEachProtocolArtifact {
    /// The serialized sketch.
    pub msg: Message,
    /// Bob's index.
    pub q: usize,
}

impl<S> Reduction for ForEachProtocolReduction<S>
where
    S: CutSketcher<Sketch = EdgeListSketch>,
{
    type Instance = ForEachProtocolInstance;
    type Artifact = ForEachProtocolArtifact;
    type Answer = i8;

    fn name(&self) -> &'static str {
        "foreach-index-protocol"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        // Legacy `measure` order: instance draws, then Alice's sketch
        // draws, all on the one shared stream.
        let inst = IndexInstance::sample(self.params.total_bits(), rng);
        let truth = inst.answer();
        let enc = ForEachEncoding::encode(self.params, &inst.s);
        let sk = self.sketcher.sketch(enc.graph(), rng);
        ForEachProtocolInstance {
            truth,
            q: inst.i,
            msg: dircut_comm::to_message(&sk),
        }
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        ForEachProtocolArtifact {
            msg: inst.msg.clone(),
            q: inst.q,
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        let sk: EdgeListSketch =
            dircut_comm::from_message(&artifact.msg).expect("malformed edge-list message");
        ForEachDecoder::new(self.params)
            .decode_bit(&sk, artifact.q)
            .sign
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(*answer == inst.truth, 4)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.msg.bit_len() as u64,
            cut_queries: 4,
            flow_solves: 0,
        }
    }
}

/// Theorem 1.2 as a bit-counted one-way protocol.
#[derive(Debug, Clone, Copy)]
pub struct ForAllProtocolReduction<S> {
    /// Construction parameters.
    pub params: ForAllParams,
    /// Planted distance offset.
    pub half_gap: usize,
    /// Bob's subset search strategy.
    pub search: SubsetSearch,
    /// Alice's sketching algorithm.
    pub sketcher: S,
}

/// Sampled state of one for-all protocol trial.
#[derive(Debug, Clone)]
pub struct ForAllProtocolInstance {
    /// The planted case.
    pub is_far: bool,
    /// The planted string's index.
    pub q: usize,
    /// Bob's target string.
    pub t: Vec<bool>,
    /// Alice's serialized sketch.
    pub msg: Message,
}

/// What crosses the channel in the for-all protocol.
#[derive(Debug, Clone)]
pub struct ForAllProtocolArtifact {
    /// The serialized sketch.
    pub msg: Message,
    /// The planted string's index.
    pub q: usize,
    /// Bob's target string.
    pub t: Vec<bool>,
}

impl<S> Reduction for ForAllProtocolReduction<S>
where
    S: CutSketcher<Sketch = EdgeListSketch>,
{
    type Instance = ForAllProtocolInstance;
    type Artifact = ForAllProtocolArtifact;
    type Answer = ForAllDecision;

    fn name(&self) -> &'static str {
        "forall-gap-hamming-protocol"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        let l = self.params.inv_eps_sq;
        let mut strings: Vec<Vec<bool>> = (0..self.params.num_strings())
            .map(|_| random_weighted_string(l, l / 2, rng))
            .collect();
        let q = rng.gen_range(0..self.params.num_strings());
        let is_far = rng.gen_bool(0.5);
        let t = random_weighted_string(l, l / 2, rng);
        strings[q] = plant_gap_target(&t, self.half_gap, is_far, rng);
        let enc = ForAllEncoding::encode(self.params, &strings);
        let sk = self.sketcher.sketch(enc.graph(), rng);
        ForAllProtocolInstance {
            is_far,
            q,
            t,
            msg: dircut_comm::to_message(&sk),
        }
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        ForAllProtocolArtifact {
            msg: inst.msg.clone(),
            q: inst.q,
            t: inst.t.clone(),
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, rng: &mut R) -> Self::Answer {
        let sk: EdgeListSketch =
            dircut_comm::from_message(&artifact.msg).expect("malformed edge-list message");
        ForAllDecoder::new(self.params, self.search).decide(&sk, artifact.q, &artifact.t, rng)
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(answer.is_far == inst.is_far, answer.cut_queries as u64)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.msg.bit_len() as u64,
            cut_queries: 0,
            flow_solves: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// The same games against honest sketching algorithms: the oracle is a
// real sketch drawn with Alice's randomness (not a noise model and not
// a wire message — the sketch object itself).
// ---------------------------------------------------------------------------

/// Theorem 1.1's Index game decoded through a real sketch produced by
/// an arbitrary [`CutSketcher`].
#[derive(Debug, Clone, Copy)]
pub struct ForEachSketchReduction<S> {
    /// Construction parameters.
    pub params: ForEachParams,
    /// Alice's sketching algorithm.
    pub sketcher: S,
}

/// Sampled state of one sketch-backed Index trial. The sketch is drawn
/// during sampling because the sketcher consumes Alice's randomness in
/// the position the legacy `make_oracle` closures did (after `q`).
#[derive(Debug, Clone)]
pub struct ForEachSketchInstance<K> {
    /// Alice's sign string.
    pub s: Vec<i8>,
    /// Bob's queried bit.
    pub q: usize,
    /// The sketch Bob decodes through.
    pub sketch: K,
}

/// What Bob receives in a sketch-backed game.
#[derive(Debug, Clone)]
pub struct SketchArtifact<K> {
    /// The sketch Bob decodes through.
    pub sketch: K,
    /// Bob's query index.
    pub q: usize,
}

impl<S> Reduction for ForEachSketchReduction<S>
where
    S: CutSketcher,
    S::Sketch: Clone,
{
    type Instance = ForEachSketchInstance<S::Sketch>;
    type Artifact = SketchArtifact<S::Sketch>;
    type Answer = i8;

    fn name(&self) -> &'static str {
        "foreach-index-sketch"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        let s: Vec<i8> = (0..self.params.total_bits())
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        let q = rng.gen_range(0..self.params.total_bits());
        let enc = ForEachEncoding::encode(self.params, &s);
        let sketch = self.sketcher.sketch(enc.graph(), rng);
        ForEachSketchInstance { s, q, sketch }
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        SketchArtifact {
            sketch: inst.sketch.clone(),
            q: inst.q,
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        ForEachDecoder::new(self.params)
            .decode_bit(&artifact.sketch, artifact.q)
            .sign
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(*answer == inst.s[inst.q], 4)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.sketch.size_bits() as u64,
            cut_queries: 4,
            flow_solves: 0,
        }
    }
}

/// Theorem 1.2's Gap-Hamming game decoded through a real sketch.
#[derive(Debug, Clone, Copy)]
pub struct ForAllSketchReduction<S> {
    /// Construction parameters.
    pub params: ForAllParams,
    /// Planted distance offset.
    pub half_gap: usize,
    /// Bob's subset search strategy.
    pub search: SubsetSearch,
    /// Alice's sketching algorithm.
    pub sketcher: S,
}

/// Sampled state of one sketch-backed Gap-Hamming trial.
#[derive(Debug, Clone)]
pub struct ForAllSketchInstance<K> {
    /// The planted case.
    pub is_far: bool,
    /// The planted string's index.
    pub q: usize,
    /// Bob's target string.
    pub t: Vec<bool>,
    /// The sketch Bob decodes through.
    pub sketch: K,
}

/// What Bob receives in a sketch-backed Gap-Hamming trial.
#[derive(Debug, Clone)]
pub struct ForAllSketchArtifact<K> {
    /// The sketch Bob decodes through.
    pub sketch: K,
    /// The planted string's index.
    pub q: usize,
    /// Bob's target string.
    pub t: Vec<bool>,
}

impl<S> Reduction for ForAllSketchReduction<S>
where
    S: CutSketcher,
    S::Sketch: Clone,
{
    type Instance = ForAllSketchInstance<S::Sketch>;
    type Artifact = ForAllSketchArtifact<S::Sketch>;
    type Answer = ForAllDecision;

    fn name(&self) -> &'static str {
        "forall-gap-hamming-sketch"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        let l = self.params.inv_eps_sq;
        let mut strings: Vec<Vec<bool>> = (0..self.params.num_strings())
            .map(|_| random_weighted_string(l, l / 2, rng))
            .collect();
        let q = rng.gen_range(0..self.params.num_strings());
        let is_far = rng.gen_bool(0.5);
        let t = random_weighted_string(l, l / 2, rng);
        strings[q] = plant_gap_target(&t, self.half_gap, is_far, rng);
        let enc = ForAllEncoding::encode(self.params, &strings);
        let sketch = self.sketcher.sketch(enc.graph(), rng);
        ForAllSketchInstance {
            is_far,
            q,
            t,
            sketch,
        }
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        ForAllSketchArtifact {
            sketch: inst.sketch.clone(),
            q: inst.q,
            t: inst.t.clone(),
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, rng: &mut R) -> Self::Answer {
        ForAllDecoder::new(self.params, self.search).decide(
            &artifact.sketch,
            artifact.q,
            &artifact.t,
            rng,
        )
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(answer.is_far == inst.is_far, answer.cut_queries as u64)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.sketch.size_bits() as u64,
            cut_queries: 0,
            flow_solves: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Theorem 1.3: local-query min-cut → 2-SUM (Section 5).
// ---------------------------------------------------------------------------

/// The Section 5 pipeline: sample a 2-SUM instance, build `G_{x,y}`,
/// verify Lemma 5.5 by max-flow, run the (modified) BGMP21 algorithm
/// through the 2-bits-per-query oracle, and score the recovered
/// disjointness sum.
#[derive(Debug, Clone, Copy)]
pub struct TwoSumMinCutReduction {
    /// Number of string pairs `t`.
    pub t: usize,
    /// String length `L`.
    pub l: usize,
    /// Promised intersection size α.
    pub alpha: usize,
    /// Number of intersecting pairs.
    pub intersecting: usize,
    /// Target accuracy of the min-cut algorithm.
    pub eps: f64,
    /// The Section 5.4 modification's constant search error.
    pub beta0: f64,
    /// Seed of the algorithm's private randomness (the legacy
    /// experiment runs the instance RNG and the algorithm RNG on
    /// separate fixed seeds).
    pub algo_seed: u64,
}

/// Artifact of one 2-SUM trial: the instance travels with its
/// verified gadget statistics (the oracle itself is rebuilt inside
/// [`solve_twosum_via_mincut`], matching the legacy experiment).
#[derive(Debug, Clone)]
pub struct TwoSumArtifact {
    /// The sampled instance (Bob's oracle simulates queries on it).
    pub inst: TwoSumInstance,
    /// Edge count of `G_{x,y}`.
    pub m: u64,
    /// The Lemma 5.5-verified min cut `2α·(t − DISJ)`.
    pub k: u64,
}

/// Answer of one 2-SUM trial.
#[derive(Debug, Clone)]
pub struct TwoSumAnswer {
    /// Local queries the algorithm issued.
    pub queries: u64,
    /// The recovered disjointness estimate and bit bill.
    pub result: TwoSumViaMinCut,
    /// Edge count of `G_{x,y}` (carried from the artifact so the
    /// instance-size columns survive into the trial record).
    pub m: u64,
    /// The Lemma 5.5-verified min cut.
    pub k: u64,
}

impl Reduction for TwoSumMinCutReduction {
    type Instance = TwoSumInstance;
    type Artifact = TwoSumArtifact;
    type Answer = TwoSumAnswer;

    fn name(&self) -> &'static str {
        "twosum-mincut"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        TwoSumInstance::sample(self.t, self.l, self.alpha, self.intersecting, rng)
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        assert!(inst.promise_holds());
        let (x, y) = inst.concatenated();
        let g = GxyGraph::build(&x, &y);
        let k = g.verify_lemma_5_5();
        TwoSumArtifact {
            inst: inst.clone(),
            m: g.graph().num_edges() as u64,
            k,
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        use rand::SeedableRng;
        let mut queries = 0u64;
        let mut algo_rng = ChaCha8Rng::seed_from_u64(self.algo_seed);
        let result = solve_twosum_via_mincut(&artifact.inst, |oracle| {
            let res = global_min_cut_local(
                oracle,
                self.eps,
                SearchVariant::Modified { beta0: self.beta0 },
                VerifyGuessConfig::default(),
                &mut algo_rng,
            );
            queries = res.total_queries;
            res.estimate
        });
        TwoSumAnswer {
            queries,
            result,
            m: artifact.m,
            k: artifact.k,
        }
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        let err = (answer.result.disj_estimate - answer.result.disj_truth).abs();
        TrialOutcome::new(err < 0.5, 0)
            .with_aux("queries", answer.queries as f64)
            .with_aux("bits", answer.result.bits_exchanged as f64)
            .with_aux("twosum_err", err)
            .with_aux("lb_bits", inst.lower_bound_bits() as f64)
            .with_aux("m", answer.m as f64)
            .with_aux("k", answer.k as f64)
    }

    fn resources(&self, _artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: 0,
            cut_queries: 0,
            // Lemma 5.5 verification is a real max-flow computation.
            flow_solves: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn foreach_reduction_replays_the_retired_loop_byte_for_byte() {
        // Seed 1 / 30 trials / exact oracle was the retired
        // `run_foreach_index_game` test; same stream, same report.
        let rdx = ForEachIndexReduction {
            params: ForEachParams::new(4, 1, 2),
            oracle: OracleSpec::Exact,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = run_reduction_game(&rdx, 30, &mut rng);
        assert_eq!(report.success_rate(), 1.0);
        assert_eq!(report.mean_queries, 4.0);
    }

    #[test]
    fn foreach_reduction_collapses_under_excessive_noise() {
        let rdx = ForEachIndexReduction {
            params: ForEachParams::new(4, 1, 2),
            oracle: OracleSpec::Noisy {
                err: 0.5,
                model: NoiseModel::SignedRelative,
            },
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = run_reduction_game(&rdx, 200, &mut rng);
        let rate = report.success_rate();
        assert!(rate < 0.75, "noise ε = 0.5 still decodes at rate {rate}");
    }

    #[test]
    fn forall_reduction_succeeds_with_exact_oracle() {
        let rdx = ForAllGapHammingReduction {
            params: ForAllParams::new(1, 8, 2),
            half_gap: 2,
            search: SubsetSearch::Exact,
            oracle: OracleSpec::Exact,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = run_reduction_game(&rdx, 20, &mut rng);
        assert!(
            report.success_rate() >= 0.8,
            "exact oracle succeeds only at {}",
            report.success_rate()
        );
        assert_eq!(report.mean_queries, 70.0); // C(8,4)
    }

    #[test]
    fn protocol_reduction_bits_sit_above_the_floor() {
        let params = ForEachParams::new(4, 1, 2);
        let rdx = ForEachProtocolReduction {
            params,
            sketcher: crate::protocol::ExactEdgeListSketcher,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let inst = rdx.sample(0, &mut rng);
        let art = rdx.encode(&inst);
        let ans = rdx.decode(&art, &mut rng);
        assert!(rdx.verify(&inst, &ans).success);
        assert!(rdx.resources(&art).wire_bits >= params.lower_bound_bits() as u64);
    }

    #[test]
    fn twosum_reduction_recovers_disjointness() {
        let rdx = TwoSumMinCutReduction {
            t: 4,
            l: 64,
            alpha: 2,
            intersecting: 2,
            eps: 0.2,
            beta0: 0.25,
            algo_seed: 13,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let inst = rdx.sample(0, &mut rng);
        let art = rdx.encode(&inst);
        let ans = rdx.decode(&art, &mut rng);
        let outcome = rdx.verify(&inst, &ans);
        assert!(outcome.success, "2-SUM error too large");
        assert!(ans.queries > 0);
        assert!(art.m > 0 && art.k > 0);
    }
}
