//! The for-each cut sketch lower bound construction (Section 3,
//! Theorem 1.1 of the paper).
//!
//! Alice holds a random sign string `s`. The construction partitions
//! `n` nodes into `ℓ = n/k` groups `V_1, …, V_ℓ` of `k = √β/ε` nodes
//! and encodes a slice of `s` into the complete bipartite graph between
//! each consecutive pair `(V_i, V_{i+1})`:
//!
//! * each side is split into `√β` blocks of `1/ε` nodes
//!   (`L_1, …, L_{√β}` and `R_1, …, R_{√β}`);
//! * the `(1/ε − 1)²` signs assigned to a block pair `(L_i, R_j)` are
//!   spread across all `1/ε²` forward edges at once via the Lemma 3.2
//!   matrix: forward weights are `w = ε·x + 2c₁ln(1/ε)·1` with
//!   `x = Σ_t z_t M_t` (clamped encoding; if `‖x‖_∞` exceeds the
//!   Chernoff bound `c₁ln(1/ε)/ε`, the block is marked failed and set
//!   to the constant weight);
//! * every backward edge (right to left) has weight `1/β`, making the
//!   graph `O(β·log(1/ε))`-balanced edge-by-edge.
//!
//! Bob recovers sign `t` of block `(L_i, R_j)` with **4 cut queries**:
//! the Lemma 3.2 row splits the blocks into halves `(A, Ā)` and
//! `(B, B̄)`, and `⟨w, M_t⟩ = w(A,B) − w(Ā,B) − w(A,B̄) + w(Ā,B̄)`
//! where each term comes from one directed cut query after subtracting
//! the (fixed, publicly computable) backward weight. On exact oracles
//! the decoded value is `±1/ε`; an oracle with relative error
//! `O(ε/ln(1/ε))` still leaves the sign readable — any sketch *smaller*
//! than Ω̃(n√β/ε) bits cannot deliver that accuracy on all 4 queries,
//! which is the theorem.

use dircut_graph::{DiGraph, NodeId, NodeSet};
use dircut_linalg::Lemma32Matrix;
use dircut_sketch::CutOracle;

/// Parameters of the Section 3 construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForEachParams {
    /// `1/ε`; must be a power of two ≥ 2.
    pub inv_eps: usize,
    /// `√β ≥ 1` (so `β = sqrt_beta²`).
    pub sqrt_beta: usize,
    /// Number of node groups `ℓ ≥ 2` (the paper's `n/k`).
    pub ell: usize,
    /// The Chernoff clamp constant `c₁`.
    pub c1: f64,
}

impl ForEachParams {
    /// Creates parameters, validating ranges.
    ///
    /// # Panics
    /// Panics if `inv_eps` is not a power of two ≥ 2, `sqrt_beta == 0`,
    /// or `ell < 2`.
    #[must_use]
    pub fn new(inv_eps: usize, sqrt_beta: usize, ell: usize) -> Self {
        assert!(
            inv_eps >= 2 && inv_eps.is_power_of_two(),
            "1/ε must be a power of two ≥ 2"
        );
        assert!(sqrt_beta >= 1, "√β must be ≥ 1");
        assert!(ell >= 2, "need at least two groups");
        Self {
            inv_eps,
            sqrt_beta,
            ell,
            c1: 2.0,
        }
    }

    /// ε as a float.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        1.0 / self.inv_eps as f64
    }

    /// β as a float.
    #[must_use]
    pub fn beta(&self) -> f64 {
        (self.sqrt_beta * self.sqrt_beta) as f64
    }

    /// Nodes per group: `k = √β/ε`.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.sqrt_beta * self.inv_eps
    }

    /// Total nodes `n = ℓ·k`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.ell * self.group_size()
    }

    /// Sign bits per block pair: `(1/ε − 1)²`.
    #[must_use]
    pub fn bits_per_block(&self) -> usize {
        (self.inv_eps - 1) * (self.inv_eps - 1)
    }

    /// Block pairs per group pair: `β`.
    #[must_use]
    pub fn blocks_per_pair(&self) -> usize {
        self.sqrt_beta * self.sqrt_beta
    }

    /// Total sign bits the construction encodes:
    /// `(ℓ−1)·β·(1/ε−1)² = Ω(n√β/ε)`.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        (self.ell - 1) * self.blocks_per_pair() * self.bits_per_block()
    }

    /// The constant weight shift `2c₁·ln(1/ε)` added to every forward
    /// edge.
    #[must_use]
    pub fn shift(&self) -> f64 {
        2.0 * self.c1 * (self.inv_eps as f64).ln()
    }

    /// The Chernoff clamp `c₁·ln(1/ε)/ε` on `‖x‖_∞`.
    #[must_use]
    pub fn clamp(&self) -> f64 {
        self.c1 * (self.inv_eps as f64).ln() * self.inv_eps as f64
    }

    /// The information-theoretic size lower bound the construction
    /// certifies, in bits (Theorem 1.1 with constant 1): `n·√β/ε`.
    #[must_use]
    pub fn lower_bound_bits(&self) -> usize {
        self.total_bits()
    }

    /// The balance certificate the construction promises:
    /// `O(β·log(1/ε))` — concretely `3c₁·ln(1/ε)·β`.
    #[must_use]
    pub fn balance_bound(&self) -> f64 {
        3.0 * self.c1 * (self.inv_eps as f64).ln() * self.beta()
    }

    /// Node index of position `a` of block `b` of group `g`.
    #[must_use]
    pub fn node(&self, g: usize, b: usize, a: usize) -> NodeId {
        debug_assert!(g < self.ell && b < self.sqrt_beta && a < self.inv_eps);
        NodeId::new(g * self.group_size() + b * self.inv_eps + a)
    }

    /// Splits a global bit index `q` into
    /// `(group pair i, left block, right block, bit within block)`.
    ///
    /// # Panics
    /// Panics if `q ≥ total_bits()`.
    #[must_use]
    pub fn locate_bit(&self, q: usize) -> BitLocation {
        assert!(
            q < self.total_bits(),
            "bit index {q} out of range {}",
            self.total_bits()
        );
        let per_pair = self.blocks_per_pair() * self.bits_per_block();
        let pair = q / per_pair;
        let rem = q % per_pair;
        let block = rem / self.bits_per_block();
        let bit = rem % self.bits_per_block();
        BitLocation {
            pair,
            left_block: block / self.sqrt_beta,
            right_block: block % self.sqrt_beta,
            bit,
        }
    }
}

/// Where a sign bit lives inside the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitLocation {
    /// Group pair index `i` (encoded between `V_i` and `V_{i+1}`).
    pub pair: usize,
    /// Left block index within `V_i`.
    pub left_block: usize,
    /// Right block index within `V_{i+1}`.
    pub right_block: usize,
    /// Bit index within the block pair's Lemma 3.2 matrix.
    pub bit: usize,
}

/// Alice's side: the string encoded as a β-balanced digraph.
#[derive(Debug, Clone)]
pub struct ForEachEncoding {
    params: ForEachParams,
    graph: DiGraph,
    failed_blocks: Vec<bool>,
}

impl ForEachEncoding {
    /// Encodes sign string `s` (length [`ForEachParams::total_bits`])
    /// into the gadget graph.
    ///
    /// # Panics
    /// Panics on length mismatch or signs outside `{−1, 1}`.
    #[must_use]
    pub fn encode(params: ForEachParams, s: &[i8]) -> Self {
        assert_eq!(s.len(), params.total_bits(), "sign string length mismatch");
        assert!(s.iter().all(|&b| b == 1 || b == -1), "signs must be ±1");
        let d = params.inv_eps;
        let m = Lemma32Matrix::new(d);
        let eps = params.epsilon();
        let shift = params.shift();
        let clamp = params.clamp();
        let mut g = DiGraph::with_edge_capacity(
            params.num_nodes(),
            2 * (params.ell - 1) * params.group_size() * params.group_size(),
        );
        let mut failed_blocks = vec![false; (params.ell - 1) * params.blocks_per_pair()];

        let bits_per_block = params.bits_per_block();
        for pair in 0..params.ell - 1 {
            for lb in 0..params.sqrt_beta {
                for rb in 0..params.sqrt_beta {
                    let block = lb * params.sqrt_beta + rb;
                    let start = (pair * params.blocks_per_pair() + block) * bits_per_block;
                    let z = &s[start..start + bits_per_block];
                    let x = m.encode(z);
                    let failed = x.iter().any(|v| v.abs() > clamp);
                    failed_blocks[pair * params.blocks_per_pair() + block] = failed;
                    for a in 0..d {
                        for b in 0..d {
                            let w = if failed {
                                shift
                            } else {
                                eps * x[a * d + b] + shift
                            };
                            debug_assert!(w > 0.0, "forward weight must stay positive");
                            g.add_edge(params.node(pair, lb, a), params.node(pair + 1, rb, b), w);
                        }
                    }
                }
            }
            // Backward edges: complete V_{i+1} → V_i at weight 1/β.
            let back = 1.0 / params.beta();
            for u in 0..params.group_size() {
                for v in 0..params.group_size() {
                    let from = NodeId::new((pair + 1) * params.group_size() + u);
                    let to = NodeId::new(pair * params.group_size() + v);
                    g.add_edge(from, to, back);
                }
            }
        }
        Self {
            params,
            graph: g,
            failed_blocks,
        }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &ForEachParams {
        &self.params
    }

    /// The encoded graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Whether the Chernoff clamp fired for the block containing `q`
    /// (in which case the bit is unrecoverable by design; the paper
    /// charges this to the 1/100 failure budget).
    #[must_use]
    pub fn block_failed(&self, q: usize) -> bool {
        let loc = self.params.locate_bit(q);
        let block = loc.left_block * self.params.sqrt_beta + loc.right_block;
        self.failed_blocks[loc.pair * self.params.blocks_per_pair() + block]
    }

    /// Fraction of blocks whose encoding failed.
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        let failed = self.failed_blocks.iter().filter(|&&f| f).count();
        failed as f64 / self.failed_blocks.len() as f64
    }
}

/// The four directed cut queries Bob issues for one sign bit, plus the
/// bookkeeping needed to turn their answers into `⟨w, M_t⟩`.
#[derive(Debug, Clone)]
pub struct BitQueries {
    /// The four query sets, in the order `(A,B), (Ā,B), (A,B̄), (Ā,B̄)`.
    pub sets: [NodeSet; 4],
    /// The signs with which the four estimates are combined.
    pub signs: [f64; 4],
}

/// Bob's side: decodes bits from any [`CutOracle`] over the gadget.
#[derive(Debug, Clone, Copy)]
pub struct ForEachDecoder {
    params: ForEachParams,
}

/// Result of decoding one bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedBit {
    /// The recovered sign.
    pub sign: i8,
    /// The raw decoded value `⟨w, M_t⟩` (≈ `±1/ε` when clean).
    pub raw: f64,
}

impl ForEachDecoder {
    /// A decoder for the given construction parameters (public
    /// knowledge shared by Alice and Bob).
    #[must_use]
    pub fn new(params: ForEachParams) -> Self {
        Self { params }
    }

    /// The fixed (string-independent) backward weight crossing the cut
    /// `S`: every backward edge has weight `1/β` and runs from
    /// `V_{j+1}` to `V_j`, so the total is
    /// `Σ_j |S ∩ V_{j+1}|·|V_j ∖ S| / β`. Bob computes this from the
    /// public layout alone.
    #[must_use]
    pub fn fixed_backward_weight(&self, s: &NodeSet) -> f64 {
        let k = self.params.group_size();
        let mut total_pairs = 0usize;
        for j in 0..self.params.ell - 1 {
            let mut in_next = 0usize;
            let mut out_cur = 0usize;
            for u in 0..k {
                if s.contains(NodeId::new((j + 1) * k + u)) {
                    in_next += 1;
                }
                if !s.contains(NodeId::new(j * k + u)) {
                    out_cur += 1;
                }
            }
            total_pairs += in_next * out_cur;
        }
        total_pairs as f64 / self.params.beta()
    }

    /// Builds the four cut queries for global bit index `q`.
    #[must_use]
    pub fn queries_for_bit(&self, q: usize) -> BitQueries {
        let p = &self.params;
        let loc = p.locate_bit(q);
        let m = Lemma32Matrix::new(p.inv_eps);
        let split = m.sign_split(loc.bit);
        let n = p.num_nodes();
        let k = p.group_size();

        let build = |left_half: &[usize], right_half: &[usize]| -> NodeSet {
            let mut s = NodeSet::empty(n);
            // A' ⊂ L_{left_block} of V_pair.
            for &a in left_half {
                s.insert(p.node(loc.pair, loc.left_block, a));
            }
            // (V_{pair+1} ∖ B'): everything in the next group except the
            // chosen right half of R_{right_block}.
            let mut excluded = NodeSet::empty(n);
            for &b in right_half {
                excluded.insert(p.node(loc.pair + 1, loc.right_block, b));
            }
            for u in 0..k {
                let v = NodeId::new((loc.pair + 1) * k + u);
                if !excluded.contains(v) {
                    s.insert(v);
                }
            }
            // All later groups V_{pair+2}, …, V_ℓ.
            for g in loc.pair + 2..p.ell {
                for u in 0..k {
                    s.insert(NodeId::new(g * k + u));
                }
            }
            s
        };

        BitQueries {
            sets: [
                build(&split.a, &split.b),
                build(&split.a_bar, &split.b),
                build(&split.a, &split.b_bar),
                build(&split.a_bar, &split.b_bar),
            ],
            signs: [1.0, -1.0, -1.0, 1.0],
        }
    }

    /// Estimates the forward weight `w(A', B')` for one query set by
    /// subtracting the fixed backward weight from the oracle's answer.
    #[must_use]
    pub fn forward_estimate<O: CutOracle>(&self, oracle: &O, s: &NodeSet) -> f64 {
        oracle.cut_out_estimate(s) - self.fixed_backward_weight(s)
    }

    /// Decodes bit `q` with 4 cut queries against `oracle`.
    #[must_use]
    pub fn decode_bit<O: CutOracle>(&self, oracle: &O, q: usize) -> DecodedBit {
        let queries = self.queries_for_bit(q);
        let mut raw = 0.0;
        for (set, sign) in queries.sets.iter().zip(queries.signs) {
            raw += sign * self.forward_estimate(oracle, set);
        }
        DecodedBit {
            sign: if raw >= 0.0 { 1 } else { -1 },
            raw,
        }
    }

    /// Decodes every bit; convenience for whole-string experiments.
    ///
    /// Issues the queries through [`CutOracle::cut_out_estimates`] in
    /// blocks of `BLOCK` bits (4·`BLOCK` cut sets), so oracles with a
    /// batched kernel answer 64 queries per edge pass instead of one.
    /// The per-bit combination `Σ sign·(estimate − backward)` runs in
    /// the same order as [`decode_bit`], so the decoded signs (and raw
    /// values) are bit-identical to the query-at-a-time path.
    ///
    /// [`decode_bit`]: ForEachDecoder::decode_bit
    #[must_use]
    pub fn decode_all<O: CutOracle>(&self, oracle: &O) -> Vec<i8> {
        const BLOCK: usize = 1024;
        let total = self.params.total_bits();
        let mut signs = Vec::with_capacity(total);
        let mut start = 0;
        while start < total {
            let end = total.min(start + BLOCK);
            let queries: Vec<BitQueries> = (start..end).map(|q| self.queries_for_bit(q)).collect();
            let sets: Vec<NodeSet> = queries
                .iter()
                .flat_map(|bq| bq.sets.iter().cloned())
                .collect();
            let estimates = oracle.cut_out_estimates(&sets);
            for (i, bq) in queries.iter().enumerate() {
                let mut raw = 0.0;
                for (j, (set, sign)) in bq.sets.iter().zip(bq.signs).enumerate() {
                    raw += sign * (estimates[4 * i + j] - self.fixed_backward_weight(set));
                }
                signs.push(if raw >= 0.0 { 1 } else { -1 });
            }
            start = end;
        }
        signs
    }
}

/// The Figure 1 decomposition of one decoder cut: forward weight,
/// number of crossing backward edges, and the total cut value —
/// executable documentation of the cut-structure claims in the proofs
/// of Lemma 3.3 and Theorem 1.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutComposition {
    /// Forward weight `w(A, B)` crossing the cut.
    pub forward_weight: f64,
    /// Number of backward edges crossing the cut (each `1/β`).
    pub backward_edges: usize,
    /// The full directed cut value `w(S, V∖S)`.
    pub cut_value: f64,
}

/// Computes the composition of the first query cut of bit `q` on a
/// concrete encoding.
#[must_use]
pub fn cut_composition(enc: &ForEachEncoding, q: usize) -> CutComposition {
    let dec = ForEachDecoder::new(*enc.params());
    let queries = dec.queries_for_bit(q);
    let s = &queries.sets[0];
    let cut_value = enc.graph().cut_out(s);
    let backward = dec.fixed_backward_weight(s);
    CutComposition {
        forward_weight: cut_value - backward,
        backward_edges: (backward * enc.params().beta()).round() as usize,
        cut_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::balance::edgewise_balance_bound;
    use dircut_graph::connectivity::is_strongly_connected;
    use dircut_sketch::ExactOracle;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_signs(n: usize, seed: u64) -> Vec<i8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect()
    }

    #[test]
    fn parameter_arithmetic() {
        let p = ForEachParams::new(4, 2, 3);
        assert_eq!(p.epsilon(), 0.25);
        assert_eq!(p.beta(), 4.0);
        assert_eq!(p.group_size(), 8);
        assert_eq!(p.num_nodes(), 24);
        assert_eq!(p.bits_per_block(), 9);
        assert_eq!(p.blocks_per_pair(), 4);
        assert_eq!(p.total_bits(), 2 * 4 * 9);
    }

    #[test]
    fn locate_bit_roundtrip() {
        let p = ForEachParams::new(4, 2, 3);
        let mut seen = std::collections::HashSet::new();
        for q in 0..p.total_bits() {
            let loc = p.locate_bit(q);
            assert!(loc.pair < p.ell - 1);
            assert!(loc.left_block < p.sqrt_beta);
            assert!(loc.right_block < p.sqrt_beta);
            assert!(loc.bit < p.bits_per_block());
            seen.insert((loc.pair, loc.left_block, loc.right_block, loc.bit));
        }
        assert_eq!(seen.len(), p.total_bits());
    }

    #[test]
    fn encoding_builds_expected_graph_shape() {
        let p = ForEachParams::new(4, 1, 2);
        let s = random_signs(p.total_bits(), 0);
        let enc = ForEachEncoding::encode(p, &s);
        let g = enc.graph();
        assert_eq!(g.num_nodes(), 8);
        // 16 forward + 16 backward edges.
        assert_eq!(g.num_edges(), 32);
        assert!(is_strongly_connected(g));
    }

    #[test]
    fn construction_is_balanced_as_promised() {
        let p = ForEachParams::new(8, 2, 2);
        let s = random_signs(p.total_bits(), 1);
        let enc = ForEachEncoding::encode(p, &s);
        let bound = edgewise_balance_bound(enc.graph()).expect("reverse edges exist");
        assert!(
            bound <= p.balance_bound() + 1e-9,
            "edgewise bound {bound} exceeds promised {}",
            p.balance_bound()
        );
    }

    #[test]
    fn forward_weights_are_positive_and_bounded() {
        let p = ForEachParams::new(8, 1, 2);
        let s = random_signs(p.total_bits(), 2);
        let enc = ForEachEncoding::encode(p, &s);
        let lo = p.c1 * (p.inv_eps as f64).ln();
        let hi = 3.0 * p.c1 * (p.inv_eps as f64).ln();
        for e in enc.graph().edges() {
            if e.weight > 2.0 / p.beta() {
                assert!(
                    e.weight >= lo - 1e-9 && e.weight <= hi + 1e-9,
                    "weight {}",
                    e.weight
                );
            }
        }
    }

    #[test]
    fn exact_oracle_recovers_every_bit() {
        let p = ForEachParams::new(4, 2, 2);
        let s = random_signs(p.total_bits(), 3);
        let enc = ForEachEncoding::encode(p, &s);
        assert_eq!(enc.failure_rate(), 0.0, "clamp fired at tiny scale");
        let oracle = ExactOracle::new(enc.graph());
        let dec = ForEachDecoder::new(p);
        for (q, &expected) in s.iter().enumerate() {
            let got = dec.decode_bit(&oracle, q);
            assert_eq!(got.sign, expected, "bit {q}: raw {}", got.raw);
            // Raw value should be exactly ±1/ε.
            assert!(
                (got.raw.abs() - p.inv_eps as f64).abs() < 1e-6,
                "bit {q}: raw {} expected ±{}",
                got.raw,
                p.inv_eps
            );
        }
    }

    #[test]
    fn exact_oracle_recovers_bits_in_longer_chains() {
        let p = ForEachParams::new(4, 1, 4);
        let s = random_signs(p.total_bits(), 4);
        let enc = ForEachEncoding::encode(p, &s);
        let oracle = ExactOracle::new(enc.graph());
        let dec = ForEachDecoder::new(p);
        assert_eq!(dec.decode_all(&oracle), s);
    }

    #[test]
    fn fixed_backward_weight_matches_real_graph() {
        // Replace all forward weights by the same construction with
        // zero information: cut − fixed_backward must equal the true
        // forward crossing weight.
        let p = ForEachParams::new(4, 2, 3);
        let s = random_signs(p.total_bits(), 5);
        let enc = ForEachEncoding::encode(p, &s);
        let dec = ForEachDecoder::new(p);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..20 {
            let q = rng.gen_range(0..p.total_bits());
            for set in dec.queries_for_bit(q).sets {
                let true_backward: f64 = enc
                    .graph()
                    .edges()
                    .iter()
                    .filter(|e| {
                        // backward edges have weight 1/β = 0.25 here
                        e.weight == 1.0 / p.beta() && set.contains(e.from) && !set.contains(e.to)
                    })
                    .map(|e| e.weight)
                    .sum();
                assert!(
                    (dec.fixed_backward_weight(&set) - true_backward).abs() < 1e-9,
                    "layout formula disagrees with graph"
                );
            }
        }
    }

    #[test]
    fn figure1_cut_composition() {
        // F1: forward part Θ(log(1/ε)/ε²), backward edge count
        // (k − 1/(2ε))² + extra chain terms, total Θ(log(1/ε)/ε²).
        let p = ForEachParams::new(8, 2, 2);
        let s = random_signs(p.total_bits(), 7);
        let enc = ForEachEncoding::encode(p, &s);
        let comp = cut_composition(&enc, 0);
        let k = p.group_size() as f64;
        let half = p.inv_eps as f64 / 2.0;
        // |A| = |B| = 1/(2ε) = 4; forward edges |A|·|B| = 16 with
        // weights around the shift 2c₁ln(1/ε).
        let expected_fwd = half * half * p.shift();
        assert!(
            (comp.forward_weight - expected_fwd).abs() < 0.5 * expected_fwd,
            "forward {} vs expected ≈ {expected_fwd}",
            comp.forward_weight
        );
        // Backward crossing edges: (k − 1/(2ε))·(k − 1/(2ε)) for pair 0
        // (no earlier group here).
        let expected_back = ((k - half) * (k - half)) as usize;
        assert_eq!(comp.backward_edges, expected_back);
        assert!(comp.cut_value > comp.forward_weight);
    }

    #[test]
    fn query_sets_have_the_proof_shape() {
        let p = ForEachParams::new(4, 2, 3);
        let dec = ForEachDecoder::new(p);
        // A bit in pair 1 (between V_1 and V_2): S must contain half of
        // one block of V_1, all of V_2 minus half a block, and nothing
        // of V_0.
        let q = p.blocks_per_pair() * p.bits_per_block(); // first bit of pair 1
        let loc = p.locate_bit(q);
        assert_eq!(loc.pair, 1);
        let sets = dec.queries_for_bit(q).sets;
        for s in &sets {
            let k = p.group_size();
            let in_v0 = (0..k).filter(|&u| s.contains(NodeId::new(u))).count();
            let in_v1 = (0..k).filter(|&u| s.contains(NodeId::new(k + u))).count();
            let in_v2 = (0..k)
                .filter(|&u| s.contains(NodeId::new(2 * k + u)))
                .count();
            assert_eq!(in_v0, 0);
            assert_eq!(in_v1, p.inv_eps / 2);
            assert_eq!(in_v2, k - p.inv_eps / 2);
        }
    }
}
