//! The local-query min-cut lower bound (Section 5, Theorem 1.3 of the
//! paper): the graph construction `G_{x,y}` (§5.2), the Lemma 5.5
//! min-cut identity, the communication-simulated oracle, and the
//! reduction from 2-SUM (§5.3).
//!
//! Given `x, y ∈ {0,1}^N` with `N = ℓ²`, the vertex set is
//! `A ∪ A′ ∪ B ∪ B′` with `|A| = |A′| = |B| = |B′| = ℓ` and, for every
//! `(i, j)`:
//!
//! ```text
//! (a_i, b′_j), (b_i, a′_j) ∈ E   if x_{i,j} = y_{i,j} = 1,
//! (a_i, a′_j), (b_i, b′_j) ∈ E   otherwise.
//! ```
//!
//! Every vertex has degree exactly `ℓ = √N`; intersections of `x` and
//! `y` create the only edges between the `{A, A′}` side and the
//! `{B, B′}` side. Lemma 5.5: when `√N ≥ 3·INT(x,y)`, the graph is
//! `2γ`-connected (γ = INT) and `MINCUT = 2·INT(x,y)` — both claims are
//! *verified here by max-flow* rather than trusted.
//!
//! The oracle simulation (Lemma 5.6): Alice holds `x`, Bob holds `y`;
//! degree queries are free (everything has degree `√N`), while neighbor
//! and adjacency queries cost **2 bits** (one exchange of
//! `x_{i,j}, y_{i,j}`). Running any local-query min-cut algorithm
//! against [`GxyOracle`] therefore yields a 2-SUM protocol whose
//! communication is twice the query count — which is how Theorem 1.3
//! turns the `Ω(tL/α)` bound of Theorem 5.4 into
//! `Ω(min{m, m/(ε²k)})` queries.

use dircut_comm::twosum::{int, TwoSumInstance};
use dircut_graph::flow::unit_network_from_ungraph;
use dircut_graph::mincut::min_cut_unweighted;
use dircut_graph::{NodeId, NodeSet, UnGraph};
use dircut_localquery::GraphOracle;
use std::cell::Cell;

/// Which quarter of `G_{x,y}` a node lies in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `a_0, …, a_{ℓ−1}`.
    A,
    /// `a′_0, …`.
    APrime,
    /// `b_0, …`.
    B,
    /// `b′_0, …`.
    BPrime,
}

/// The §5.2 graph construction.
#[derive(Debug, Clone)]
pub struct GxyGraph {
    ell: usize,
    graph: UnGraph,
    gamma: usize,
}

impl GxyGraph {
    /// Builds `G_{x,y}` from two strings of square length `N = ℓ²`.
    ///
    /// Edges are inserted in `(i, j)` row-major order so that the
    /// `j`-th neighbor of `a_i` (and `b_i`) is its partner for column
    /// `j`, and the `i`-th neighbor of `a′_j` (and `b′_j`) is its
    /// partner for row `i` — the ordering contract of Lemma 5.6.
    ///
    /// # Panics
    /// Panics if `x.len() != y.len()` or the length is not a perfect
    /// square.
    #[must_use]
    pub fn build(x: &[bool], y: &[bool]) -> Self {
        assert_eq!(x.len(), y.len(), "string length mismatch");
        let n = x.len();
        let ell = (n as f64).sqrt().round() as usize;
        assert_eq!(ell * ell, n, "string length {n} is not a perfect square");
        let mut g = UnGraph::new(4 * ell);
        let gamma = int(x, y);
        for i in 0..ell {
            for j in 0..ell {
                let idx = i * ell + j;
                if x[idx] && y[idx] {
                    g.add_edge(Self::a_static(ell, i), Self::b_prime_static(ell, j));
                    g.add_edge(Self::b_static(ell, i), Self::a_prime_static(ell, j));
                } else {
                    g.add_edge(Self::a_static(ell, i), Self::a_prime_static(ell, j));
                    g.add_edge(Self::b_static(ell, i), Self::b_prime_static(ell, j));
                }
            }
        }
        Self {
            ell,
            graph: g,
            gamma,
        }
    }

    fn a_static(ell: usize, i: usize) -> NodeId {
        debug_assert!(i < ell);
        NodeId::new(i)
    }
    fn a_prime_static(ell: usize, j: usize) -> NodeId {
        debug_assert!(j < ell);
        NodeId::new(ell + j)
    }
    fn b_static(ell: usize, i: usize) -> NodeId {
        debug_assert!(i < ell);
        NodeId::new(2 * ell + i)
    }
    fn b_prime_static(ell: usize, j: usize) -> NodeId {
        debug_assert!(j < ell);
        NodeId::new(3 * ell + j)
    }

    /// The node `a_i`.
    #[must_use]
    pub fn a(&self, i: usize) -> NodeId {
        Self::a_static(self.ell, i)
    }
    /// The node `a′_j`.
    #[must_use]
    pub fn a_prime(&self, j: usize) -> NodeId {
        Self::a_prime_static(self.ell, j)
    }
    /// The node `b_i`.
    #[must_use]
    pub fn b(&self, i: usize) -> NodeId {
        Self::b_static(self.ell, i)
    }
    /// The node `b′_j`.
    #[must_use]
    pub fn b_prime(&self, j: usize) -> NodeId {
        Self::b_prime_static(self.ell, j)
    }

    /// Which region a node lies in.
    #[must_use]
    pub fn region(&self, v: NodeId) -> Region {
        match v.index() / self.ell {
            0 => Region::A,
            1 => Region::APrime,
            2 => Region::B,
            _ => Region::BPrime,
        }
    }

    /// The side length `ℓ = √N`.
    #[must_use]
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// The number of intersections `γ = INT(x, y)`.
    #[must_use]
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// The underlying undirected graph.
    #[must_use]
    pub fn graph(&self) -> &UnGraph {
        &self.graph
    }

    /// Whether the Lemma 5.5 premise `√N ≥ 3·INT(x,y)` holds.
    #[must_use]
    pub fn premise_holds(&self) -> bool {
        self.ell >= 3 * self.gamma
    }

    /// The natural cut `(A ∪ A′, B ∪ B′)` whose size is `2γ`.
    #[must_use]
    pub fn natural_cut(&self) -> NodeSet {
        NodeSet::from_indices(4 * self.ell, 0..2 * self.ell)
    }

    /// Verifies Lemma 5.5 with a real min-cut computation:
    /// `MINCUT(G_{x,y}) = 2·INT(x, y)` under the premise. Returns the
    /// computed min-cut for reporting.
    ///
    /// # Panics
    /// Panics if the premise holds but the identity fails — that would
    /// falsify the lemma.
    #[must_use]
    pub fn verify_lemma_5_5(&self) -> u64 {
        let mc = min_cut_unweighted(&self.graph);
        if self.premise_holds() {
            assert_eq!(
                mc,
                2 * self.gamma as u64,
                "Lemma 5.5 violated: mincut {mc} ≠ 2γ = {}",
                2 * self.gamma
            );
        }
        mc
    }

    /// Verifies the `2γ`-connectivity behind Figures 3–6: for the given
    /// node pairs there are at least `2γ` edge-disjoint paths (computed
    /// with exact integer max-flow). Returns the minimum flow seen.
    #[must_use]
    pub fn verify_edge_disjoint_paths(&self, pairs: &[(NodeId, NodeId)]) -> u64 {
        // One network serves every pair: `reset()` rewinds flow to the
        // capacity snapshot, so only the first pair pays for building
        // the adjacency structure.
        let mut net = unit_network_from_ungraph(&self.graph);
        let mut min_flow = u64::MAX;
        for &(u, v) in pairs {
            net.reset();
            min_flow = min_flow.min(net.max_flow(u, v));
        }
        min_flow
    }

    /// One representative pair for each of the four case classes of the
    /// Lemma 5.5 proof (Cases 1–4 / Figures 3–6).
    #[must_use]
    pub fn case_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let l = self.ell;
        vec![
            (self.a(0), self.a(l - 1)),       // Case 1: u, v ∈ A
            (self.a(0), self.a_prime(l - 1)), // Case 2: u ∈ A, v ∈ A′
            (self.a(0), self.b_prime(l - 1)), // Case 3: u ∈ A, v ∈ B′
            (self.a(0), self.b(l - 1)),       // Case 4: u ∈ A, v ∈ B
        ]
    }
}

/// The Lemma 5.6 oracle: answers local queries about `G_{x,y}` from
/// Alice's `x` and Bob's `y`, counting the bits they exchange.
///
/// * degree queries: 0 bits (every degree is `ℓ`),
/// * neighbor and adjacency queries: 2 bits (`x_{i,j}` and `y_{i,j}`).
#[derive(Debug)]
pub struct GxyOracle {
    x: Vec<bool>,
    y: Vec<bool>,
    ell: usize,
    bits: Cell<u64>,
}

impl GxyOracle {
    /// Creates the oracle from the two parties' strings.
    ///
    /// # Panics
    /// Panics if lengths mismatch or are not a perfect square.
    #[must_use]
    pub fn new(x: Vec<bool>, y: Vec<bool>) -> Self {
        assert_eq!(x.len(), y.len(), "string length mismatch");
        let ell = (x.len() as f64).sqrt().round() as usize;
        assert_eq!(ell * ell, x.len(), "string length is not a perfect square");
        Self {
            x,
            y,
            ell,
            bits: Cell::new(0),
        }
    }

    /// Bits of communication simulated so far.
    #[must_use]
    pub fn bits_exchanged(&self) -> u64 {
        self.bits.get()
    }

    /// Resets the bit counter.
    pub fn reset_bits(&self) {
        self.bits.set(0);
    }

    fn intersects(&self, i: usize, j: usize) -> bool {
        // One exchange of x_{i,j} and y_{i,j}: 2 bits.
        self.bits.set(self.bits.get() + 2);
        let idx = i * self.ell + j;
        self.x[idx] && self.y[idx]
    }
}

impl GraphOracle for GxyOracle {
    fn num_nodes(&self) -> usize {
        4 * self.ell
    }

    fn degree(&self, _u: NodeId) -> usize {
        // Free: every vertex of G_{x,y} has degree ℓ.
        self.ell
    }

    fn ith_neighbor(&self, u: NodeId, i: usize) -> Option<NodeId> {
        if i >= self.ell {
            return None;
        }
        let l = self.ell;
        let (region, idx) = (u.index() / l, u.index() % l);
        Some(match region {
            0 => {
                // a_idx: j-th neighbor is b′_j on intersection else a′_j.
                if self.intersects(idx, i) {
                    NodeId::new(3 * l + i)
                } else {
                    NodeId::new(l + i)
                }
            }
            1 => {
                // a′_idx: i-th neighbor is b_i on intersection else a_i.
                if self.intersects(i, idx) {
                    NodeId::new(2 * l + i)
                } else {
                    NodeId::new(i)
                }
            }
            2 => {
                // b_idx: j-th neighbor is a′_j on intersection else b′_j.
                if self.intersects(idx, i) {
                    NodeId::new(l + i)
                } else {
                    NodeId::new(3 * l + i)
                }
            }
            _ => {
                // b′_idx: i-th neighbor is a_i on intersection else b_i.
                if self.intersects(i, idx) {
                    NodeId::new(i)
                } else {
                    NodeId::new(2 * l + i)
                }
            }
        })
    }

    fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        let l = self.ell;
        let (ru, iu) = (u.index() / l, u.index() % l);
        let (rv, iv) = (v.index() / l, v.index() % l);
        // Normalize: left regions are A (0) and B (2); right are A′ (1)
        // and B′ (3). Edges only run left ↔ right.
        let (left, right) = match ((ru, iu), (rv, iv)) {
            ((0 | 2, _), (1 | 3, _)) => ((ru, iu), (rv, iv)),
            ((1 | 3, _), (0 | 2, _)) => ((rv, iv), (ru, iu)),
            _ => return false, // same side: never adjacent, 0 bits
        };
        let (i, j) = (left.1, right.1);
        let hit = self.intersects(i, j);
        match (left.0, right.0) {
            (0, 3) | (2, 1) => hit,  // a_i–b′_j and b_i–a′_j need intersection
            (0, 1) | (2, 3) => !hit, // a_i–a′_j and b_i–b′_j need non-intersection
            _ => unreachable!(),
        }
    }
}

/// Result of the Lemma 5.6 reduction algorithm ℬ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSumViaMinCut {
    /// ℬ's estimate of `Σ DISJ(Xⁱ, Yⁱ)`.
    pub disj_estimate: f64,
    /// The true value.
    pub disj_truth: f64,
    /// The min-cut estimate the inner algorithm returned.
    pub mincut_estimate: f64,
    /// Bits of communication the oracle simulation consumed.
    pub bits_exchanged: u64,
}

/// Runs the reduction: concatenates the 2-SUM instance into `(x, y)`,
/// builds the [`GxyOracle`], lets `algo` estimate the min-cut through
/// it, and converts back per step 3 of Lemma 5.6:
/// `t − 𝒜(G_{x,y}) / (2α)`.
///
/// # Panics
/// Panics if the concatenated length `t·L` is not a perfect square
/// (choose parameters accordingly) or the Lemma 5.5 premise fails.
pub fn solve_twosum_via_mincut<F>(inst: &TwoSumInstance, algo: F) -> TwoSumViaMinCut
where
    F: FnOnce(&GxyOracle) -> f64,
{
    let (x, y) = inst.concatenated();
    let n = x.len();
    let ell = (n as f64).sqrt().round() as usize;
    assert_eq!(ell * ell, n, "t·L = {n} must be a perfect square");
    let total_int = int(&x, &y);
    assert!(
        ell >= 3 * total_int,
        "Lemma 5.5 premise √N ≥ 3·INT violated: {ell} < 3·{total_int}"
    );

    let oracle = GxyOracle::new(x, y);
    let mincut_estimate = algo(&oracle);
    let t = inst.num_pairs() as f64;
    let alpha = inst.alpha as f64;
    TwoSumViaMinCut {
        disj_estimate: t - mincut_estimate / (2.0 * alpha),
        disj_truth: inst.disj_sum() as f64,
        mincut_estimate,
        bits_exchanged: oracle.bits_exchanged(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_comm::twosum::disj;
    use dircut_localquery::{AdjOracle, GraphOracle};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Random strings with exactly `gamma` intersections, length ℓ².
    fn planted(ell: usize, gamma: usize, seed: u64) -> (Vec<bool>, Vec<bool>) {
        use rand::seq::SliceRandom;
        let n = ell * ell;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = vec![false; n];
        let mut y = vec![false; n];
        let mut pos: Vec<usize> = (0..n).collect();
        pos.shuffle(&mut rng);
        for &p in &pos[..gamma] {
            x[p] = true;
            y[p] = true;
        }
        for &p in &pos[gamma..] {
            match rng.gen_range(0..4) {
                0 => x[p] = true,
                1 => y[p] = true,
                _ => {}
            }
        }
        (x, y)
    }

    #[test]
    fn every_vertex_has_degree_ell() {
        let (x, y) = planted(6, 2, 0);
        let g = GxyGraph::build(&x, &y);
        for v in g.graph().nodes() {
            assert_eq!(g.graph().degree(v), 6);
        }
        assert_eq!(g.graph().num_edges(), 2 * 36);
    }

    #[test]
    fn figure2_example_reconstructed_exactly() {
        // x = 000000100, y = 100010100 (row-major x_{i,j}, 1-indexed in
        // the paper): single intersection at x_{3,1} = y_{3,1} = 1.
        let x: Vec<bool> = "000000100".chars().map(|c| c == '1').collect();
        let y: Vec<bool> = "100010100".chars().map(|c| c == '1').collect();
        let g = GxyGraph::build(&x, &y);
        assert_eq!(g.gamma(), 1);
        // Red edges: (a_3, b′_1) and (b_3, a′_1) — 0-indexed (2, 0).
        assert!(g.graph().has_edge(g.a(2), g.b_prime(0)));
        assert!(g.graph().has_edge(g.b(2), g.a_prime(0)));
        // Their non-intersection counterparts must be absent.
        assert!(!g.graph().has_edge(g.a(2), g.a_prime(0)));
        assert!(!g.graph().has_edge(g.b(2), g.b_prime(0)));
        // A non-intersecting position keeps the green edges.
        assert!(g.graph().has_edge(g.a(0), g.a_prime(0)));
        assert!(g.graph().has_edge(g.b(0), g.b_prime(0)));
        // Min cut: 2γ = 2 (ℓ = 3 ≥ 3γ).
        assert_eq!(g.verify_lemma_5_5(), 2);
    }

    #[test]
    fn lemma_5_5_holds_on_random_instances() {
        for seed in 0..8u64 {
            let ell = 9;
            let gamma = (seed % 4) as usize; // 0..3, ℓ ≥ 3γ holds
            let (x, y) = planted(ell, gamma, seed);
            let g = GxyGraph::build(&x, &y);
            assert_eq!(g.gamma(), gamma);
            let mc = g.verify_lemma_5_5();
            assert_eq!(mc, 2 * gamma as u64, "seed {seed}");
        }
    }

    #[test]
    fn natural_cut_has_size_two_gamma() {
        let (x, y) = planted(9, 3, 42);
        let g = GxyGraph::build(&x, &y);
        assert_eq!(g.graph().cut_size(&g.natural_cut()), 2 * g.gamma());
    }

    #[test]
    fn figures_3_to_6_edge_disjoint_paths() {
        let (x, y) = planted(12, 3, 7);
        let g = GxyGraph::build(&x, &y);
        assert!(g.premise_holds());
        let min_flow = g.verify_edge_disjoint_paths(&g.case_pairs());
        assert!(
            min_flow >= 2 * g.gamma() as u64,
            "some pair has only {min_flow} < 2γ = {} disjoint paths",
            2 * g.gamma()
        );
    }

    #[test]
    fn oracle_agrees_with_concrete_graph() {
        let (x, y) = planted(7, 2, 3);
        let g = GxyGraph::build(&x, &y);
        let direct = AdjOracle::new(g.graph());
        let sim = GxyOracle::new(x, y);
        assert_eq!(sim.num_nodes(), direct.num_nodes());
        for v in 0..sim.num_nodes() {
            let v = NodeId::new(v);
            assert_eq!(sim.degree(v), direct.degree(v), "degree of {v}");
            for i in 0..=7 {
                assert_eq!(
                    sim.ith_neighbor(v, i),
                    direct.ith_neighbor(v, i),
                    "{v}[{i}]"
                );
            }
        }
        for u in 0..sim.num_nodes() {
            for w in 0..sim.num_nodes() {
                let (u, w) = (NodeId::new(u), NodeId::new(w));
                assert_eq!(sim.adjacent(u, w), direct.adjacent(u, w), "adj({u},{w})");
            }
        }
    }

    #[test]
    fn oracle_charges_two_bits_per_informative_query() {
        let (x, y) = planted(5, 1, 9);
        let sim = GxyOracle::new(x, y);
        assert_eq!(sim.bits_exchanged(), 0);
        let _ = sim.degree(NodeId::new(0));
        assert_eq!(sim.bits_exchanged(), 0, "degree queries are free");
        let _ = sim.ith_neighbor(NodeId::new(0), 2);
        assert_eq!(sim.bits_exchanged(), 2);
        let _ = sim.adjacent(NodeId::new(0), NodeId::new(6));
        assert_eq!(sim.bits_exchanged(), 4);
        // Same-side adjacency is answerable for free.
        let _ = sim.adjacent(NodeId::new(0), NodeId::new(1));
        assert_eq!(sim.bits_exchanged(), 4);
        // Out-of-range neighbor queries are free (degree is public).
        let _ = sim.ith_neighbor(NodeId::new(0), 99);
        assert_eq!(sim.bits_exchanged(), 4);
    }

    #[test]
    fn reduction_recovers_disjointness_count_with_exact_mincut() {
        // 2-SUM(t=4, L=100, α=2), 2 intersecting pairs; t·L = 400 = 20².
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let inst = TwoSumInstance::sample(4, 100, 2, 2, &mut rng);
        assert!(inst.promise_holds());
        let result = solve_twosum_via_mincut(&inst, |oracle| {
            // "Exact algorithm": read the whole graph through the oracle
            // and compute the true min-cut.
            let n = oracle.num_nodes();
            let mut g = UnGraph::new(n);
            for u in 0..n {
                let u = NodeId::new(u);
                for i in 0..oracle.degree(u) {
                    let v = oracle.ith_neighbor(u, i).unwrap();
                    g.add_edge(u, v);
                }
            }
            min_cut_unweighted(&g) as f64
        });
        assert_eq!(result.disj_estimate, result.disj_truth);
        assert_eq!(result.mincut_estimate, 2.0 * inst.int_sum() as f64);
        // Reading everything costs 2 bits per edge slot = 4m bits.
        assert_eq!(result.bits_exchanged, 2 * 2 * 2 * 400);
    }

    #[test]
    fn disj_helper_consistency() {
        // Sanity: DISJ counted by the instance matches direct evaluation.
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let inst = TwoSumInstance::sample(6, 12, 1, 2, &mut rng);
        let direct = inst
            .xs
            .iter()
            .zip(&inst.ys)
            .filter(|(a, b)| disj(a, b))
            .count();
        assert_eq!(direct, inst.disj_sum());
    }
}
