//! Property-based tests for the paper's constructions: decoding
//! round-trips, layout formulas, Lemma 5.5, and oracle equivalence —
//! over randomized parameters, not just hand-picked instances.

use dircut_core::forall::{ForAllDecoder, ForAllEncoding, ForAllParams, SubsetSearch};
use dircut_core::foreach::{ForEachDecoder, ForEachEncoding, ForEachParams};
use dircut_core::mincut_lb::{GxyGraph, GxyOracle};
use dircut_graph::{NodeId, NodeSet};
use dircut_localquery::GraphOracle;
use dircut_sketch::ExactOracle;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_foreach_params() -> impl Strategy<Value = ForEachParams> {
    (1u32..=3, 1usize..=2, 2usize..=3).prop_map(|(log_inv_eps, sqrt_beta, ell)| {
        ForEachParams::new(1 << log_inv_eps, sqrt_beta, ell)
    })
}

fn random_signs(n: usize, seed: u64) -> Vec<i8> {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn foreach_exact_roundtrip_over_random_parameters(params in arb_foreach_params(), seed in 0u64..10_000) {
        let s = random_signs(params.total_bits(), seed);
        let enc = ForEachEncoding::encode(params, &s);
        let oracle = ExactOracle::new(enc.graph());
        let dec = ForEachDecoder::new(params);
        // Sample a handful of bits rather than all (cost control).
        for q in (0..params.total_bits()).step_by(7) {
            if enc.block_failed(q) {
                continue;
            }
            prop_assert_eq!(dec.decode_bit(&oracle, q).sign, s[q], "bit {}", q);
        }
    }

    #[test]
    fn foreach_backward_formula_holds_for_arbitrary_sets(
        params in arb_foreach_params(),
        seed in 0u64..10_000,
        mask in any::<u64>(),
    ) {
        // The decoder's fixed-backward formula is a layout fact: it
        // must match the real graph for ANY node set, not just the
        // decoder's own queries.
        let s = random_signs(params.total_bits(), seed);
        let enc = ForEachEncoding::encode(params, &s);
        let n = params.num_nodes();
        let set = NodeSet::from_indices(n, (0..n).filter(|i| mask >> (i % 60) & 1 == 1));
        let dec = ForEachDecoder::new(params);
        let backward_truth: f64 = enc
            .graph()
            .edges()
            .iter()
            .filter(|e| {
                (e.weight - 1.0 / params.beta()).abs() < 1e-12
                    && set.contains(e.from)
                    && !set.contains(e.to)
            })
            .map(|e| e.weight)
            .sum();
        prop_assert!((dec.fixed_backward_weight(&set) - backward_truth).abs() < 1e-9);
    }

    #[test]
    fn foreach_queries_have_half_block_shape(params in arb_foreach_params(), qsel in any::<u64>()) {
        let dec = ForEachDecoder::new(params);
        let q = (qsel as usize) % params.total_bits();
        let loc = params.locate_bit(q);
        let k = params.group_size();
        for set in dec.queries_for_bit(q).sets {
            // |S ∩ V_pair| = 1/(2ε), |S ∩ V_{pair+1}| = k − 1/(2ε),
            // later groups fully inside, earlier fully outside.
            let count_in = |g: usize| {
                (0..k).filter(|&u| set.contains(NodeId::new(g * k + u))).count()
            };
            for g in 0..params.ell {
                let c = count_in(g);
                if g < loc.pair {
                    prop_assert_eq!(c, 0);
                } else if g == loc.pair {
                    prop_assert_eq!(c, params.inv_eps / 2);
                } else if g == loc.pair + 1 {
                    prop_assert_eq!(c, k - params.inv_eps / 2);
                } else {
                    prop_assert_eq!(c, k);
                }
            }
        }
    }

    #[test]
    fn forall_estimate_matches_direct_weight(
        beta in 1usize..=2,
        seed in 0u64..10_000,
        umask in any::<u64>(),
        tmask in any::<u64>(),
    ) {
        use rand::Rng;
        let params = ForAllParams::new(beta, 4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let strings: Vec<Vec<bool>> = (0..params.num_strings())
            .map(|_| (0..4).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let enc = ForAllEncoding::encode(params, &strings);
        let oracle = ExactOracle::new(enc.graph());
        let dec = ForAllDecoder::new(params, SubsetSearch::Exact);
        let k = params.group_size();
        let u_subset: Vec<usize> = (0..k).filter(|i| umask >> (i % 60) & 1 == 1).collect();
        let t: Vec<bool> = (0..4).map(|v| tmask >> v & 1 == 1).collect();
        let est = dec.estimate_w_u_t(&oracle, 0, &u_subset, 0, &t);
        let mut truth = 0.0;
        for &i in &u_subset {
            for (v, &bit) in t.iter().enumerate() {
                if bit {
                    truth += enc
                        .graph()
                        .pair_weight(params.left_node(0, i), params.cluster_node(1, 0, v));
                }
            }
        }
        prop_assert!((est - truth).abs() < 1e-9, "est {} vs {}", est, truth);
    }

    #[test]
    fn lemma_5_5_on_random_planted_instances(ell in 6usize..14, gamma_sel in 0usize..100, seed in 0u64..10_000) {
        use rand::seq::SliceRandom;
        use rand::Rng;
        let gamma = gamma_sel % (ell / 3 + 1);
        let n = ell * ell;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = vec![false; n];
        let mut y = vec![false; n];
        let mut pos: Vec<usize> = (0..n).collect();
        pos.shuffle(&mut rng);
        for &p in &pos[..gamma] {
            x[p] = true;
            y[p] = true;
        }
        for &p in &pos[gamma..] {
            match rng.gen_range(0..4) {
                0 => x[p] = true,
                1 => y[p] = true,
                _ => {}
            }
        }
        let g = GxyGraph::build(&x, &y);
        prop_assert_eq!(g.gamma(), gamma);
        prop_assert!(g.premise_holds());
        prop_assert_eq!(g.verify_lemma_5_5(), 2 * gamma as u64);
        // Natural cut achieves it.
        prop_assert_eq!(g.graph().cut_size(&g.natural_cut()), 2 * gamma);
    }

    #[test]
    fn gxy_oracle_equals_concrete_graph(ell in 3usize..8, seed in 0u64..10_000) {
        use rand::Rng;
        let n = ell * ell;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
        let y: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
        let g = GxyGraph::build(&x, &y);
        let sim = GxyOracle::new(x, y);
        for v in 0..4 * ell {
            let v = NodeId::new(v);
            prop_assert_eq!(sim.degree(v), g.graph().degree(v));
            for i in 0..ell + 1 {
                prop_assert_eq!(sim.ith_neighbor(v, i), g.graph().ith_neighbor(v, i));
            }
        }
        // Adjacency spot checks across all region pairings.
        for (u, w) in [(0usize, ell), (0, 3 * ell), (2 * ell, ell), (0, 1), (ell, 2 * ell)] {
            let (u, w) = (NodeId::new(u), NodeId::new(w.min(4 * ell - 1)));
            prop_assert_eq!(sim.adjacent(u, w), g.graph().has_edge(u, w));
        }
    }
}
