//! Linear-algebra substrate for the lower-bound constructions of
//! *Tight Lower Bounds for Directed Cut Sparsification and Distributed
//! Min-Cut* (PODS 2024).
//!
//! The for-each lower bound (Section 3 of the paper) encodes a random
//! sign string into edge weights through the rows of a special matrix
//! `M` (Lemma 3.2) whose rows are tensor products of non-trivial rows of
//! a Sylvester–Hadamard matrix. This crate provides:
//!
//! * [`hadamard`] — Sylvester–Hadamard matrices `H_{2^k}` with O(1)
//!   entry access and lazy row views,
//! * [`fwht`] — in-place fast Walsh–Hadamard transforms (1-D and 2-D),
//!   used to apply `M` and `Mᵀ` in `O(d² log d)` instead of `O(d⁴)`,
//! * [`tensor`] — tensor-product helpers and the
//!   `⟨u ⊗ v, w ⊗ z⟩ = ⟨u,w⟩·⟨v,z⟩` identity used throughout the proofs,
//! * [`lemma32`] — the Lemma 3.2 matrix itself: row access, the
//!   sign-split `(A, B)` node sets Bob queries, and the fast
//!   encode/decode maps `z ↦ Σ_t z_t M_t` and `w ↦ ⟨w, M_t⟩`.
//!
//! Everything is deterministic and allocation-conscious; the encode and
//! decode maps are exercised by property tests for orthogonality,
//! zero row sums, and exact round-tripping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fwht;
pub mod hadamard;
pub mod lemma32;
pub mod tensor;

pub use fwht::{fwht, fwht2d, fwht2d_normalized, fwht_normalized};
pub use hadamard::Hadamard;
pub use lemma32::{Lemma32Matrix, SignSplit};
pub use tensor::{dot, tensor_dot, tensor_product};
