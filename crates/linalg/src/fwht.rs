//! Fast Walsh–Hadamard transforms.
//!
//! The unnormalized transform computes `y = H_d · x` in place in
//! `O(d log d)` additions, where `H_d` is the Sylvester–Hadamard matrix
//! of [`crate::hadamard::Hadamard`]. Because `H_d` is symmetric and
//! `H_d² = d·I`, applying the transform twice multiplies by `d`, which
//! the normalized variants undo.
//!
//! The 2-D transform `Y = H · X · H` (rows then columns) is the
//! workhorse of the Lemma 3.2 encode/decode maps: the paper's encoding
//! `x = Σ_{(i,j)} z_{(i,j)} · (H_i ⊗ H_j)` is exactly the 2-D transform
//! of the coefficient matrix `Z`, and decoding `⟨w, M_{(i,j)}⟩` is the
//! `(i,j)` entry of the 2-D transform of `w` viewed as a `d×d` matrix.

/// In-place unnormalized fast Walsh–Hadamard transform: `v ← H·v`.
///
/// # Panics
/// Panics if `v.len()` is not a power of two.
pub fn fwht(v: &mut [f64]) {
    let d = v.len();
    assert!(
        d.is_power_of_two(),
        "FWHT length must be a power of two, got {d}"
    );
    let mut h = 1;
    while h < d {
        for block in v.chunks_exact_mut(2 * h) {
            let (lo, hi) = block.split_at_mut(h);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = x + y;
                *b = x - y;
            }
        }
        h <<= 1;
    }
}

/// In-place normalized transform: `v ← H·v / √d`, an involution.
pub fn fwht_normalized(v: &mut [f64]) {
    fwht(v);
    let scale = 1.0 / (v.len() as f64).sqrt();
    for x in v.iter_mut() {
        *x *= scale;
    }
}

/// In-place 2-D unnormalized transform of a row-major `d×d` matrix:
/// `X ← H · X · H`.
///
/// # Panics
/// Panics if `x.len() != d*d` or `d` is not a power of two.
pub fn fwht2d(x: &mut [f64], d: usize) {
    assert!(
        d.is_power_of_two(),
        "FWHT dimension must be a power of two, got {d}"
    );
    assert_eq!(x.len(), d * d, "matrix length {} != {d}×{d}", x.len());
    // Transform each row: X ← X · H  (H symmetric, row transform).
    for row in x.chunks_exact_mut(d) {
        fwht(row);
    }
    // Transform each column: X ← H · X.
    let mut col = vec![0.0; d];
    for c in 0..d {
        for r in 0..d {
            col[r] = x[r * d + c];
        }
        fwht(&mut col);
        for r in 0..d {
            x[r * d + c] = col[r];
        }
    }
}

/// In-place 2-D normalized transform (`/ d`), an involution.
pub fn fwht2d_normalized(x: &mut [f64], d: usize) {
    fwht2d(x, d);
    let scale = 1.0 / d as f64;
    for v in x.iter_mut() {
        *v *= scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hadamard::Hadamard;

    fn naive_transform(v: &[f64]) -> Vec<f64> {
        let d = v.len();
        let h = Hadamard::of_order(d);
        (0..d)
            .map(|i| (0..d).map(|j| f64::from(h.entry(i, j)) * v[j]).sum())
            .collect()
    }

    #[test]
    fn matches_naive_on_small_inputs() {
        for log_d in 0..6 {
            let d = 1usize << log_d;
            let v: Vec<f64> = (0..d).map(|i| (i as f64).sin() + 1.0).collect();
            let expected = naive_transform(&v);
            let mut got = v.clone();
            fwht(&mut got);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g - e).abs() < 1e-9, "d={d}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn double_transform_scales_by_d() {
        let v: Vec<f64> = vec![3.0, -1.0, 4.0, 1.0, -5.0, 9.0, 2.0, -6.0];
        let mut w = v.clone();
        fwht(&mut w);
        fwht(&mut w);
        for (a, b) in w.iter().zip(v.iter()) {
            assert!((a - b * 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_is_involution() {
        let v: Vec<f64> = (0..16).map(|i| (i * i) as f64 - 7.0).collect();
        let mut w = v.clone();
        fwht_normalized(&mut w);
        fwht_normalized(&mut w);
        for (a, b) in w.iter().zip(v.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds_for_normalized_transform() {
        let v: Vec<f64> = (0..32).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let before: f64 = v.iter().map(|x| x * x).sum();
        let mut w = v;
        fwht_normalized(&mut w);
        let after: f64 = w.iter().map(|x| x * x).sum();
        assert!((before - after).abs() < 1e-8);
    }

    #[test]
    fn fwht2d_matches_row_column_naive() {
        let d = 8;
        let x: Vec<f64> = (0..d * d).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let h = Hadamard::of_order(d);
        // expected = H * X * H computed naively
        let mut expected = vec![0.0; d * d];
        for i in 0..d {
            for j in 0..d {
                let mut s = 0.0;
                for a in 0..d {
                    for b in 0..d {
                        s += f64::from(h.entry(i, a)) * x[a * d + b] * f64::from(h.entry(b, j));
                    }
                }
                expected[i * d + j] = s;
            }
        }
        let mut got = x;
        fwht2d(&mut got, d);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-7, "{g} vs {e}");
        }
    }

    #[test]
    fn fwht2d_normalized_is_involution() {
        let d = 4;
        let x: Vec<f64> = (0..d * d).map(|i| (i as f64).cos()).collect();
        let mut w = x.clone();
        fwht2d_normalized(&mut w, d);
        fwht2d_normalized(&mut w, d);
        for (a, b) in w.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut v = vec![1.0; 6];
        fwht(&mut v);
    }
}
