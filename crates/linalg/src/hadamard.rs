//! Sylvester–Hadamard matrices.
//!
//! `H_{2^k}` is defined recursively by `H_1 = [1]` and
//! `H_{2d} = [[H_d, H_d], [H_d, -H_d]]`, which collapses to the closed
//! form `H[i][j] = (-1)^{popcount(i & j)}`. Row 0 is the all-ones row,
//! every other row sums to zero, and distinct rows are orthogonal —
//! exactly the properties Lemma 3.2 of the paper needs.

/// A Sylvester–Hadamard matrix of order `d = 2^k`.
///
/// Entries are never materialized unless asked for: [`Hadamard::entry`]
/// is an O(1) bit trick, and [`Hadamard::row`] produces a single row on
/// demand. Use [`Hadamard::materialize`] only for tests or tiny orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hadamard {
    log_order: u32,
}

impl Hadamard {
    /// Creates `H_d` for `d = 2^log_order`.
    ///
    /// `log_order = 0` gives the trivial `H_1 = [1]`.
    #[must_use]
    pub fn new(log_order: u32) -> Self {
        assert!(
            log_order < 32,
            "Hadamard order 2^{log_order} is unreasonably large"
        );
        Self { log_order }
    }

    /// Creates the Hadamard matrix of the given order.
    ///
    /// # Panics
    /// Panics if `order` is not a power of two.
    #[must_use]
    pub fn of_order(order: usize) -> Self {
        assert!(
            order.is_power_of_two(),
            "Hadamard order must be a power of two, got {order}"
        );
        Self::new(order.trailing_zeros())
    }

    /// The order `d = 2^k` of the matrix.
    #[must_use]
    pub fn order(&self) -> usize {
        1usize << self.log_order
    }

    /// `log2` of the order.
    #[must_use]
    pub fn log_order(&self) -> u32 {
        self.log_order
    }

    /// The entry `H[i][j] = (-1)^{popcount(i & j)}` as `±1`.
    #[must_use]
    pub fn entry(&self, i: usize, j: usize) -> i8 {
        debug_assert!(i < self.order() && j < self.order());
        if (i & j).count_ones().is_multiple_of(2) {
            1
        } else {
            -1
        }
    }

    /// The `i`-th row as a freshly allocated `±1` vector.
    #[must_use]
    pub fn row(&self, i: usize) -> Vec<i8> {
        (0..self.order()).map(|j| self.entry(i, j)).collect()
    }

    /// Iterator over the entries of row `i` without allocating.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = i8> + '_ {
        (0..self.order()).map(move |j| self.entry(i, j))
    }

    /// Materializes the full matrix (rows of `±1`). Test/debug helper.
    #[must_use]
    pub fn materialize(&self) -> Vec<Vec<i8>> {
        (0..self.order()).map(|i| self.row(i)).collect()
    }

    /// Dot product of rows `i` and `j`; `d` when `i == j`, else `0`.
    #[must_use]
    pub fn row_dot(&self, i: usize, j: usize) -> i64 {
        (0..self.order())
            .map(|c| i64::from(self.entry(i, c)) * i64::from(self.entry(j, c)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h1_is_trivial() {
        let h = Hadamard::new(0);
        assert_eq!(h.order(), 1);
        assert_eq!(h.entry(0, 0), 1);
    }

    #[test]
    fn h2_matches_definition() {
        let h = Hadamard::new(1);
        assert_eq!(h.materialize(), vec![vec![1, 1], vec![1, -1]]);
    }

    #[test]
    fn h4_matches_recursive_definition() {
        let h = Hadamard::new(2);
        assert_eq!(
            h.materialize(),
            vec![
                vec![1, 1, 1, 1],
                vec![1, -1, 1, -1],
                vec![1, 1, -1, -1],
                vec![1, -1, -1, 1],
            ]
        );
    }

    #[test]
    fn of_order_accepts_powers_of_two() {
        assert_eq!(Hadamard::of_order(16).order(), 16);
        assert_eq!(Hadamard::of_order(1).order(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn of_order_rejects_non_powers() {
        let _ = Hadamard::of_order(12);
    }

    #[test]
    fn first_row_is_all_ones() {
        let h = Hadamard::new(4);
        assert!(h.row(0).iter().all(|&e| e == 1));
    }

    #[test]
    fn nontrivial_rows_sum_to_zero() {
        let h = Hadamard::new(4);
        for i in 1..h.order() {
            let s: i64 = h.row_iter(i).map(i64::from).sum();
            assert_eq!(s, 0, "row {i} does not sum to zero");
        }
    }

    #[test]
    fn rows_are_orthogonal() {
        let h = Hadamard::new(3);
        let d = h.order();
        for i in 0..d {
            for j in 0..d {
                let expected = if i == j { d as i64 } else { 0 };
                assert_eq!(h.row_dot(i, j), expected, "rows {i},{j}");
            }
        }
    }

    #[test]
    fn symmetric_matrix() {
        let h = Hadamard::new(5);
        for i in 0..h.order() {
            for j in 0..h.order() {
                assert_eq!(h.entry(i, j), h.entry(j, i));
            }
        }
    }
}
