//! Tensor-product helpers.
//!
//! The lower-bound proofs repeatedly use the identity
//! `⟨u ⊗ v, w ⊗ z⟩ = ⟨u, w⟩ · ⟨v, z⟩` (Lemma 3.2) and the fact that for
//! indicator vectors `1_A, 1_B`, the inner product `⟨w, 1_A ⊗ 1_B⟩` is
//! the total weight of bipartite edges from `A` to `B`.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(u: &[f64], v: &[f64]) -> f64 {
    assert_eq!(
        u.len(),
        v.len(),
        "dot of mismatched lengths {} vs {}",
        u.len(),
        v.len()
    );
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

/// The tensor (outer) product `u ⊗ v` flattened row-major:
/// `(u ⊗ v)[i·|v| + j] = u[i] · v[j]`.
#[must_use]
pub fn tensor_product(u: &[f64], v: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(u.len() * v.len());
    for &a in u {
        for &b in v {
            out.push(a * b);
        }
    }
    out
}

/// Computes `⟨w, u ⊗ v⟩` without materializing `u ⊗ v`.
///
/// `w` is interpreted as a row-major `|u| × |v|` matrix.
///
/// # Panics
/// Panics if `w.len() != u.len() * v.len()`.
#[must_use]
pub fn tensor_dot(w: &[f64], u: &[f64], v: &[f64]) -> f64 {
    assert_eq!(w.len(), u.len() * v.len(), "tensor_dot shape mismatch");
    w.chunks_exact(v.len())
        .zip(u)
        .map(|(row, &a)| a * dot(row, v))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn tensor_product_shape_and_values() {
        let t = tensor_product(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(t, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn tensor_dot_matches_materialized() {
        let u = [1.0, -2.0, 0.5];
        let v = [2.0, 3.0];
        let w: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mat = tensor_product(&u, &v);
        assert!((tensor_dot(&w, &u, &v) - dot(&w, &mat)).abs() < 1e-12);
    }

    #[test]
    fn tensor_inner_product_identity() {
        // ⟨u⊗v, w⊗z⟩ = ⟨u,w⟩⟨v,z⟩
        let u = [1.0, -1.0, 2.0];
        let v = [0.5, 3.0];
        let w = [2.0, 2.0, -1.0];
        let z = [1.0, -4.0];
        let lhs = dot(&tensor_product(&u, &v), &tensor_product(&w, &z));
        let rhs = dot(&u, &w) * dot(&v, &z);
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
