//! The Lemma 3.2 matrix of the paper.
//!
//! For any `k ≥ 1` and `d = 2^k`, Lemma 3.2 builds a matrix
//! `M ∈ {−1,1}^{(d−1)² × d²}` whose rows are `H_i ⊗ H_j` for all
//! `i, j ∈ {1, …, d−1}` (0-indexed; the paper writes `2 ≤ i, j ≤ 2^k`),
//! where `H` is the Sylvester–Hadamard matrix of order `d`. The rows
//! satisfy:
//!
//! 1. `⟨M_t, 1⟩ = 0` — each row sums to zero,
//! 2. `⟨M_t, M_t'⟩ = 0` for `t ≠ t'` — rows are orthogonal,
//! 3. `M_t = u ⊗ v` with `⟨u, 1⟩ = ⟨v, 1⟩ = 0` — each row splits the
//!    left and right node blocks into equal halves.
//!
//! The paper encodes a sign string `z ∈ {−1,1}^{(d−1)²}` into forward
//! edge weights via `x = Σ_t z_t · M_t` and decodes bit `t` via
//! `⟨w, M_t⟩ = z_t · ‖M_t‖² · ε = z_t / ε` after rescaling. Both maps
//! are 2-D Walsh–Hadamard transforms and run in `O(d² log d)` here.

use crate::fwht::fwht2d;
use crate::hadamard::Hadamard;

/// The sign split of a Lemma 3.2 row `M_t = h_A ⊗ h_B`.
///
/// `A` (respectively `B`) is the set of left (right) block positions
/// where the sign is `+1`; the complements are the `−1` positions.
/// Bob's decoder queries the four directed cuts `(A,B)`, `(Ā,B)`,
/// `(A,B̄)`, `(Ā,B̄)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignSplit {
    /// Left positions with sign `+1` (the set `A`).
    pub a: Vec<usize>,
    /// Left positions with sign `−1` (the set `Ā`).
    pub a_bar: Vec<usize>,
    /// Right positions with sign `+1` (the set `B`).
    pub b: Vec<usize>,
    /// Right positions with sign `−1` (the set `B̄`).
    pub b_bar: Vec<usize>,
}

/// The Lemma 3.2 matrix for a given block size `d = 2^k = 1/ε`.
///
/// # Example
///
/// ```
/// use dircut_linalg::Lemma32Matrix;
///
/// let m = Lemma32Matrix::new(8); // 1/ε = 8
/// let z: Vec<i8> = (0..m.num_rows()).map(|t| if t % 2 == 0 { 1 } else { -1 }).collect();
/// let x = m.encode(&z);                 // x = Σ_t z_t · M_t via 2-D FWHT
/// let decoded = m.decode_all(&x);       // ⟨x, M_t⟩ = z_t · ‖M_t‖²
/// assert!((decoded[3] - f64::from(z[3]) * m.row_norm_sq()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Lemma32Matrix {
    h: Hadamard,
}

impl Lemma32Matrix {
    /// Creates the matrix for block size `d = 2^k`.
    ///
    /// # Panics
    /// Panics if `d < 2` or `d` is not a power of two.
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!(d >= 2, "Lemma 3.2 needs block size ≥ 2, got {d}");
        Self {
            h: Hadamard::of_order(d),
        }
    }

    /// The block size `d` (the paper's `1/ε`).
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.h.order()
    }

    /// Number of rows, `(d−1)²` — the number of sign bits one block encodes.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        let d = self.block_size();
        (d - 1) * (d - 1)
    }

    /// Length of each row, `d²` — the number of forward edges per block.
    #[must_use]
    pub fn row_len(&self) -> usize {
        self.block_size() * self.block_size()
    }

    /// Squared norm of every row: `‖M_t‖² = d²`.
    #[must_use]
    pub fn row_norm_sq(&self) -> f64 {
        (self.row_len()) as f64
    }

    /// Maps a row index `t` to the Hadamard row pair `(i, j)`, both in
    /// `1..d`.
    #[must_use]
    pub fn row_pair(&self, t: usize) -> (usize, usize) {
        assert!(
            t < self.num_rows(),
            "row index {t} out of range {}",
            self.num_rows()
        );
        let d1 = self.block_size() - 1;
        (1 + t / d1, 1 + t % d1)
    }

    /// Entry `M_t[(a, b)] = H[i][a] · H[j][b]` as `±1`.
    #[must_use]
    pub fn entry(&self, t: usize, a: usize, b: usize) -> i8 {
        let (i, j) = self.row_pair(t);
        self.h.entry(i, a) * self.h.entry(j, b)
    }

    /// Materializes row `t` (row-major over `(a, b)`). `O(d²)`.
    #[must_use]
    pub fn row(&self, t: usize) -> Vec<f64> {
        let d = self.block_size();
        let (i, j) = self.row_pair(t);
        let mut out = Vec::with_capacity(d * d);
        for a in 0..d {
            let ha = f64::from(self.h.entry(i, a));
            for b in 0..d {
                out.push(ha * f64::from(self.h.entry(j, b)));
            }
        }
        out
    }

    /// The sign split `(A, Ā, B, B̄)` of row `t`.
    ///
    /// By property (3) of the lemma, `|A| = |Ā| = |B| = |B̄| = d/2`.
    #[must_use]
    pub fn sign_split(&self, t: usize) -> SignSplit {
        let d = self.block_size();
        let (i, j) = self.row_pair(t);
        let mut split = SignSplit {
            a: Vec::with_capacity(d / 2),
            a_bar: Vec::with_capacity(d / 2),
            b: Vec::with_capacity(d / 2),
            b_bar: Vec::with_capacity(d / 2),
        };
        for a in 0..d {
            if self.h.entry(i, a) == 1 {
                split.a.push(a);
            } else {
                split.a_bar.push(a);
            }
        }
        for b in 0..d {
            if self.h.entry(j, b) == 1 {
                split.b.push(b);
            } else {
                split.b_bar.push(b);
            }
        }
        split
    }

    /// Encodes signs `z ∈ {−1,1}^{(d−1)²}` into `x = Σ_t z_t · M_t`.
    ///
    /// Computed as the 2-D Walsh–Hadamard transform of the coefficient
    /// matrix whose `(i, j)` entry (for `i, j ≥ 1`) is `z_t`, in
    /// `O(d² log d)`.
    ///
    /// # Panics
    /// Panics if `z.len() != (d−1)²`.
    #[must_use]
    pub fn encode(&self, z: &[i8]) -> Vec<f64> {
        let d = self.block_size();
        assert_eq!(z.len(), self.num_rows(), "sign string length mismatch");
        let mut coeff = vec![0.0; d * d];
        let d1 = d - 1;
        for (t, &zt) in z.iter().enumerate() {
            debug_assert!(zt == 1 || zt == -1, "signs must be ±1");
            let (i, j) = (1 + t / d1, 1 + t % d1);
            coeff[i * d + j] = f64::from(zt);
        }
        fwht2d(&mut coeff, d);
        coeff
    }

    /// Decodes all inner products `⟨w, M_t⟩` at once via one 2-D
    /// transform in `O(d² log d)`.
    ///
    /// If `w = Σ_t z_t·M_t` exactly, the output is `z_t · d²`.
    ///
    /// # Panics
    /// Panics if `w.len() != d²`.
    #[must_use]
    pub fn decode_all(&self, w: &[f64]) -> Vec<f64> {
        let d = self.block_size();
        assert_eq!(w.len(), d * d, "weight vector length mismatch");
        let mut m = w.to_vec();
        fwht2d(&mut m, d);
        let d1 = d - 1;
        let mut out = Vec::with_capacity(self.num_rows());
        for t in 0..self.num_rows() {
            let (i, j) = (1 + t / d1, 1 + t % d1);
            out.push(m[i * d + j]);
        }
        out
    }

    /// Decodes a single inner product `⟨w, M_t⟩` in `O(d²)`.
    #[must_use]
    pub fn decode_one(&self, w: &[f64], t: usize) -> f64 {
        let d = self.block_size();
        assert_eq!(w.len(), d * d, "weight vector length mismatch");
        let (i, j) = self.row_pair(t);
        let mut acc = 0.0;
        for a in 0..d {
            let ha = f64::from(self.h.entry(i, a));
            let row = &w[a * d..(a + 1) * d];
            let mut inner = 0.0;
            for (b, &wv) in row.iter().enumerate() {
                inner += f64::from(self.h.entry(j, b)) * wv;
            }
            acc += ha * inner;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::dot;

    #[test]
    fn row_count_and_length() {
        let m = Lemma32Matrix::new(8);
        assert_eq!(m.num_rows(), 49);
        assert_eq!(m.row_len(), 64);
    }

    #[test]
    fn rows_sum_to_zero() {
        let m = Lemma32Matrix::new(8);
        for t in 0..m.num_rows() {
            let s: f64 = m.row(t).iter().sum();
            assert_eq!(s, 0.0, "row {t}");
        }
    }

    #[test]
    fn rows_are_pairwise_orthogonal() {
        let m = Lemma32Matrix::new(4);
        for t in 0..m.num_rows() {
            for t2 in 0..m.num_rows() {
                let d = dot(&m.row(t), &m.row(t2));
                let expected = if t == t2 { m.row_norm_sq() } else { 0.0 };
                assert_eq!(d, expected, "rows {t},{t2}");
            }
        }
    }

    #[test]
    fn sign_split_halves_are_balanced() {
        let m = Lemma32Matrix::new(16);
        for t in 0..m.num_rows() {
            let s = m.sign_split(t);
            assert_eq!(s.a.len(), 8);
            assert_eq!(s.a_bar.len(), 8);
            assert_eq!(s.b.len(), 8);
            assert_eq!(s.b_bar.len(), 8);
        }
    }

    #[test]
    fn sign_split_matches_entries() {
        let m = Lemma32Matrix::new(8);
        for t in [0, 5, 13, m.num_rows() - 1] {
            let s = m.sign_split(t);
            for &a in &s.a {
                for &b in &s.b {
                    assert_eq!(m.entry(t, a, b), 1);
                }
                for &b in &s.b_bar {
                    assert_eq!(m.entry(t, a, b), -1);
                }
            }
            for &a in &s.a_bar {
                for &b in &s.b {
                    assert_eq!(m.entry(t, a, b), -1);
                }
            }
        }
    }

    #[test]
    fn encode_matches_naive_sum() {
        let m = Lemma32Matrix::new(4);
        let z: Vec<i8> = (0..m.num_rows())
            .map(|t| if t % 3 == 0 { 1 } else { -1 })
            .collect();
        let fast = m.encode(&z);
        let mut naive = vec![0.0; m.row_len()];
        for (t, &zt) in z.iter().enumerate() {
            for (dst, src) in naive.iter_mut().zip(m.row(t)) {
                *dst += f64::from(zt) * src;
            }
        }
        for (f, n) in fast.iter().zip(naive.iter()) {
            assert!((f - n).abs() < 1e-9);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = Lemma32Matrix::new(8);
        let z: Vec<i8> = (0..m.num_rows())
            .map(|t| if (t * 7) % 5 < 2 { 1 } else { -1 })
            .collect();
        let x = m.encode(&z);
        let decoded = m.decode_all(&x);
        for (t, &zt) in z.iter().enumerate() {
            let expected = f64::from(zt) * m.row_norm_sq();
            assert!((decoded[t] - expected).abs() < 1e-8, "bit {t}");
        }
    }

    #[test]
    fn decode_one_agrees_with_decode_all() {
        let m = Lemma32Matrix::new(8);
        let w: Vec<f64> = (0..m.row_len())
            .map(|i| ((i * 31) % 17) as f64 - 8.0)
            .collect();
        let all = m.decode_all(&w);
        for t in [0, 3, 21, m.num_rows() - 1] {
            assert!((m.decode_one(&w, t) - all[t]).abs() < 1e-8);
        }
    }

    #[test]
    fn decode_is_tensor_inner_product() {
        let m = Lemma32Matrix::new(4);
        let w: Vec<f64> = (0..16).map(|i| (i as f64).sqrt()).collect();
        for t in 0..m.num_rows() {
            let direct = dot(&w, &m.row(t));
            assert!((m.decode_one(&w, t) - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_shift_is_invisible_to_decoder() {
        // ⟨w + c·1, M_t⟩ = ⟨w, M_t⟩ because row sums are zero — this is
        // why the paper can shift weights to make them positive.
        let m = Lemma32Matrix::new(8);
        let w: Vec<f64> = (0..m.row_len()).map(|i| (i % 5) as f64).collect();
        let shifted: Vec<f64> = w.iter().map(|x| x + 123.456).collect();
        let a = m.decode_all(&w);
        let b = m.decode_all(&shifted);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
