//! Property-based tests for the Hadamard/FWHT/Lemma 3.2 machinery.

use dircut_linalg::{
    fwht, fwht2d, fwht_normalized, tensor_dot, tensor_product, Hadamard, Lemma32Matrix,
};
use proptest::prelude::*;

fn pow2_len() -> impl Strategy<Value = usize> {
    (0u32..8).prop_map(|k| 1usize << k)
}

fn vec_of_len(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #[test]
    fn fwht_twice_scales_by_d(k in 0u32..8, seed in 0u64..1000) {
        let d = 1usize << k;
        let v: Vec<f64> = (0..d).map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f64 - 500.0).collect();
        let mut w = v.clone();
        fwht(&mut w);
        fwht(&mut w);
        for (a, b) in w.iter().zip(&v) {
            prop_assert!((a - b * d as f64).abs() < 1e-6 * (1.0 + b.abs()) * d as f64);
        }
    }

    #[test]
    fn normalized_fwht_preserves_norm(v in pow2_len().prop_flat_map(vec_of_len)) {
        let before: f64 = v.iter().map(|x| x * x).sum();
        let mut w = v;
        fwht_normalized(&mut w);
        let after: f64 = w.iter().map(|x| x * x).sum();
        prop_assert!((before - after).abs() <= 1e-7 * (1.0 + before));
    }

    #[test]
    fn fwht_is_linear(k in 0u32..6, a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let d = 1usize << k;
        let x: Vec<f64> = (0..d).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..d).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| a * p + b * q).collect();
        fwht(&mut combo);
        let mut fx = x;
        fwht(&mut fx);
        let mut fy = y;
        fwht(&mut fy);
        for ((c, p), q) in combo.iter().zip(&fx).zip(&fy) {
            prop_assert!((c - (a * p + b * q)).abs() < 1e-8 * (1.0 + c.abs()));
        }
    }

    #[test]
    fn hadamard_rows_orthogonal(k in 1u32..6, i in 0usize..32, j in 0usize..32) {
        let h = Hadamard::new(k);
        let d = h.order();
        let (i, j) = (i % d, j % d);
        let expected = if i == j { d as i64 } else { 0 };
        prop_assert_eq!(h.row_dot(i, j), expected);
    }

    #[test]
    fn tensor_dot_equals_materialized(
        u in proptest::collection::vec(-3.0f64..3.0, 1..6),
        v in proptest::collection::vec(-3.0f64..3.0, 1..6),
        seed in 0u64..100,
    ) {
        let w: Vec<f64> = (0..u.len() * v.len())
            .map(|i| ((i as u64 * 31 + seed) % 17) as f64 - 8.0)
            .collect();
        let mat = tensor_product(&u, &v);
        let direct: f64 = w.iter().zip(&mat).map(|(a, b)| a * b).sum();
        prop_assert!((tensor_dot(&w, &u, &v) - direct).abs() < 1e-9);
    }

    #[test]
    fn lemma32_roundtrip(k in 1u32..5, seed in 0u64..10_000) {
        let d = 1usize << k;
        let m = Lemma32Matrix::new(d);
        let z: Vec<i8> = (0..m.num_rows())
            .map(|t| if (t as u64).wrapping_mul(6364136223846793005).wrapping_add(seed) % 2 == 0 { 1 } else { -1 })
            .collect();
        let x = m.encode(&z);
        let decoded = m.decode_all(&x);
        for (t, &zt) in z.iter().enumerate() {
            prop_assert!((decoded[t] - f64::from(zt) * m.row_norm_sq()).abs() < 1e-6);
        }
    }

    #[test]
    fn lemma32_decoder_ignores_constant_shifts(k in 1u32..5, shift in -1000.0f64..1000.0) {
        let d = 1usize << k;
        let m = Lemma32Matrix::new(d);
        let w: Vec<f64> = (0..m.row_len()).map(|i| ((i * 7) % 13) as f64).collect();
        let shifted: Vec<f64> = w.iter().map(|x| x + shift).collect();
        let a = m.decode_all(&w);
        let b = m.decode_all(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-5 * (1.0 + shift.abs()));
        }
    }

    #[test]
    fn lemma32_sign_splits_are_exact_halves(k in 1u32..6, t_seed in 0usize..1000) {
        let d = 1usize << k;
        let m = Lemma32Matrix::new(d);
        let t = t_seed % m.num_rows();
        let s = m.sign_split(t);
        prop_assert_eq!(s.a.len(), d / 2);
        prop_assert_eq!(s.a_bar.len(), d / 2);
        prop_assert_eq!(s.b.len(), d / 2);
        prop_assert_eq!(s.b_bar.len(), d / 2);
        // Together they partition 0..d.
        let mut all: Vec<usize> = s.a.iter().chain(&s.a_bar).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..d).collect::<Vec<_>>());
    }

    #[test]
    fn fwht2d_matches_row_then_column_1d(k in 1u32..5) {
        let d = 1usize << k;
        let x: Vec<f64> = (0..d * d).map(|i| ((i * 37) % 23) as f64 - 11.0).collect();
        let mut fast = x.clone();
        fwht2d(&mut fast, d);
        // Naive: transform rows, then columns, with 1-D FWHTs.
        let mut slow = x;
        for row in slow.chunks_exact_mut(d) {
            fwht(row);
        }
        for c in 0..d {
            let mut col: Vec<f64> = (0..d).map(|r| slow[r * d + c]).collect();
            fwht(&mut col);
            for (r, v) in col.into_iter().enumerate() {
                slow[r * d + c] = v;
            }
        }
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-7);
        }
    }
}
