//! Stream transport for sealed frames: TCP or Unix sockets, one code
//! path.
//!
//! On the wire each unit is a 4-byte little-endian *bit* count
//! followed by the sealed frame's bytes (`ceil(bits/8)` of them). The
//! bit count is the only thing read before validation, and it is
//! checked against [`MAX_FRAME_BITS`] before any allocation — a peer
//! cannot make the receiver reserve more than the cap. Everything
//! inside the length prefix is protected by the frame layer's magic,
//! length, and CRC ([`dircut_comm::frame`]), so a flipped bit anywhere
//! surfaces as a typed [`WireError`], never a panic or a garbage
//! answer.

use crate::protocol::MAX_FRAME_BITS;
use dircut_comm::frame::{open, seal};
use dircut_comm::{from_message, to_message, BitWriter, Message, WireEncode, WireError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Anything that can go wrong moving one value across a socket.
#[derive(Debug)]
pub enum TransportError {
    /// The socket failed (closed, reset, timed out).
    Io(io::Error),
    /// The bytes arrived but do not parse as a sealed frame holding
    /// one value — corruption, truncation, or an oversized prefix.
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport I/O: {e}"),
            Self::Wire(e) => write!(f, "transport framing: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl TransportError {
    /// Whether this is a read timeout (the poll tick of a blocking
    /// reader with a deadline, not a real failure).
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            Self::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Where a server listens or a client connects: `unix:/path/to.sock`
/// or a TCP `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:7171`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `unix:PATH` or `HOST:PORT`.
    ///
    /// # Errors
    /// A plain string describing what is wrong with the spec (for CLI
    /// usage errors).
    pub fn parse(spec: &str) -> Result<Self, String> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a path after `unix:`".into());
            }
            return Ok(Self::Unix(PathBuf::from(path)));
        }
        if spec
            .rsplit_once(':')
            .is_some_and(|(h, p)| !h.is_empty() && p.parse::<u16>().is_ok())
        {
            return Ok(Self::Tcp(spec.to_owned()));
        }
        Err(format!(
            "cannot parse endpoint `{spec}` (want `unix:PATH` or `HOST:PORT`)"
        ))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(addr) => write!(f, "{addr}"),
            Self::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound listening socket (either family).
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Binds the endpoint. For TCP, port 0 picks a free port — the
    /// bound address is recoverable via [`Listener::local_endpoint`].
    ///
    /// # Errors
    /// Any bind failure from the OS.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Self::Tcp(TcpListener::bind(addr.as_str())?)),
            Endpoint::Unix(path) => {
                // A stale socket file from a previous run would make
                // bind fail; remove only if it is a socket.
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                Ok(Self::Unix(UnixListener::bind(path)?))
            }
        }
    }

    /// The endpoint actually bound (resolves TCP port 0).
    ///
    /// # Errors
    /// If the OS cannot report the local address.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Self::Tcp(l) => {
                let addr: SocketAddr = l.local_addr()?;
                Ok(Endpoint::Tcp(addr.to_string()))
            }
            Self::Unix(l) => {
                let addr = l.local_addr()?;
                let path: &Path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(Endpoint::Unix(path.to_owned()))
            }
        }
    }

    /// Switches the listener to non-blocking accepts (so an accept
    /// loop can poll a shutdown flag).
    ///
    /// # Errors
    /// Any socket-option failure from the OS.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Self::Tcp(l) => l.set_nonblocking(nonblocking),
            Self::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection, returned already in blocking mode.
    ///
    /// # Errors
    /// `WouldBlock` when non-blocking and idle; other errors as from
    /// the OS.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Self::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Self::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

/// One established connection (either family).
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl Conn {
    /// Connects to a server endpoint.
    ///
    /// # Errors
    /// Any connect failure from the OS.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Ok(Self::Tcp(s))
            }
            Endpoint::Unix(path) => Ok(Self::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Bounds how long a read blocks, so a server thread can notice a
    /// shutdown flag between frames. `None` blocks forever.
    ///
    /// # Errors
    /// Any socket-option failure from the OS.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(dur),
            Self::Unix(s) => s.set_read_timeout(dur),
        }
    }

    fn reader(&mut self) -> &mut dyn Read {
        match self {
            Self::Tcp(s) => s,
            Self::Unix(s) => s,
        }
    }

    fn writer(&mut self) -> &mut dyn Write {
        match self {
            Self::Tcp(s) => s,
            Self::Unix(s) => s,
        }
    }

    /// Seals `value` into a frame and writes it, length-prefixed.
    ///
    /// # Errors
    /// [`TransportError::Wire`] if the value cannot be framed (it is
    /// oversized), [`TransportError::Io`] if the socket fails.
    pub fn send<T: WireEncode>(&mut self, value: &T) -> Result<(), TransportError> {
        let framed = seal(&to_message(value))?;
        if framed.bit_len() > MAX_FRAME_BITS {
            return Err(WireError::Oversized {
                bits: framed.bit_len(),
                limit: MAX_FRAME_BITS,
            }
            .into());
        }
        let bits = framed.bit_len() as u32;
        let w = self.writer();
        w.write_all(&bits.to_le_bytes())?;
        w.write_all(framed.as_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads one length-prefixed frame, opens it, and decodes one `T`.
    ///
    /// # Errors
    /// [`TransportError::Io`] on socket failure or timeout;
    /// [`TransportError::Wire`] on an oversized prefix, a corrupt
    /// frame, or a payload that does not decode as exactly one `T`.
    /// After a `Wire` error of the corrupt-frame kind the stream is
    /// still aligned (the declared bytes were consumed); after an
    /// oversized prefix it is not, and the connection should be
    /// dropped.
    pub fn recv<T: WireEncode>(&mut self) -> Result<T, TransportError> {
        let r = self.reader();
        let mut prefix = [0u8; 4];
        r.read_exact(&mut prefix)?;
        let bits = u32::from_le_bytes(prefix) as usize;
        if bits > MAX_FRAME_BITS {
            return Err(WireError::Oversized {
                bits,
                limit: MAX_FRAME_BITS,
            }
            .into());
        }
        let mut bytes = vec![0u8; bits.div_ceil(8)];
        r.read_exact(&mut bytes)?;
        let mut w = BitWriter::new();
        for i in 0..bits {
            w.write_bit(bytes[i / 8] >> (i % 8) & 1 == 1);
        }
        let framed: Message = w.finish();
        let payload = open(&framed)?;
        Ok(from_message::<T>(&payload)?)
    }

    /// Writes raw pre-framed bytes with a chosen bit-count prefix —
    /// test hook for exercising the server's corrupt-frame handling.
    ///
    /// # Errors
    /// Any socket failure.
    pub fn send_raw(&mut self, bits: u32, bytes: &[u8]) -> io::Result<()> {
        let w = self.writer();
        w.write_all(&bits.to_le_bytes())?;
        w.write_all(bytes)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};
    use dircut_graph::NodeSet;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:7171").unwrap(),
            Endpoint::Tcp("127.0.0.1:7171".into())
        );
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("no-port").is_err());
        assert!(Endpoint::parse("host:99999").is_err());
    }

    #[test]
    fn frames_cross_a_unix_socketpair() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut tx = Conn::Unix(a);
        let mut rx = Conn::Unix(b);
        let req = Request::Cut {
            set: NodeSet::from_indices(70, [1, 69]),
        };
        tx.send(&req).unwrap();
        assert_eq!(rx.recv::<Request>().unwrap(), req);
        let resp = Response::Cut {
            epoch: 1,
            out: 2.25,
            into: 0.5,
        };
        tx.send(&resp).unwrap();
        assert_eq!(rx.recv::<Response>().unwrap(), resp);
    }

    #[test]
    fn corrupt_bytes_surface_as_wire_errors() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut tx = Conn::Unix(a);
        let mut rx = Conn::Unix(b);
        let framed = seal(&to_message(&Request::Info)).unwrap();
        let mut bytes = framed.as_bytes().to_vec();
        bytes[3] ^= 0x40;
        tx.send_raw(framed.bit_len() as u32, &bytes).unwrap();
        match rx.recv::<Request>() {
            Err(TransportError::Wire(_)) => {}
            other => panic!("expected wire error, got {other:?}"),
        }
        // The stream stayed aligned: a good frame still goes through.
        tx.send(&Request::Info).unwrap();
        assert_eq!(rx.recv::<Request>().unwrap(), Request::Info);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut tx = Conn::Unix(a);
        let mut rx = Conn::Unix(b);
        tx.send_raw(u32::MAX, &[]).unwrap();
        match rx.recv::<Request>() {
            Err(TransportError::Wire(WireError::Oversized { .. })) => {}
            other => panic!("expected oversized, got {other:?}"),
        }
    }
}
