//! `dircut-serve`: the cut-query service built on the lock-free
//! snapshot store.
//!
//! The graph crate's [`SnapshotStore`](dircut_graph::SnapshotStore)
//! lets any number of threads query an immutable
//! [`CsrSnapshot`](dircut_graph::CsrSnapshot) without blocking a
//! writer; this crate puts a network in front of it:
//!
//! - [`protocol`] — request/response types on the workspace's
//!   [`WireEncode`](dircut_comm::WireEncode) + CRC-framed format,
//!   with hard size caps so no peer-chosen length reaches an
//!   allocator or a panic.
//! - transport — the shared
//!   [`dircut_comm::transport`] layer: length-prefixed sealed frames
//!   over TCP, Unix sockets, or in-process loopback, one code path
//!   for every consumer (this service and the distributed runtime).
//! - [`scheduler`] — the batching layer: concurrent single-cut
//!   requests coalesce (≤ `batch_max` at a time) into one
//!   word-parallel mask-kernel dispatch per snapshot load.
//! - [`server`] / [`client`] — the blocking service and its client.
//! - [`loadgen`] — a Zipf load generator emitting the
//!   `BENCH_serve.json` latency/QPS document.
//!
//! The contract that makes the service trustworthy: a served answer
//! is **bit-identical** to evaluating the same set on the same-epoch
//! graph in-process, because every layer (memo, batch kernel, f64
//! wire encoding) preserves exact IEEE bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::{Client, ClientError, CutAnswer, ServedInfo};
pub use dircut_comm::transport::{Accept, Conn, Connection, Endpoint, Listener, TransportError};
pub use loadgen::{report_json, run_loadgen, LoadReport, LoadgenConfig};
pub use protocol::{Request, Response, MAX_FRAME_BITS, MAX_UNIVERSE};
pub use scheduler::{BatchStats, CutJob, CutReply, Scheduler};
pub use server::{serve, ServerConfig, ServerHandle};
