//! Blocking client for the cut-query service.

use crate::protocol::{Request, Response};
use dircut_comm::transport::{Conn, Connection, Endpoint, TransportError};
use dircut_graph::NodeSet;
use std::fmt;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Transport(TransportError),
    /// The server answered with [`Response::Error`].
    Rejected(String),
    /// The server answered with the wrong response variant.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "{e}"),
            Self::Rejected(msg) => write!(f, "server rejected the request: {msg}"),
            Self::Unexpected(wanted) => write!(f, "server sent something other than {wanted}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

/// A served cut answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutAnswer {
    /// Epoch of the snapshot that produced the values.
    pub epoch: u64,
    /// `w(S → V∖S)`.
    pub out: f64,
    /// `w(V∖S → S)`.
    pub into: f64,
}

/// Shape of the served graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedInfo {
    /// Current snapshot epoch.
    pub epoch: u64,
    /// Node count — the universe cut queries must be built over.
    pub nodes: u32,
    /// Edge count.
    pub edges: u64,
}

/// One connection to a cut-query server.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    /// Any connect failure from the OS.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Self> {
        Ok(Self {
            conn: Conn::connect(endpoint)?,
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.conn.send(req)?;
        Ok(self.conn.recv::<Response>()?)
    }

    /// Asks for the served graph's shape.
    ///
    /// # Errors
    /// Transport failure or an unexpected reply.
    pub fn info(&mut self) -> Result<ServedInfo, ClientError> {
        match self.call(&Request::Info)? {
            Response::Info {
                epoch,
                nodes,
                edges,
            } => Ok(ServedInfo {
                epoch,
                nodes,
                edges,
            }),
            Response::Error { message } => Err(ClientError::Rejected(message)),
            _ => Err(ClientError::Unexpected("an info response")),
        }
    }

    /// Evaluates both directed cut values of `set` on the server.
    ///
    /// # Errors
    /// Transport failure, a server-side rejection (e.g. universe
    /// mismatch), or an unexpected reply.
    pub fn cut(&mut self, set: &NodeSet) -> Result<CutAnswer, ClientError> {
        match self.call(&Request::Cut { set: set.clone() })? {
            Response::Cut { epoch, out, into } => Ok(CutAnswer { epoch, out, into }),
            Response::Error { message } => Err(ClientError::Rejected(message)),
            _ => Err(ClientError::Unexpected("a cut response")),
        }
    }

    /// Asks the server to shut down; resolves once it acknowledges.
    ///
    /// # Errors
    /// Transport failure or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(ClientError::Rejected(message)),
            _ => Err(ClientError::Unexpected("a shutdown acknowledgement")),
        }
    }

    /// Test hook: raw frame injection (for corrupt-frame tests).
    ///
    /// # Errors
    /// Any socket failure.
    pub fn send_raw(&mut self, bits: u32, bytes: &[u8]) -> std::io::Result<()> {
        self.conn.send_raw(bits, bytes)
    }

    /// Test hook: reads one raw [`Response`] after [`Client::send_raw`].
    ///
    /// # Errors
    /// Transport failure.
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        Ok(self.conn.recv::<Response>()?)
    }
}
