//! Request/response types for the cut-query service, on the same
//! [`WireEncode`] + sealed-frame format the distributed runtime uses.
//!
//! Every decoder here is fed bytes that crossed a socket, so the rule
//! is absolute: malformed input is a [`WireError`], never a panic.
//! Sizes chosen by the peer — a declared universe, an error-string
//! length — are checked against hard caps *before* any allocation
//! sized by them.

use dircut_comm::{BitReader, BitWriter, WireEncode, WireError};
use dircut_graph::NodeSet;

// The preallocation caps moved into the shared transport layer (so
// the distributed runtime inherits the same no-panic-on-hostile-bytes
// contract); re-exported here to keep the `serve::MAX_*` paths.
pub use dircut_comm::transport::{MAX_FRAME_BITS, MAX_UNIVERSE};

/// Longest error string a [`Response::Error`] carries (bytes).
pub const MAX_ERROR_LEN: usize = 1 << 10;

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Evaluate both directed cut values of a node set.
    Cut {
        /// The query side `S`, over the server graph's universe.
        set: NodeSet,
    },
    /// Ask for the served graph's shape (universe, edges, epoch) —
    /// the handshake a load generator uses to build valid queries.
    Info,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

const REQ_CUT: u64 = 0;
const REQ_INFO: u64 = 1;
const REQ_SHUTDOWN: u64 = 2;

impl WireEncode for Request {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Self::Cut { set } => {
                w.write_bits(REQ_CUT, 8);
                w.write_bits(set.universe() as u64, 32);
                for &word in set.words() {
                    w.write_bits(word, 64);
                }
            }
            Self::Info => w.write_bits(REQ_INFO, 8),
            Self::Shutdown => w.write_bits(REQ_SHUTDOWN, 8),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        match r.try_read_bits(8)? {
            REQ_CUT => {
                let n = r.try_read_bits(32)? as usize;
                if n > MAX_UNIVERSE {
                    return Err(WireError::Oversized {
                        bits: n,
                        limit: MAX_UNIVERSE,
                    });
                }
                let mut words = Vec::with_capacity(n.div_ceil(64));
                for _ in 0..n.div_ceil(64) {
                    words.push(r.try_read_bits(64)?);
                }
                let set = NodeSet::from_words(n, words).ok_or_else(|| {
                    WireError::Invalid("cut request sets bits beyond its universe".into())
                })?;
                Ok(Self::Cut { set })
            }
            REQ_INFO => Ok(Self::Info),
            REQ_SHUTDOWN => Ok(Self::Shutdown),
            tag => Err(WireError::Invalid(format!("unknown request tag {tag}"))),
        }
    }
}

/// One server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Both directed cut values, stamped with the snapshot epoch that
    /// produced them. The `f64`s travel bit-exactly ([`BitWriter`]
    /// writes the IEEE bits), so equality with a local evaluation is
    /// meaningful down to the last ulp.
    Cut {
        /// Mutation epoch of the snapshot that answered.
        epoch: u64,
        /// Weight leaving the set: `w(S → V∖S)`.
        out: f64,
        /// Weight entering the set: `w(V∖S → S)`.
        into: f64,
    },
    /// Shape of the served graph.
    Info {
        /// Mutation epoch of the current snapshot.
        epoch: u64,
        /// Node count (the universe cut requests must use).
        nodes: u32,
        /// Edge count.
        edges: u64,
    },
    /// Acknowledgement of a [`Request::Shutdown`].
    ShuttingDown,
    /// The request was rejected; the connection stays usable.
    Error {
        /// Human-readable reason, at most [`MAX_ERROR_LEN`] bytes.
        message: String,
    },
}

const RESP_CUT: u64 = 0;
const RESP_INFO: u64 = 1;
const RESP_SHUTDOWN: u64 = 2;
const RESP_ERROR: u64 = 3;

impl WireEncode for Response {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Self::Cut { epoch, out, into } => {
                w.write_bits(RESP_CUT, 8);
                w.write_bits(*epoch, 64);
                w.write_f64(*out);
                w.write_f64(*into);
            }
            Self::Info {
                epoch,
                nodes,
                edges,
            } => {
                w.write_bits(RESP_INFO, 8);
                w.write_bits(*epoch, 64);
                w.write_bits(u64::from(*nodes), 32);
                w.write_bits(*edges, 64);
            }
            Self::ShuttingDown => w.write_bits(RESP_SHUTDOWN, 8),
            Self::Error { message } => {
                w.write_bits(RESP_ERROR, 8);
                let bytes = message.as_bytes();
                let len = bytes.len().min(MAX_ERROR_LEN);
                w.write_bits(len as u64, 16);
                w.write_bytes(&bytes[..len]);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        match r.try_read_bits(8)? {
            RESP_CUT => Ok(Self::Cut {
                epoch: r.try_read_bits(64)?,
                out: r.try_read_f64()?,
                into: r.try_read_f64()?,
            }),
            RESP_INFO => Ok(Self::Info {
                epoch: r.try_read_bits(64)?,
                nodes: r.try_read_bits(32)? as u32,
                edges: r.try_read_bits(64)?,
            }),
            RESP_SHUTDOWN => Ok(Self::ShuttingDown),
            RESP_ERROR => {
                let len = r.try_read_bits(16)? as usize;
                if len > MAX_ERROR_LEN {
                    return Err(WireError::Oversized {
                        bits: len,
                        limit: MAX_ERROR_LEN,
                    });
                }
                let mut bytes = Vec::with_capacity(len);
                for _ in 0..len {
                    bytes.push(r.try_read_bits(8)? as u8);
                }
                let message = String::from_utf8(bytes)
                    .map_err(|_| WireError::Invalid("error message is not UTF-8".into()))?;
                Ok(Self::Error { message })
            }
            tag => Err(WireError::Invalid(format!("unknown response tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_comm::{from_message, to_message};

    #[test]
    fn requests_round_trip() {
        let set = NodeSet::from_indices(130, [0, 64, 129]);
        for req in [Request::Cut { set }, Request::Info, Request::Shutdown] {
            let msg = to_message(&req);
            assert_eq!(from_message::<Request>(&msg).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Cut {
                epoch: 7,
                out: 1.5,
                into: -0.0,
            },
            Response::Info {
                epoch: 3,
                nodes: 100,
                edges: 250,
            },
            Response::ShuttingDown,
            Response::Error {
                message: "no".into(),
            },
        ] {
            let msg = to_message(&resp);
            assert_eq!(from_message::<Response>(&msg).unwrap(), resp);
        }
    }

    #[test]
    fn negative_zero_survives_the_wire() {
        let msg = to_message(&Response::Cut {
            epoch: 0,
            out: -0.0,
            into: 0.0,
        });
        let Response::Cut { out, into, .. } = from_message::<Response>(&msg).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(out.to_bits(), (-0.0f64).to_bits());
        assert_eq!(into.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn oversized_universe_is_rejected_before_allocation() {
        let mut w = BitWriter::new();
        w.write_bits(REQ_CUT, 8);
        w.write_bits((MAX_UNIVERSE + 1) as u64, 32);
        let msg = w.finish();
        assert!(matches!(
            from_message::<Request>(&msg),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn spare_bits_in_a_cut_request_are_invalid() {
        // Universe 10 needs one word; set a bit past index 9.
        let mut w = BitWriter::new();
        w.write_bits(REQ_CUT, 8);
        w.write_bits(10, 32);
        w.write_bits(1 << 12, 64);
        let msg = w.finish();
        assert!(matches!(
            from_message::<Request>(&msg),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn unknown_tags_are_invalid_not_panics() {
        let mut w = BitWriter::new();
        w.write_bits(200, 8);
        assert!(from_message::<Request>(&w.finish()).is_err());
        let mut w = BitWriter::new();
        w.write_bits(200, 8);
        assert!(from_message::<Response>(&w.finish()).is_err());
    }

    #[test]
    fn long_error_messages_are_truncated_on_encode() {
        let resp = Response::Error {
            message: "x".repeat(MAX_ERROR_LEN + 100),
        };
        let msg = to_message(&resp);
        let Response::Error { message } = from_message::<Response>(&msg).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(message.len(), MAX_ERROR_LEN);
    }
}
