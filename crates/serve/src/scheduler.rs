//! The batching scheduler: many concurrent single-cut requests, one
//! kernel invocation.
//!
//! Connection threads drop [`CutJob`]s into an MPSC queue; a single
//! scheduler thread drains it, coalescing whatever is waiting (up to
//! `batch_max` jobs) into one slice for
//! [`try_cut_both_batch_snapshot`], which routes a full batch through
//! the 64-set word-parallel mask kernel. Batching changes *when* work
//! happens, never *what* is computed: every answer in a batch is
//! bit-identical to the same query evaluated alone, because the batch
//! kernel itself carries that guarantee.
//!
//! Two invariants are inherited rather than re-implemented:
//!
//! - **Billing.** `try_cut_both_batch_snapshot` bills one logical cut
//!   query per set *before* consulting the memo, exactly like the
//!   single-query paths — so `stats::total_cut_queries` counts served
//!   queries correctly no matter how they were coalesced. Jobs
//!   rejected for a universe mismatch are never billed, matching
//!   [`DiGraph::try_cut_both`](dircut_graph::DiGraph::try_cut_both).
//! - **Snapshot coherence.** A batch is answered by *one*
//!   [`CsrSnapshot`] loaded at dispatch time; the epoch stamped on
//!   each reply is the epoch of exactly the graph that produced it.

use dircut_graph::cuteval::try_cut_both_batch_snapshot;
use dircut_graph::snapshot::SnapshotStore;
use dircut_graph::NodeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Result of one scheduled cut query.
#[derive(Debug, Clone, PartialEq)]
pub enum CutReply {
    /// Both directed cut values, stamped with the answering snapshot's
    /// epoch.
    Ok {
        /// Epoch of the snapshot that evaluated the batch.
        epoch: u64,
        /// `w(S → V∖S)`.
        out: f64,
        /// `w(V∖S → S)`.
        into: f64,
    },
    /// The query's universe does not match the served graph.
    UniverseMismatch {
        /// Node count of the served graph.
        expected: usize,
        /// Universe the query was built over.
        got: usize,
    },
}

/// One enqueued query: a set plus the channel to answer on.
pub struct CutJob {
    /// The query side.
    pub set: NodeSet,
    /// Where the scheduler sends the reply.
    pub reply: Sender<CutReply>,
}

/// Coalescing counters, readable while the scheduler runs.
#[derive(Debug, Default)]
pub struct BatchStats {
    batches: AtomicU64,
    jobs: AtomicU64,
}

impl BatchStats {
    /// Kernel dispatches so far.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Jobs answered so far (excluding universe rejections).
    #[must_use]
    pub fn jobs(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }
}

/// Handle to a running scheduler thread.
pub struct Scheduler {
    tx: Sender<CutJob>,
    stats: Arc<BatchStats>,
    join: Option<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns the scheduler thread over `store`'s snapshots.
    ///
    /// `batch_max` caps how many waiting jobs one dispatch coalesces
    /// (clamped to at least 1); `threads` is handed to the batch
    /// kernel (0 means single-threaded evaluation).
    #[must_use]
    pub fn spawn(store: Arc<SnapshotStore>, batch_max: usize, threads: usize) -> Self {
        let (tx, rx) = channel::<CutJob>();
        let stats = Arc::new(BatchStats::default());
        let thread_stats = Arc::clone(&stats);
        let join = std::thread::spawn(move || {
            run_scheduler(&store, &rx, batch_max.max(1), threads.max(1), &thread_stats);
        });
        Self {
            tx,
            stats,
            join: Some(join),
        }
    }

    /// A handle connection threads use to enqueue jobs.
    #[must_use]
    pub fn submitter(&self) -> Sender<CutJob> {
        self.tx.clone()
    }

    /// Live coalescing counters.
    #[must_use]
    pub fn stats(&self) -> Arc<BatchStats> {
        Arc::clone(&self.stats)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // Dropping our sender (after any clones die) ends the thread's
        // recv loop; detached submitters keep it alive until they go.
        drop(std::mem::replace(&mut self.tx, channel().0));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn run_scheduler(
    store: &SnapshotStore,
    rx: &Receiver<CutJob>,
    batch_max: usize,
    threads: usize,
    stats: &BatchStats,
) {
    let mut batch: Vec<CutJob> = Vec::with_capacity(batch_max);
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        // One snapshot answers the whole batch: coalesced jobs are
        // coherent even if a publish lands mid-dispatch.
        let snap = store.load();
        let n = snap.num_nodes();
        batch.retain(|job| {
            let got = job.set.universe();
            if got == n {
                true
            } else {
                let _ = job
                    .reply
                    .send(CutReply::UniverseMismatch { expected: n, got });
                false
            }
        });
        if batch.is_empty() {
            continue;
        }
        let sets: Vec<NodeSet> = batch.iter().map(|j| j.set.clone()).collect();
        // Cannot fail: every retained universe equals `n`.
        if let Ok(values) = try_cut_both_batch_snapshot(&snap, &sets, threads) {
            stats.batches.fetch_add(1, Ordering::Relaxed);
            stats.jobs.fetch_add(batch.len() as u64, Ordering::Relaxed);
            for (job, (out, into)) in batch.drain(..).zip(values) {
                let _ = job.reply.send(CutReply::Ok {
                    epoch: snap.epoch(),
                    out,
                    into,
                });
            }
        }
        batch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::{DiGraph, NodeId};

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new(4);
        for (u, v, w) in [
            (0, 1, 1.0),
            (0, 2, 2.0),
            (1, 3, 4.0),
            (2, 3, 8.0),
            (3, 0, 16.0),
        ] {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        g
    }

    #[test]
    fn scheduled_answers_are_bit_identical_to_direct_queries() {
        let g = diamond();
        let store = Arc::new(SnapshotStore::from_graph(&g));
        let sched = Scheduler::spawn(Arc::clone(&store), 64, 1);
        let submit = sched.submitter();
        let sets: Vec<NodeSet> = (0..16)
            .map(|i| NodeSet::from_indices(4, (0..4).filter(|v| i >> v & 1 == 1)))
            .collect();
        let mut rxs = Vec::new();
        for set in &sets {
            let (tx, rx) = channel();
            submit
                .send(CutJob {
                    set: set.clone(),
                    reply: tx,
                })
                .unwrap();
            rxs.push(rx);
        }
        for (set, rx) in sets.iter().zip(rxs) {
            let reply = rx.recv().unwrap();
            let (out, into) = g.try_cut_both(set).unwrap();
            assert_eq!(
                reply,
                CutReply::Ok {
                    epoch: g.mutation_epoch(),
                    out,
                    into
                },
                "mismatch for {set:?}"
            );
        }
    }

    #[test]
    fn universe_mismatch_is_rejected_per_job() {
        let g = diamond();
        let store = Arc::new(SnapshotStore::from_graph(&g));
        let sched = Scheduler::spawn(store, 8, 1);
        let submit = sched.submitter();
        let (tx, rx) = channel();
        submit
            .send(CutJob {
                set: NodeSet::from_indices(9, [1]),
                reply: tx,
            })
            .unwrap();
        assert_eq!(
            rx.recv().unwrap(),
            CutReply::UniverseMismatch {
                expected: 4,
                got: 9
            }
        );
    }

    #[test]
    fn batches_answer_at_the_epoch_of_their_snapshot() {
        let mut g = diamond();
        let store = Arc::new(SnapshotStore::from_graph(&g));
        let sched = Scheduler::spawn(Arc::clone(&store), 8, 1);
        let submit = sched.submitter();
        g.scale_weights(3.0);
        store.publish_graph(&g);
        let (tx, rx) = channel();
        submit
            .send(CutJob {
                set: NodeSet::from_indices(4, [0]),
                reply: tx,
            })
            .unwrap();
        let (out, into) = g.try_cut_both(&NodeSet::from_indices(4, [0])).unwrap();
        assert_eq!(
            rx.recv().unwrap(),
            CutReply::Ok {
                epoch: g.mutation_epoch(),
                out,
                into
            }
        );
    }
}
