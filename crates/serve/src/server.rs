//! The cut-query server: accept loop, per-connection threads, and the
//! shared shutdown protocol.
//!
//! A [`Server`] owns an [`Arc<SnapshotStore>`] and a [`Scheduler`].
//! Each accepted connection gets a thread that decodes [`Request`]s,
//! enqueues cut jobs, and writes back [`Response`]s; all cut work
//! funnels through the scheduler so concurrent clients coalesce into
//! mask batches. Shutdown is cooperative: a [`Request::Shutdown`]
//! (or [`ServerHandle::shutdown`]) raises one flag that the accept
//! loop and every connection thread poll between blocking waits.
//!
//! Nothing a peer sends can panic this process: frames are opened and
//! decoded through fallible paths only, oversized prefixes are
//! rejected before allocation, and a connection that turns to garbage
//! is answered with [`Response::Error`] or dropped.

use crate::protocol::{Request, Response};
use crate::scheduler::{BatchStats, CutJob, CutReply, Scheduler};
use dircut_comm::transport::{Accept, Conn, Connection, Endpoint, Listener, TransportError};
use dircut_graph::snapshot::SnapshotStore;
use dircut_graph::DiGraph;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked waits (accept, per-connection reads) re-check
/// the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most jobs one scheduler dispatch coalesces (≥ 1). Defaults to
    /// [`cuteval::chunk_capacity`](dircut_graph::cuteval::chunk_capacity)
    /// so one full dispatch fills exactly one lane-unrolled kernel
    /// chunk (256 sets at the default 4 lanes).
    pub batch_max: usize,
    /// Threads for the batch kernel (0 = single-threaded).
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            batch_max: dircut_graph::cuteval::chunk_capacity(),
            threads: 0,
        }
    }
}

/// A running server; dropping the handle shuts it down and joins it.
pub struct ServerHandle {
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    stats: Arc<BatchStats>,
    accept_join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The endpoint the server actually bound (resolves TCP port 0).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Live batching counters from the scheduler. The `Arc` stays
    /// readable after [`ServerHandle::join`] consumes the handle.
    #[must_use]
    pub fn batch_stats(&self) -> Arc<BatchStats> {
        Arc::clone(&self.stats)
    }

    /// Raises the shutdown flag without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the accept loop and every connection thread exit.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.join_inner();
    }
}

/// Binds `endpoint` and serves cut queries over `graph` until asked
/// to shut down. Returns as soon as the socket is bound and accepting.
///
/// # Errors
/// Any bind failure from the OS.
pub fn serve(graph: &DiGraph, endpoint: &Endpoint, cfg: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = Listener::bind(endpoint)?;
    let bound = listener.local_endpoint()?;
    listener.set_nonblocking(true)?;

    let store = Arc::new(SnapshotStore::from_graph(graph));
    let scheduler = Scheduler::spawn(Arc::clone(&store), cfg.batch_max, cfg.threads);
    let stats = scheduler.stats();
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_store = Arc::clone(&store);
    let accept_join = std::thread::spawn(move || {
        accept_loop(&listener, &accept_store, &scheduler, &accept_shutdown);
    });

    Ok(ServerHandle {
        endpoint: bound,
        shutdown,
        stats,
        accept_join: Some(accept_join),
    })
}

fn accept_loop(
    listener: &Listener,
    store: &Arc<SnapshotStore>,
    scheduler: &Scheduler,
    shutdown: &Arc<AtomicBool>,
) {
    let conn_joins: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(conn) => {
                let store = Arc::clone(store);
                let submit = scheduler.submitter();
                let flag = Arc::clone(shutdown);
                let join = std::thread::spawn(move || {
                    serve_connection(conn, &store, &submit, &flag);
                });
                conn_joins
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(join);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            // Transient accept errors (e.g. a peer that vanished
            // between SYN and accept) should not kill the server.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for join in conn_joins
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        let _ = join.join();
    }
    // The scheduler (and with it the last snapshot Arc it pinned)
    // drops here, after every connection thread has exited.
}

fn serve_connection(
    mut conn: Conn,
    store: &Arc<SnapshotStore>,
    submit: &Sender<CutJob>,
    shutdown: &Arc<AtomicBool>,
) {
    if conn.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let request = match conn.recv::<Request>() {
            Ok(req) => req,
            Err(e) if e.is_timeout() => continue,
            Err(TransportError::Io(_)) => return, // peer went away
            Err(e @ TransportError::Wire(_)) => {
                // The shared transport convention: a corrupt frame
                // leaves the stream aligned, so report and keep
                // serving; an oversized prefix does not, so report
                // and hang up.
                let fatal = e.is_connection_fatal();
                let TransportError::Wire(wire) = e else {
                    return;
                };
                let _ = conn.send(&Response::Error {
                    message: format!("bad frame: {wire}"),
                });
                if fatal {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Cut { set } => {
                let (tx, rx) = channel::<CutReply>();
                if submit.send(CutJob { set, reply: tx }).is_err() {
                    return; // scheduler gone: the server is tearing down
                }
                match rx.recv() {
                    Ok(CutReply::Ok { epoch, out, into }) => Response::Cut { epoch, out, into },
                    Ok(CutReply::UniverseMismatch { expected, got }) => Response::Error {
                        message: format!(
                            "universe mismatch: graph has {expected} nodes, query uses {got}"
                        ),
                    },
                    Err(_) => return,
                }
            }
            Request::Info => {
                let snap = store.load();
                Response::Info {
                    epoch: snap.epoch(),
                    nodes: snap.num_nodes() as u32,
                    edges: snap.num_edges() as u64,
                }
            }
            Request::Shutdown => {
                let _ = conn.send(&Response::ShuttingDown);
                shutdown.store(true, Ordering::Release);
                return;
            }
        };
        if conn.send(&response).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use dircut_graph::{NodeId, NodeSet};

    fn grid(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for u in 0..n {
            g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n), 1.0 + u as f64);
            g.add_edge(NodeId::new((u + 2) % n), NodeId::new(u), 0.5 * u as f64);
        }
        g
    }

    #[test]
    fn served_answers_match_direct_queries_bitwise() {
        let g = grid(50);
        let handle = serve(
            &g,
            &Endpoint::Tcp("127.0.0.1:0".into()),
            &ServerConfig::default(),
        )
        .unwrap();
        let mut client = Client::connect(handle.endpoint()).unwrap();
        let info = client.info().unwrap();
        assert_eq!(info.nodes, 50);
        assert_eq!(info.epoch, g.mutation_epoch());
        for i in 0..20usize {
            let set = NodeSet::from_indices(50, (0..50).filter(|v| (v * 7 + i) % 3 == 0));
            let served = client.cut(&set).unwrap();
            let (out, into) = g.try_cut_both(&set).unwrap();
            assert_eq!(served.out.to_bits(), out.to_bits());
            assert_eq!(served.into.to_bits(), into.to_bits());
            assert_eq!(served.epoch, g.mutation_epoch());
        }
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn universe_mismatch_is_an_error_response_not_a_hangup() {
        let g = grid(8);
        let handle = serve(
            &g,
            &Endpoint::Tcp("127.0.0.1:0".into()),
            &ServerConfig::default(),
        )
        .unwrap();
        let mut client = Client::connect(handle.endpoint()).unwrap();
        let err = client.cut(&NodeSet::from_indices(9, [0])).unwrap_err();
        assert!(err.to_string().contains("universe mismatch"), "{err}");
        // Connection survives the rejection.
        let ok = client.cut(&NodeSet::from_indices(8, [0, 3])).unwrap();
        let (out, _) = g.try_cut_both(&NodeSet::from_indices(8, [0, 3])).unwrap();
        assert_eq!(ok.out.to_bits(), out.to_bits());
        client.shutdown().unwrap();
        handle.join();
    }
}
