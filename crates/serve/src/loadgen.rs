//! Zipf load generator for the cut-query service.
//!
//! Spawns `connections` client threads, each firing queries whose
//! target sets are drawn from a shared pool with Zipf(s) popularity —
//! rank 1 is hottest, matching the skewed access pattern the memo
//! layer is built for. Latency is measured per request end-to-end
//! (encode → socket → batch → socket → decode) and aggregated into
//! p50/p99 and sustained QPS, emitted as the `BENCH_serve.json`
//! document.
//!
//! The generator is self-contained and deterministic: a splitmix64
//! stream per thread (no external RNG crates), a pool derived from
//! one seed, and — with [`LoadgenConfig::verify`] — every served
//! answer is checked bit-for-bit against a local [`DiGraph`]
//! evaluation of the same set.

use crate::client::{Client, ClientError};
use dircut_comm::transport::Endpoint;
use dircut_graph::{DiGraph, NodeSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests each connection fires.
    pub requests_per_conn: usize,
    /// Distinct query sets in the shared pool.
    pub pool: usize,
    /// Zipf exponent `s` (0 = uniform; larger = more skew).
    pub zipf_s: f64,
    /// Seed for pool construction and per-thread draws.
    pub seed: u64,
    /// Check every served answer bit-for-bit against a local graph.
    pub verify: bool,
    /// Send a shutdown request after the run.
    pub shutdown: bool,
}

impl LoadgenConfig {
    /// CI-sized smoke defaults: small, fast, deterministic.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            connections: 2,
            requests_per_conn: 50,
            pool: 16,
            zipf_s: 1.1,
            seed,
            verify: false,
            shutdown: false,
        }
    }
}

/// Aggregated results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that completed with a cut answer.
    pub completed: u64,
    /// Requests that failed (transport or rejection).
    pub errors: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: f64,
    /// Sustained queries per second over the whole run.
    pub qps: f64,
    /// Wall-clock of the measurement window, milliseconds.
    pub wall_ms: f64,
    /// Served answers checked bit-identical against a local graph
    /// (0 when verification is off).
    pub verified: u64,
}

/// splitmix64: the only randomness the load generator needs.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// splitmix64 finalizer: a bijective avalanche mix.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-connection RNG state: `conn_id` is mixed through the finalizer
/// so distinct connections land on distinct streams for *every* seed.
///
/// The retired expression
/// `seed.wrapping_add(0x5eed).wrapping_mul(conn_id + 1)` collapsed all
/// connections onto the all-zero stream whenever `seed + 0x5eed`
/// wrapped to 0 — multiplying a shared factor cannot separate streams
/// the factor already destroyed. Mixing after combining is immune:
/// `mix64` is a bijection, so two connections collide only if their
/// pre-mix inputs collide, which `seed ⊕ f(conn_id)` never does for
/// distinct `conn_id` under the odd-constant multiply.
fn worker_stream(seed: u64, conn_id: u64) -> u64 {
    mix64(seed ^ conn_id.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Zipf(s) over ranks `1..=pool`: precomputed CDF, one binary search
/// per draw.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(pool: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(pool);
        let mut total = 0.0;
        for rank in 1..=pool {
            total += (rank as f64).powf(-s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    fn draw(&self, rng: &mut SplitMix) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Builds the query pool: `pool` pseudorandom sets over `n` nodes,
/// each node included with probability 1/2 (canonical worst case for
/// the mask kernel — dense words, no fast path).
fn build_pool(n: usize, pool: usize, seed: u64) -> Vec<NodeSet> {
    let mut rng = SplitMix(seed ^ 0x9001_c0de);
    (0..pool)
        .map(|_| {
            let mut words = vec![0u64; n.div_ceil(64)];
            for w in &mut words {
                *w = rng.next();
            }
            if !n.is_multiple_of(64) {
                let last = words.len() - 1;
                words[last] &= u64::MAX >> (64 - n % 64);
            }
            NodeSet::from_words(n, words).expect("masked words fit the universe")
        })
        .collect()
}

/// Runs the load against a server and aggregates latencies.
///
/// `verify_graph` must be the same graph the server loaded when
/// [`LoadgenConfig::verify`] is set; served answers are then compared
/// bit-for-bit.
///
/// # Errors
/// Connection failure, or — in verify mode — a served answer whose
/// bits differ from the local evaluation (reported as a rejection).
pub fn run_loadgen(
    endpoint: &Endpoint,
    cfg: &LoadgenConfig,
    verify_graph: Option<&DiGraph>,
) -> Result<LoadReport, ClientError> {
    // Handshake on a scout connection: learn the universe.
    let mut scout = Client::connect(endpoint).map_err(wrap_io)?;
    let info = scout.info()?;
    let n = info.nodes as usize;
    let pool = Arc::new(build_pool(n, cfg.pool.max(1), cfg.seed));
    let zipf = Arc::new(Zipf::new(pool.len(), cfg.zipf_s));

    // Local answers for verification, computed once per pool entry.
    let local: Arc<Vec<Option<(f64, f64)>>> = Arc::new(match verify_graph {
        Some(g) if cfg.verify => pool.iter().map(|s| g.try_cut_both(s).ok()).collect(),
        _ => vec![None; pool.len()],
    });

    let errors = Arc::new(AtomicU64::new(0));
    let verified = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut workers = Vec::new();
    for conn_id in 0..cfg.connections.max(1) {
        let endpoint = endpoint.clone();
        let pool = Arc::clone(&pool);
        let zipf = Arc::clone(&zipf);
        let local = Arc::clone(&local);
        let errors = Arc::clone(&errors);
        let verified = Arc::clone(&verified);
        let requests = cfg.requests_per_conn;
        let check = cfg.verify;
        let seed = cfg.seed;
        workers.push(std::thread::spawn(move || -> Vec<u64> {
            let Ok(mut client) = Client::connect(&endpoint) else {
                errors.fetch_add(requests as u64, Ordering::Relaxed);
                return Vec::new();
            };
            let mut rng = SplitMix(worker_stream(seed, conn_id as u64));
            let mut latencies = Vec::with_capacity(requests);
            for _ in 0..requests {
                let idx = zipf.draw(&mut rng);
                let t0 = Instant::now();
                match client.cut(&pool[idx]) {
                    Ok(answer) => {
                        latencies.push(t0.elapsed().as_nanos() as u64);
                        if check {
                            match local[idx] {
                                Some((out, into))
                                    if out.to_bits() == answer.out.to_bits()
                                        && into.to_bits() == answer.into.to_bits() =>
                                {
                                    verified.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            latencies
        }));
    }

    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        if let Ok(mut l) = w.join() {
            latencies.append(&mut l);
        }
    }
    let wall = started.elapsed();

    if cfg.shutdown {
        scout.shutdown()?;
    }

    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let errs = errors.load(Ordering::Relaxed);
    let ver = verified.load(Ordering::Relaxed);
    if cfg.verify && ver < completed {
        return Err(ClientError::Rejected(format!(
            "verification failed: only {ver} of {completed} served answers matched the local graph"
        )));
    }
    Ok(LoadReport {
        completed,
        errors: errs,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        qps: if wall.as_secs_f64() > 0.0 {
            completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        wall_ms: wall.as_secs_f64() * 1e3,
        verified: ver,
    })
}

fn wrap_io(e: std::io::Error) -> ClientError {
    ClientError::Transport(dircut_comm::transport::TransportError::Io(e))
}

/// Nearest-rank percentile over sorted nanosecond latencies, in µs.
fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1e3
}

/// Renders the run as the `dircut-serve-bench-v1` JSON document
/// (the contents of `BENCH_serve.json`).
#[must_use]
pub fn report_json(endpoint: &Endpoint, cfg: &LoadgenConfig, report: &LoadReport) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:?}")
        } else {
            "null".to_owned()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dircut-serve-bench-v1\",");
    let _ = writeln!(out, "  \"endpoint\": \"{endpoint}\",");
    let _ = writeln!(out, "  \"connections\": {},", cfg.connections.max(1));
    let _ = writeln!(out, "  \"requests_per_conn\": {},", cfg.requests_per_conn);
    let _ = writeln!(out, "  \"pool\": {},", cfg.pool.max(1));
    let _ = writeln!(out, "  \"zipf_s\": {},", num(cfg.zipf_s));
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"completed\": {},", report.completed);
    let _ = writeln!(out, "  \"errors\": {},", report.errors);
    let _ = writeln!(out, "  \"verified\": {},", report.verified);
    let _ = writeln!(out, "  \"p50_us\": {},", num(report.p50_us));
    let _ = writeln!(out, "  \"p99_us\": {},", num(report.p99_us));
    let _ = writeln!(out, "  \"qps\": {},", num(report.qps));
    let _ = writeln!(out, "  \"wall_ms\": {}", num(report.wall_ms));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = SplitMix(7);
        let mut counts = [0u64; 100];
        for _ in 0..20_000 {
            counts[zipf.draw(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 1 should beat rank 11");
        assert!(counts[0] > counts[99] * 5, "head should dominate tail");
        assert!(counts.iter().sum::<u64>() == 20_000);
    }

    #[test]
    fn worker_streams_stay_distinct_under_the_wrapping_seed() {
        // The pathological seed of the retired seeding expression:
        // seed + 0x5eed wraps to 0, which used to zero every stream.
        let seed = 0u64.wrapping_sub(0x5eed);
        let zipf = Zipf::new(64, 1.1);
        let mut draws: Vec<Vec<usize>> = Vec::new();
        for conn_id in 0..8u64 {
            let mut rng = SplitMix(worker_stream(seed, conn_id));
            draws.push((0..32).map(|_| zipf.draw(&mut rng)).collect());
        }
        for a in 0..draws.len() {
            for b in (a + 1)..draws.len() {
                assert_ne!(
                    draws[a], draws[b],
                    "connections {a} and {b} drew identical Zipf streams"
                );
            }
        }
        // And the states themselves are pairwise distinct for a spread
        // of ordinary seeds too.
        for s in [0u64, 1, 0x5eed, u64::MAX] {
            let states: Vec<u64> = (0..64).map(|c| worker_stream(s, c)).collect();
            let mut dedup = states.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), states.len(), "state collision at seed {s}");
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).map(|v| v * 1_000).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50.0);
        assert_eq!(percentile_us(&sorted, 0.99), 99.0);
        assert_eq!(percentile_us(&[], 0.99), 0.0);
    }

    #[test]
    fn pool_sets_respect_their_universe() {
        for n in [1usize, 63, 64, 65, 130] {
            for set in build_pool(n, 8, 42) {
                assert_eq!(set.universe(), n);
            }
        }
    }

    #[test]
    fn report_json_has_the_contract_fields() {
        let cfg = LoadgenConfig::smoke(1);
        let report = LoadReport {
            completed: 100,
            errors: 0,
            p50_us: 12.5,
            p99_us: 80.0,
            qps: 1234.5,
            wall_ms: 81.0,
            verified: 0,
        };
        let json = report_json(&Endpoint::Tcp("127.0.0.1:1".into()), &cfg, &report);
        for field in [
            "\"schema\": \"dircut-serve-bench-v1\"",
            "\"p50_us\":",
            "\"p99_us\":",
            "\"qps\":",
            "\"completed\":",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
