//! The socket-backed distributed runtime: one worker thread per
//! server, real frames over a real [`Transport`], fault injection at
//! the socket boundary, and a coordinator with real read deadlines,
//! bounded retries, and straggler degradation.
//!
//! [`run_min_cut`] runs the same protocol as
//! [`distributed_min_cut`](crate::distributed_min_cut), but every
//! [`ServerMessage`] actually crosses a socket (TCP, Unix, or
//! in-process loopback, per [`RuntimeConfig::topology`]) as a sealed,
//! length-prefixed frame. Each server's dialogue is a short control
//! protocol ([`LinkCtl`]): the coordinator polls for an attempt, the
//! server's [`FaultyTransport`] plays the drawn fate out on the wire
//! (drops write nothing, so the coordinator's real
//! [`io_timeout`](RuntimeConfig::io_timeout) deadline fires), and an
//! attempt-done marker closes each round. A frame is accepted only if
//! its simulated latency is within
//! [`timeout_ticks`](RuntimeConfig::timeout_ticks), it passes the
//! frame check, and it decodes; otherwise the coordinator retries, up
//! to [`max_retries`](RuntimeConfig::max_retries) retransmissions.
//!
//! **Degradation.** If after all retries only `k` of `s` servers
//! answered (`1 ≤ k < s`), the coordinator still solves: the arrived
//! coarse union and fine estimates are scaled by `s/k` (each server
//! holds a uniformly random `1/s` slice of the edges, so the arrived
//! slices are an unbiased `k/s` sample of the graph), and the result
//! is reported *degraded* with `effective_epsilon = ε + (s−k)/s` — a
//! deliberately conservative additive widening covering the extra
//! sampling variance of the missing slices. `k = 0` is
//! [`DistError::AllServersLost`].
//!
//! **Determinism.** Sketch randomness is per-server
//! (`seed + 1 + id`), link randomness is per `(seed, server,
//! attempt)`, servers are driven sequentially in id order, and the
//! coordinator consumes the master stream exactly as the in-process
//! path does — so for any fault configuration the full outcome
//! (answer, transcripts, every bit count, every *byte* counter) is a
//! pure function of `(graph, servers, config)` and is bit-identical
//! across thread counts **and across topologies**: simulated latency
//! crosses the wire inside each frame's
//! [`DeliveryTag`](crate::faults::DeliveryTag) meta word, so
//! wall-clock never leaks into the transcript.
//!
//! [`FaultyTransport`]: crate::faults::FaultyTransport

use crate::faults::{
    DeliveryTag, FaultConfig, FaultyTransport, BASE_LATENCY_TICKS, DELAY_TICKS, META_CTL,
};
use crate::{
    coordinate_scaled, partition_edges, server_sketch, DistributedMinCut, ProtocolConfig,
    ServerMessage,
};
use dircut_comm::frame::{open, seal};
use dircut_comm::transport::{
    Accept, Conn, Connection, Endpoint, Listener, LoopbackTransport, SocketTransport, Transport,
};
use dircut_comm::{from_message, to_message, BitReader, BitWriter, Message, WireEncode, WireError};
use dircut_graph::{parallel, stats, DiGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which wire the runtime's frames cross.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Topology {
    /// In-process loopback channels: the fastest wire, no OS sockets.
    #[default]
    Loopback,
    /// Localhost TCP sockets (default `127.0.0.1:0`).
    Tcp,
    /// Unix-domain sockets under the system temp directory.
    Unix,
}

impl Topology {
    /// Parses `loopback`, `tcp`, or `unix` (for CLI flags).
    ///
    /// # Errors
    /// A plain usage string naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "loopback" => Ok(Self::Loopback),
            "tcp" => Ok(Self::Tcp),
            "unix" => Ok(Self::Unix),
            other => Err(format!(
                "unknown topology `{other}` (want loopback, tcp, or unix)"
            )),
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Loopback => "loopback",
            Self::Tcp => "tcp",
            Self::Unix => "unix",
        })
    }
}

/// Configuration of one socket-backed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// The protocol parameters (accuracy, enumeration effort).
    pub protocol: ProtocolConfig,
    /// The link fault model.
    pub faults: FaultConfig,
    /// Simulated deadline in ticks: a frame whose
    /// [`DeliveryTag`](crate::faults::DeliveryTag) latency exceeds
    /// this is treated as lost. Must exceed [`BASE_LATENCY_TICKS`] or
    /// even clean links time out.
    pub timeout_ticks: u32,
    /// Retransmissions allowed per server after the first attempt.
    pub max_retries: u32,
    /// Worker threads for the sketching fan-out (0 = the pool default,
    /// which honours `DIRCUT_THREADS`).
    pub threads: usize,
    /// Which wire the frames cross.
    pub topology: Topology,
    /// Where the coordinator listens. `None` picks the topology's
    /// default (loopback id 0, `127.0.0.1:0`, or a fresh temp-dir
    /// socket path); `Some` overrides the address outright.
    pub listen: Option<Endpoint>,
    /// Master seed: drives the partition, every sketch, and every
    /// link-fault draw.
    pub seed: u64,
    /// Real read deadline the coordinator arms while waiting for a
    /// server's frames. Only dropped (or dead) attempts burn it —
    /// every other round is concluded by an attempt-done marker.
    pub io_timeout: Duration,
}

impl RuntimeConfig {
    /// Clean-link defaults: timeout 8 ticks, 3 retries, loopback
    /// topology, seed 0, 400 ms socket deadline.
    #[must_use]
    pub fn new(protocol: ProtocolConfig) -> Self {
        Self {
            protocol,
            faults: FaultConfig::clean(),
            timeout_ticks: 2 * BASE_LATENCY_TICKS,
            max_retries: 3,
            threads: 0,
            topology: Topology::Loopback,
            listen: None,
            seed: 0,
            io_timeout: Duration::from_millis(400),
        }
    }

    /// Same defaults with a fault model.
    #[must_use]
    pub fn with_faults(protocol: ProtocolConfig, faults: FaultConfig) -> Self {
        Self {
            faults,
            ..Self::new(protocol)
        }
    }

    /// Starts a builder from the clean-link defaults.
    #[must_use]
    pub fn builder(protocol: ProtocolConfig) -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            cfg: Self::new(protocol),
        }
    }
}

/// Builder for a [`RuntimeConfig`]: name the knobs you change, leave
/// the rest at the clean-link defaults.
///
/// ```
/// use dircut_dist::{FaultPlan, ProtocolConfig, RuntimeConfig, Topology};
/// let cfg = RuntimeConfig::builder(ProtocolConfig::new(0.2))
///     .faults(FaultPlan::new().drop(0.1).build())
///     .retries(5)
///     .topology(Topology::Tcp)
///     .seed(42)
///     .build();
/// assert_eq!(cfg.max_retries, 5);
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Sets the link fault model (a [`FaultConfig`], or a
    /// [`FaultPlan`](crate::faults::FaultPlan) directly).
    #[must_use]
    pub fn faults(mut self, faults: impl Into<FaultConfig>) -> Self {
        self.cfg.faults = faults.into();
        self
    }

    /// Sets the simulated tick deadline.
    #[must_use]
    pub fn timeout_ticks(mut self, ticks: u32) -> Self {
        self.cfg.timeout_ticks = ticks;
        self
    }

    /// Sets the retransmission budget per server.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// Sets the sketching worker-thread count (0 = pool default).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Sets the wire the frames cross.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.cfg.topology = topology;
        self
    }

    /// Overrides the coordinator's listen address.
    #[must_use]
    pub fn listen(mut self, endpoint: Endpoint) -> Self {
        self.cfg.listen = Some(endpoint);
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the coordinator's real per-read socket deadline.
    #[must_use]
    pub fn io_timeout(mut self, dur: Duration) -> Self {
        self.cfg.io_timeout = dur;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> RuntimeConfig {
        self.cfg
    }
}

/// The control dialogue framing one server's transmit attempts. Sent
/// with `meta =` [`META_CTL`] so fault injection passes it through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkCtl {
    /// Coordinator → server: transmit attempt number `attempt`.
    Poll {
        /// The attempt to transmit (0 = first try).
        attempt: u32,
    },
    /// Server → coordinator: everything this attempt put on the wire
    /// has been written. Never sent for dropped attempts — the
    /// coordinator's real deadline is what detects those.
    AttemptDone,
    /// Coordinator → server: dialogue over, hang up.
    Close,
}

const CTL_POLL: u64 = 0;
const CTL_DONE: u64 = 1;
const CTL_CLOSE: u64 = 2;

impl WireEncode for LinkCtl {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Self::Poll { attempt } => {
                w.write_bits(CTL_POLL, 8);
                w.write_bits(u64::from(*attempt), 32);
            }
            Self::AttemptDone => w.write_bits(CTL_DONE, 8),
            Self::Close => w.write_bits(CTL_CLOSE, 8),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        match r.try_read_bits(8)? {
            CTL_POLL => Ok(Self::Poll {
                attempt: r.try_read_bits(32)? as u32,
            }),
            CTL_DONE => Ok(Self::AttemptDone),
            CTL_CLOSE => Ok(Self::Close),
            tag => Err(WireError::Invalid(format!("unknown link-ctl tag {tag}"))),
        }
    }
}

/// Why a socket-backed run produced no answer at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// Every server's frames were lost after all retries; there is
    /// nothing to solve from.
    AllServersLost {
        /// How many servers were supposed to report.
        servers: usize,
    },
    /// A server's sketch could not be framed for transmission —
    /// in practice [`WireError::Oversized`], a payload too big for
    /// the frame header's length field.
    Encode(WireError),
    /// The coordinator could not bind its listener or accept a
    /// server's connection.
    Transport(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AllServersLost { servers } => {
                write!(f, "all {servers} servers lost after retries")
            }
            Self::Encode(e) => write!(f, "failed to frame a server message: {e}"),
            Self::Transport(e) => write!(f, "transport setup failed: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Per-server delivery log: what one link did across all attempts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerTranscript {
    /// The server this transcript belongs to.
    pub server_id: usize,
    /// Transmit attempts made (1 + retries actually used).
    pub attempts: u32,
    /// Retransmissions after the first attempt.
    pub retries: u32,
    /// Total bits the server put on the wire across all attempts
    /// (full frames; link-injected duplicate copies are not the
    /// server's transmissions and are not counted here).
    pub bits_sent: usize,
    /// Bits of the one accepted frame (0 if none was accepted).
    pub bits_acked: usize,
    /// Attempts dropped by the link (each burned one real
    /// [`io_timeout`](RuntimeConfig::io_timeout) at the coordinator).
    pub drops: u32,
    /// Attempts whose frame was bit-corrupted (and CRC-rejected).
    pub corrupted: u32,
    /// Attempts delayed past the deadline.
    pub delayed: u32,
    /// Link-injected duplicate copies observed.
    pub duplicates: u32,
    /// Deliveries (any copy) with latency < 4 ticks.
    pub lat_fast: u32,
    /// Deliveries with latency in `4..64` ticks.
    pub lat_slow: u32,
    /// Deliveries with latency ≥ 64 ticks.
    pub lat_stale: u32,
    /// Latency of the accepted frame, if one was accepted.
    pub accepted_latency: Option<u32>,
    /// Bytes the coordinator actually read from this server's socket,
    /// length prefixes included: delivered data frames, duplicate
    /// copies, and attempt-done markers. Dropped attempts contribute
    /// nothing. This is the *measured* counterpart of `bits_sent`'s
    /// counted bill, and it is identical across topologies.
    pub wire_bytes: u64,
    /// Bytes the coordinator wrote to this server's socket (the
    /// [`LinkCtl`] dialogue: polls plus the final close).
    pub ctl_bytes: u64,
}

impl ServerTranscript {
    /// Whether the coordinator got this server's message.
    #[must_use]
    pub fn delivered(&self) -> bool {
        self.bits_acked > 0
    }
}

/// The outcome of a socket-backed run: the answer plus everything the
/// coordinator observed while obtaining it.
#[derive(Debug, Clone)]
pub struct RuntimeOutcome {
    /// The min-cut answer, with full bit accounting (including
    /// framing and retransmission overhead).
    pub answer: DistributedMinCut,
    /// Servers that participated.
    pub servers: usize,
    /// Servers whose message was accepted before the deadline.
    pub arrived: usize,
    /// Whether the coordinator had to solve from a strict subset.
    pub degraded: bool,
    /// The guarantee actually delivered: the configured ε widened by
    /// `(s − k)/s` when `k < s` servers arrived.
    pub effective_epsilon: f64,
    /// One transcript per server, in server order.
    pub transcripts: Vec<ServerTranscript>,
}

impl RuntimeOutcome {
    /// Bytes observed across every server socket (prefixes included) —
    /// the measured column next to the counted `total_wire_bits`.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.transcripts.iter().map(|t| t.wire_bytes).sum()
    }
}

/// Distinguishes unix socket files of concurrent runs in one process.
static SOCKET_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_socket_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "dircut-dist-{}-{}.sock",
        std::process::id(),
        SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// How a worker thread reaches the coordinator's listener.
#[derive(Clone)]
enum Dialer {
    Loopback(LoopbackTransport, Endpoint),
    Socket(Endpoint),
}

impl Dialer {
    fn dial(&self) -> std::io::Result<Conn> {
        match self {
            Self::Loopback(hub, ep) => hub.connect(ep),
            Self::Socket(ep) => SocketTransport.connect(ep),
        }
    }
}

/// Binds the coordinator's listener for the configured topology;
/// returns it with the dialer workers use and any socket file to
/// remove afterwards.
fn bind_topology(cfg: &RuntimeConfig) -> Result<(Listener, Dialer, Option<PathBuf>), DistError> {
    let wrap = |ep: &Endpoint, e: std::io::Error| DistError::Transport(format!("bind {ep}: {e}"));
    match cfg.topology {
        Topology::Loopback => {
            let hub = LoopbackTransport::new();
            let ep = cfg.listen.clone().unwrap_or(Endpoint::Loopback(0));
            let listener = hub.listen(&ep).map_err(|e| wrap(&ep, e))?;
            Ok((listener, Dialer::Loopback(hub, ep), None))
        }
        Topology::Tcp => {
            let ep = cfg
                .listen
                .clone()
                .unwrap_or_else(|| Endpoint::Tcp("127.0.0.1:0".into()));
            let listener = SocketTransport.listen(&ep).map_err(|e| wrap(&ep, e))?;
            // Port 0 resolves at bind time; dial what was bound.
            let bound = listener.local_endpoint().map_err(|e| wrap(&ep, e))?;
            Ok((listener, Dialer::Socket(bound), None))
        }
        Topology::Unix => {
            let ep = cfg
                .listen
                .clone()
                .unwrap_or_else(|| Endpoint::Unix(temp_socket_path()));
            let listener = SocketTransport.listen(&ep).map_err(|e| wrap(&ep, e))?;
            let file = match &ep {
                Endpoint::Unix(path) => Some(path.clone()),
                _ => None,
            };
            Ok((listener, Dialer::Socket(ep), file))
        }
    }
}

/// One server's side of the dialogue: connect, answer polls through
/// the fault decorator, hang up on close (or a vanished coordinator).
fn spawn_worker(
    dialer: &Dialer,
    frame: &Message,
    seed: u64,
    id: usize,
    faults: FaultConfig,
) -> JoinHandle<()> {
    let dialer = dialer.clone();
    let frame = frame.clone();
    std::thread::spawn(move || {
        let Ok(conn) = dialer.dial() else { return };
        let mut link = FaultyTransport::new(conn, seed, id, faults);
        loop {
            match link.recv_meta::<LinkCtl>() {
                Ok((LinkCtl::Poll { attempt }, _)) => {
                    if link.send_frame(&frame, attempt).is_err() {
                        return;
                    }
                    // A dropped attempt writes nothing — not even the
                    // marker. The coordinator's deadline finds out.
                    if !link.last_dropped()
                        && link.send_meta(&LinkCtl::AttemptDone, META_CTL).is_err()
                    {
                        return;
                    }
                }
                Ok((LinkCtl::Close | LinkCtl::AttemptDone, _)) | Err(_) => return,
            }
        }
    })
}

/// The coordinator's side of one server's dialogue: poll, read
/// deliveries until the marker or the real deadline, retry within the
/// budget, close. Returns the reconstructed transcript and the
/// accepted message, if any.
fn drive_server(
    mut conn: Conn,
    id: usize,
    frame: &Message,
    cfg: &RuntimeConfig,
) -> (ServerTranscript, Option<ServerMessage>) {
    let mut t = ServerTranscript {
        server_id: id,
        ..ServerTranscript::default()
    };
    let mut accepted: Option<ServerMessage> = None;
    if conn.set_read_timeout(Some(cfg.io_timeout)).is_err() {
        return (t, None);
    }
    for attempt in 0..=cfg.max_retries {
        t.attempts += 1;
        t.retries = t.attempts - 1;
        t.bits_sent += frame.bit_len();
        if conn
            .send_meta(&LinkCtl::Poll { attempt }, META_CTL)
            .is_err()
        {
            t.drops += 1;
            break;
        }
        let mut attempt_corrupted = false;
        let mut attempt_delayed = false;
        let mut link_lost = false;
        loop {
            match conn.recv_frame() {
                // The attempt-done marker: everything this attempt
                // put on the wire has been read.
                Ok((_, meta)) if meta == META_CTL => break,
                Ok((delivery, meta)) => {
                    let tag = DeliveryTag::unpack(meta);
                    t.duplicates += u32::from(tag.duplicate);
                    if tag.latency < BASE_LATENCY_TICKS {
                        t.lat_fast += 1;
                    } else if tag.latency < DELAY_TICKS {
                        t.lat_slow += 1;
                    } else {
                        t.lat_stale += 1;
                    }
                    attempt_delayed |= tag.latency >= DELAY_TICKS;
                    match open(&delivery) {
                        Ok(payload) => {
                            if accepted.is_none() && tag.latency <= cfg.timeout_ticks {
                                if let Ok(msg) = from_message::<ServerMessage>(&payload) {
                                    t.bits_acked = frame.bit_len();
                                    t.accepted_latency = Some(tag.latency);
                                    accepted = Some(msg);
                                }
                            }
                        }
                        Err(_) => attempt_corrupted = true,
                    }
                }
                // Nothing arrived before the real deadline: the
                // attempt was dropped (or the server is dead).
                Err(e) if e.is_timeout() => {
                    t.drops += 1;
                    break;
                }
                // The socket died mid-dialogue; no more attempts.
                Err(_) => {
                    t.drops += 1;
                    link_lost = true;
                    break;
                }
            }
        }
        t.corrupted += u32::from(attempt_corrupted);
        t.delayed += u32::from(attempt_delayed);
        if accepted.is_some() || link_lost {
            break;
        }
    }
    let _ = conn.send_meta(&LinkCtl::Close, META_CTL);
    t.wire_bytes = conn.bytes_received();
    t.ctl_bytes = conn.bytes_sent();
    (t, accepted)
}

/// Runs the distributed protocol over the configured socket topology.
///
/// # Errors
/// [`DistError::AllServersLost`] if no server message survives the
/// link within the retry budget; [`DistError::Encode`] if a sketch
/// cannot be framed; [`DistError::Transport`] if the listener cannot
/// be bound or a server's connection cannot be accepted.
///
/// # Panics
/// Panics if `servers == 0` or the coarse union yields no candidate
/// cut (fewer than 2 nodes).
pub fn run_min_cut(
    g: &DiGraph,
    servers: usize,
    cfg: &RuntimeConfig,
) -> Result<RuntimeOutcome, DistError> {
    assert!(servers >= 1, "need at least one server");
    let seed = cfg.seed;
    let mut master = ChaCha8Rng::seed_from_u64(seed);
    let parts = partition_edges(g, servers, &mut master);
    let threads = if cfg.threads == 0 {
        parallel::default_threads()
    } else {
        cfg.threads
    };

    // Fan out: each server sketches its slice and seals the message
    // into a frame. Results come back in server order, so the bytes
    // on the wire are thread-count independent.
    let protocol = cfg.protocol;
    let framed = stats::timed_stage("dist/server_sketch", || {
        parallel::run_indexed(parts.len(), threads, |id| {
            let mut srng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1 + id as u64));
            let msg = server_sketch(id, &parts[id], protocol, &mut srng);
            let coarse_bits = msg.coarse.wire_bits();
            let fine_bits = msg.fine.wire_bits();
            seal(&to_message(&msg)).map(|frame| (frame, coarse_bits, fine_bits))
        })
    });
    let framed: Vec<(Message, usize, usize)> = framed
        .into_iter()
        .collect::<Result<_, _>>()
        .map_err(DistError::Encode)?;

    let (listener, dialer, socket_file) = bind_topology(cfg)?;

    // Deliver every frame over its own connection, one server at a
    // time in id order: each worker thread spawns at dialogue start,
    // so there is exactly one pending connect per accept and the
    // delivery schedule is part of the deterministic transcript.
    let mut arrived_msgs: Vec<ServerMessage> = Vec::new();
    let mut transcripts: Vec<ServerTranscript> = Vec::with_capacity(servers);
    let mut coarse_bits = 0usize;
    let mut fine_bits = 0usize;
    let delivered = stats::timed_stage("dist/deliver", || -> Result<(), DistError> {
        for (id, (frame, cb, fb)) in framed.iter().enumerate() {
            coarse_bits += cb;
            fine_bits += fb;
            let worker = spawn_worker(&dialer, frame, seed, id, cfg.faults.clone());
            let conn = listener
                .accept()
                .map_err(|e| DistError::Transport(format!("accept server {id}: {e}")))?;
            let (t, accepted) = drive_server(conn, id, frame, cfg);
            let _ = worker.join();
            if let Some(msg) = accepted {
                arrived_msgs.push(msg);
            }
            transcripts.push(t);
        }
        Ok(())
    });
    if let Some(path) = socket_file {
        let _ = std::fs::remove_file(path);
    }
    delivered?;
    record_link_stats(&transcripts);

    let arrived = arrived_msgs.len();
    if arrived == 0 {
        return Err(DistError::AllServersLost { servers });
    }
    let degraded = arrived < servers;
    // Each server held a uniform 1/s slice; rescale the arrived k/s
    // sample back to the whole graph. scale = 1 exactly on clean runs
    // (multiplying by 1.0 preserves every float bit).
    let scale = servers as f64 / arrived as f64;
    let effective_epsilon = cfg.protocol.epsilon + (servers - arrived) as f64 / servers as f64;
    let (estimate, side, candidates) =
        coordinate_scaled(&arrived_msgs, cfg.protocol, scale, &mut master);

    let total_wire_bits: usize = transcripts.iter().map(|t| t.bits_sent).sum();
    let answer = DistributedMinCut {
        estimate,
        side,
        total_wire_bits,
        coarse_bits,
        fine_bits,
        framing_bits: total_wire_bits - coarse_bits - fine_bits,
        candidates,
    };
    Ok(RuntimeOutcome {
        answer,
        servers,
        arrived,
        degraded,
        effective_epsilon,
        transcripts,
    })
}

/// Runs the distributed protocol over fault-injected links.
///
/// # Errors
/// As for [`run_min_cut`].
#[deprecated(note = "build the seed into the config — \
    `RuntimeConfig::builder(protocol).seed(seed).build()` — and call `run_min_cut`")]
pub fn fault_injected_min_cut(
    g: &DiGraph,
    servers: usize,
    cfg: &RuntimeConfig,
    seed: u64,
) -> Result<RuntimeOutcome, DistError> {
    let mut cfg = cfg.clone();
    cfg.seed = seed;
    run_min_cut(g, servers, &cfg)
}

/// Surfaces the transcripts through the process-global stage
/// registry: one `dist/link/sNN` stage per server plus a `dist/link`
/// aggregate, all under named metrics so `DIRCUT_STATS=1` reporting
/// prints them without stdout ever changing.
fn record_link_stats(transcripts: &[ServerTranscript]) {
    let mut agg = [0u64; 9];
    for t in transcripts {
        let metrics = [
            ("bits_sent", t.bits_sent as u64),
            ("bits_acked", t.bits_acked as u64),
            ("retries", u64::from(t.retries)),
            ("drops", u64::from(t.drops)),
            ("corrupt_rejects", u64::from(t.corrupted)),
            ("delayed", u64::from(t.delayed)),
            ("duplicates", u64::from(t.duplicates)),
            ("lat_fast", u64::from(t.lat_fast)),
            ("lat_slow", u64::from(t.lat_slow)),
        ];
        for (slot, (_, v)) in agg.iter_mut().zip(&metrics) {
            *slot += v;
        }
        stats::record_stage_metrics(&format!("dist/link/s{:02}", t.server_id), &metrics);
    }
    let names = [
        "bits_sent",
        "bits_acked",
        "retries",
        "drops",
        "corrupt_rejects",
        "delayed",
        "duplicates",
        "lat_fast",
        "lat_slow",
    ];
    let rollup: Vec<(&str, u64)> = names.iter().copied().zip(agg).collect();
    stats::record_stage_metrics("dist/link", &rollup);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetric_graph;
    use dircut_comm::transport::PREFIX_BYTES;
    use rand::Rng;

    fn test_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.7) {
                    edges.push((u, v, rng.gen_range(0.5..2.0)));
                }
            }
            edges.push((u, (u + 1) % n, 1.0));
        }
        symmetric_graph(n, &edges)
    }

    fn small_cfg(eps: f64) -> ProtocolConfig {
        let mut cfg = ProtocolConfig::new(eps);
        cfg.enumeration_trials = 40;
        cfg
    }

    /// Bytes one sealed value occupies on the wire, prefix included.
    fn unit_bytes<T: WireEncode>(value: &T) -> u64 {
        let framed = seal(&to_message(value)).unwrap();
        (PREFIX_BYTES + framed.bit_len().div_ceil(8)) as u64
    }

    #[test]
    fn link_ctl_round_trips() {
        for ctl in [
            LinkCtl::Poll { attempt: 7 },
            LinkCtl::AttemptDone,
            LinkCtl::Close,
        ] {
            let msg = to_message(&ctl);
            assert_eq!(from_message::<LinkCtl>(&msg).unwrap(), ctl);
        }
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = RuntimeConfig::builder(small_cfg(0.3))
            .faults(crate::FaultPlan::new().drop(0.5).build())
            .timeout_ticks(16)
            .retries(7)
            .threads(2)
            .topology(Topology::Unix)
            .listen(Endpoint::Loopback(9))
            .seed(99)
            .io_timeout(Duration::from_millis(50))
            .build();
        assert_eq!(cfg.faults.drop, 0.5);
        assert_eq!(cfg.timeout_ticks, 16);
        assert_eq!(cfg.max_retries, 7);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.topology, Topology::Unix);
        assert_eq!(cfg.listen, Some(Endpoint::Loopback(9)));
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.io_timeout, Duration::from_millis(50));
    }

    #[test]
    fn clean_run_matches_the_in_process_path_bit_for_bit() {
        let g = test_graph(16, 1);
        let cfg = RuntimeConfig::builder(small_cfg(0.3)).seed(9).build();
        let out = run_min_cut(&g, 3, &cfg).expect("clean run");
        let legacy = crate::distributed_min_cut(&g, 3, cfg.protocol, 9);
        assert_eq!(out.answer.estimate.to_bits(), legacy.estimate.to_bits());
        assert_eq!(out.answer.side, legacy.side);
        assert_eq!(out.answer.candidates, legacy.candidates);
        assert!(!out.degraded);
        assert_eq!(out.arrived, 3);
        assert_eq!(out.effective_epsilon, cfg.protocol.epsilon);
    }

    #[test]
    fn clean_run_accounts_framing_payload_and_observed_bytes_exactly() {
        let g = test_graph(14, 2);
        let cfg = RuntimeConfig::builder(small_cfg(0.3)).seed(11).build();
        let out = run_min_cut(&g, 3, &cfg).expect("clean run");
        let a = &out.answer;
        assert_eq!(
            a.total_wire_bits,
            a.coarse_bits + a.fine_bits + a.framing_bits
        );
        // One frame per server, no retries: framing = s × (header + id).
        let per_server = dircut_comm::frame::FRAME_HEADER_BITS + 32;
        assert_eq!(a.framing_bits, 3 * per_server);
        let done = unit_bytes(&LinkCtl::AttemptDone);
        let poll = unit_bytes(&LinkCtl::Poll { attempt: 0 });
        let close = unit_bytes(&LinkCtl::Close);
        for t in &out.transcripts {
            assert_eq!(t.attempts, 1);
            assert!(t.delivered());
            assert_eq!(t.bits_sent, t.bits_acked);
            // Observed bytes: the data frame plus the done marker in,
            // one poll plus the close out.
            let frame_unit = PREFIX_BYTES as u64 + t.bits_sent.div_ceil(8) as u64;
            assert_eq!(t.wire_bytes, frame_unit + done);
            assert_eq!(t.ctl_bytes, poll + close);
        }
        assert_eq!(
            out.wire_bytes(),
            out.transcripts.iter().map(|t| t.wire_bytes).sum::<u64>()
        );
    }

    #[test]
    fn answers_are_identical_across_thread_counts() {
        let g = test_graph(14, 3);
        let faults = FaultConfig {
            drop: 0.3,
            corrupt: 0.2,
            duplicate: 0.3,
            delay: 0.1,
            dead: Vec::new(),
        };
        let mut outs = Vec::new();
        for threads in [1usize, 4, 8] {
            let cfg = RuntimeConfig::builder(small_cfg(0.3))
                .faults(faults.clone())
                .threads(threads)
                .seed(17)
                .build();
            outs.push(run_min_cut(&g, 4, &cfg).expect("run"));
        }
        for o in &outs[1..] {
            assert_eq!(
                o.answer.estimate.to_bits(),
                outs[0].answer.estimate.to_bits()
            );
            assert_eq!(o.answer.side, outs[0].answer.side);
            assert_eq!(o.answer.total_wire_bits, outs[0].answer.total_wire_bits);
            assert_eq!(o.transcripts, outs[0].transcripts);
        }
    }

    #[test]
    fn outcomes_are_identical_across_topologies() {
        let g = test_graph(14, 8);
        let faults = FaultConfig {
            drop: 0.2,
            corrupt: 0.2,
            duplicate: 0.4,
            delay: 0.1,
            dead: Vec::new(),
        };
        let mut outs = Vec::new();
        for topology in [Topology::Loopback, Topology::Tcp, Topology::Unix] {
            let cfg = RuntimeConfig::builder(small_cfg(0.3))
                .faults(faults.clone())
                .topology(topology)
                .seed(29)
                .build();
            outs.push(run_min_cut(&g, 3, &cfg).expect("run"));
        }
        for o in &outs[1..] {
            assert_eq!(
                o.answer.estimate.to_bits(),
                outs[0].answer.estimate.to_bits()
            );
            assert_eq!(o.answer.side, outs[0].answer.side);
            assert_eq!(o.answer.total_wire_bits, outs[0].answer.total_wire_bits);
            // Byte counters included: the wire bill does not depend
            // on which wire carried it.
            assert_eq!(o.transcripts, outs[0].transcripts);
        }
    }

    #[test]
    fn dead_server_triggers_degraded_mode_with_widened_epsilon() {
        let g = test_graph(16, 4);
        let cfg = RuntimeConfig::builder(small_cfg(0.25))
            .faults(crate::FaultPlan::new().kill([1]).build())
            .seed(5)
            .build();
        let out = run_min_cut(&g, 4, &cfg).expect("degraded run");
        assert!(out.degraded);
        assert_eq!(out.arrived, 3);
        assert!((out.effective_epsilon - (0.25 + 0.25)).abs() < 1e-12);
        let t = &out.transcripts[1];
        assert!(!t.delivered());
        assert_eq!(t.attempts, cfg.max_retries + 1);
        assert_eq!(t.drops, cfg.max_retries + 1);
        // The lost server's bits are still counted against the
        // protocol, but nothing of them ever reached the socket.
        assert!(t.bits_sent > 0);
        assert_eq!(t.wire_bytes, 0);
        assert!(out.transcripts[0].wire_bytes > unit_bytes(&LinkCtl::AttemptDone));
        // The scaled estimate should still be in the right ballpark of
        // the true min cut (the rescaling is unbiased); keep the band
        // generous — this checks the plumbing, not concentration.
        let truth = dircut_graph::mincut::stoer_wagner(&g).value / 2.0;
        assert!(
            (out.answer.estimate - truth).abs() <= truth,
            "degraded estimate {} vs truth {truth} (ε_eff {})",
            out.answer.estimate,
            out.effective_epsilon
        );
    }

    #[test]
    fn all_servers_dead_is_an_error_not_a_panic() {
        let g = test_graph(10, 5);
        let cfg = RuntimeConfig::builder(small_cfg(0.3))
            .faults(crate::FaultPlan::new().kill([0, 1]).build())
            .seed(3)
            .build();
        let err = run_min_cut(&g, 2, &cfg).unwrap_err();
        assert_eq!(err, DistError::AllServersLost { servers: 2 });
        assert!(err.to_string().contains("all 2 servers"));
    }

    #[test]
    fn corruption_is_survived_by_retrying() {
        let g = test_graph(12, 6);
        // 10 attempts at corrupt=0.3: per-server loss probability
        // 0.3¹⁰ ≈ 6·10⁻⁶ — no seed dependence worth worrying about.
        let cfg = RuntimeConfig::builder(small_cfg(0.3))
            .faults(crate::FaultPlan::new().corrupt(0.3).build())
            .retries(9)
            .seed(2)
            .build();
        let out = run_min_cut(&g, 3, &cfg).expect("run");
        assert!(!out.degraded);
        let retried: u32 = out.transcripts.iter().map(|t| t.retries).sum();
        let corrupted: u32 = out.transcripts.iter().map(|t| t.corrupted).sum();
        assert_eq!(out.answer.framing_bits > 3 * 112, retried > 0);
        assert!(corrupted == retried, "every retry here is a CRC reject");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_the_seeded_config() {
        let g = test_graph(12, 7);
        let cfg = RuntimeConfig::new(small_cfg(0.3));
        let via_shim = fault_injected_min_cut(&g, 3, &cfg, 21).expect("shim run");
        let seeded = RuntimeConfig::builder(small_cfg(0.3)).seed(21).build();
        let direct = run_min_cut(&g, 3, &seeded).expect("direct run");
        assert_eq!(
            via_shim.answer.estimate.to_bits(),
            direct.answer.estimate.to_bits()
        );
        assert_eq!(via_shim.transcripts, direct.transcripts);
    }
}
