//! The fault-injected distributed runtime: servers on the worker
//! pool, real serialized frames, an injectable lossy link, and a
//! coordinator with timeouts, bounded retries, and straggler
//! degradation.
//!
//! [`fault_injected_min_cut`] runs the same protocol as
//! [`distributed_min_cut`](crate::distributed_min_cut), but every
//! [`ServerMessage`] actually crosses a [`FaultyLink`] as sealed
//! frame bytes (magic + length + CRC-32 around the
//! [`WireEncode`](dircut_comm::WireEncode) payload). The coordinator
//! accepts a frame only if it arrives within
//! [`timeout_ticks`](RuntimeConfig::timeout_ticks), passes the frame
//! check, and decodes; otherwise it retries, up to
//! [`max_retries`](RuntimeConfig::max_retries) retransmissions.
//!
//! **Degradation.** If after all retries only `k` of `s` servers
//! answered (`1 ≤ k < s`), the coordinator still solves: the arrived
//! coarse union and fine estimates are scaled by `s/k` (each server
//! holds a uniformly random `1/s` slice of the edges, so the arrived
//! slices are an unbiased `k/s` sample of the graph), and the result
//! is reported *degraded* with `effective_epsilon = ε + (s−k)/s` — a
//! deliberately conservative additive widening covering the extra
//! sampling variance of the missing slices. `k = 0` is
//! [`DistError::AllServersLost`].
//!
//! **Determinism.** Sketch randomness is per-server
//! (`seed + 1 + id`), link randomness is per `(seed, server,
//! attempt)`, and the coordinator consumes the master stream exactly
//! as the in-process path does — so for any fault configuration the
//! full outcome (answer, transcripts, every bit count) is a pure
//! function of `(graph, servers, config, seed)` and is bit-identical
//! across thread counts.

use crate::link::{FaultConfig, FaultyLink, BASE_LATENCY_TICKS, DELAY_TICKS};
use crate::{
    coordinate_scaled, partition_edges, server_sketch, DistributedMinCut, ProtocolConfig,
    ServerMessage,
};
use dircut_comm::frame::{open, seal};
use dircut_comm::{from_message, to_message, WireEncode, WireError};
use dircut_graph::{parallel, stats, DiGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Configuration of one fault-injected run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// The protocol parameters (accuracy, enumeration effort).
    pub protocol: ProtocolConfig,
    /// The link fault model.
    pub faults: FaultConfig,
    /// Deadline in ticks: a frame arriving later is treated as lost.
    /// Must exceed [`BASE_LATENCY_TICKS`] or even clean links time out.
    pub timeout_ticks: u32,
    /// Retransmissions allowed per server after the first attempt.
    pub max_retries: u32,
    /// Worker threads for the sketching fan-out (0 = the pool default,
    /// which honours `DIRCUT_THREADS`).
    pub threads: usize,
}

impl RuntimeConfig {
    /// Clean-link defaults: timeout 8 ticks, 3 retries.
    #[must_use]
    pub fn new(protocol: ProtocolConfig) -> Self {
        Self {
            protocol,
            faults: FaultConfig::clean(),
            timeout_ticks: 2 * BASE_LATENCY_TICKS,
            max_retries: 3,
            threads: 0,
        }
    }

    /// Same defaults with a fault model.
    #[must_use]
    pub fn with_faults(protocol: ProtocolConfig, faults: FaultConfig) -> Self {
        Self {
            faults,
            ..Self::new(protocol)
        }
    }
}

/// Why a fault-injected run produced no answer at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// Every server's frames were lost after all retries; there is
    /// nothing to solve from.
    AllServersLost {
        /// How many servers were supposed to report.
        servers: usize,
    },
    /// A server's sketch could not be framed for transmission —
    /// in practice [`WireError::Oversized`], a payload too big for
    /// the frame header's length field.
    Encode(WireError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AllServersLost { servers } => {
                write!(f, "all {servers} servers lost after retries")
            }
            Self::Encode(e) => write!(f, "failed to frame a server message: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Per-server delivery log: what one link did across all attempts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerTranscript {
    /// The server this transcript belongs to.
    pub server_id: usize,
    /// Transmit attempts made (1 + retries actually used).
    pub attempts: u32,
    /// Retransmissions after the first attempt.
    pub retries: u32,
    /// Total bits the server put on the wire across all attempts
    /// (full frames; link-injected duplicate copies are not the
    /// server's transmissions and are not counted here).
    pub bits_sent: usize,
    /// Bits of the one accepted frame (0 if none was accepted).
    pub bits_acked: usize,
    /// Attempts dropped by the link.
    pub drops: u32,
    /// Attempts whose frame was bit-corrupted (and CRC-rejected).
    pub corrupted: u32,
    /// Attempts delayed past the deadline.
    pub delayed: u32,
    /// Link-injected duplicate copies observed.
    pub duplicates: u32,
    /// Deliveries (any copy) with latency < 4 ticks.
    pub lat_fast: u32,
    /// Deliveries with latency in `4..64` ticks.
    pub lat_slow: u32,
    /// Deliveries with latency ≥ 64 ticks.
    pub lat_stale: u32,
    /// Latency of the accepted frame, if one was accepted.
    pub accepted_latency: Option<u32>,
}

impl ServerTranscript {
    /// Whether the coordinator got this server's message.
    #[must_use]
    pub fn delivered(&self) -> bool {
        self.bits_acked > 0
    }
}

/// The outcome of a fault-injected run: the answer plus everything
/// the coordinator observed while obtaining it.
#[derive(Debug, Clone)]
pub struct RuntimeOutcome {
    /// The min-cut answer, with full bit accounting (including
    /// framing and retransmission overhead).
    pub answer: DistributedMinCut,
    /// Servers that participated.
    pub servers: usize,
    /// Servers whose message was accepted before the deadline.
    pub arrived: usize,
    /// Whether the coordinator had to solve from a strict subset.
    pub degraded: bool,
    /// The guarantee actually delivered: the configured ε widened by
    /// `(s − k)/s` when `k < s` servers arrived.
    pub effective_epsilon: f64,
    /// One transcript per server, in server order.
    pub transcripts: Vec<ServerTranscript>,
}

/// Runs the distributed protocol over fault-injected links.
///
/// # Errors
/// [`DistError::AllServersLost`] if no server message survives the
/// link within the retry budget.
///
/// # Panics
/// Panics if `servers == 0` or the coarse union yields no candidate
/// cut (fewer than 2 nodes).
pub fn fault_injected_min_cut(
    g: &DiGraph,
    servers: usize,
    cfg: &RuntimeConfig,
    seed: u64,
) -> Result<RuntimeOutcome, DistError> {
    assert!(servers >= 1, "need at least one server");
    let mut master = ChaCha8Rng::seed_from_u64(seed);
    let parts = partition_edges(g, servers, &mut master);
    let threads = if cfg.threads == 0 {
        parallel::default_threads()
    } else {
        cfg.threads
    };

    // Fan out: each server sketches its slice and seals the message
    // into a frame. Results come back in server order, so the bytes
    // on the wire are thread-count independent.
    let protocol = cfg.protocol;
    let framed = stats::timed_stage("dist/server_sketch", || {
        parallel::run_indexed(parts.len(), threads, |id| {
            let mut srng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1 + id as u64));
            let msg = server_sketch(id, &parts[id], protocol, &mut srng);
            let coarse_bits = msg.coarse.wire_bits();
            let fine_bits = msg.fine.wire_bits();
            seal(&to_message(&msg)).map(|frame| (frame, coarse_bits, fine_bits))
        })
    });
    let framed: Vec<(dircut_comm::Message, usize, usize)> = framed
        .into_iter()
        .collect::<Result<_, _>>()
        .map_err(DistError::Encode)?;

    // Deliver every frame through its faulty link, with retries. The
    // loop is sequential and every draw is seed-derived, so the
    // delivery schedule is part of the deterministic transcript.
    let mut arrived_msgs: Vec<ServerMessage> = Vec::new();
    let mut transcripts: Vec<ServerTranscript> = Vec::with_capacity(servers);
    let mut coarse_bits = 0usize;
    let mut fine_bits = 0usize;
    stats::timed_stage("dist/deliver", || {
        for (id, (frame, cb, fb)) in framed.iter().enumerate() {
            coarse_bits += cb;
            fine_bits += fb;
            let link = FaultyLink::new(seed, id, cfg.faults.clone());
            let mut t = ServerTranscript {
                server_id: id,
                ..ServerTranscript::default()
            };
            let mut accepted: Option<ServerMessage> = None;
            for attempt in 0..=cfg.max_retries {
                t.attempts += 1;
                t.retries = t.attempts - 1;
                t.bits_sent += frame.bit_len();
                let tx = link.transmit(frame, attempt);
                t.drops += u32::from(tx.dropped);
                t.corrupted += u32::from(tx.corrupted);
                t.delayed += u32::from(tx.delayed);
                for d in &tx.deliveries {
                    t.duplicates += u32::from(d.duplicate);
                    if d.latency < BASE_LATENCY_TICKS {
                        t.lat_fast += 1;
                    } else if d.latency < DELAY_TICKS {
                        t.lat_slow += 1;
                    } else {
                        t.lat_stale += 1;
                    }
                    if accepted.is_none() && d.latency <= cfg.timeout_ticks {
                        if let Ok(payload) = open(&d.frame) {
                            if let Ok(msg) = from_message::<ServerMessage>(&payload) {
                                t.bits_acked = frame.bit_len();
                                t.accepted_latency = Some(d.latency);
                                accepted = Some(msg);
                            }
                        }
                    }
                }
                if accepted.is_some() {
                    break;
                }
            }
            if let Some(msg) = accepted {
                arrived_msgs.push(msg);
            }
            transcripts.push(t);
        }
    });
    record_link_stats(&transcripts);

    let arrived = arrived_msgs.len();
    if arrived == 0 {
        return Err(DistError::AllServersLost { servers });
    }
    let degraded = arrived < servers;
    // Each server held a uniform 1/s slice; rescale the arrived k/s
    // sample back to the whole graph. scale = 1 exactly on clean runs
    // (multiplying by 1.0 preserves every float bit).
    let scale = servers as f64 / arrived as f64;
    let effective_epsilon = cfg.protocol.epsilon + (servers - arrived) as f64 / servers as f64;
    let (estimate, side, candidates) =
        coordinate_scaled(&arrived_msgs, cfg.protocol, scale, &mut master);

    let total_wire_bits: usize = transcripts.iter().map(|t| t.bits_sent).sum();
    let answer = DistributedMinCut {
        estimate,
        side,
        total_wire_bits,
        coarse_bits,
        fine_bits,
        framing_bits: total_wire_bits - coarse_bits - fine_bits,
        candidates,
    };
    Ok(RuntimeOutcome {
        answer,
        servers,
        arrived,
        degraded,
        effective_epsilon,
        transcripts,
    })
}

/// Surfaces the transcripts through the process-global stage
/// registry: one `dist/link/sNN` stage per server plus a `dist/link`
/// aggregate, all under named metrics so `DIRCUT_STATS=1` reporting
/// prints them without stdout ever changing.
fn record_link_stats(transcripts: &[ServerTranscript]) {
    let mut agg = [0u64; 9];
    for t in transcripts {
        let metrics = [
            ("bits_sent", t.bits_sent as u64),
            ("bits_acked", t.bits_acked as u64),
            ("retries", u64::from(t.retries)),
            ("drops", u64::from(t.drops)),
            ("corrupt_rejects", u64::from(t.corrupted)),
            ("delayed", u64::from(t.delayed)),
            ("duplicates", u64::from(t.duplicates)),
            ("lat_fast", u64::from(t.lat_fast)),
            ("lat_slow", u64::from(t.lat_slow)),
        ];
        for (slot, (_, v)) in agg.iter_mut().zip(&metrics) {
            *slot += v;
        }
        stats::record_stage_metrics(&format!("dist/link/s{:02}", t.server_id), &metrics);
    }
    let names = [
        "bits_sent",
        "bits_acked",
        "retries",
        "drops",
        "corrupt_rejects",
        "delayed",
        "duplicates",
        "lat_fast",
        "lat_slow",
    ];
    let rollup: Vec<(&str, u64)> = names.iter().copied().zip(agg).collect();
    stats::record_stage_metrics("dist/link", &rollup);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetric_graph;
    use rand::Rng;

    fn test_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.7) {
                    edges.push((u, v, rng.gen_range(0.5..2.0)));
                }
            }
            edges.push((u, (u + 1) % n, 1.0));
        }
        symmetric_graph(n, &edges)
    }

    fn small_cfg(eps: f64) -> ProtocolConfig {
        let mut cfg = ProtocolConfig::new(eps);
        cfg.enumeration_trials = 40;
        cfg
    }

    #[test]
    fn clean_run_matches_the_in_process_path_bit_for_bit() {
        let g = test_graph(16, 1);
        let cfg = RuntimeConfig::new(small_cfg(0.3));
        let out = fault_injected_min_cut(&g, 3, &cfg, 9).expect("clean run");
        let legacy = crate::distributed_min_cut(&g, 3, cfg.protocol, 9);
        assert_eq!(out.answer.estimate.to_bits(), legacy.estimate.to_bits());
        assert_eq!(out.answer.side, legacy.side);
        assert_eq!(out.answer.candidates, legacy.candidates);
        assert!(!out.degraded);
        assert_eq!(out.arrived, 3);
        assert_eq!(out.effective_epsilon, cfg.protocol.epsilon);
    }

    #[test]
    fn clean_run_accounts_framing_and_payload_exactly() {
        let g = test_graph(14, 2);
        let cfg = RuntimeConfig::new(small_cfg(0.3));
        let out = fault_injected_min_cut(&g, 3, &cfg, 11).expect("clean run");
        let a = &out.answer;
        assert_eq!(
            a.total_wire_bits,
            a.coarse_bits + a.fine_bits + a.framing_bits
        );
        // One frame per server, no retries: framing = s × (header + id).
        let per_server = dircut_comm::frame::FRAME_HEADER_BITS + 32;
        assert_eq!(a.framing_bits, 3 * per_server);
        for t in &out.transcripts {
            assert_eq!(t.attempts, 1);
            assert!(t.delivered());
            assert_eq!(t.bits_sent, t.bits_acked);
        }
    }

    #[test]
    fn answers_are_identical_across_thread_counts() {
        let g = test_graph(14, 3);
        let faults = FaultConfig {
            drop: 0.3,
            corrupt: 0.2,
            duplicate: 0.3,
            delay: 0.1,
            dead: Vec::new(),
        };
        let mut outs = Vec::new();
        for threads in [1usize, 4, 8] {
            let mut cfg = RuntimeConfig::with_faults(small_cfg(0.3), faults.clone());
            cfg.threads = threads;
            outs.push(fault_injected_min_cut(&g, 4, &cfg, 17).expect("run"));
        }
        for o in &outs[1..] {
            assert_eq!(
                o.answer.estimate.to_bits(),
                outs[0].answer.estimate.to_bits()
            );
            assert_eq!(o.answer.side, outs[0].answer.side);
            assert_eq!(o.answer.total_wire_bits, outs[0].answer.total_wire_bits);
            assert_eq!(o.transcripts, outs[0].transcripts);
        }
    }

    #[test]
    fn dead_server_triggers_degraded_mode_with_widened_epsilon() {
        let g = test_graph(16, 4);
        let faults = FaultConfig {
            dead: vec![1],
            ..FaultConfig::clean()
        };
        let cfg = RuntimeConfig::with_faults(small_cfg(0.25), faults);
        let out = fault_injected_min_cut(&g, 4, &cfg, 5).expect("degraded run");
        assert!(out.degraded);
        assert_eq!(out.arrived, 3);
        assert!((out.effective_epsilon - (0.25 + 0.25)).abs() < 1e-12);
        let t = &out.transcripts[1];
        assert!(!t.delivered());
        assert_eq!(t.attempts, cfg.max_retries + 1);
        assert_eq!(t.drops, cfg.max_retries + 1);
        // The lost server's bits still crossed the wire and are still
        // counted against the protocol.
        assert!(t.bits_sent > 0);
        // The scaled estimate should still be in the right ballpark of
        // the true min cut (the rescaling is unbiased); keep the band
        // generous — this checks the plumbing, not concentration.
        let truth = dircut_graph::mincut::stoer_wagner(&g).value / 2.0;
        assert!(
            (out.answer.estimate - truth).abs() <= truth,
            "degraded estimate {} vs truth {truth} (ε_eff {})",
            out.answer.estimate,
            out.effective_epsilon
        );
    }

    #[test]
    fn all_servers_dead_is_an_error_not_a_panic() {
        let g = test_graph(10, 5);
        let faults = FaultConfig {
            dead: vec![0, 1],
            ..FaultConfig::clean()
        };
        let cfg = RuntimeConfig::with_faults(small_cfg(0.3), faults);
        let err = fault_injected_min_cut(&g, 2, &cfg, 3).unwrap_err();
        assert_eq!(err, DistError::AllServersLost { servers: 2 });
        assert!(err.to_string().contains("all 2 servers"));
    }

    #[test]
    fn corruption_is_survived_by_retrying() {
        let g = test_graph(12, 6);
        let faults = FaultConfig {
            corrupt: 0.3,
            ..FaultConfig::clean()
        };
        let mut cfg = RuntimeConfig::with_faults(small_cfg(0.3), faults);
        // 10 attempts at corrupt=0.3: per-server loss probability
        // 0.3¹⁰ ≈ 6·10⁻⁶ — no seed dependence worth worrying about.
        cfg.max_retries = 9;
        let out = fault_injected_min_cut(&g, 3, &cfg, 2).expect("run");
        assert!(!out.degraded);
        let retried: u32 = out.transcripts.iter().map(|t| t.retries).sum();
        let corrupted: u32 = out.transcripts.iter().map(|t| t.corrupted).sum();
        assert_eq!(out.answer.framing_bits > 3 * 112, retried > 0);
        assert!(corrupted == retried, "every retry here is a CRC reject");
    }
}
