//! Fault injection at the socket boundary: a [`FaultyTransport`]
//! decorates any [`Connection`] and decides, per transmit attempt,
//! what the wire does to the frame.
//!
//! Each *transmit attempt* draws its fate from a [`ChaCha8Rng`] seeded
//! purely by `(link seed, server, attempt)`, so a run's delivery
//! schedule is a deterministic function of the seed and the fault
//! configuration — never of thread interleaving or wall-clock. The
//! draw order within an attempt is fixed (drop, latency, delay,
//! duplicate, corrupt, corrupt position) and every draw is consumed
//! whether or not the fault fires, so changing one fault's probability
//! never shifts the randomness feeding the others. That is what makes
//! the runtime's answer provably invariant under duplicate-delivery
//! faults: the duplicate decision reads its own dedicated draw.
//!
//! Faults compose the way real links fail:
//!
//! * **drop** — nothing is written to the socket; the coordinator's
//!   *real* read deadline fires and it retries.
//! * **delay** — the frame crosses the socket, but stamped
//!   [`DELAY_TICKS`] late in its [`DeliveryTag`]; past the
//!   coordinator's tick deadline it is as good as dropped (the bits
//!   still crossed the wire and are still counted).
//! * **duplicate** — the link writes a second copy of the same frame.
//!   The copy is a link-level artifact: the server transmitted once,
//!   so accounting counts the attempt once.
//! * **corrupt** — one bit of the sealed frame flips in flight. The
//!   CRC-32 frame check ([`dircut_comm::frame::open`]) catches every
//!   single-bit flip, so corruption surfaces as a rejected frame and a
//!   retry, never as silently wrong data. The [`DeliveryTag`] rides in
//!   the prefix `meta` word *outside* the CRC, so a corrupted frame
//!   never loses its attribution.
//! * **dead servers** — listed links never write anything, regardless
//!   of probabilities: the deterministic way to exercise the
//!   coordinator's degraded mode.
//!
//! Control traffic (anything sent with `meta ==` [`META_CTL`]) passes
//! through untouched in both directions: faults model the data link
//! from server to coordinator, not the dialogue that schedules it.

use dircut_comm::bitio::{BitWriter, Message};
use dircut_comm::transport::{Connection, TransportError};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io;
use std::time::Duration;

/// Latency added to a delayed frame, in coordinator ticks. Far above
/// any sane [`timeout`](crate::runtime::RuntimeConfig::timeout_ticks),
/// so "delayed" deterministically means "missed the deadline".
pub const DELAY_TICKS: u32 = 64;

/// Base in-flight latency range of an undelayed frame: `0..4` ticks.
pub const BASE_LATENCY_TICKS: u32 = 4;

/// The `meta` word marking a control frame: fault injection passes it
/// through untouched. Never collides with a packed [`DeliveryTag`],
/// whose bits 9–23 are always zero.
pub const META_CTL: u32 = u32::MAX;

/// Fault probabilities for one run's links. All probabilities are per
/// transmit attempt and independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Probability an attempt is dropped outright.
    pub drop: f64,
    /// Probability an attempt is delayed by [`DELAY_TICKS`].
    pub delay: f64,
    /// Probability the link delivers a duplicate copy.
    pub duplicate: f64,
    /// Probability exactly one bit of the frame flips in flight.
    pub corrupt: f64,
    /// Servers whose link never delivers (deterministic total loss).
    pub dead: Vec<usize>,
}

impl FaultConfig {
    /// A perfectly clean link.
    #[must_use]
    pub fn clean() -> Self {
        Self::default()
    }

    /// True when every probability is zero and no server is dead.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0
            && self.delay == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.dead.is_empty()
    }
}

/// Builder for a [`FaultConfig`]: name the faults you want, leave the
/// rest clean.
///
/// ```
/// use dircut_dist::FaultPlan;
/// let faults = FaultPlan::new().drop(0.2).corrupt(0.1).kill([3]).build();
/// assert_eq!(faults.drop, 0.2);
/// assert!(faults.dead.contains(&3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// A plan with every fault off.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-attempt drop probability.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn drop(mut self, p: f64) -> Self {
        self.cfg.drop = p;
        self
    }

    /// Sets the per-attempt delay probability.
    #[must_use]
    pub fn delay(mut self, p: f64) -> Self {
        self.cfg.delay = p;
        self
    }

    /// Sets the per-attempt duplicate probability.
    #[must_use]
    pub fn duplicate(mut self, p: f64) -> Self {
        self.cfg.duplicate = p;
        self
    }

    /// Sets the per-attempt single-bit-corruption probability.
    #[must_use]
    pub fn corrupt(mut self, p: f64) -> Self {
        self.cfg.corrupt = p;
        self
    }

    /// Marks servers whose link never delivers anything.
    #[must_use]
    pub fn kill(mut self, servers: impl IntoIterator<Item = usize>) -> Self {
        self.cfg.dead.extend(servers);
        self
    }

    /// Finishes the plan.
    #[must_use]
    pub fn build(self) -> FaultConfig {
        self.cfg
    }
}

impl From<FaultPlan> for FaultConfig {
    fn from(plan: FaultPlan) -> Self {
        plan.build()
    }
}

/// Link metadata stamped into the prefix `meta` word of every faulted
/// data frame. It travels outside the CRC, so the coordinator can
/// attribute even a corrupted delivery to its attempt and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryTag {
    /// Simulated ticks after the transmit at which the copy arrived.
    pub latency: u32,
    /// Whether this copy is a link-injected duplicate.
    pub duplicate: bool,
    /// The transmit attempt (mod 256) that produced it.
    pub attempt: u32,
}

impl DeliveryTag {
    /// Packs the tag into a `meta` word: latency in bits 0–7, the
    /// duplicate flag in bit 8, the attempt (mod 256) in bits 24–31.
    /// Bits 9–23 stay zero, so a packed tag never equals [`META_CTL`].
    #[must_use]
    pub fn pack(&self) -> u32 {
        (self.latency & 0xFF) | (u32::from(self.duplicate) << 8) | ((self.attempt & 0xFF) << 24)
    }

    /// Recovers a tag from a `meta` word.
    #[must_use]
    pub fn unpack(meta: u32) -> Self {
        Self {
            latency: meta & 0xFF,
            duplicate: meta & (1 << 8) != 0,
            attempt: meta >> 24,
        }
    }
}

/// SplitMix64 finalizer: decorrelates structured `(seed, server,
/// attempt)` triples into independent-looking RNG seeds.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic lossy channel decorating one [`Connection`] from a
/// server to the coordinator.
///
/// [`send_frame`](Connection::send_frame) interprets `meta` as the
/// attempt number (unless it is [`META_CTL`]) and plays the drawn fate
/// out on the real socket: drops write nothing, corruption flips one
/// bit of the sealed frame, duplicates write a second copy, and the
/// simulated latency crosses the wire in the [`DeliveryTag`]. Receives
/// and control sends pass straight through.
pub struct FaultyTransport<C: Connection> {
    inner: C,
    seed: u64,
    server: usize,
    faults: FaultConfig,
    last_dropped: bool,
}

impl<C: Connection> FaultyTransport<C> {
    /// Decorates `inner` as the link of `server` under `faults`,
    /// deriving all randomness from `seed`.
    #[must_use]
    pub fn new(inner: C, seed: u64, server: usize, faults: FaultConfig) -> Self {
        Self {
            inner,
            seed,
            server,
            faults,
            last_dropped: false,
        }
    }

    /// Whether the most recent data-frame send was dropped (nothing
    /// crossed the socket). The worker checks this to decide whether
    /// an attempt-done marker would be a lie.
    #[must_use]
    pub fn last_dropped(&self) -> bool {
        self.last_dropped
    }

    /// The RNG seed of one `(server, attempt)` transmit.
    fn attempt_seed(&self, attempt: u32) -> u64 {
        mix(self
            .seed
            .wrapping_add(mix(self.server as u64 + 1))
            .wrapping_add(mix(u64::from(attempt) + 0x9E37_79B9)))
    }
}

impl<C: Connection> Connection for FaultyTransport<C> {
    fn send_frame(&mut self, frame: &Message, meta: u32) -> Result<(), TransportError> {
        if meta == META_CTL {
            return self.inner.send_frame(frame, meta);
        }
        let attempt = meta;
        let mut rng = ChaCha8Rng::seed_from_u64(self.attempt_seed(attempt));
        // Fixed draw order; every draw consumed regardless of outcome.
        let dropped = rng.gen_bool(self.faults.drop.clamp(0.0, 1.0));
        let base_latency = rng.gen_range(0..BASE_LATENCY_TICKS);
        let delayed = rng.gen_bool(self.faults.delay.clamp(0.0, 1.0));
        let duplicate = rng.gen_bool(self.faults.duplicate.clamp(0.0, 1.0));
        let corrupted = rng.gen_bool(self.faults.corrupt.clamp(0.0, 1.0)) && frame.bit_len() > 0;
        let flip_pos = if frame.bit_len() > 0 {
            rng.gen_range(0..frame.bit_len())
        } else {
            0
        };

        self.last_dropped = dropped || self.faults.dead.contains(&self.server);
        if self.last_dropped {
            return Ok(());
        }

        let received = if corrupted {
            flip_bit(frame, flip_pos)
        } else {
            frame.clone()
        };
        let latency = base_latency + if delayed { DELAY_TICKS } else { 0 };
        let tag = DeliveryTag {
            latency,
            duplicate: false,
            attempt,
        };
        self.inner.send_frame(&received, tag.pack())?;
        if duplicate {
            // The copy shares the original's fate (same bits, one tick
            // later): duplication can never rescue a corrupted or
            // delayed attempt, only echo it.
            let dup_tag = DeliveryTag {
                latency: latency + 1,
                duplicate: true,
                attempt,
            };
            self.inner.send_frame(&received, dup_tag.pack())?;
        }
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<(Message, u32), TransportError> {
        self.inner.recv_frame()
    }

    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }
}

/// Returns `frame` with bit `pos` flipped.
#[must_use]
fn flip_bit(frame: &Message, pos: usize) -> Message {
    let mut w = BitWriter::new();
    let mut r = frame.reader();
    for i in 0..frame.bit_len() {
        let bit = r.read_bit();
        w.write_bit(if i == pos { !bit } else { bit });
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_comm::frame::{open, seal};
    use dircut_comm::transport::Conn;

    fn payload() -> Message {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_f64(1.25);
        w.finish()
    }

    /// Runs one faulted transmit attempt over a loopback pair and
    /// collects everything that crossed the socket, in order.
    fn transmit(
        ft: &mut FaultyTransport<Conn>,
        rx: &mut Conn,
        frame: &Message,
        attempt: u32,
    ) -> Vec<(Message, DeliveryTag)> {
        ft.send_frame(frame, attempt).unwrap();
        // A sentinel marks the end of the attempt's deliveries.
        ft.send_frame(&seal(&payload()).unwrap(), META_CTL).unwrap();
        let mut out = Vec::new();
        loop {
            let (msg, meta) = rx.recv_frame().unwrap();
            if meta == META_CTL {
                return out;
            }
            out.push((msg, DeliveryTag::unpack(meta)));
        }
    }

    fn pair(seed: u64, server: usize, faults: FaultConfig) -> (FaultyTransport<Conn>, Conn) {
        let (tx, rx) = Conn::loopback_pair();
        (FaultyTransport::new(tx, seed, server, faults), rx)
    }

    #[test]
    fn tags_round_trip_and_never_collide_with_ctl() {
        for (latency, duplicate, attempt) in [(0, false, 0), (68, true, 9), (255, true, 255)] {
            let tag = DeliveryTag {
                latency,
                duplicate,
                attempt,
            };
            assert_eq!(DeliveryTag::unpack(tag.pack()), tag);
            assert_ne!(tag.pack(), META_CTL);
        }
    }

    #[test]
    fn clean_link_delivers_exactly_once_within_base_latency() {
        let (mut ft, mut rx) = pair(7, 0, FaultConfig::clean());
        let frame = seal(&payload()).unwrap();
        for attempt in 0..20 {
            let got = transmit(&mut ft, &mut rx, &frame, attempt);
            assert!(!ft.last_dropped());
            assert_eq!(got.len(), 1);
            let (msg, tag) = &got[0];
            assert!(tag.latency < BASE_LATENCY_TICKS);
            assert!(!tag.duplicate);
            assert_eq!(tag.attempt, attempt);
            assert_eq!(open(msg).unwrap(), payload());
        }
    }

    #[test]
    fn transmits_are_deterministic_per_seed_and_attempt() {
        let faults = FaultConfig {
            drop: 0.3,
            delay: 0.2,
            duplicate: 0.4,
            corrupt: 0.3,
            dead: Vec::new(),
        };
        let frame = seal(&payload()).unwrap();
        let (mut a, mut arx) = pair(11, 2, faults.clone());
        let (mut b, mut brx) = pair(11, 2, faults);
        for attempt in 0..50 {
            let ta = transmit(&mut a, &mut arx, &frame, attempt);
            let tb = transmit(&mut b, &mut brx, &frame, attempt);
            assert_eq!(ta, tb, "attempt {attempt}");
            assert_eq!(a.last_dropped(), b.last_dropped());
        }
    }

    #[test]
    fn corrupted_frames_are_rejected_by_the_frame_check() {
        let faults = FaultConfig {
            corrupt: 1.0,
            ..FaultConfig::clean()
        };
        let (mut ft, mut rx) = pair(3, 1, faults);
        let frame = seal(&payload()).unwrap();
        for attempt in 0..30 {
            for (msg, _) in transmit(&mut ft, &mut rx, &frame, attempt) {
                assert!(open(&msg).is_err(), "attempt {attempt} slipped through");
            }
        }
    }

    #[test]
    fn duplicate_probability_does_not_disturb_other_faults() {
        let base = FaultConfig {
            drop: 0.4,
            delay: 0.3,
            duplicate: 0.0,
            corrupt: 0.3,
            dead: Vec::new(),
        };
        let dup = FaultConfig {
            duplicate: 1.0,
            ..base.clone()
        };
        let frame = seal(&payload()).unwrap();
        let (mut plain, mut prx) = pair(19, 0, base);
        let (mut noisy, mut nrx) = pair(19, 0, dup);
        for attempt in 0..60 {
            let tp = transmit(&mut plain, &mut prx, &frame, attempt);
            let tn = transmit(&mut noisy, &mut nrx, &frame, attempt);
            assert_eq!(
                plain.last_dropped(),
                noisy.last_dropped(),
                "attempt {attempt}"
            );
            // Identical primary delivery; duplication only appends.
            assert_eq!(tp.first(), tn.first(), "attempt {attempt}");
            if !noisy.last_dropped() {
                assert_eq!(tn.len(), 2);
                assert!(tn[1].1.duplicate);
                assert_eq!(tn[0].0, tn[1].0);
                assert_eq!(tn[1].1.latency, tn[0].1.latency + 1);
            }
        }
    }

    #[test]
    fn dead_servers_never_deliver() {
        let faults = FaultConfig {
            dead: vec![2],
            ..FaultConfig::clean()
        };
        let frame = seal(&payload()).unwrap();
        let (mut dead, mut drx) = pair(5, 2, faults.clone());
        let (mut alive, mut arx) = pair(5, 1, faults);
        for attempt in 0..10 {
            assert!(transmit(&mut dead, &mut drx, &frame, attempt).is_empty());
            assert!(dead.last_dropped());
            assert_eq!(transmit(&mut alive, &mut arx, &frame, attempt).len(), 1);
        }
    }

    #[test]
    fn delayed_frames_arrive_past_any_deadline() {
        let faults = FaultConfig {
            delay: 1.0,
            ..FaultConfig::clean()
        };
        let (mut ft, mut rx) = pair(13, 0, faults);
        let frame = seal(&payload()).unwrap();
        let got = transmit(&mut ft, &mut rx, &frame, 0);
        assert!(got[0].1.latency >= DELAY_TICKS);
    }

    #[test]
    fn control_frames_pass_through_unfaulted() {
        let faults = FaultConfig {
            drop: 1.0,
            ..FaultConfig::clean()
        };
        let (mut ft, mut rx) = pair(1, 0, faults);
        let frame = seal(&payload()).unwrap();
        ft.send_frame(&frame, META_CTL).unwrap();
        let (msg, meta) = rx.recv_frame().unwrap();
        assert_eq!(meta, META_CTL);
        assert_eq!(open(&msg).unwrap(), payload());
    }
}
