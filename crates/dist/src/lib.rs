//! Distributed minimum cut over cut sketches — the application that
//! motivates the paper's for-each model (Section 1).
//!
//! The edges of a graph are split across `s` servers. Each server
//! builds **two** sketches of its own subgraph and ships them to a
//! coordinator:
//!
//! * a coarse `(1 ± 0.2)` *for-all* sketch — enough to locate every
//!   `O(1)`-approximate minimum cut, of which there are only
//!   `poly(n)`;
//! * a fine `(1 ± ε)` *for-each* sketch — used to re-query exactly
//!   those candidate cuts, each of which is fixed before the fine
//!   sketch's randomness is revealed.
//!
//! Because the fine sketch only needs the for-each guarantee, its size
//! scales as `1/ε` instead of `1/ε²` — the communication win the paper
//! proves cannot be improved. Candidate cuts are enumerated by
//! Karger–Stein on the union of the coarse sketches.
//!
//! Servers run on the graph crate's deterministic worker pool
//! ([`dircut_graph::parallel`]): each server sketches its subgraph with
//! its own seeded RNG and the results come back in server order, so the
//! protocol transcript is identical for every thread count. The
//! reported communication is the serialized bit size of everything the
//! servers shipped.
//!
//! Two runtimes share the protocol logic:
//!
//! * [`distributed_min_cut`] — the in-process path: messages are Rust
//!   values, the wire is perfect, and the bit counts come from sizing
//!   the messages through [`WireEncode`].
//! * [`runtime::run_min_cut`] — the socket-backed path: every
//!   [`ServerMessage`] crosses a real connection (TCP, Unix socket,
//!   or in-process loopback, chosen by [`Topology`]) from the shared
//!   transport layer ([`dircut_comm::transport`]), with [`faults`]
//!   injected at the socket boundary by a
//!   [`FaultyTransport`](faults::FaultyTransport) decorator; the
//!   coordinator copes with timeouts, retries, and stragglers, and
//!   its transcripts carry measured socket bytes next to the counted
//!   wire bits. On a clean link it returns the in-process answer bit
//!   for bit, on every topology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod reduction;
pub mod runtime;

use dircut_comm::{BitReader, BitWriter, WireEncode, WireError};
use dircut_graph::karger::enumerate_near_min_cuts;
use dircut_graph::{parallel, stats, DiGraph, NodeId, NodeSet};
use dircut_sketch::{
    BalancedForEachSketcher, CutOracle, CutSketch, CutSketcher, DegreeSampleSketch, EdgeListSketch,
    LinearCutSketch, LinearSketcher, UniformSketcher,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub use faults::{DeliveryTag, FaultConfig, FaultPlan, FaultyTransport};
pub use reduction::{DistArtifact, DistPath, DistReduction};
#[allow(deprecated)]
pub use runtime::fault_injected_min_cut;
pub use runtime::{
    run_min_cut, DistError, RuntimeConfig, RuntimeConfigBuilder, RuntimeOutcome, ServerTranscript,
    Topology,
};

/// Splits a graph's edges uniformly at random across `servers`
/// subgraphs on the same vertex set.
///
/// # Panics
/// Panics if `servers == 0`.
#[must_use]
pub fn partition_edges<R: Rng>(g: &DiGraph, servers: usize, rng: &mut R) -> Vec<DiGraph> {
    assert!(servers >= 1, "need at least one server");
    let mut parts: Vec<DiGraph> = (0..servers).map(|_| DiGraph::new(g.num_nodes())).collect();
    for e in g.edges() {
        let s = rng.gen_range(0..servers);
        parts[s].add_edge(e.from, e.to, e.weight);
    }
    parts
}

/// What one server ships to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMessage {
    /// Which server sent it.
    pub server_id: usize,
    /// The coarse `(1±0.2)` for-all sketch.
    pub coarse: EdgeListSketch,
    /// The fine `(1±ε)` for-each sketch.
    pub fine: DegreeSampleSketch,
}

/// Wire format: 32-bit server id, then the coarse and fine sketches
/// in their own [`WireEncode`] layouts. `wire_bits()` (from the
/// trait) is the one size the protocol reports — there is no separate
/// self-declared count to drift out of sync.
impl WireEncode for ServerMessage {
    fn encode(&self, w: &mut BitWriter) {
        w.write_bits(self.server_id as u64, 32);
        self.coarse.encode(w);
        self.fine.encode(w);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let server_id = r.try_read_bits(32)? as usize;
        let coarse = EdgeListSketch::decode(r)?;
        let fine = DegreeSampleSketch::decode(r)?;
        Ok(Self {
            server_id,
            coarse,
            fine,
        })
    }
}

/// Configuration of the distributed protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// Target accuracy of the final answer.
    pub epsilon: f64,
    /// Accuracy of the coarse for-all sketches (0.2 in the paper).
    pub coarse_epsilon: f64,
    /// Near-min-cut enumeration slack (candidates within this factor of
    /// the coarse minimum are re-queried).
    pub candidate_slack: f64,
    /// Karger–Stein repetitions for candidate enumeration.
    pub enumeration_trials: usize,
}

impl ProtocolConfig {
    /// Sensible defaults for accuracy `epsilon`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        Self {
            epsilon,
            coarse_epsilon: 0.2,
            candidate_slack: 2.0,
            enumeration_trials: 200,
        }
    }
}

/// The coordinator's answer.
#[derive(Debug, Clone)]
pub struct DistributedMinCut {
    /// The `(1±ε)` estimate of the global (symmetrized) min cut.
    pub estimate: f64,
    /// The cut side achieving it.
    pub side: NodeSet,
    /// Total bits shipped by all servers (for the fault-injected
    /// runtime: every transmitted frame, retransmissions included).
    pub total_wire_bits: usize,
    /// Bits spent on coarse (for-all) sketch payloads.
    pub coarse_bits: usize,
    /// Bits spent on fine (for-each) sketch payloads.
    pub fine_bits: usize,
    /// Bits that were neither sketch payload: frame headers, server
    /// ids, and retransmitted frames. Zero on the in-process paths,
    /// where nothing is framed and nothing is resent.
    pub framing_bits: usize,
    /// Number of candidate cuts re-queried through the fine sketches.
    pub candidates: usize,
}

/// One server's work: sketch its subgraph twice.
#[must_use]
pub fn server_sketch<R: Rng>(
    server_id: usize,
    subgraph: &DiGraph,
    cfg: ProtocolConfig,
    rng: &mut R,
) -> ServerMessage {
    let coarse = UniformSketcher::new(cfg.coarse_epsilon).sketch(subgraph, rng);
    // Symmetrized subgraphs of symmetric inputs are Eulerian, so β = 1.
    let fine = BalancedForEachSketcher::new(cfg.epsilon, 1.0).sketch(subgraph, rng);
    ServerMessage {
        server_id,
        coarse,
        fine,
    }
}

/// The coordinator: enumerate candidates on the coarse union, re-query
/// them through the fine sketches, return the best.
///
/// # Panics
/// Panics if `messages` is empty or the coarse union has no cut (fewer
/// than 2 nodes).
#[must_use]
pub fn coordinate<R: Rng>(
    messages: &[ServerMessage],
    cfg: ProtocolConfig,
    rng: &mut R,
) -> DistributedMinCut {
    let (estimate, side, candidates) = coordinate_scaled(messages, cfg, 1.0, rng);
    let coarse_bits: usize = messages.iter().map(|m| m.coarse.size_bits()).sum();
    let fine_bits: usize = messages.iter().map(|m| m.fine.size_bits()).sum();
    DistributedMinCut {
        estimate,
        side,
        total_wire_bits: coarse_bits + fine_bits,
        coarse_bits,
        fine_bits,
        framing_bits: 0,
        candidates,
    }
}

/// The coordinator core shared by the in-process and fault-injected
/// runtimes: build the (scaled) coarse union, enumerate candidates,
/// re-query them through the fine sketches. `scale` rescales every
/// coarse weight and fine estimate — `s/k` when only `k` of `s`
/// uniformly partitioned slices arrived, and exactly `1.0` on full
/// attendance (multiplying by 1.0 preserves every float bit, so the
/// degradation machinery is invisible on clean runs).
///
/// Returns `(estimate, side, candidate count)`.
pub(crate) fn coordinate_scaled<R: Rng>(
    messages: &[ServerMessage],
    cfg: ProtocolConfig,
    scale: f64,
    rng: &mut R,
) -> (f64, NodeSet, usize) {
    assert!(!messages.is_empty(), "no server messages");
    // Union of coarse sketches = a (1±0.2) sparsifier of the whole graph.
    let n = messages[0].coarse.num_nodes();
    let mut union = DiGraph::new(n);
    for msg in messages {
        for e in msg.coarse.to_graph().edges() {
            union.add_edge(e.from, e.to, e.weight * scale);
        }
    }
    let candidates =
        enumerate_near_min_cuts(&union, cfg.candidate_slack, cfg.enumeration_trials, rng);
    assert!(
        !candidates.is_empty(),
        "coarse union produced no candidate cuts"
    );

    let mut best: Option<(f64, NodeSet)> = None;
    for (_, side) in &candidates {
        // Fine estimate: sum of per-server for-each answers. Each
        // candidate was fixed by the coarse sketches, independent of
        // the fine sketches' randomness — exactly the for-each setting.
        let est: f64 = messages
            .iter()
            .map(|m| m.fine.cut_out_estimate(side))
            .sum::<f64>()
            * scale;
        if best.as_ref().is_none_or(|(b, _)| est < *b) {
            best = Some((est, side.clone()));
        }
    }
    let (estimate, side) = best.expect("at least one candidate");
    (estimate, side, candidates.len())
}

/// Runs the full protocol, fanning the per-server sketching across the
/// graph crate's worker pool. Each server draws from its own seeded RNG
/// and results come back in server order, so the answer depends only on
/// `seed`, never on the thread count.
///
/// # Panics
/// Panics if `servers == 0` or a server task panics.
#[must_use]
pub fn distributed_min_cut(
    g: &DiGraph,
    servers: usize,
    cfg: ProtocolConfig,
    seed: u64,
) -> DistributedMinCut {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let parts = partition_edges(g, servers, &mut rng);
    let messages: Vec<ServerMessage> = stats::timed_stage("dist/server_sketch", || {
        parallel::run_indexed(parts.len(), parallel::default_threads(), |id| {
            let mut srng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1 + id as u64));
            server_sketch(id, &parts[id], cfg, &mut srng)
        })
    });
    coordinate(&messages, cfg, &mut rng)
}

/// Baseline ablation: ship ONLY `(1±ε)` for-all sketches and answer
/// straight from them (no two-tier refinement). Correct, but the
/// communication pays the full `1/ε²` for-all rate — the cost the
/// paper's introduction motivates avoiding (and Theorem 1.2 proves
/// unavoidable *within* the for-all model).
///
/// # Panics
/// Panics if `servers == 0`.
#[must_use]
pub fn forall_only_min_cut(
    g: &DiGraph,
    servers: usize,
    cfg: ProtocolConfig,
    seed: u64,
) -> DistributedMinCut {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let parts = partition_edges(g, servers, &mut rng);
    let sketches: Vec<EdgeListSketch> = stats::timed_stage("dist/server_sketch", || {
        parallel::run_indexed(parts.len(), parallel::default_threads(), |id| {
            let mut srng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1 + id as u64));
            UniformSketcher::new(cfg.epsilon).sketch(&parts[id], &mut srng)
        })
    });
    let n = g.num_nodes();
    let mut union = DiGraph::new(n);
    for sk in &sketches {
        for e in sk.to_graph().edges() {
            union.add_edge(e.from, e.to, e.weight);
        }
    }
    let candidates = enumerate_near_min_cuts(
        &union,
        cfg.candidate_slack,
        cfg.enumeration_trials,
        &mut rng,
    );
    let mut best: Option<(f64, NodeSet)> = None;
    for (_, side) in &candidates {
        let est: f64 = sketches.iter().map(|m| m.cut_out_estimate(side)).sum();
        if best.as_ref().is_none_or(|(b, _)| est < *b) {
            best = Some((est, side.clone()));
        }
    }
    let (estimate, side) = best.expect("at least one candidate");
    let bits: usize = sketches.iter().map(CutSketch::size_bits).sum();
    DistributedMinCut {
        estimate,
        side,
        total_wire_bits: bits,
        coarse_bits: bits,
        fine_bits: 0,
        framing_bits: 0,
        candidates: candidates.len(),
    }
}

/// Ablation: fine refinement through **mergeable linear sketches**
/// instead of degree+sample for-each sketches. Servers ship a coarse
/// `(1±0.2)` for-all sketch plus a `Θ(1/ε²)`-row linear sketch; the
/// coordinator *adds* the linear sketches (linearity) and re-queries
/// the coarse candidates through the merged sketch. Fine communication
/// is `Θ(n/ε²)` words *independent of m* — a different trade-off from
/// the for-each sketch, and the \[AGM12\] shape.
///
/// # Panics
/// Panics if `servers == 0`.
#[must_use]
pub fn linear_fine_min_cut(
    g: &DiGraph,
    servers: usize,
    cfg: ProtocolConfig,
    seed: u64,
) -> DistributedMinCut {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let parts = partition_edges(g, servers, &mut rng);
    let pairs: Vec<(EdgeListSketch, LinearCutSketch)> =
        stats::timed_stage("dist/server_sketch", || {
            parallel::run_indexed(parts.len(), parallel::default_threads(), |id| {
                let mut srng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1 + id as u64));
                let coarse = UniformSketcher::new(cfg.coarse_epsilon).sketch(&parts[id], &mut srng);
                let fine = LinearSketcher::new(cfg.epsilon).sketch(&parts[id], &mut srng);
                (coarse, fine)
            })
        });
    // Merge fine sketches serially in server order: linear-sketch
    // merging sums floats, so the order is part of the transcript.
    let mut coarse_sketches = Vec::new();
    let mut merged: Option<LinearCutSketch> = None;
    let mut fine_bits = 0usize;
    for (coarse, fine) in pairs {
        coarse_sketches.push(coarse);
        fine_bits += fine.size_bits();
        merged = Some(match merged {
            None => fine,
            Some(acc) => acc.merge(&fine),
        });
    }
    let merged = merged.expect("at least one server");
    let n = g.num_nodes();
    let mut union = DiGraph::new(n);
    for sk in &coarse_sketches {
        for e in sk.to_graph().edges() {
            union.add_edge(e.from, e.to, e.weight);
        }
    }
    let candidates = enumerate_near_min_cuts(
        &union,
        cfg.candidate_slack,
        cfg.enumeration_trials,
        &mut rng,
    );
    let mut best: Option<(f64, NodeSet)> = None;
    for (_, side) in &candidates {
        let est = merged.cut_out_estimate(side);
        if best.as_ref().is_none_or(|(b, _)| est < *b) {
            best = Some((est, side.clone()));
        }
    }
    let (estimate, side) = best.expect("at least one candidate");
    let coarse_bits: usize = coarse_sketches.iter().map(CutSketch::size_bits).sum();
    DistributedMinCut {
        estimate,
        side,
        total_wire_bits: coarse_bits + fine_bits,
        coarse_bits,
        fine_bits,
        framing_bits: 0,
        candidates: candidates.len(),
    }
}

/// The symmetrization helper used by examples and tests: duplicates an
/// undirected edge list into a symmetric digraph.
#[must_use]
pub fn symmetric_graph(n: usize, edges: &[(usize, usize, f64)]) -> DiGraph {
    let mut g = DiGraph::new(n);
    for &(u, v, w) in edges {
        g.add_edge(NodeId::new(u), NodeId::new(v), w);
        g.add_edge(NodeId::new(v), NodeId::new(u), w);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::mincut::stoer_wagner;

    fn random_symmetric(n: usize, p: f64, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    edges.push((u, v, rng.gen_range(0.5..2.0)));
                }
            }
            edges.push((u, (u + 1) % n, 1.0));
        }
        symmetric_graph(n, &edges)
    }

    #[test]
    fn partition_preserves_every_edge() {
        let g = random_symmetric(20, 0.3, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let parts = partition_edges(&g, 4, &mut rng);
        let total: usize = parts.iter().map(DiGraph::num_edges).sum();
        assert_eq!(total, g.num_edges());
        let weight: f64 = parts.iter().map(DiGraph::total_weight).sum();
        assert!((weight - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn protocol_estimates_min_cut_on_dense_graph() {
        let g = random_symmetric(24, 0.8, 2);
        // For a symmetric digraph, cut_out(S) counts each undirected
        // crossing edge once; Stoer–Wagner symmetrizes and so counts it
        // twice.
        let truth = stoer_wagner(&g).value / 2.0;
        let mut cfg = ProtocolConfig::new(0.3);
        cfg.enumeration_trials = 60;
        let res = distributed_min_cut(&g, 3, cfg, 7);
        let reported = res.estimate;
        assert!(
            (reported - truth).abs() <= 0.35 * truth,
            "estimate {reported} vs truth {truth}"
        );
        // The reported side must really be a near-minimum cut.
        let real = g.cut_out(&res.side);
        assert!(
            real - truth <= 0.6 * truth,
            "side has value {real}, truth {truth}"
        );
    }

    #[test]
    fn wire_bits_are_split_between_coarse_and_fine() {
        let g = random_symmetric(16, 0.7, 3);
        let mut cfg = ProtocolConfig::new(0.25);
        cfg.enumeration_trials = 40;
        let res = distributed_min_cut(&g, 2, cfg, 9);
        assert_eq!(res.total_wire_bits, res.coarse_bits + res.fine_bits);
        // The in-process path never frames or resends anything.
        assert_eq!(res.framing_bits, 0);
        assert!(res.coarse_bits > 0 && res.fine_bits > 0);
        assert!(res.candidates >= 1);
    }

    #[test]
    fn single_server_degenerates_to_centralized() {
        let g = random_symmetric(14, 0.9, 4);
        let truth = stoer_wagner(&g).value / 2.0;
        let mut cfg = ProtocolConfig::new(0.3);
        cfg.enumeration_trials = 60;
        let res = distributed_min_cut(&g, 1, cfg, 11);
        assert!(
            (res.estimate - truth).abs() <= 0.4 * truth,
            "estimate {} vs truth {truth}",
            res.estimate
        );
    }

    #[test]
    fn forall_only_baseline_answers_but_pays_eps_squared() {
        let g = random_symmetric(20, 0.9, 7);
        let truth = stoer_wagner(&g).value / 2.0;
        let mut cfg = ProtocolConfig::new(0.3);
        cfg.enumeration_trials = 40;
        let res = forall_only_min_cut(&g, 3, cfg, 21);
        assert!(
            (res.estimate - truth).abs() <= 0.4 * truth,
            "estimate {} vs truth {truth}",
            res.estimate
        );
        assert_eq!(res.fine_bits, 0);
        assert!(res.total_wire_bits > 0);
    }

    #[test]
    fn linear_fine_variant_answers_with_m_independent_fine_bits() {
        let g = random_symmetric(20, 0.9, 8);
        let truth = stoer_wagner(&g).value / 2.0;
        let mut cfg = ProtocolConfig::new(0.3);
        cfg.enumeration_trials = 40;
        let res = linear_fine_min_cut(&g, 3, cfg, 23);
        assert!(
            (res.estimate - truth).abs() <= 0.5 * truth,
            "estimate {} vs truth {truth}",
            res.estimate
        );
        // Fine bits = servers × (header + k·n doubles), independent of m.
        let k = LinearSketcher::new(0.3).num_rows();
        assert_eq!(res.fine_bits, 3 * (64 + k * 20 * 64));
    }

    #[test]
    fn more_servers_cost_more_communication() {
        let g = random_symmetric(20, 0.8, 5);
        let mut cfg = ProtocolConfig::new(0.3);
        cfg.enumeration_trials = 30;
        let one = distributed_min_cut(&g, 1, cfg, 13);
        let four = distributed_min_cut(&g, 4, cfg, 13);
        // Fine sketches store n degrees per server, so 4 servers pay
        // at least the extra degree tables.
        assert!(four.fine_bits > one.fine_bits);
    }
}
