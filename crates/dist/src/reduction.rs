//! The distributed runtime as a [`Reduction`]: one trial = one full
//! protocol run (partition → server sketches → coordinator decode)
//! scored against the known min cut.
//!
//! This is the fourth pipeline behind the unified trait — the three
//! lower-bound games live in `dircut_core::reduction`; this one wraps
//! the *upper bound* the paper's Theorem 1.4 matches, so the same
//! `TrialEngine` tables and `BENCH_reductions.json` records cover both
//! sides of the tight bound. The wire bits reported through
//! [`Reduction::resources`] are the protocol's own serialized count,
//! so a sweep's `total_wire_bits` column is exactly what the legacy
//! bespoke loops printed.

use crate::runtime::{run_min_cut, RuntimeConfig};
use crate::{
    distributed_min_cut, forall_only_min_cut, linear_fine_min_cut, DistributedMinCut,
    ProtocolConfig,
};
use dircut_core::reduction::{Reduction, Resources, TrialOutcome};
use dircut_graph::DiGraph;
use rand::Rng;

/// Which coordinator pipeline a trial exercises.
#[derive(Debug, Clone)]
pub enum DistPath {
    /// The paper's two-tier protocol: coarse for-all + fine for-each.
    TwoTier,
    /// Ablation A1a: the fine tier is a second for-all sketch.
    ForAllOnly,
    /// Ablation A1b: the fine tier is a linear (ℓ₂) sketch.
    LinearFine,
    /// The message-passing runtime with fault injection; the embedded
    /// [`RuntimeConfig`] carries its own protocol parameters and link
    /// fault model.
    FaultInjected(RuntimeConfig),
}

/// One distributed min-cut trial on a fixed graph.
#[derive(Debug, Clone)]
pub struct DistReduction<'a> {
    /// The input graph (shared across trials).
    pub graph: &'a DiGraph,
    /// Number of servers the edges are partitioned over.
    pub servers: usize,
    /// Protocol parameters for the in-process paths (the
    /// [`DistPath::FaultInjected`] path uses its own
    /// [`RuntimeConfig::protocol`] instead).
    pub cfg: ProtocolConfig,
    /// Which pipeline to run.
    pub path: DistPath,
    /// `Some(s)` replays a legacy single-shot call on seed `s`;
    /// `None` draws a fresh protocol seed from the trial RNG.
    pub seed: Option<u64>,
    /// The true min-cut value, for error accounting.
    pub truth: f64,
}

/// What one protocol run produced (the "message" of this reduction —
/// everything the coordinator knows).
#[derive(Debug, Clone)]
pub struct DistArtifact {
    /// The coordinator's estimate (`NaN` when every server was lost).
    pub estimate: f64,
    /// Serialized bits shipped by the servers.
    pub wire_bits: u64,
    /// Whether the runtime fell back to degraded mode (lost servers).
    pub degraded: bool,
    /// Servers whose sketches reached the coordinator.
    pub arrived: usize,
    /// Servers that participated in the run.
    pub servers: usize,
    /// Bits spent on coarse (for-all) sketch payloads.
    pub coarse_bits: u64,
    /// Bits spent on fine (for-each) sketch payloads.
    pub fine_bits: u64,
    /// Framing overhead: headers, server ids, retransmitted frames.
    pub framing_bits: u64,
    /// Candidate cuts re-queried through the fine sketches.
    pub candidates: u64,
    /// Retransmissions burned across all server links (0 on the
    /// in-process paths, which have no link layer).
    pub retries: u64,
    /// Bytes actually observed crossing the server sockets, length
    /// prefixes included (0 on the in-process paths, which have no
    /// sockets) — the measured counterpart of the counted `wire_bits`.
    pub wire_bytes: u64,
    /// The accuracy actually delivered: the configured ε, widened by
    /// `(s − k)/s` on a degraded run (`NaN` on total loss).
    pub effective_epsilon: f64,
}

impl DistReduction<'_> {
    fn epsilon(&self) -> f64 {
        match &self.path {
            DistPath::FaultInjected(rc) => rc.protocol.epsilon,
            _ => self.cfg.epsilon,
        }
    }

    fn clean(&self, answer: &DistributedMinCut) -> DistArtifact {
        DistArtifact {
            estimate: answer.estimate,
            wire_bits: answer.total_wire_bits as u64,
            degraded: false,
            arrived: self.servers,
            servers: self.servers,
            coarse_bits: answer.coarse_bits as u64,
            fine_bits: answer.fine_bits as u64,
            framing_bits: answer.framing_bits as u64,
            candidates: answer.candidates as u64,
            retries: 0,
            wire_bytes: 0,
            effective_epsilon: self.epsilon(),
        }
    }
}

impl Reduction for DistReduction<'_> {
    type Instance = u64;
    type Artifact = DistArtifact;
    type Answer = DistArtifact;

    fn name(&self) -> &'static str {
        match self.path {
            DistPath::TwoTier => "dist-two-tier",
            DistPath::ForAllOnly => "dist-forall-only",
            DistPath::LinearFine => "dist-linear-fine",
            DistPath::FaultInjected(_) => "dist-fault-injected",
        }
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        self.seed.unwrap_or_else(|| rng.gen())
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        match &self.path {
            DistPath::TwoTier => self.clean(&distributed_min_cut(
                self.graph,
                self.servers,
                self.cfg,
                *inst,
            )),
            DistPath::ForAllOnly => self.clean(&forall_only_min_cut(
                self.graph,
                self.servers,
                self.cfg,
                *inst,
            )),
            DistPath::LinearFine => self.clean(&linear_fine_min_cut(
                self.graph,
                self.servers,
                self.cfg,
                *inst,
            )),
            DistPath::FaultInjected(rc) => {
                // The trial seed becomes the run's master seed; all
                // other knobs come from the embedded config.
                let mut rc = rc.clone();
                rc.seed = *inst;
                match run_min_cut(self.graph, self.servers, &rc) {
                    Ok(out) => DistArtifact {
                        estimate: out.answer.estimate,
                        wire_bits: out.answer.total_wire_bits as u64,
                        degraded: out.degraded,
                        arrived: out.arrived,
                        servers: out.servers,
                        coarse_bits: out.answer.coarse_bits as u64,
                        fine_bits: out.answer.fine_bits as u64,
                        framing_bits: out.answer.framing_bits as u64,
                        candidates: out.answer.candidates as u64,
                        retries: out.transcripts.iter().map(|t| u64::from(t.retries)).sum(),
                        wire_bytes: out.wire_bytes(),
                        effective_epsilon: out.effective_epsilon,
                    },
                    // Total loss is an outcome, not a panic: the trial
                    // records a null estimate and fails verification.
                    Err(_) => DistArtifact {
                        estimate: f64::NAN,
                        wire_bits: 0,
                        degraded: true,
                        arrived: 0,
                        servers: self.servers,
                        coarse_bits: 0,
                        fine_bits: 0,
                        framing_bits: 0,
                        candidates: 0,
                        retries: 0,
                        wire_bytes: 0,
                        effective_epsilon: f64::NAN,
                    },
                }
            }
        }
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        artifact.clone()
    }

    fn verify(&self, _inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        let rel_err = (answer.estimate - self.truth).abs() / self.truth;
        let success = !answer.degraded && rel_err <= self.epsilon();
        // The full bit breakdown rides along as aux so table printers
        // (exp_distributed) can render the legacy columns straight from
        // the record. All counts are exact in f64 (≪ 2⁵³).
        TrialOutcome::new(success, 0)
            .with_aux("estimate", answer.estimate)
            .with_aux("rel_err", rel_err)
            .with_aux("arrived", answer.arrived as f64)
            .with_aux("servers", answer.servers as f64)
            .with_aux("degraded", f64::from(u8::from(answer.degraded)))
            .with_aux("coarse_bits", answer.coarse_bits as f64)
            .with_aux("fine_bits", answer.fine_bits as f64)
            .with_aux("framing_bits", answer.framing_bits as f64)
            .with_aux("candidates", answer.candidates as f64)
            .with_aux("retries", answer.retries as f64)
            .with_aux("wire_bytes", answer.wire_bytes as f64)
            .with_aux("effective_epsilon", answer.effective_epsilon)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.wire_bits,
            cut_queries: 0,
            flow_solves: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use dircut_core::reduction::run_reduction_game;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.7) {
                    edges.push((u, v, rng.gen_range(0.5..2.0)));
                }
            }
            edges.push((u, (u + 1) % n, 1.0));
        }
        crate::symmetric_graph(n, &edges)
    }

    fn small_cfg(eps: f64) -> ProtocolConfig {
        let mut cfg = ProtocolConfig::new(eps);
        cfg.enumeration_trials = 40;
        cfg
    }

    #[test]
    fn fixed_seed_trial_replays_the_direct_call() {
        let g = test_graph(16, 1);
        let cfg = small_cfg(0.3);
        let direct = distributed_min_cut(&g, 3, cfg, 9);
        let rdx = DistReduction {
            graph: &g,
            servers: 3,
            cfg,
            path: DistPath::TwoTier,
            seed: Some(9),
            truth: dircut_graph::mincut::stoer_wagner(&g).value / 2.0,
        };
        let art = rdx.encode(&9);
        assert_eq!(art.estimate.to_bits(), direct.estimate.to_bits());
        assert_eq!(art.wire_bits, direct.total_wire_bits as u64);
        assert!(!art.degraded);
        assert_eq!(art.arrived, 3);
        assert_eq!(art.servers, 3);
        assert_eq!(art.coarse_bits, direct.coarse_bits as u64);
        assert_eq!(art.fine_bits, direct.fine_bits as u64);
        assert_eq!(art.framing_bits, direct.framing_bits as u64);
        assert_eq!(art.candidates, direct.candidates as u64);
        assert_eq!(art.retries, 0);
        assert_eq!(art.effective_epsilon, 0.3);
    }

    #[test]
    fn fault_injected_path_reports_degraded_trials() {
        let g = test_graph(16, 4);
        let faults = FaultConfig {
            dead: vec![1],
            ..FaultConfig::clean()
        };
        let rc = RuntimeConfig::with_faults(small_cfg(0.25), faults);
        let rdx = DistReduction {
            graph: &g,
            servers: 4,
            cfg: rc.protocol,
            path: DistPath::FaultInjected(rc),
            seed: Some(5),
            truth: dircut_graph::mincut::stoer_wagner(&g).value / 2.0,
        };
        let art = rdx.encode(&5);
        assert!(art.degraded);
        assert_eq!(art.arrived, 3);
        assert!(art.estimate.is_finite());
        assert!(art.wire_bits > 0);
    }

    #[test]
    fn total_server_loss_is_a_failed_trial_not_a_panic() {
        let g = test_graph(10, 5);
        let faults = FaultConfig {
            dead: vec![0, 1],
            ..FaultConfig::clean()
        };
        let rc = RuntimeConfig::with_faults(small_cfg(0.3), faults);
        let rdx = DistReduction {
            graph: &g,
            servers: 2,
            cfg: rc.protocol,
            path: DistPath::FaultInjected(rc),
            seed: Some(3),
            truth: dircut_graph::mincut::stoer_wagner(&g).value / 2.0,
        };
        let report = run_reduction_game(&rdx, 2, &mut ChaCha8Rng::seed_from_u64(0));
        assert_eq!(report.successes, 0);
    }
}
