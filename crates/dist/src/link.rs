//! The injectable link layer: what happens to a frame between a
//! server and the coordinator.
//!
//! A [`FaultyLink`] simulates one lossy channel. Each *transmit
//! attempt* draws its fate from a [`ChaCha8Rng`] seeded purely by
//! `(link seed, server, attempt)`, so a run's delivery schedule is a
//! deterministic function of the seed and the fault configuration —
//! never of thread interleaving or wall-clock. The draw order within
//! an attempt is fixed (drop, latency, delay, duplicate, corrupt,
//! corrupt position) and every draw is consumed whether or not the
//! fault fires, so changing one fault's probability never shifts the
//! randomness feeding the others. That is what makes the runtime's
//! answer provably invariant under duplicate-delivery faults: the
//! duplicate decision reads its own dedicated draw.
//!
//! Faults compose the way real links fail:
//!
//! * **drop** — the frame never arrives; the coordinator times out.
//! * **delay** — the frame arrives, but [`DELAY_TICKS`] late; past the
//!   coordinator's deadline it is as good as dropped (the bits still
//!   crossed the wire and are still counted).
//! * **duplicate** — the link delivers a second copy of the same
//!   frame. The copy is a link-level artifact: the server transmitted
//!   once, so accounting counts the attempt once.
//! * **corrupt** — one bit of the frame flips in flight. The CRC-32
//!   frame check ([`dircut_comm::frame::open`]) catches every
//!   single-bit flip, so corruption surfaces as a rejected frame and a
//!   retry, never as silently wrong data.
//! * **dead servers** — listed links never deliver anything,
//!   regardless of probabilities: the deterministic way to exercise
//!   the coordinator's degraded mode.

use dircut_comm::bitio::{BitWriter, Message};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Latency added to a delayed frame, in coordinator ticks. Far above
/// any sane [`timeout`](crate::runtime::RuntimeConfig::timeout_ticks),
/// so "delayed" deterministically means "missed the deadline".
pub const DELAY_TICKS: u32 = 64;

/// Base in-flight latency range of an undelayed frame: `0..4` ticks.
pub const BASE_LATENCY_TICKS: u32 = 4;

/// Fault probabilities for one run's links. All probabilities are per
/// transmit attempt and independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Probability an attempt is dropped outright.
    pub drop: f64,
    /// Probability an attempt is delayed by [`DELAY_TICKS`].
    pub delay: f64,
    /// Probability the link delivers a duplicate copy.
    pub duplicate: f64,
    /// Probability exactly one bit of the frame flips in flight.
    pub corrupt: f64,
    /// Servers whose link never delivers (deterministic total loss).
    pub dead: Vec<usize>,
}

impl FaultConfig {
    /// A perfectly clean link.
    #[must_use]
    pub fn clean() -> Self {
        Self::default()
    }

    /// True when every probability is zero and no server is dead.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0
            && self.delay == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.dead.is_empty()
    }
}

/// One copy of a frame arriving at the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The frame as received (possibly corrupted).
    pub frame: Message,
    /// Ticks after the transmit at which it arrived.
    pub latency: u32,
    /// Whether this copy is a link-injected duplicate.
    pub duplicate: bool,
}

/// Outcome of one transmit attempt over a [`FaultyLink`].
#[derive(Debug, Clone, Default)]
pub struct Transmit {
    /// Copies that arrived (empty when dropped; two when duplicated).
    pub deliveries: Vec<Delivery>,
    /// Whether the attempt was dropped.
    pub dropped: bool,
    /// Whether the frame was bit-corrupted in flight.
    pub corrupted: bool,
    /// Whether the frame was delayed past any reasonable deadline.
    pub delayed: bool,
}

/// A deterministic lossy channel from one server to the coordinator.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    seed: u64,
    server: usize,
    faults: FaultConfig,
}

/// SplitMix64 finalizer: decorrelates structured `(seed, server,
/// attempt)` triples into independent-looking RNG seeds.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultyLink {
    /// A link for `server` under `faults`, deriving all randomness
    /// from `seed`.
    #[must_use]
    pub fn new(seed: u64, server: usize, faults: FaultConfig) -> Self {
        Self {
            seed,
            server,
            faults,
        }
    }

    /// The RNG seed of one `(server, attempt)` transmit.
    fn attempt_seed(&self, attempt: u32) -> u64 {
        mix(self
            .seed
            .wrapping_add(mix(self.server as u64 + 1))
            .wrapping_add(mix(u64::from(attempt) + 0x9E37_79B9)))
    }

    /// Transmits `frame` as attempt number `attempt`, returning what
    /// the coordinator sees. Pure in `(seed, server, attempt, frame,
    /// faults)`.
    #[must_use]
    pub fn transmit(&self, frame: &Message, attempt: u32) -> Transmit {
        let mut rng = ChaCha8Rng::seed_from_u64(self.attempt_seed(attempt));
        // Fixed draw order; every draw consumed regardless of outcome.
        let dropped = rng.gen_bool(self.faults.drop.clamp(0.0, 1.0));
        let base_latency = rng.gen_range(0..BASE_LATENCY_TICKS);
        let delayed = rng.gen_bool(self.faults.delay.clamp(0.0, 1.0));
        let duplicate = rng.gen_bool(self.faults.duplicate.clamp(0.0, 1.0));
        let corrupted = rng.gen_bool(self.faults.corrupt.clamp(0.0, 1.0)) && frame.bit_len() > 0;
        let flip_pos = if frame.bit_len() > 0 {
            rng.gen_range(0..frame.bit_len())
        } else {
            0
        };

        if dropped || self.faults.dead.contains(&self.server) {
            return Transmit {
                deliveries: Vec::new(),
                dropped: true,
                corrupted: false,
                delayed: false,
            };
        }

        let received = if corrupted {
            flip_bit(frame, flip_pos)
        } else {
            frame.clone()
        };
        let latency = base_latency + if delayed { DELAY_TICKS } else { 0 };
        let mut deliveries = vec![Delivery {
            frame: received.clone(),
            latency,
            duplicate: false,
        }];
        if duplicate {
            // The copy shares the original's fate (same bits, one tick
            // later): duplication can never rescue a corrupted or
            // delayed attempt, only echo it.
            deliveries.push(Delivery {
                frame: received,
                latency: latency + 1,
                duplicate: true,
            });
        }
        Transmit {
            deliveries,
            dropped: false,
            corrupted,
            delayed,
        }
    }
}

/// Returns `frame` with bit `pos` flipped.
#[must_use]
fn flip_bit(frame: &Message, pos: usize) -> Message {
    let mut w = BitWriter::new();
    let mut r = frame.reader();
    for i in 0..frame.bit_len() {
        let bit = r.read_bit();
        w.write_bit(if i == pos { !bit } else { bit });
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_comm::frame::{open, seal};

    fn payload() -> Message {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_f64(1.25);
        w.finish()
    }

    #[test]
    fn clean_link_delivers_exactly_once_within_base_latency() {
        let link = FaultyLink::new(7, 0, FaultConfig::clean());
        let frame = seal(&payload()).unwrap();
        for attempt in 0..20 {
            let t = link.transmit(&frame, attempt);
            assert_eq!(t.deliveries.len(), 1);
            assert!(!t.dropped && !t.corrupted && !t.delayed);
            assert!(t.deliveries[0].latency < BASE_LATENCY_TICKS);
            assert_eq!(open(&t.deliveries[0].frame).unwrap(), payload());
        }
    }

    #[test]
    fn transmits_are_deterministic_per_seed_and_attempt() {
        let faults = FaultConfig {
            drop: 0.3,
            delay: 0.2,
            duplicate: 0.4,
            corrupt: 0.3,
            dead: Vec::new(),
        };
        let frame = seal(&payload()).unwrap();
        let a = FaultyLink::new(11, 2, faults.clone());
        let b = FaultyLink::new(11, 2, faults);
        for attempt in 0..50 {
            let ta = a.transmit(&frame, attempt);
            let tb = b.transmit(&frame, attempt);
            assert_eq!(ta.deliveries, tb.deliveries);
            assert_eq!(
                (ta.dropped, ta.corrupted, ta.delayed),
                (tb.dropped, tb.corrupted, tb.delayed)
            );
        }
    }

    #[test]
    fn corrupted_frames_are_rejected_by_the_frame_check() {
        let faults = FaultConfig {
            corrupt: 1.0,
            ..FaultConfig::clean()
        };
        let link = FaultyLink::new(3, 1, faults);
        let frame = seal(&payload()).unwrap();
        for attempt in 0..30 {
            let t = link.transmit(&frame, attempt);
            assert!(t.corrupted);
            for d in &t.deliveries {
                assert!(open(&d.frame).is_err(), "attempt {attempt} slipped through");
            }
        }
    }

    #[test]
    fn duplicate_probability_does_not_disturb_other_faults() {
        let base = FaultConfig {
            drop: 0.4,
            delay: 0.3,
            duplicate: 0.0,
            corrupt: 0.3,
            dead: Vec::new(),
        };
        let dup = FaultConfig {
            duplicate: 1.0,
            ..base.clone()
        };
        let frame = seal(&payload()).unwrap();
        let plain = FaultyLink::new(19, 0, base);
        let noisy = FaultyLink::new(19, 0, dup);
        for attempt in 0..60 {
            let tp = plain.transmit(&frame, attempt);
            let tn = noisy.transmit(&frame, attempt);
            assert_eq!(tp.dropped, tn.dropped, "attempt {attempt}");
            assert_eq!(tp.corrupted, tn.corrupted, "attempt {attempt}");
            assert_eq!(tp.delayed, tn.delayed, "attempt {attempt}");
            // Identical primary delivery; duplication only appends.
            assert_eq!(
                tp.deliveries.first(),
                tn.deliveries.first(),
                "attempt {attempt}"
            );
            if !tn.dropped {
                assert_eq!(tn.deliveries.len(), 2);
                assert!(tn.deliveries[1].duplicate);
                assert_eq!(tn.deliveries[0].frame, tn.deliveries[1].frame);
                assert_eq!(tn.deliveries[1].latency, tn.deliveries[0].latency + 1);
            }
        }
    }

    #[test]
    fn dead_servers_never_deliver() {
        let faults = FaultConfig {
            dead: vec![2],
            ..FaultConfig::clean()
        };
        let frame = seal(&payload()).unwrap();
        let dead = FaultyLink::new(5, 2, faults.clone());
        let alive = FaultyLink::new(5, 1, faults);
        for attempt in 0..10 {
            assert!(dead.transmit(&frame, attempt).deliveries.is_empty());
            assert_eq!(alive.transmit(&frame, attempt).deliveries.len(), 1);
        }
    }

    #[test]
    fn delayed_frames_arrive_past_any_deadline() {
        let faults = FaultConfig {
            delay: 1.0,
            ..FaultConfig::clean()
        };
        let link = FaultyLink::new(13, 0, faults);
        let frame = seal(&payload()).unwrap();
        let t = link.transmit(&frame, 0);
        assert!(t.delayed);
        assert!(t.deliveries[0].latency >= DELAY_TICKS);
    }
}
