//! Property-based tests for the socket-backed runtime: the full
//! outcome (answer, wire-bit totals, transcripts, observed byte
//! counters) is a pure function of `(graph, servers, config)` —
//! invariant under thread count, duplicate-delivery faults, and the
//! topology that carries the frames; and the transport's byte
//! counters agree exactly with the counted wire bits plus framing.

use dircut_comm::frame::FRAME_HEADER_BITS;
use dircut_comm::transport::{Conn, Connection, PREFIX_BYTES};
use dircut_comm::WireEncode;
use dircut_dist::runtime::RuntimeConfig;
use dircut_dist::{
    distributed_min_cut, run_min_cut, server_sketch, symmetric_graph, FaultConfig, ProtocolConfig,
    ServerMessage, Topology,
};
use dircut_graph::DiGraph;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dense_graph(n: usize, seed: u64) -> DiGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(0.6) {
                edges.push((u, v, rng.gen_range(0.5..2.0)));
            }
        }
        edges.push((u, (u + 1) % n, 1.0));
    }
    symmetric_graph(n, &edges)
}

fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    // Moderate probabilities so a 4-retry budget still usually gets a
    // frame through; determinism holds regardless of delivery success.
    (0.0..0.4f64, 0.0..0.3f64, 0.0..1.0f64, 0.0..0.3f64).prop_map(
        |(drop, delay, duplicate, corrupt)| FaultConfig {
            drop,
            delay,
            duplicate,
            corrupt,
            dead: Vec::new(),
        },
    )
}

fn small_protocol() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::new(0.3);
    cfg.enumeration_trials = 30;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Answers, wire-bit totals, and whole transcripts (byte counters
    /// included) are bit-identical across worker-pool widths, for any
    /// fault mix.
    #[test]
    fn runtime_is_bit_identical_across_thread_counts(
        gseed in 0u64..500,
        seed in 0u64..10_000,
        faults in arb_faults(),
    ) {
        let g = dense_graph(12, gseed);
        let mut outs = Vec::new();
        for threads in [1usize, 4, 8] {
            let cfg = RuntimeConfig::builder(small_protocol())
                .faults(faults.clone())
                .retries(4)
                .threads(threads)
                .seed(seed)
                .build();
            outs.push(run_min_cut(&g, 3, &cfg));
        }
        match (&outs[0], &outs[1], &outs[2]) {
            (Ok(a), Ok(b), Ok(c)) => {
                for o in [b, c] {
                    prop_assert_eq!(
                        o.answer.estimate.to_bits(),
                        a.answer.estimate.to_bits()
                    );
                    prop_assert_eq!(&o.answer.side, &a.answer.side);
                    prop_assert_eq!(o.answer.total_wire_bits, a.answer.total_wire_bits);
                    prop_assert_eq!(o.answer.coarse_bits, a.answer.coarse_bits);
                    prop_assert_eq!(o.answer.fine_bits, a.answer.fine_bits);
                    prop_assert_eq!(o.answer.framing_bits, a.answer.framing_bits);
                    prop_assert_eq!(o.arrived, a.arrived);
                    prop_assert_eq!(o.degraded, a.degraded);
                    prop_assert_eq!(&o.transcripts, &a.transcripts);
                }
            }
            (Err(a), Err(b), Err(c)) => {
                prop_assert_eq!(b, a);
                prop_assert_eq!(c, a);
            }
            _ => prop_assert!(false, "thread count changed run success"),
        }
    }

    /// Duplicate-delivery faults are answer-invariant: the link's own
    /// draw feeds the duplicate decision, so cranking the probability
    /// from 0 to anything changes only the duplicate counters (and the
    /// observed bytes of the extra copies).
    #[test]
    fn duplicates_never_change_the_answer_or_the_bill(
        gseed in 0u64..500,
        seed in 0u64..10_000,
        dup in 0.0..1.0f64,
        drop in 0.0..0.35f64,
        corrupt in 0.0..0.25f64,
    ) {
        let g = dense_graph(12, gseed);
        let base = FaultConfig { drop, delay: 0.1, duplicate: 0.0, corrupt, dead: Vec::new() };
        let noisy = FaultConfig { duplicate: dup, ..base.clone() };
        let cfg_a = RuntimeConfig::builder(small_protocol())
            .faults(base)
            .retries(4)
            .seed(seed)
            .build();
        let cfg_b = RuntimeConfig::builder(small_protocol())
            .faults(noisy)
            .retries(4)
            .seed(seed)
            .build();
        let a = run_min_cut(&g, 3, &cfg_a);
        let b = run_min_cut(&g, 3, &cfg_b);
        match (&a, &b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    b.answer.estimate.to_bits(),
                    a.answer.estimate.to_bits()
                );
                prop_assert_eq!(&b.answer.side, &a.answer.side);
                // Duplicates are link artifacts: the servers transmit
                // the same frames, so the bill is identical too.
                prop_assert_eq!(b.answer.total_wire_bits, a.answer.total_wire_bits);
                prop_assert_eq!(b.answer.framing_bits, a.answer.framing_bits);
                prop_assert_eq!(b.arrived, a.arrived);
                prop_assert_eq!(b.degraded, a.degraded);
                for (ta, tb) in a.transcripts.iter().zip(&b.transcripts) {
                    prop_assert_eq!(tb.attempts, ta.attempts);
                    prop_assert_eq!(tb.bits_sent, ta.bits_sent);
                    prop_assert_eq!(tb.bits_acked, ta.bits_acked);
                    prop_assert_eq!(tb.drops, ta.drops);
                    prop_assert_eq!(tb.corrupted, ta.corrupted);
                    prop_assert_eq!(tb.accepted_latency, ta.accepted_latency);
                    // Extra copies can only add observed bytes.
                    prop_assert!(tb.wire_bytes >= ta.wire_bytes);
                    prop_assert_eq!(tb.ctl_bytes, ta.ctl_bytes);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(b, a),
            _ => prop_assert!(false, "duplicate faults changed run success"),
        }
    }

    /// The transport's byte counters are exact: for any batch of real
    /// `ServerMessage`s, the bytes observed at both ends of a
    /// connection equal the counted wire bits plus framing overhead
    /// (header + length prefix), rounded to bytes per frame.
    #[test]
    fn counted_wire_bits_plus_framing_match_observed_bytes(
        gseed in 0u64..500,
        seed in 0u64..10_000,
        batch in 1usize..6,
    ) {
        let (mut tx, mut rx) = Conn::loopback_pair();
        let mut expected = 0u64;
        for i in 0..batch {
            let g = dense_graph(10, gseed.wrapping_add(i as u64));
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
            let msg = server_sketch(i, &g, small_protocol(), &mut rng);
            let framed_bits = msg.wire_bits() + FRAME_HEADER_BITS;
            expected += (PREFIX_BYTES + framed_bits.div_ceil(8)) as u64;
            tx.send(&msg).unwrap();
            let back = rx.recv::<ServerMessage>().unwrap();
            prop_assert_eq!(&back, &msg);
        }
        prop_assert_eq!(tx.bytes_sent(), expected);
        prop_assert_eq!(rx.bytes_received(), expected);
    }

    /// Clean socket runs reproduce the in-process coordinator exactly,
    /// whatever the seed, thread count, or wire: framing is pure
    /// overhead, not answer input — and the observed bytes follow the
    /// clean-run closed form (one data frame + one done marker per
    /// server).
    #[test]
    fn clean_socket_runs_match_the_in_process_path(
        gseed in 0u64..500,
        seed in 0u64..10_000,
    ) {
        let g = dense_graph(12, gseed);
        for topology in [Topology::Loopback, Topology::Tcp] {
            for threads in [1usize, 8] {
                let cfg = RuntimeConfig::builder(small_protocol())
                    .topology(topology)
                    .threads(threads)
                    .seed(seed)
                    .build();
                let out = run_min_cut(&g, 3, &cfg).expect("clean run");
                let legacy = distributed_min_cut(&g, 3, cfg.protocol, seed);
                prop_assert_eq!(out.answer.estimate.to_bits(), legacy.estimate.to_bits());
                prop_assert_eq!(&out.answer.side, &legacy.side);
                prop_assert_eq!(out.answer.coarse_bits, legacy.coarse_bits);
                prop_assert_eq!(out.answer.fine_bits, legacy.fine_bits);
                prop_assert!(!out.degraded);
                for t in &out.transcripts {
                    // Clean link: the only payload crossing the socket
                    // is the one data frame (prefix included) plus the
                    // sealed attempt-done marker (88 bits → 11 bytes).
                    let frame_unit = (PREFIX_BYTES + t.bits_sent.div_ceil(8)) as u64;
                    let done_unit = (PREFIX_BYTES + 88usize.div_ceil(8)) as u64;
                    prop_assert_eq!(t.wire_bytes, frame_unit + done_unit);
                }
            }
        }
    }
}
