//! Property-based tests for the communication substrate.

use dircut_comm::bitio::BitWriter;
use dircut_comm::gap_hamming::{
    hamming_distance, hamming_weight, GapHammingInstance, GapHammingParams,
};
use dircut_comm::twosum::{disj, int, TwoSumInstance};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn bitio_roundtrips_arbitrary_fields(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..50)) {
        let mut w = BitWriter::new();
        let mut masked = Vec::new();
        for &(v, width) in &fields {
            let m = if width == 64 { v } else { v & ((1u64 << width) - 1) };
            w.write_bits(m, width);
            masked.push((m, width));
        }
        let expected_bits: usize = fields.iter().map(|&(_, w)| w as usize).sum();
        let msg = w.finish();
        prop_assert_eq!(msg.bit_len(), expected_bits);
        let mut r = msg.reader();
        for (v, width) in masked {
            prop_assert_eq!(r.read_bits(width), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bitio_roundtrips_floats(vals in proptest::collection::vec(-1e12f64..1e12, 0..20)) {
        let mut w = BitWriter::new();
        for &v in &vals {
            w.write_f64(v);
        }
        let msg = w.finish();
        let mut r = msg.reader();
        for &v in &vals {
            prop_assert_eq!(r.read_f64(), v);
        }
    }

    #[test]
    fn gap_hamming_instances_respect_the_promise(
        h in 1usize..6,
        len_quarter in 1usize..10,
        gap_scale in 1usize..4,
        seed in 0u64..5000,
    ) {
        let len = 4 * len_quarter;
        let gap = (gap_scale).min(len / 2);
        let params = GapHammingParams::new(h, len, gap);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = GapHammingInstance::sample(params, &mut rng);
        prop_assert_eq!(inst.strings.len(), h);
        for s in &inst.strings {
            prop_assert_eq!(hamming_weight(s), len / 2);
        }
        prop_assert_eq!(hamming_weight(&inst.t), len / 2);
        let d = inst.planted_distance();
        if inst.is_far {
            prop_assert!(d >= len / 2 + gap, "far Δ = {d} < {}", len / 2 + gap);
        } else {
            prop_assert!(d <= len / 2 - gap, "close Δ = {d} > {}", len / 2 - gap);
        }
        // Distance between equal-weight strings is always even.
        prop_assert_eq!(d % 2, 0);
    }

    #[test]
    fn hamming_distance_is_a_metric_on_samples(
        a in proptest::collection::vec(any::<bool>(), 1..64),
        seed in 0u64..100,
    ) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let b: Vec<bool> = a.iter().map(|_| rng.gen_bool(0.5)).collect();
        let c: Vec<bool> = a.iter().map(|_| rng.gen_bool(0.5)).collect();
        prop_assert_eq!(hamming_distance(&a, &a), 0);
        prop_assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
        prop_assert!(hamming_distance(&a, &c) <= hamming_distance(&a, &b) + hamming_distance(&b, &c));
    }

    #[test]
    fn twosum_instances_satisfy_their_promise(
        t in 2usize..30,
        l_mult in 3usize..8,
        alpha in 1usize..4,
        hits_frac in 1usize..5,
        seed in 0u64..5000,
    ) {
        let l = l_mult * alpha;
        let hits = (t * hits_frac / 5).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = TwoSumInstance::sample(t, l, alpha, hits, &mut rng);
        prop_assert!(inst.promise_holds());
        prop_assert_eq!(inst.disj_sum(), t - hits);
        prop_assert_eq!(inst.int_sum(), hits * alpha);
        for (x, y) in inst.xs.iter().zip(&inst.ys) {
            let v = int(x, y);
            prop_assert!(v == 0 || v == alpha);
            prop_assert_eq!(disj(x, y), v == 0);
        }
    }

    #[test]
    fn twosum_amplification_is_exactly_alpha_fold(
        t in 2usize..15,
        l in 3usize..12,
        alpha in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base = TwoSumInstance::sample(t, l, 1, (t / 5).max(1), &mut rng);
        let amp = base.amplify(alpha);
        prop_assert_eq!(amp.len(), alpha * l);
        prop_assert_eq!(amp.int_sum(), alpha * base.int_sum());
        prop_assert_eq!(amp.disj_sum(), base.disj_sum());
        prop_assert!(amp.promise_holds());
        // Theorem 5.4's bound: amplification divides the per-instance
        // lower bound back to the base's.
        prop_assert_eq!(amp.lower_bound_bits(), base.lower_bound_bits());
    }

    #[test]
    fn concatenation_preserves_intersections(
        t in 1usize..10,
        l in 3usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = TwoSumInstance::sample(t, l, 1, 1, &mut rng);
        let (x, y) = inst.concatenated();
        prop_assert_eq!(x.len(), t * l);
        prop_assert_eq!(int(&x, &y), inst.int_sum());
    }
}
