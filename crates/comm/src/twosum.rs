//! The 2-SUM(t, L, α) problem (Definitions 5.1 and 5.2 of the paper,
//! after \[WZ14\]).
//!
//! Alice holds `t` binary strings `X¹, …, Xᵗ` of length `L`, Bob holds
//! `Y¹, …, Yᵗ`, with the promise that every pair intersects in exactly
//! `0` or `α` positions and at least a `1/1000` fraction intersect.
//! Approximating `Σᵢ DISJ(Xⁱ, Yⁱ)` to additive `√t` requires
//! `Ω(t·L/α)` bits (Theorem 5.4), which the paper turns into the
//! local-query min-cut lower bound.

use rand::seq::SliceRandom;
use rand::Rng;

/// `INT(x, y)`: the number of positions where both strings are 1.
///
/// # Panics
/// Panics on length mismatch.
#[must_use]
pub fn int(x: &[bool], y: &[bool]) -> usize {
    assert_eq!(x.len(), y.len(), "length mismatch");
    x.iter().zip(y).filter(|(a, b)| **a && **b).count()
}

/// `DISJ(x, y)`: 1 iff the strings are disjoint (`INT = 0`).
#[must_use]
pub fn disj(x: &[bool], y: &[bool]) -> bool {
    int(x, y) == 0
}

/// An instance of 2-SUM(t, L, α) satisfying the promise.
#[derive(Debug, Clone)]
pub struct TwoSumInstance {
    /// Alice's strings (`t` strings of length `L`).
    pub xs: Vec<Vec<bool>>,
    /// Bob's strings.
    pub ys: Vec<Vec<bool>>,
    /// The promised intersection size of intersecting pairs.
    pub alpha: usize,
}

impl TwoSumInstance {
    /// Samples an instance with `t` pairs of length-`L` strings where
    /// `num_intersecting` pairs intersect in exactly `alpha` positions
    /// and the rest are disjoint.
    ///
    /// # Panics
    /// Panics if the promise is unsatisfiable: `num_intersecting` must
    /// be at least `max(1, t/1000)` and at most `t`, and `L ≥ 3α` so
    /// disjoint filler positions exist.
    #[must_use]
    pub fn sample<R: Rng>(
        t: usize,
        l: usize,
        alpha: usize,
        num_intersecting: usize,
        rng: &mut R,
    ) -> Self {
        assert!(alpha >= 1, "α must be ≥ 1");
        assert!(
            l >= 3 * alpha,
            "need L ≥ 3α for disjoint filler, got L={l}, α={alpha}"
        );
        let min_intersecting = (t / 1000).max(1);
        assert!(
            (min_intersecting..=t).contains(&num_intersecting),
            "promise requires {min_intersecting} ≤ num_intersecting ≤ {t}"
        );
        let mut which: Vec<bool> = (0..t).map(|i| i < num_intersecting).collect();
        which.shuffle(rng);
        let mut xs = Vec::with_capacity(t);
        let mut ys = Vec::with_capacity(t);
        for &intersects in &which {
            let (x, y) = sample_pair(l, alpha, intersects, rng);
            xs.push(x);
            ys.push(y);
        }
        Self { xs, ys, alpha }
    }

    /// Number of string pairs `t`.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.xs.len()
    }

    /// String length `L`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.first().map_or(0, Vec::len)
    }

    /// Whether the instance has no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The exact value `Σᵢ DISJ(Xⁱ, Yⁱ)`.
    #[must_use]
    pub fn disj_sum(&self) -> usize {
        self.xs
            .iter()
            .zip(&self.ys)
            .filter(|(x, y)| disj(x, y))
            .count()
    }

    /// The exact value `Σᵢ INT(Xⁱ, Yⁱ)`.
    #[must_use]
    pub fn int_sum(&self) -> usize {
        self.xs.iter().zip(&self.ys).map(|(x, y)| int(x, y)).sum()
    }

    /// Verifies the 0-or-α promise and the 1/1000 fraction.
    #[must_use]
    pub fn promise_holds(&self) -> bool {
        let mut intersecting = 0usize;
        for (x, y) in self.xs.iter().zip(&self.ys) {
            let v = int(x, y);
            if v == self.alpha {
                intersecting += 1;
            } else if v != 0 {
                return false;
            }
        }
        intersecting * 1000 >= self.num_pairs()
    }

    /// The Ω(t·L/α) communication lower bound in bits (constant 1).
    #[must_use]
    pub fn lower_bound_bits(&self) -> usize {
        self.num_pairs() * self.len() / self.alpha
    }

    /// The Theorem 5.4 amplification: concatenates `alpha` copies of a
    /// 2-SUM(t, L, 1) instance into a 2-SUM(t, α·L, α) instance.
    ///
    /// # Panics
    /// Panics if `self.alpha != 1`.
    #[must_use]
    pub fn amplify(&self, alpha: usize) -> Self {
        assert_eq!(self.alpha, 1, "amplification starts from an α = 1 instance");
        assert!(alpha >= 1);
        let cat = |s: &Vec<bool>| -> Vec<bool> {
            let mut out = Vec::with_capacity(s.len() * alpha);
            for _ in 0..alpha {
                out.extend_from_slice(s);
            }
            out
        };
        Self {
            xs: self.xs.iter().map(cat).collect(),
            ys: self.ys.iter().map(cat).collect(),
            alpha,
        }
    }

    /// Concatenates Alice's strings (and likewise Bob's) into the
    /// single pair `(x, y)` of length `t·L` used by the Section 5.3
    /// graph construction.
    #[must_use]
    pub fn concatenated(&self) -> (Vec<bool>, Vec<bool>) {
        let x = self.xs.iter().flatten().copied().collect();
        let y = self.ys.iter().flatten().copied().collect();
        (x, y)
    }
}

/// One pair with `INT` exactly `alpha` (if `intersects`) or `0`,
/// with independent non-overlapping filler ones elsewhere.
fn sample_pair<R: Rng>(
    l: usize,
    alpha: usize,
    intersects: bool,
    rng: &mut R,
) -> (Vec<bool>, Vec<bool>) {
    let mut x = vec![false; l];
    let mut y = vec![false; l];
    let mut positions: Vec<usize> = (0..l).collect();
    positions.shuffle(rng);
    let mut cursor = 0usize;
    if intersects {
        for _ in 0..alpha {
            let p = positions[cursor];
            cursor += 1;
            x[p] = true;
            y[p] = true;
        }
    }
    // Filler: each remaining position goes to x only, y only, or
    // neither — never both, so INT is exactly as planted.
    for &p in &positions[cursor..] {
        match rng.gen_range(0..4) {
            0 => x[p] = true,
            1 => y[p] = true,
            _ => {}
        }
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn int_and_disj_basics() {
        let x = [true, false, true, true];
        let y = [false, false, true, true];
        assert_eq!(int(&x, &y), 2);
        assert!(!disj(&x, &y));
        assert!(disj(&[true, false], &[false, true]));
    }

    #[test]
    fn sampled_instance_satisfies_promise() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let inst = TwoSumInstance::sample(50, 30, 3, 10, &mut rng);
        assert!(inst.promise_holds());
        assert_eq!(inst.num_pairs(), 50);
        assert_eq!(inst.len(), 30);
        assert_eq!(inst.disj_sum(), 40);
        assert_eq!(inst.int_sum(), 30);
    }

    #[test]
    fn every_pair_is_zero_or_alpha() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = TwoSumInstance::sample(40, 24, 4, 7, &mut rng);
        for (x, y) in inst.xs.iter().zip(&inst.ys) {
            let v = int(x, y);
            assert!(v == 0 || v == 4, "INT = {v}");
        }
    }

    #[test]
    fn amplify_multiplies_intersections() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = TwoSumInstance::sample(20, 9, 1, 5, &mut rng);
        let amp = base.amplify(3);
        assert_eq!(amp.alpha, 3);
        assert_eq!(amp.len(), 27);
        assert_eq!(amp.disj_sum(), base.disj_sum());
        assert_eq!(amp.int_sum(), 3 * base.int_sum());
        assert!(amp.promise_holds());
    }

    #[test]
    fn concatenated_preserves_total_intersections() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = TwoSumInstance::sample(10, 12, 2, 4, &mut rng);
        let (x, y) = inst.concatenated();
        assert_eq!(x.len(), 120);
        assert_eq!(int(&x, &y), inst.int_sum());
    }

    #[test]
    fn lower_bound_formula() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let inst = TwoSumInstance::sample(16, 32, 4, 4, &mut rng);
        assert_eq!(inst.lower_bound_bits(), 16 * 32 / 4);
    }

    #[test]
    #[should_panic(expected = "promise requires")]
    fn rejects_unsatisfiable_promise() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = TwoSumInstance::sample(10, 30, 1, 0, &mut rng);
    }
}
