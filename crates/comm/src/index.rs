//! The distributional Index problem (Lemma 3.1 of the paper, after
//! \[KNR01\]).
//!
//! Alice holds a uniformly random sign string `s ∈ {−1,1}^n`; Bob holds
//! a uniformly random index `i ∈ [n]` and must output `s_i` from a
//! single message. Any protocol succeeding with probability ≥ 2/3 must
//! send `Ω(n)` bits — this is the source of the for-each cut sketch
//! lower bound.

use rand::Rng;

/// One sampled Index instance.
#[derive(Debug, Clone)]
pub struct IndexInstance {
    /// Alice's uniformly random sign string.
    pub s: Vec<i8>,
    /// Bob's uniformly random index into `s`.
    pub i: usize,
}

impl IndexInstance {
    /// Samples an instance of length `n` from the hard distribution.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn sample<R: Rng>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "Index needs n ≥ 1");
        let s = (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        let i = rng.gen_range(0..n);
        Self { s, i }
    }

    /// The correct answer `s_i`.
    #[must_use]
    pub fn answer(&self) -> i8 {
        self.s[self.i]
    }

    /// The Ω(n) lower bound on message bits (Lemma 3.1), as a number
    /// for experiment tables (the constant in Ω is taken as 1).
    #[must_use]
    pub fn lower_bound_bits(&self) -> usize {
        self.s.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sample_has_requested_length_and_valid_index() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let inst = IndexInstance::sample(100, &mut rng);
        assert_eq!(inst.s.len(), 100);
        assert!(inst.i < 100);
        assert!(inst.s.iter().all(|&b| b == 1 || b == -1));
    }

    #[test]
    fn signs_are_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = IndexInstance::sample(10_000, &mut rng);
        let ones = inst.s.iter().filter(|&&b| b == 1).count();
        assert!((4500..5500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn answer_reads_the_indexed_sign() {
        let inst = IndexInstance {
            s: vec![1, -1, 1],
            i: 1,
        };
        assert_eq!(inst.answer(), -1);
    }
}
