//! One-way communication protocols and a measuring harness.
//!
//! All three lower bounds in the paper are proved by reductions of the
//! shape *Alice encodes her input into a graph, runs a sketching
//! algorithm, and sends the sketch; Bob decodes by querying cuts*. The
//! [`OneWayProtocol`] trait captures exactly that shape, and
//! [`measure`] runs it over a distribution of instances, reporting the
//! empirical success rate and the exact message sizes.
//!
//! The message is any [`WireEncode`] type: the harness sizes it by
//! serializing it, so every reported bit count comes from one
//! accounting surface. Protocols whose message is an opaque bit string
//! use `Msg = Message` (a blanket [`WireEncode`] blob); protocols with
//! structured messages (a sketch, a distributed-runtime server
//! message) implement the trait on the message type itself and get
//! decoding-side validation for free.

use crate::wire::WireEncode;
use rand::Rng;

/// A one-way (Alice → Bob) protocol for a distributional problem.
pub trait OneWayProtocol {
    /// Alice's input.
    type AliceInput;
    /// Bob's input.
    type BobInput;
    /// Bob's answer.
    type Output;
    /// What Alice puts on the wire.
    /// [`Message`](crate::bitio::Message) for opaque bit blobs; any
    /// structured [`WireEncode`] type otherwise.
    type Msg: WireEncode;

    /// Alice's message, given her input and private randomness.
    fn alice<R: Rng>(&self, input: &Self::AliceInput, rng: &mut R) -> Self::Msg;

    /// Bob's answer, given his input, Alice's message, and randomness.
    fn bob<R: Rng>(&self, input: &Self::BobInput, msg: &Self::Msg, rng: &mut R) -> Self::Output;
}

/// Outcome of measuring a protocol over sampled instances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolStats {
    /// Number of instances run.
    pub trials: usize,
    /// Number of correct answers.
    pub successes: usize,
    /// Mean message length in bits.
    pub mean_bits: f64,
    /// Maximum message length in bits.
    pub max_bits: usize,
}

impl ProtocolStats {
    /// Empirical success probability.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.successes as f64 / self.trials as f64
    }
}

/// Runs `protocol` on `trials` sampled instances.
///
/// `sample` draws `(alice_input, bob_input, correct_answer)`; `check`
/// compares Bob's output against the recorded correct answer.
pub fn measure<P, R, S, C>(
    protocol: &P,
    trials: usize,
    rng: &mut R,
    mut sample: S,
    mut check: C,
) -> ProtocolStats
where
    P: OneWayProtocol,
    R: Rng,
    S: FnMut(&mut R) -> (P::AliceInput, P::BobInput, P::Output),
    C: FnMut(&P::Output, &P::Output) -> bool,
{
    let mut successes = 0usize;
    let mut total_bits = 0usize;
    let mut max_bits = 0usize;
    for _ in 0..trials {
        let (a, b, truth) = sample(rng);
        let msg = protocol.alice(&a, rng);
        // Sized through the one wire-format API: the count comes from
        // actually serializing the message, not a self-report.
        let bits = msg.wire_bits();
        total_bits += bits;
        max_bits = max_bits.max(bits);
        let out = protocol.bob(&b, &msg, rng);
        if check(&out, &truth) {
            successes += 1;
        }
    }
    ProtocolStats {
        trials,
        successes,
        mean_bits: if trials == 0 {
            0.0
        } else {
            total_bits as f64 / trials as f64
        },
        max_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::{BitWriter, Message};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Toy protocol: Alice sends her whole bit string, Bob indexes it.
    struct SendEverything;

    impl OneWayProtocol for SendEverything {
        type AliceInput = Vec<bool>;
        type BobInput = usize;
        type Output = bool;
        type Msg = Message;

        fn alice<R: Rng>(&self, input: &Vec<bool>, _rng: &mut R) -> Message {
            let mut w = BitWriter::new();
            for &b in input {
                w.write_bit(b);
            }
            w.finish()
        }

        fn bob<R: Rng>(&self, input: &usize, msg: &Message, _rng: &mut R) -> bool {
            let mut r = msg.reader();
            let mut val = false;
            for _ in 0..=*input {
                val = r.read_bit();
            }
            val
        }
    }

    #[test]
    fn trivial_protocol_always_succeeds_with_exact_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 37;
        let stats = measure(
            &SendEverything,
            50,
            &mut rng,
            |rng| {
                let s: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
                let i = rng.gen_range(0..n);
                let truth = s[i];
                (s, i, truth)
            },
            |a, b| a == b,
        );
        assert_eq!(stats.success_rate(), 1.0);
        assert_eq!(stats.mean_bits, n as f64);
        assert_eq!(stats.max_bits, n);
    }

    /// A protocol that sends nothing can only guess.
    struct SendNothing;

    impl OneWayProtocol for SendNothing {
        type AliceInput = Vec<bool>;
        type BobInput = usize;
        type Output = bool;
        type Msg = Message;

        fn alice<R: Rng>(&self, _input: &Vec<bool>, _rng: &mut R) -> Message {
            BitWriter::new().finish()
        }

        fn bob<R: Rng>(&self, _input: &usize, _msg: &Message, rng: &mut R) -> bool {
            rng.gen_bool(0.5)
        }
    }

    #[test]
    fn empty_protocol_is_a_coin_flip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stats = measure(
            &SendNothing,
            2000,
            &mut rng,
            |rng| {
                let s: Vec<bool> = (0..8).map(|_| rng.gen_bool(0.5)).collect();
                let i = rng.gen_range(0..8);
                let truth = s[i];
                (s, i, truth)
            },
            |a, b| a == b,
        );
        assert_eq!(stats.max_bits, 0);
        let rate = stats.success_rate();
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }
}
