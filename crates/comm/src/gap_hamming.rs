//! The distributional Gap-Hamming problem (Lemma 4.1 of the paper,
//! after \[ACK+16\]).
//!
//! Alice has `h` strings `s_1, …, s_h ∈ {0,1}^L` of Hamming weight
//! `L/2`; Bob has an index `i` and a string `t` of weight `L/2`, with
//! the planted promise that `Δ(s_i, t)` is either `≥ L/2 + gap` (far)
//! or `≤ L/2 − gap` (close), each with probability 1/2. Deciding which
//! case holds requires `Ω(h/ε²) = Ω(h·L)` bits of one-way
//! communication. In the paper `L = 1/ε²` and `gap = c/ε = c·√L`.
//!
//! *Sampling note.* The lemma conditions uniform strings on the
//! distance tail; we plant the distance exactly at the boundary
//! (`L/2 ± gap`, rounded to the nearest feasible even value), which is
//! where the conditional distribution concentrates anyway. This keeps
//! instances exact and reproducible; DESIGN.md records the substitution.

use rand::seq::SliceRandom;
use rand::Rng;

/// Hamming weight of a bit string.
#[must_use]
pub fn hamming_weight(x: &[bool]) -> usize {
    x.iter().filter(|&&b| b).count()
}

/// Hamming distance between two equal-length bit strings.
///
/// # Panics
/// Panics on length mismatch.
#[must_use]
pub fn hamming_distance(x: &[bool], y: &[bool]) -> usize {
    assert_eq!(x.len(), y.len(), "length mismatch");
    x.iter().zip(y).filter(|(a, b)| a != b).count()
}

/// A uniformly random string of the given length and Hamming weight.
///
/// # Panics
/// Panics if `weight > len`.
#[must_use]
pub fn random_weighted_string<R: Rng>(len: usize, weight: usize, rng: &mut R) -> Vec<bool> {
    assert!(weight <= len, "weight {weight} > length {len}");
    let mut idx: Vec<usize> = (0..len).collect();
    idx.shuffle(rng);
    let mut s = vec![false; len];
    for &i in &idx[..weight] {
        s[i] = true;
    }
    s
}

/// Parameters of the distributional Gap-Hamming problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapHammingParams {
    /// Number of strings Alice holds (`h`).
    pub h: usize,
    /// String length (`L = 1/ε²`); must be a multiple of 4 so that
    /// weight `L/2` strings at even distances exist on both sides.
    pub len: usize,
    /// The distance gap (`c/ε = c·√L`), `1 ≤ gap ≤ L/2`.
    pub gap: usize,
}

impl GapHammingParams {
    /// Validates and builds parameters.
    ///
    /// # Panics
    /// Panics if `len` is not a positive multiple of 4, `h == 0`, or
    /// the gap is out of range.
    #[must_use]
    pub fn new(h: usize, len: usize, gap: usize) -> Self {
        assert!(h > 0, "need at least one string");
        assert!(
            len > 0 && len.is_multiple_of(4),
            "len must be a positive multiple of 4, got {len}"
        );
        assert!(
            gap >= 1 && gap <= len / 2,
            "gap {gap} out of range for len {len}"
        );
        Self { h, len, gap }
    }

    /// The paper's choice `len = 1/ε²` read backwards: `ε = 1/√len`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        1.0 / (self.len as f64).sqrt()
    }

    /// The Ω(h·L) communication lower bound in bits (constant 1).
    #[must_use]
    pub fn lower_bound_bits(&self) -> usize {
        self.h * self.len
    }
}

/// One sampled instance of the distributional Gap-Hamming problem.
#[derive(Debug, Clone)]
pub struct GapHammingInstance {
    /// The parameters it was drawn from.
    pub params: GapHammingParams,
    /// Alice's `h` strings, each of weight `len/2`.
    pub strings: Vec<Vec<bool>>,
    /// Bob's index into `strings`.
    pub i: usize,
    /// Bob's string of weight `len/2`.
    pub t: Vec<bool>,
    /// Whether the planted case is the far one
    /// (`Δ(s_i, t) ≥ L/2 + gap`).
    pub is_far: bool,
}

impl GapHammingInstance {
    /// Samples an instance from the planted hard distribution.
    #[must_use]
    pub fn sample<R: Rng>(params: GapHammingParams, rng: &mut R) -> Self {
        let GapHammingParams { h, len, gap } = params;
        let w = len / 2;
        let strings: Vec<Vec<bool>> = (0..h)
            .map(|_| random_weighted_string(len, w, rng))
            .collect();
        let i = rng.gen_range(0..h);
        let is_far = rng.gen_bool(0.5);
        // Distance between two weight-w strings is always even; plant
        // the boundary value rounded outward to stay on the promise.
        let delta = if is_far {
            let d = w + gap;
            d + d % 2
        } else {
            let d = w - gap;
            d - d % 2
        };
        let swaps = delta / 2;
        // Build t from s_i by turning `swaps` ones off and `swaps`
        // zeros on, keeping the weight at exactly w.
        let ones: Vec<usize> = strings[i]
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(p, _)| p)
            .collect();
        let zeros: Vec<usize> = strings[i]
            .iter()
            .enumerate()
            .filter(|(_, &b)| !b)
            .map(|(p, _)| p)
            .collect();
        debug_assert!(swaps <= ones.len() && swaps <= zeros.len());
        let mut t = strings[i].clone();
        for &p in ones.choose_multiple(rng, swaps) {
            t[p] = false;
        }
        for &p in zeros.choose_multiple(rng, swaps) {
            t[p] = true;
        }
        Self {
            params,
            strings,
            i,
            t,
            is_far,
        }
    }

    /// The correct answer: `true` iff the far case was planted.
    #[must_use]
    pub fn answer(&self) -> bool {
        self.is_far
    }

    /// The actual planted distance `Δ(s_i, t)`.
    #[must_use]
    pub fn planted_distance(&self) -> usize {
        hamming_distance(&self.strings[self.i], &self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn weighted_string_has_exact_weight() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..10 {
            let s = random_weighted_string(64, 32, &mut rng);
            assert_eq!(hamming_weight(&s), 32);
        }
    }

    #[test]
    fn distance_helpers() {
        assert_eq!(
            hamming_distance(&[true, false, true], &[true, true, false]),
            2
        );
        assert_eq!(hamming_weight(&[true, true, false]), 2);
    }

    #[test]
    fn instance_respects_all_weight_constraints() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = GapHammingParams::new(8, 64, 8);
        let inst = GapHammingInstance::sample(p, &mut rng);
        assert_eq!(inst.strings.len(), 8);
        for s in &inst.strings {
            assert_eq!(hamming_weight(s), 32);
        }
        assert_eq!(hamming_weight(&inst.t), 32);
    }

    #[test]
    fn planted_distance_is_on_the_promised_side() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = GapHammingParams::new(4, 64, 8);
        let mut seen_far = false;
        let mut seen_close = false;
        for _ in 0..50 {
            let inst = GapHammingInstance::sample(p, &mut rng);
            let d = inst.planted_distance();
            if inst.is_far {
                seen_far = true;
                assert!(d >= 32 + 8, "far case with Δ = {d}");
            } else {
                seen_close = true;
                assert!(d <= 32 - 8, "close case with Δ = {d}");
            }
        }
        assert!(seen_far && seen_close);
    }

    #[test]
    fn epsilon_and_lower_bound_read_back() {
        let p = GapHammingParams::new(10, 16, 2);
        assert!((p.epsilon() - 0.25).abs() < 1e-12);
        assert_eq!(p.lower_bound_bits(), 160);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_bad_length() {
        let _ = GapHammingParams::new(2, 10, 1);
    }
}
