//! The shared stream transport: sealed frames over TCP, Unix sockets,
//! or an in-process loopback — one code path, one error contract.
//!
//! On the wire each unit is an 8-byte prefix — a 4-byte little-endian
//! *bit* count, then a 4-byte little-endian `meta` word — followed by
//! the sealed frame's bytes (`ceil(bits/8)` of them). `meta` is an
//! opaque caller tag travelling outside the CRC: ordinary traffic
//! sends 0, while the distributed runtime stamps link metadata there
//! so corrupting the sealed frame can never destroy its attribution.
//! The bit count is the only thing read before validation, and it is
//! checked against [`MAX_FRAME_BITS`] before any allocation — a peer
//! cannot make the receiver reserve more than the cap. Everything
//! inside the prefix is protected by the frame layer's magic, length,
//! and CRC ([`crate::frame`]), so a flipped bit anywhere surfaces as a
//! typed [`WireError`], never a panic or a garbage answer.
//!
//! Reads are short-read- and `EINTR`-safe: [`read_frame`] loops on
//! [`io::ErrorKind::Interrupted`] and partial reads. A read deadline
//! (`WouldBlock`/`TimedOut`) only surfaces as a timeout while *no*
//! byte of the next frame has arrived — once the prefix has started,
//! the reader is committed and keeps retrying, so a poll tick can
//! never desynchronize the stream mid-frame.
//!
//! The abstract surface is the [`Transport`]/[`Connection`] trait
//! pair (with [`Accept`] for listeners); [`SocketTransport`] covers
//! both socket families and [`LoopbackTransport`] is the in-process
//! hub. Every [`Conn`] counts the bytes it sends and receives —
//! prefixes included — so counted `wire_bits` can be checked against
//! observed bytes.

use crate::bitio::Message;
use crate::frame::{open, seal};
use crate::wire::{from_message, to_message, WireEncode, WireError};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Largest node universe a server will accept in a request.
///
/// A bitset over `n` nodes is `n/64` wire words; this cap keeps a
/// hostile request from asking a server to allocate gigabytes. It is
/// far above any graph the toolkit generates.
pub const MAX_UNIVERSE: usize = 1 << 21;

/// Largest sealed frame (in bits) any receiver will read from a
/// stream. Sized to fit a cut request at [`MAX_UNIVERSE`] with room
/// to spare.
pub const MAX_FRAME_BITS: usize = 1 << 22;

/// Bytes of prefix ahead of every frame: 4 for the bit count, 4 for
/// the `meta` word.
pub const PREFIX_BYTES: usize = 8;

/// Anything that can go wrong moving one value across a stream.
#[derive(Debug)]
pub enum TransportError {
    /// The stream failed (closed, reset, timed out).
    Io(io::Error),
    /// The bytes arrived but do not parse as a sealed frame holding
    /// one value — corruption, truncation, or an oversized prefix.
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport I/O: {e}"),
            Self::Wire(e) => write!(f, "transport framing: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl TransportError {
    /// Whether this is a read timeout (the poll tick of a blocking
    /// reader with a deadline, not a real failure).
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            Self::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }

    /// Whether the connection can keep serving after this error.
    ///
    /// The shared convention every server inherits: a corrupt frame
    /// leaves the stream aligned (the declared bytes were consumed),
    /// so report it with an error response and keep reading; an
    /// oversized prefix cannot be resynchronized, and a socket-level
    /// failure means the peer is gone — both are fatal. Check
    /// [`is_timeout`](Self::is_timeout) first: a timeout is an `Io`
    /// error but just means "no frame yet".
    #[must_use]
    pub fn is_connection_fatal(&self) -> bool {
        match self {
            Self::Io(_) => true,
            Self::Wire(wire) => matches!(wire, WireError::Oversized { .. }),
        }
    }
}

/// Where a server listens or a client connects: `unix:/path/to.sock`,
/// a TCP `host:port`, or an in-process loopback channel id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:7171`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// In-process loopback channel, addressed by id within one
    /// [`LoopbackTransport`] hub.
    Loopback(u64),
}

impl Endpoint {
    /// Parses `unix:PATH`, `loopback[:ID]`, or `HOST:PORT`.
    ///
    /// # Errors
    /// A plain string describing what is wrong with the spec (for CLI
    /// usage errors).
    pub fn parse(spec: &str) -> Result<Self, String> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a path after `unix:`".into());
            }
            return Ok(Self::Unix(PathBuf::from(path)));
        }
        if spec == "loopback" {
            return Ok(Self::Loopback(0));
        }
        if let Some(id) = spec.strip_prefix("loopback:") {
            return id
                .parse::<u64>()
                .map(Self::Loopback)
                .map_err(|_| format!("cannot parse loopback id `{id}`"));
        }
        if spec
            .rsplit_once(':')
            .is_some_and(|(h, p)| !h.is_empty() && p.parse::<u16>().is_ok())
        {
            return Ok(Self::Tcp(spec.to_owned()));
        }
        Err(format!(
            "cannot parse endpoint `{spec}` (want `unix:PATH`, `loopback[:ID]`, or `HOST:PORT`)"
        ))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(addr) => write!(f, "{addr}"),
            Self::Unix(path) => write!(f, "unix:{}", path.display()),
            Self::Loopback(id) => write!(f, "loopback:{id}"),
        }
    }
}

/// Reads exactly `buf.len()` bytes, looping over `Interrupted` and
/// partial reads. `committed` says whether earlier bytes of the same
/// frame were already consumed: a read deadline (`WouldBlock` /
/// `TimedOut`) before the first byte is a clean timeout and surfaces
/// as such, but once any byte is in, the stream position is committed
/// and the deadline is ignored until the frame completes.
fn read_full<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    mut committed: bool,
) -> Result<(), TransportError> {
    let mut pos = 0usize;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) => {
                return Err(TransportError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => {
                pos += n;
                committed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if !committed
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) =>
            {
                return Err(TransportError::Io(e));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    Ok(())
}

/// Writes one prefixed frame: bit count, `meta`, frame bytes. Returns
/// the total bytes written (prefix included).
///
/// # Errors
/// [`TransportError::Wire`] with [`WireError::Oversized`] if the
/// frame's bit length does not fit the 4-byte prefix;
/// [`TransportError::Io`] if the stream fails.
pub fn write_frame<W: Write + ?Sized>(
    w: &mut W,
    frame: &Message,
    meta: u32,
) -> Result<u64, TransportError> {
    let Ok(bits) = u32::try_from(frame.bit_len()) else {
        return Err(WireError::Oversized {
            bits: frame.bit_len(),
            limit: u32::MAX as usize,
        }
        .into());
    };
    w.write_all(&bits.to_le_bytes())?;
    w.write_all(&meta.to_le_bytes())?;
    w.write_all(frame.as_bytes())?;
    w.flush()?;
    Ok((PREFIX_BYTES + frame.as_bytes().len()) as u64)
}

/// Reads one prefixed frame back: the raw (still sealed) frame and its
/// `meta` word. Safe against short reads and `EINTR`; see the module
/// docs for the timeout semantics.
///
/// # Errors
/// [`TransportError::Io`] on stream failure or an idle timeout;
/// [`TransportError::Wire`] with [`WireError::Oversized`] when the
/// declared bit count exceeds `max_bits` — checked before any
/// allocation, and fatal for the connection since the stream cannot be
/// resynchronized past an untrusted length.
pub fn read_frame<R: Read + ?Sized>(
    r: &mut R,
    max_bits: usize,
) -> Result<(Message, u32), TransportError> {
    let mut prefix = [0u8; PREFIX_BYTES];
    read_full(r, &mut prefix, false)?;
    let bits = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]) as usize;
    let meta = u32::from_le_bytes([prefix[4], prefix[5], prefix[6], prefix[7]]);
    if bits > max_bits {
        return Err(WireError::Oversized {
            bits,
            limit: max_bits,
        }
        .into());
    }
    let mut bytes = vec![0u8; bits.div_ceil(8)];
    read_full(r, &mut bytes, true)?;
    let frame = Message::from_bytes(bytes, bits).expect("buffer sized from bit count");
    Ok((frame, meta))
}

/// One established bidirectional frame stream.
///
/// The object-safe core moves raw sealed frames with their `meta`
/// word; the sized conveniences ([`send`](Connection::send) /
/// [`recv`](Connection::recv)) add sealing, size caps, opening, and
/// decoding so most callers never touch a frame. Implementations
/// count every byte they move — prefixes included — through
/// [`bytes_sent`](Connection::bytes_sent) and
/// [`bytes_received`](Connection::bytes_received).
pub trait Connection: Send {
    /// Writes one already-sealed frame with its `meta` word.
    ///
    /// # Errors
    /// [`TransportError::Io`] if the stream fails, [`TransportError::Wire`]
    /// if the frame cannot be prefixed.
    fn send_frame(&mut self, frame: &Message, meta: u32) -> Result<(), TransportError>;

    /// Reads one raw (still sealed) frame and its `meta` word.
    ///
    /// # Errors
    /// As for [`read_frame`].
    fn recv_frame(&mut self) -> Result<(Message, u32), TransportError>;

    /// Bounds how long a read blocks, so a serving thread can notice a
    /// shutdown flag (or a lost peer) between frames. `None` blocks
    /// forever.
    ///
    /// # Errors
    /// Any socket-option failure from the OS.
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()>;

    /// Total bytes written to the stream so far, prefixes included.
    fn bytes_sent(&self) -> u64;

    /// Total bytes read from the stream so far, prefixes included.
    fn bytes_received(&self) -> u64;

    /// Seals `value` into a frame and writes it with `meta = 0`.
    ///
    /// # Errors
    /// As for [`send_meta`](Connection::send_meta).
    fn send<T: WireEncode>(&mut self, value: &T) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        self.send_meta(value, 0)
    }

    /// Seals `value` into a frame and writes it with a caller `meta`.
    ///
    /// # Errors
    /// [`TransportError::Wire`] if the value cannot be framed or the
    /// sealed frame exceeds [`MAX_FRAME_BITS`], [`TransportError::Io`]
    /// if the stream fails.
    fn send_meta<T: WireEncode>(&mut self, value: &T, meta: u32) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        let framed = seal(&to_message(value))?;
        if framed.bit_len() > MAX_FRAME_BITS {
            return Err(WireError::Oversized {
                bits: framed.bit_len(),
                limit: MAX_FRAME_BITS,
            }
            .into());
        }
        self.send_frame(&framed, meta)
    }

    /// Reads one frame, opens it, and decodes one `T`.
    ///
    /// # Errors
    /// As for [`recv_meta`](Connection::recv_meta).
    fn recv<T: WireEncode>(&mut self) -> Result<T, TransportError>
    where
        Self: Sized,
    {
        Ok(self.recv_meta::<T>()?.0)
    }

    /// Reads one frame, opens it, and decodes one `T`, returning the
    /// `meta` word alongside.
    ///
    /// # Errors
    /// [`TransportError::Io`] on stream failure or timeout;
    /// [`TransportError::Wire`] on an oversized prefix, a corrupt
    /// frame, or a payload that does not decode as exactly one `T`.
    /// Use [`TransportError::is_connection_fatal`] to decide whether
    /// the stream is still usable.
    fn recv_meta<T: WireEncode>(&mut self) -> Result<(T, u32), TransportError>
    where
        Self: Sized,
    {
        let (framed, meta) = self.recv_frame()?;
        let payload = open(&framed)?;
        Ok((from_message::<T>(&payload)?, meta))
    }
}

/// One side of an in-process loopback stream: a byte channel with the
/// same blocking/timeout surface as a socket.
#[derive(Debug)]
pub struct LoopbackStream {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    buf: VecDeque<u8>,
    timeout: Option<Duration>,
}

/// Creates a connected pair of loopback streams.
#[must_use]
fn loopback_streams() -> (LoopbackStream, LoopbackStream) {
    let (atx, arx) = channel();
    let (btx, brx) = channel();
    let mk = |tx, rx| LoopbackStream {
        tx,
        rx,
        buf: VecDeque::new(),
        timeout: None,
    };
    (mk(atx, brx), mk(btx, arx))
}

impl Read for LoopbackStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        while self.buf.is_empty() {
            let chunk = match self.timeout {
                Some(dur) => self.rx.recv_timeout(dur).map_err(|e| match e {
                    RecvTimeoutError::Timeout => {
                        io::Error::new(io::ErrorKind::WouldBlock, "loopback read timed out")
                    }
                    RecvTimeoutError::Disconnected => io::ErrorKind::UnexpectedEof.into(),
                })?,
                None => self
                    .rx
                    .recv()
                    .map_err(|_| io::Error::from(io::ErrorKind::UnexpectedEof))?,
            };
            self.buf.extend(chunk);
        }
        let n = out.len().min(self.buf.len());
        for slot in out.iter_mut().take(n) {
            *slot = self.buf.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }
}

impl Write for LoopbackStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.tx
            .send(data.to_vec())
            .map_err(|_| io::Error::from(io::ErrorKind::BrokenPipe))?;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The underlying byte stream of a [`Conn`].
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
    Loopback(LoopbackStream),
}

/// One established connection over any supported stream family, with
/// byte counters.
pub struct Conn {
    stream: Stream,
    sent: u64,
    received: u64,
}

impl Conn {
    fn from_stream(stream: Stream) -> Self {
        Self {
            stream,
            sent: 0,
            received: 0,
        }
    }

    /// Connects to a socket endpoint. Loopback endpoints live inside a
    /// [`LoopbackTransport`] hub and cannot be dialled directly.
    ///
    /// # Errors
    /// Any connect failure from the OS.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Ok(Self::from_stream(Stream::Tcp(s)))
            }
            Endpoint::Unix(path) => Ok(Self::from_stream(Stream::Unix(UnixStream::connect(path)?))),
            Endpoint::Loopback(_) => Err(io::Error::other(
                "loopback endpoints are dialled through a LoopbackTransport hub",
            )),
        }
    }

    /// Creates a connected in-process pair — the loopback equivalent
    /// of `UnixStream::pair`.
    #[must_use]
    pub fn loopback_pair() -> (Self, Self) {
        let (a, b) = loopback_streams();
        (
            Self::from_stream(Stream::Loopback(a)),
            Self::from_stream(Stream::Loopback(b)),
        )
    }

    fn reader(&mut self) -> &mut dyn Read {
        match &mut self.stream {
            Stream::Tcp(s) => s,
            Stream::Unix(s) => s,
            Stream::Loopback(s) => s,
        }
    }

    fn writer(&mut self) -> &mut dyn Write {
        match &mut self.stream {
            Stream::Tcp(s) => s,
            Stream::Unix(s) => s,
            Stream::Loopback(s) => s,
        }
    }

    /// Writes raw bytes under a chosen bit-count prefix (and `meta`
    /// 0) — test hook for exercising corrupt-frame handling.
    ///
    /// # Errors
    /// Any stream failure.
    pub fn send_raw(&mut self, bits: u32, bytes: &[u8]) -> io::Result<()> {
        let w = self.writer();
        w.write_all(&bits.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        w.write_all(bytes)?;
        w.flush()?;
        self.sent += (PREFIX_BYTES + bytes.len()) as u64;
        Ok(())
    }
}

impl Connection for Conn {
    fn send_frame(&mut self, frame: &Message, meta: u32) -> Result<(), TransportError> {
        let written = write_frame(self.writer(), frame, meta)?;
        self.sent += written;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<(Message, u32), TransportError> {
        let (frame, meta) = read_frame(self.reader(), MAX_FRAME_BITS)?;
        self.received += (PREFIX_BYTES + frame.as_bytes().len()) as u64;
        Ok((frame, meta))
    }

    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        match &mut self.stream {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Loopback(s) => {
                s.timeout = dur;
                Ok(())
            }
        }
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

/// A bound listener producing [`Connection`]s.
pub trait Accept: Send {
    /// The connection type accepted.
    type Conn: Connection;

    /// Accepts one connection, returned already in blocking mode.
    ///
    /// # Errors
    /// `WouldBlock` when non-blocking and idle; other errors as from
    /// the OS.
    fn accept(&self) -> io::Result<Self::Conn>;

    /// Switches to non-blocking accepts (so an accept loop can poll a
    /// shutdown flag).
    ///
    /// # Errors
    /// Any socket-option failure from the OS.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;

    /// The endpoint actually bound (resolves TCP port 0).
    ///
    /// # Errors
    /// If the OS cannot report the local address.
    fn local_endpoint(&self) -> io::Result<Endpoint>;
}

/// A bound listening socket (any family).
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
    /// In-process loopback listener fed by a [`LoopbackTransport`].
    Loopback {
        /// The hub channel id this listener serves.
        id: u64,
        /// Queue of connections pushed by the hub's `connect`.
        pending: Mutex<Receiver<Conn>>,
        /// Whether `accept` polls instead of blocking.
        nonblocking: AtomicBool,
    },
}

impl Listener {
    /// Binds the endpoint. For TCP, port 0 picks a free port — the
    /// bound address is recoverable via [`Accept::local_endpoint`].
    /// Loopback endpoints bind through a [`LoopbackTransport`] hub.
    ///
    /// # Errors
    /// Any bind failure from the OS.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Self::Tcp(TcpListener::bind(addr.as_str())?)),
            Endpoint::Unix(path) => {
                // A stale socket file from a previous run would make
                // bind fail; remove only if it is a socket.
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                Ok(Self::Unix(UnixListener::bind(path)?))
            }
            Endpoint::Loopback(_) => Err(io::Error::other(
                "loopback endpoints are bound through a LoopbackTransport hub",
            )),
        }
    }
}

impl Accept for Listener {
    type Conn = Conn;

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Self::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                Ok(Conn::from_stream(Stream::Tcp(s)))
            }
            Self::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::from_stream(Stream::Unix(s)))
            }
            Self::Loopback {
                pending,
                nonblocking,
                ..
            } => {
                let rx = pending.lock().unwrap_or_else(PoisonError::into_inner);
                if nonblocking.load(Ordering::Acquire) {
                    rx.try_recv().map_err(|e| match e {
                        TryRecvError::Empty => io::ErrorKind::WouldBlock.into(),
                        TryRecvError::Disconnected => {
                            io::Error::other("loopback hub dropped the listener channel")
                        }
                    })
                } else {
                    rx.recv()
                        .map_err(|_| io::Error::other("loopback hub dropped the listener channel"))
                }
            }
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Self::Tcp(l) => l.set_nonblocking(nonblocking),
            Self::Unix(l) => l.set_nonblocking(nonblocking),
            Self::Loopback {
                nonblocking: nb, ..
            } => {
                nb.store(nonblocking, Ordering::Release);
                Ok(())
            }
        }
    }

    fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Self::Tcp(l) => {
                let addr: SocketAddr = l.local_addr()?;
                Ok(Endpoint::Tcp(addr.to_string()))
            }
            Self::Unix(l) => {
                let addr = l.local_addr()?;
                let path: &Path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(Endpoint::Unix(path.to_owned()))
            }
            Self::Loopback { id, .. } => Ok(Endpoint::Loopback(*id)),
        }
    }
}

/// A way of binding listeners and dialling connections: the seam the
/// distributed runtime is generic over, so the same coordinator code
/// runs over TCP, Unix sockets, or in-process loopback channels.
pub trait Transport: Send + Sync {
    /// Connection type produced by this transport.
    type Conn: Connection;
    /// Listener type produced by this transport.
    type Listener: Accept<Conn = Self::Conn>;

    /// Binds a listener at `endpoint`.
    ///
    /// # Errors
    /// Any bind failure.
    fn listen(&self, endpoint: &Endpoint) -> io::Result<Self::Listener>;

    /// Dials a connection to `endpoint`.
    ///
    /// # Errors
    /// Any connect failure.
    fn connect(&self, endpoint: &Endpoint) -> io::Result<Self::Conn>;
}

/// The OS-socket transport: TCP and Unix-domain endpoints.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocketTransport;

impl Transport for SocketTransport {
    type Conn = Conn;
    type Listener = Listener;

    fn listen(&self, endpoint: &Endpoint) -> io::Result<Listener> {
        Listener::bind(endpoint)
    }

    fn connect(&self, endpoint: &Endpoint) -> io::Result<Conn> {
        Conn::connect(endpoint)
    }
}

/// An in-process transport hub: [`Endpoint::Loopback`] ids map to
/// registered listeners, and `connect` splices a fresh stream pair
/// straight into the matching accept queue. No OS descriptors are
/// involved, so it is the fastest topology and works where sockets
/// are unavailable — while exercising the exact same framing path.
#[derive(Debug, Clone, Default)]
pub struct LoopbackTransport {
    registry: Arc<Mutex<HashMap<u64, Sender<Conn>>>>,
}

impl LoopbackTransport {
    /// A fresh hub with no listeners.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for LoopbackTransport {
    type Conn = Conn;
    type Listener = Listener;

    fn listen(&self, endpoint: &Endpoint) -> io::Result<Listener> {
        let Endpoint::Loopback(id) = endpoint else {
            return Err(io::Error::other(
                "a LoopbackTransport binds only loopback endpoints",
            ));
        };
        let (tx, rx) = channel();
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(*id, tx);
        Ok(Listener::Loopback {
            id: *id,
            pending: Mutex::new(rx),
            nonblocking: AtomicBool::new(false),
        })
    }

    fn connect(&self, endpoint: &Endpoint) -> io::Result<Conn> {
        let Endpoint::Loopback(id) = endpoint else {
            return Err(io::Error::other(
                "a LoopbackTransport dials only loopback endpoints",
            ));
        };
        let tx = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
            .cloned()
            .ok_or_else(|| io::Error::from(io::ErrorKind::ConnectionRefused))?;
        let (ours, theirs) = Conn::loopback_pair();
        tx.send(theirs)
            .map_err(|_| io::Error::from(io::ErrorKind::ConnectionRefused))?;
        Ok(ours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    /// A toy payload type for round-trip tests.
    #[derive(Debug, PartialEq)]
    struct Probe {
        a: u32,
        b: f64,
    }

    impl WireEncode for Probe {
        fn encode(&self, w: &mut BitWriter) {
            w.write_bits(u64::from(self.a), 32);
            w.write_f64(self.b);
        }

        fn decode(r: &mut crate::bitio::BitReader<'_>) -> Result<Self, WireError> {
            Ok(Self {
                a: r.try_read_bits(32)? as u32,
                b: r.try_read_f64()?,
            })
        }
    }

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:7171").unwrap(),
            Endpoint::Tcp("127.0.0.1:7171".into())
        );
        assert_eq!(Endpoint::parse("loopback").unwrap(), Endpoint::Loopback(0));
        assert_eq!(
            Endpoint::parse("loopback:7").unwrap(),
            Endpoint::Loopback(7)
        );
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("no-port").is_err());
        assert!(Endpoint::parse("host:99999").is_err());
        assert!(Endpoint::parse("loopback:x").is_err());
    }

    #[test]
    fn frames_cross_a_unix_socketpair() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut tx = Conn::from_stream(Stream::Unix(a));
        let mut rx = Conn::from_stream(Stream::Unix(b));
        let probe = Probe { a: 77, b: -2.5 };
        tx.send(&probe).unwrap();
        assert_eq!(rx.recv::<Probe>().unwrap(), probe);
    }

    #[test]
    fn frames_cross_a_loopback_pair_with_meta() {
        let (mut tx, mut rx) = Conn::loopback_pair();
        let probe = Probe { a: 1, b: 0.5 };
        tx.send_meta(&probe, 0xDEAD_BEEF).unwrap();
        let (got, meta) = rx.recv_meta::<Probe>().unwrap();
        assert_eq!(got, probe);
        assert_eq!(meta, 0xDEAD_BEEF);
    }

    #[test]
    fn byte_counters_match_on_both_ends_and_include_prefixes() {
        let (mut tx, mut rx) = Conn::loopback_pair();
        let probe = Probe { a: 9, b: 1.25 };
        let framed = seal(&to_message(&probe)).unwrap();
        let expect = (PREFIX_BYTES + framed.bit_len().div_ceil(8)) as u64;
        tx.send(&probe).unwrap();
        rx.recv::<Probe>().unwrap();
        assert_eq!(tx.bytes_sent(), expect);
        assert_eq!(rx.bytes_received(), expect);
        assert_eq!(tx.bytes_received(), 0);
        assert_eq!(rx.bytes_sent(), 0);
    }

    #[test]
    fn corrupt_bytes_surface_as_wire_errors_and_leave_the_stream_aligned() {
        let (mut tx, mut rx) = Conn::loopback_pair();
        let framed = seal(&to_message(&Probe { a: 3, b: 0.0 })).unwrap();
        let mut bytes = framed.as_bytes().to_vec();
        bytes[3] ^= 0x40;
        tx.send_raw(framed.bit_len() as u32, &bytes).unwrap();
        match rx.recv::<Probe>() {
            Err(e @ TransportError::Wire(_)) => assert!(!e.is_connection_fatal()),
            other => panic!("expected wire error, got {other:?}"),
        }
        // The stream stayed aligned: a good frame still goes through.
        let probe = Probe { a: 4, b: 8.0 };
        tx.send(&probe).unwrap();
        assert_eq!(rx.recv::<Probe>().unwrap(), probe);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation_and_is_fatal() {
        let (mut tx, mut rx) = Conn::loopback_pair();
        tx.send_raw(u32::MAX, &[]).unwrap();
        match rx.recv::<Probe>() {
            Err(e @ TransportError::Wire(WireError::Oversized { .. })) => {
                assert!(e.is_connection_fatal());
            }
            other => panic!("expected oversized, got {other:?}"),
        }
    }

    /// A stream that hands out one byte per `read` and interleaves
    /// `Interrupted` and mid-frame `WouldBlock` errors between them —
    /// the worst legal behaviour of a socket under signals and tight
    /// deadlines.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        step: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            self.step += 1;
            match self.step % 3 {
                1 => Err(io::ErrorKind::Interrupted.into()),
                2 if self.pos > 0 => Err(io::ErrorKind::WouldBlock.into()),
                _ => {
                    if self.pos >= self.data.len() {
                        return Ok(0);
                    }
                    out[0] = self.data[self.pos];
                    self.pos += 1;
                    Ok(1)
                }
            }
        }
    }

    #[test]
    fn read_frame_survives_a_dribbling_interrupted_stream() {
        let probe = Probe {
            a: 12345,
            b: std::f64::consts::PI,
        };
        let framed = seal(&to_message(&probe)).unwrap();
        let mut wire = Vec::new();
        write_frame(&mut wire, &framed, 42).unwrap();
        let mut dribble = Dribble {
            data: wire,
            pos: 0,
            step: 0,
        };
        let (got, meta) = read_frame(&mut dribble, MAX_FRAME_BITS).unwrap();
        assert_eq!(meta, 42);
        let payload = open(&got).unwrap();
        assert_eq!(from_message::<Probe>(&payload).unwrap(), probe);
    }

    #[test]
    fn idle_timeout_before_any_byte_is_a_timeout_not_a_desync() {
        struct AlwaysBlocked;
        impl Read for AlwaysBlocked {
            fn read(&mut self, _out: &mut [u8]) -> io::Result<usize> {
                Err(io::ErrorKind::WouldBlock.into())
            }
        }
        match read_frame(&mut AlwaysBlocked, MAX_FRAME_BITS) {
            Err(e) => assert!(e.is_timeout()),
            Ok(_) => panic!("expected a timeout"),
        }
    }

    #[test]
    fn loopback_transport_routes_connects_to_listeners() {
        let hub = LoopbackTransport::new();
        let listener = hub.listen(&Endpoint::Loopback(5)).unwrap();
        assert_eq!(listener.local_endpoint().unwrap(), Endpoint::Loopback(5));
        let mut client = hub.connect(&Endpoint::Loopback(5)).unwrap();
        let mut served = listener.accept().unwrap();
        let probe = Probe { a: 5, b: 5.0 };
        client.send(&probe).unwrap();
        assert_eq!(served.recv::<Probe>().unwrap(), probe);
        assert!(hub.connect(&Endpoint::Loopback(6)).is_err());
    }

    #[test]
    fn loopback_read_timeout_fires_when_idle() {
        let (mut _tx, mut rx) = Conn::loopback_pair();
        rx.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        match rx.recv::<Probe>() {
            Err(e) => assert!(e.is_timeout()),
            Ok(_) => panic!("expected timeout"),
        }
    }
}
