//! Self-describing frames: what actually travels over a lossy link.
//!
//! A bare [`Message`] is just bits; a receiver on the other side of a
//! faulty channel needs to know *how many* bits to expect and whether
//! they arrived intact. [`seal`] wraps a payload in an 80-bit header —
//! magic word, payload length, CRC-32 — and [`open`] validates all
//! three before handing the payload back. Every header bit is counted:
//! the distributed runtime reports framing overhead separately from
//! payload bits, so the paper's communication claims are checked
//! against the *total* that crossed the wire.

use crate::bitio::{BitWriter, Message};
use crate::wire::WireError;

/// The 16-bit frame magic ("DIRCUT" squeezed into a nibble pun).
pub const MAGIC: u16 = 0xD1C7;

/// Header cost of one frame in bits: magic (16) + payload length (32)
/// + CRC-32 (32).
pub const FRAME_HEADER_BITS: usize = 16 + 32 + 32;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over the
/// payload bytes, seeded with the payload bit length so two payloads
/// differing only in trailing-bit count hash apart. CRC detects every
/// single-bit error by construction — exactly the fault the link layer
/// injects.
#[must_use]
pub fn checksum(payload: &Message) -> u32 {
    let mut crc: u32 = !0;
    let mut feed = |byte: u8| {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    };
    for b in (payload.bit_len() as u32).to_le_bytes() {
        feed(b);
    }
    for &b in payload.as_bytes() {
        feed(b);
    }
    !crc
}

/// Wraps a payload in a checked frame.
///
/// # Errors
/// [`WireError::Oversized`] if the payload does not fit the header's
/// 32-bit length field. An earlier revision panicked here via
/// `expect`, which is exactly wrong for anything server-shaped: the
/// size of the thing being framed is ultimately chosen by a peer.
pub fn seal(payload: &Message) -> Result<Message, WireError> {
    let Ok(bits) = u32::try_from(payload.bit_len()) else {
        return Err(WireError::Oversized {
            bits: payload.bit_len(),
            limit: u32::MAX as usize,
        });
    };
    let mut w = BitWriter::new();
    w.write_bits(u64::from(MAGIC), 16);
    w.write_bits(u64::from(bits), 32);
    w.write_bits(u64::from(checksum(payload)), 32);
    let mut r = payload.reader();
    for _ in 0..payload.bit_len() {
        w.write_bit(r.read_bit());
    }
    Ok(w.finish())
}

/// Validates a received frame and extracts the payload.
///
/// # Errors
/// [`WireError::BadMagic`] if the frame does not start with [`MAGIC`],
/// [`WireError::UnexpectedEnd`] if the declared payload length exceeds
/// the received bits, [`WireError::TrailingBits`] if bits follow the
/// payload, and [`WireError::BadChecksum`] if the CRC disagrees —
/// every single-bit corruption lands in one of these.
pub fn open(framed: &Message) -> Result<Message, WireError> {
    let mut r = framed.reader();
    let magic = r.try_read_bits(16)? as u16;
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let bits = r.try_read_bits(32)? as usize;
    let expected = r.try_read_bits(32)? as u32;
    if r.remaining() < bits {
        return Err(WireError::UnexpectedEnd {
            needed: bits,
            available: r.remaining(),
        });
    }
    let mut w = BitWriter::new();
    for _ in 0..bits {
        w.write_bit(r.read_bit());
    }
    if r.remaining() > 0 {
        return Err(WireError::TrailingBits {
            bits: r.remaining(),
        });
    }
    let payload = w.finish();
    let got = checksum(&payload);
    if got != expected {
        return Err(WireError::BadChecksum { expected, got });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    fn sample_payload() -> Message {
        let mut w = BitWriter::new();
        w.write_bits(0b101_1001_0110, 11);
        w.write_f64(std::f64::consts::E);
        w.finish()
    }

    #[test]
    fn seal_open_roundtrips() {
        let payload = sample_payload();
        let framed = seal(&payload).unwrap();
        assert_eq!(framed.bit_len(), FRAME_HEADER_BITS + payload.bit_len());
        assert_eq!(open(&framed).unwrap(), payload);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let payload = sample_payload();
        let framed = seal(&payload).unwrap();
        for bit in 0..framed.bit_len() {
            let mut bytes = framed.as_bytes().to_vec();
            bytes[bit / 8] ^= 1 << (bit % 8);
            let mut w = BitWriter::new();
            for i in 0..framed.bit_len() {
                w.write_bit(bytes[i / 8] >> (i % 8) & 1 == 1);
            }
            let corrupted = w.finish();
            assert!(
                open(&corrupted).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn empty_payload_frames_fine() {
        let payload = BitWriter::new().finish();
        let framed = seal(&payload).unwrap();
        assert_eq!(framed.bit_len(), FRAME_HEADER_BITS);
        assert_eq!(open(&framed).unwrap().bit_len(), 0);
    }

    #[test]
    fn truncated_frame_is_unexpected_end() {
        let framed = seal(&sample_payload()).unwrap();
        let mut w = BitWriter::new();
        let mut r = framed.reader();
        for _ in 0..framed.bit_len() - 20 {
            w.write_bit(r.read_bit());
        }
        assert!(matches!(
            open(&w.finish()),
            Err(WireError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn checksum_depends_on_bit_length() {
        // Same bytes, different bit counts → different checksums.
        let mut a = BitWriter::new();
        a.write_bits(0, 3);
        let mut b = BitWriter::new();
        b.write_bits(0, 5);
        assert_ne!(checksum(&a.finish()), checksum(&b.finish()));
    }
}
