//! Bit-level message encoding with exact length accounting.
//!
//! Every communication lower bound in the paper is a statement about
//! *bits*, so protocols here ship [`Message`]s whose length is counted
//! bit-by-bit rather than rounded to bytes.

use crate::wire::WireError;

/// A finished one-way message: a bit string of known exact length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl Message {
    /// The exact number of bits in the message.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// The underlying bytes (the last byte may be partially used).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Begins reading the message from the start.
    #[must_use]
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { msg: self, pos: 0 }
    }

    /// Rebuilds a message from raw bytes read off a socket.
    ///
    /// Returns `None` unless `bytes.len()` is exactly
    /// `bit_len.div_ceil(8)`. Spare bits in the last byte are masked
    /// off so equality with a [`BitWriter`]-built message of the same
    /// bits holds structurally.
    #[must_use]
    pub fn from_bytes(mut bytes: Vec<u8>, bit_len: usize) -> Option<Self> {
        if bytes.len() != bit_len.div_ceil(8) {
            return None;
        }
        if !bit_len.is_multiple_of(8) {
            if let Some(last) = bytes.last_mut() {
                *last &= u8::MAX >> (8 - bit_len % 8);
            }
        }
        Some(Self { bytes, bit_len })
    }
}

/// Writes bits into a growing buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// A fresh empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        let (byte, off) = (self.bit_len / 8, self.bit_len % 8);
        if off == 0 {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte] |= 1 << off;
        }
        self.bit_len += 1;
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    /// Panics if `width > 64` or `value` has bits above `width`.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value >> width == 0,
            "value {value} wider than {width} bits"
        );
        for i in 0..width {
            self.write_bit(value >> i & 1 == 1);
        }
    }

    /// Appends an IEEE-754 double (64 bits).
    pub fn write_f64(&mut self, value: f64) {
        self.write_bits(value.to_bits(), 64);
    }

    /// Appends whole bytes.
    pub fn write_bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.write_bits(u64::from(b), 8);
        }
    }

    /// Finishes the message.
    #[must_use]
    pub fn finish(self) -> Message {
        Message {
            bytes: self.bytes,
            bit_len: self.bit_len,
        }
    }
}

/// Reads bits back out of a [`Message`].
#[derive(Debug)]
pub struct BitReader<'a> {
    msg: &'a Message,
    pos: usize,
}

impl BitReader<'_> {
    /// Number of bits not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.msg.bit_len - self.pos
    }

    /// Reads one bit.
    ///
    /// # Panics
    /// Panics when reading past the end of the message.
    pub fn read_bit(&mut self) -> bool {
        assert!(self.pos < self.msg.bit_len, "read past end of message");
        let (byte, off) = (self.pos / 8, self.pos % 8);
        self.pos += 1;
        self.msg.bytes[byte] >> off & 1 == 1
    }

    /// Reads `width` bits as a `u64`, LSB first.
    pub fn read_bits(&mut self, width: u32) -> u64 {
        assert!(width <= 64);
        let mut v = 0u64;
        for i in 0..width {
            if self.read_bit() {
                v |= 1 << i;
            }
        }
        v
    }

    /// Reads an IEEE-754 double.
    pub fn read_f64(&mut self) -> f64 {
        f64::from_bits(self.read_bits(64))
    }

    /// Fallible [`read_bit`](Self::read_bit): decoding received frames
    /// must never panic on truncated input.
    pub fn try_read_bit(&mut self) -> Result<bool, WireError> {
        if self.pos >= self.msg.bit_len {
            return Err(WireError::UnexpectedEnd {
                needed: 1,
                available: 0,
            });
        }
        Ok(self.read_bit())
    }

    /// Fallible [`read_bits`](Self::read_bits).
    ///
    /// # Panics
    /// Panics if `width > 64` (a caller bug, not a wire condition).
    pub fn try_read_bits(&mut self, width: u32) -> Result<u64, WireError> {
        assert!(width <= 64);
        if self.remaining() < width as usize {
            return Err(WireError::UnexpectedEnd {
                needed: width as usize,
                available: self.remaining(),
            });
        }
        Ok(self.read_bits(width))
    }

    /// Fallible [`read_f64`](Self::read_f64).
    pub fn try_read_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.try_read_bits(64)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bit(false);
        w.write_bits(0b1011, 4);
        w.write_bits(u64::MAX, 64);
        w.write_f64(std::f64::consts::PI);
        let msg = w.finish();
        assert_eq!(msg.bit_len(), 1 + 1 + 4 + 64 + 64);
        let mut r = msg.reader();
        assert!(r.read_bit());
        assert!(!r.read_bit());
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.read_f64(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_len_is_exact_not_byte_rounded() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        assert_eq!(w.finish().bit_len(), 3);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bit(true); // misalign on purpose
        w.write_bytes(&[0xde, 0xad, 0xbe, 0xef]);
        let msg = w.finish();
        let mut r = msg.reader();
        assert!(r.read_bit());
        assert_eq!(r.read_bits(8), 0xde);
        assert_eq!(r.read_bits(8), 0xad);
        assert_eq!(r.read_bits(8), 0xbe);
        assert_eq!(r.read_bits(8), 0xef);
    }

    #[test]
    fn from_bytes_masks_spare_bits_and_checks_length() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let built = w.finish();
        // Same three bits with garbage in the spare positions.
        let rebuilt = Message::from_bytes(vec![0b1111_1101], 3).unwrap();
        assert_eq!(rebuilt, built);
        assert_eq!(Message::from_bytes(vec![0xFF], 9), None);
        assert_eq!(Message::from_bytes(vec![], 0).unwrap().bit_len(), 0);
        let aligned = Message::from_bytes(vec![0xAB, 0xCD], 16).unwrap();
        assert_eq!(aligned.as_bytes(), &[0xAB, 0xCD]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let msg = BitWriter::new().finish();
        msg.reader().read_bit();
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn overwide_value_panics() {
        let mut w = BitWriter::new();
        w.write_bits(0b100, 2);
    }
}
