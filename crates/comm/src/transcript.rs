//! Interactive transcripts: multi-round, two-direction communication
//! with exact per-round bit accounting.
//!
//! One-way games use [`crate::bitio::Message`] directly; the local
//! query simulation of Lemma 5.6 is *interactive* (Alice and Bob
//! exchange `x_{i,j}`/`y_{i,j}` on every informative query), and a
//! [`Transcript`] records that exchange round by round so experiment
//! tables can report not just totals but the communication profile.

/// Which party sent a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Speaker {
    /// Alice → Bob.
    Alice,
    /// Bob → Alice.
    Bob,
}

/// One recorded round: who spoke and how many bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Round {
    /// The sender.
    pub speaker: Speaker,
    /// Exact bits sent this round.
    pub bits: u64,
}

/// A running interactive transcript.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    rounds: Vec<Round>,
}

impl Transcript {
    /// An empty transcript.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a round.
    pub fn record(&mut self, speaker: Speaker, bits: u64) {
        self.rounds.push(Round { speaker, bits });
    }

    /// All rounds in order.
    #[must_use]
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// Total bits in both directions.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.rounds.iter().map(|r| r.bits).sum()
    }

    /// Bits sent by one party.
    #[must_use]
    pub fn bits_from(&self, speaker: Speaker) -> u64 {
        self.rounds
            .iter()
            .filter(|r| r.speaker == speaker)
            .map(|r| r.bits)
            .sum()
    }

    /// Number of *alternations* (speaker changes) — the round
    /// complexity in the usual sense.
    #[must_use]
    pub fn alternations(&self) -> usize {
        self.rounds
            .windows(2)
            .filter(|w| w[0].speaker != w[1].speaker)
            .count()
    }

    /// Merges another transcript after this one (e.g. per-phase logs).
    pub fn extend(&mut self, other: &Transcript) {
        self.rounds.extend_from_slice(&other.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_per_party_sums() {
        let mut t = Transcript::new();
        t.record(Speaker::Alice, 10);
        t.record(Speaker::Bob, 1);
        t.record(Speaker::Alice, 5);
        assert_eq!(t.total_bits(), 16);
        assert_eq!(t.bits_from(Speaker::Alice), 15);
        assert_eq!(t.bits_from(Speaker::Bob), 1);
        assert_eq!(t.rounds().len(), 3);
    }

    #[test]
    fn alternations_count_speaker_changes() {
        let mut t = Transcript::new();
        for s in [
            Speaker::Alice,
            Speaker::Alice,
            Speaker::Bob,
            Speaker::Alice,
            Speaker::Bob,
        ] {
            t.record(s, 1);
        }
        assert_eq!(t.alternations(), 3);
        assert_eq!(Transcript::new().alternations(), 0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Transcript::new();
        a.record(Speaker::Alice, 4);
        let mut b = Transcript::new();
        b.record(Speaker::Bob, 6);
        a.extend(&b);
        assert_eq!(a.total_bits(), 10);
        assert_eq!(a.rounds().len(), 2);
    }
}
