//! The single wire-format API.
//!
//! Before this module existed the workspace had **three** parallel
//! bit-accounting surfaces: `comm::bitio::Message::bit_len()` for
//! protocol messages, `CutSketch::size_bits()` for sketches, and
//! `ServerMessage::wire_bits()` for the distributed protocol — each
//! self-reporting a size that nothing forced to agree with any real
//! byte stream. [`WireEncode`] replaces all three: a type that goes on
//! the wire knows how to *serialize itself* into a [`BitWriter`], how
//! to *decode itself back* (fallibly — real links corrupt frames), and
//! its size is whatever the serialization measures. `OneWayProtocol`
//! and the distributed runtime consume only this trait.

use crate::bitio::{BitReader, BitWriter, Message};
use std::fmt;

/// Everything that can go wrong between a [`BitWriter`] on one machine
/// and a [`BitReader`] on another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field was complete.
    UnexpectedEnd {
        /// Bits the decoder needed next.
        needed: usize,
        /// Bits that were actually left.
        available: usize,
    },
    /// A frame did not start with the expected magic word.
    BadMagic {
        /// The 16 bits found where the magic should be.
        got: u16,
    },
    /// A frame's checksum did not match its payload.
    BadChecksum {
        /// Checksum carried by the frame header.
        expected: u32,
        /// Checksum recomputed over the received payload.
        got: u32,
    },
    /// The decoder finished but bits were left over — the payload does
    /// not parse as exactly one value of the requested type.
    TrailingBits {
        /// Number of unconsumed bits.
        bits: usize,
    },
    /// A structurally well-formed field carried an impossible value
    /// (e.g. a node id ≥ the declared node count).
    Invalid(String),
    /// A payload too large for the frame header's 32-bit length field
    /// (or beyond a receiver's declared size cap). Returned as a typed
    /// error rather than panicking: a server must survive whatever size
    /// a peer — or an attacker — asks it to frame or accept.
    Oversized {
        /// The offending size in bits.
        bits: usize,
        /// The largest size the frame format (or receiver) accepts.
        limit: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd { needed, available } => {
                write!(
                    f,
                    "unexpected end of payload: needed {needed} bits, {available} left"
                )
            }
            Self::BadMagic { got } => write!(f, "bad frame magic 0x{got:04x}"),
            Self::BadChecksum { expected, got } => {
                write!(f, "frame checksum mismatch: header says 0x{expected:08x}, payload hashes to 0x{got:08x}")
            }
            Self::TrailingBits { bits } => {
                write!(f, "{bits} trailing bits after a complete value")
            }
            Self::Invalid(what) => write!(f, "invalid field: {what}"),
            Self::Oversized { bits, limit } => {
                write!(f, "payload of {bits} bits exceeds the {limit}-bit limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A type with one canonical wire format.
///
/// The contract: `decode(encode(x)) == x` for every value, `decode`
/// never panics on arbitrary bit strings, and [`wire_bits`] is the
/// exact serialized length — *measured* by encoding, never asserted.
///
/// [`wire_bits`]: WireEncode::wire_bits
pub trait WireEncode: Sized {
    /// Appends this value's wire representation.
    fn encode(&self, w: &mut BitWriter);

    /// Reads one value back, consuming exactly the bits [`encode`]
    /// wrote.
    ///
    /// [`encode`]: WireEncode::encode
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError>;

    /// The exact number of bits [`encode`] emits for this value,
    /// measured by running the encoder.
    ///
    /// [`encode`]: WireEncode::encode
    fn wire_bits(&self) -> usize {
        let mut w = BitWriter::new();
        self.encode(&mut w);
        w.bit_len()
    }
}

/// Serializes a value into a standalone [`Message`].
#[must_use]
pub fn to_message<T: WireEncode>(value: &T) -> Message {
    let mut w = BitWriter::new();
    value.encode(&mut w);
    w.finish()
}

/// Decodes a [`Message`] holding exactly one value.
///
/// # Errors
/// Any decode error of `T`, plus [`WireError::TrailingBits`] if the
/// message holds more than one value's worth of bits.
pub fn from_message<T: WireEncode>(msg: &Message) -> Result<T, WireError> {
    let mut r = msg.reader();
    let value = T::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBits {
            bits: r.remaining(),
        });
    }
    Ok(value)
}

/// A raw [`Message`] is itself wire-encodable: its bits are appended
/// verbatim and decoding drains whatever remains of the frame. This is
/// the "opaque blob" case — one-way lower-bound protocols whose
/// message *is* an arbitrary bit string — and it makes `bit_len()`
/// just another [`WireEncode::wire_bits`].
impl WireEncode for Message {
    fn encode(&self, w: &mut BitWriter) {
        let mut r = self.reader();
        for _ in 0..self.bit_len() {
            w.write_bit(r.read_bit());
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let mut w = BitWriter::new();
        while r.remaining() > 0 {
            w.write_bit(r.read_bit());
        }
        Ok(w.finish())
    }

    fn wire_bits(&self) -> usize {
        self.bit_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-field toy type exercising the round-trip contract.
    #[derive(Debug, PartialEq)]
    struct Pair {
        a: u16,
        b: f64,
    }

    impl WireEncode for Pair {
        fn encode(&self, w: &mut BitWriter) {
            w.write_bits(u64::from(self.a), 16);
            w.write_f64(self.b);
        }

        fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
            let a = r.try_read_bits(16)? as u16;
            let b = r.try_read_f64()?;
            Ok(Self { a, b })
        }
    }

    #[test]
    fn roundtrip_through_message() {
        let p = Pair { a: 777, b: -2.5 };
        let msg = to_message(&p);
        assert_eq!(msg.bit_len(), p.wire_bits());
        assert_eq!(from_message::<Pair>(&msg).unwrap(), p);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let mut w = BitWriter::new();
        w.write_bits(3, 16); // only the first field
        let msg = w.finish();
        assert!(matches!(
            from_message::<Pair>(&msg),
            Err(WireError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn trailing_bits_are_rejected() {
        let mut w = BitWriter::new();
        Pair { a: 1, b: 0.0 }.encode(&mut w);
        w.write_bit(true);
        assert_eq!(
            from_message::<Pair>(&w.finish()),
            Err(WireError::TrailingBits { bits: 1 })
        );
    }

    #[test]
    fn message_blob_wire_bits_is_bit_len() {
        let mut w = BitWriter::new();
        w.write_bits(0b10110, 5);
        let msg = w.finish();
        assert_eq!(msg.wire_bits(), 5);
        let copy = from_message::<Message>(&msg).unwrap();
        assert_eq!(copy, msg);
    }
}
