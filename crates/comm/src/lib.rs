//! Communication-complexity substrate: the hard distributional problems
//! whose Ω(·) bounds the paper transfers to cut sketches and local
//! queries, with exact bit accounting.
//!
//! * [`bitio`] — bit-exact message encoding ([`Message`], writers and
//!   readers counting every bit),
//! * [`wire`] — the single wire-format API: [`WireEncode`] is the one
//!   trait through which every sketch and protocol message is
//!   serialized, decoded, and sized,
//! * [`frame`] — checked frames (magic + length + CRC-32) for
//!   delivery over lossy links,
//! * [`protocol`] — the one-way Alice → Bob protocol shape and a
//!   measuring harness,
//! * [`index`] — the distributional Index problem (Lemma 3.1),
//! * [`gap_hamming`] — the distributional Gap-Hamming problem
//!   (Lemma 4.1),
//! * [`twosum`] — 2-SUM(t, L, α) with the 0-or-α promise
//!   (Definitions 5.1/5.2, Theorem 5.4),
//! * [`transcript`] — interactive multi-round transcripts with
//!   per-round bit accounting (the Lemma 5.6 simulation shape),
//! * [`transport`] — the shared stream transport: the
//!   [`Transport`]/[`Connection`] trait pair moving sealed frames
//!   over TCP, Unix sockets, or in-process loopback channels, with
//!   per-connection byte counters and hard size caps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod frame;
pub mod gap_hamming;
pub mod index;
pub mod protocol;
pub mod transcript;
pub mod transport;
pub mod twosum;
pub mod wire;

pub use bitio::{BitReader, BitWriter, Message};
pub use gap_hamming::{GapHammingInstance, GapHammingParams};
pub use index::IndexInstance;
pub use protocol::{measure, OneWayProtocol, ProtocolStats};
pub use transcript::{Round, Speaker, Transcript};
pub use transport::{
    Accept, Conn, Connection, Endpoint, Listener, LoopbackTransport, SocketTransport, Transport,
    TransportError, MAX_FRAME_BITS, MAX_UNIVERSE,
};
pub use twosum::TwoSumInstance;
pub use wire::{from_message, to_message, WireEncode, WireError};
