//! End-to-end tests of the experiment binaries: real process spawns,
//! exit codes, and the two failure contracts PR 5 pins down —
//! usage errors exit 2 with a stderr message (no panic backtrace), and
//! an unwritable `BENCH_reductions.json` path fails soft (exit 3,
//! stdout tables preserved) instead of aborting the run.

use std::process::Command;

const EXP_DISTRIBUTED: &str = env!("CARGO_BIN_EXE_exp_distributed");
const EXP_PROTOCOL: &str = env!("CARGO_BIN_EXE_exp_protocol");
const BENCH_CUTCACHE: &str = env!("CARGO_BIN_EXE_bench_cutcache");

fn run(bin: &str, args: &[&str], envs: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(bin);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("exit code"),
    )
}

#[test]
fn exp_distributed_bad_flag_value_is_a_usage_error() {
    let (stdout, stderr, code) = run(EXP_DISTRIBUTED, &["--drop", "abc"], &[]);
    assert_eq!(code, 2, "usage errors exit 2");
    assert!(stdout.is_empty(), "nothing runs on a bad flag: {stdout}");
    assert!(
        stderr.contains("error: bad --drop value `abc`"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn exp_distributed_missing_flag_value_is_a_usage_error() {
    let (stdout, stderr, code) = run(EXP_DISTRIBUTED, &["--retries"], &[]);
    assert_eq!(code, 2);
    assert!(stdout.is_empty());
    assert!(
        stderr.contains("error: --retries requires a value"),
        "stderr: {stderr}"
    );
}

#[test]
fn unwritable_json_path_fails_soft_with_tables_preserved() {
    let (stdout, stderr, code) = run(
        EXP_PROTOCOL,
        &[],
        &[("DIRCUT_BENCH_JSON", "/nonexistent-dir-dircut-e2e/out.json")],
    );
    assert_eq!(code, 3, "I/O failures exit 3, matching the CLI");
    // The experiment ran to completion: its tables are intact.
    assert!(
        stdout.contains("=== E8: measured one-way protocols"),
        "stdout lost: {stdout}"
    );
    assert!(stdout.contains("Index game"), "stdout lost: {stdout}");
    assert!(
        stderr.contains("warning: writing /nonexistent-dir-dircut-e2e/out.json"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("only the JSON record was lost"),
        "stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn writable_json_path_succeeds_and_emits_records() {
    let dir = std::env::temp_dir().join(format!("dircut-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("reductions.json");
    let (_, _, code) = run(
        EXP_PROTOCOL,
        &[],
        &[("DIRCUT_BENCH_JSON", path.to_str().unwrap())],
    );
    assert_eq!(code, 0);
    let doc = std::fs::read_to_string(&path).expect("JSON written");
    assert!(doc.contains("\"schema\": \"dircut-reductions-v1\""));
    assert!(doc.contains("\"bin\": \"exp_protocol\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_cutcache_smoke_reports_cache_hits_and_speedups() {
    let dir = std::env::temp_dir().join(format!("dircut-cutcache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let mut cmd = Command::new(BENCH_CUTCACHE);
    cmd.arg("--smoke").current_dir(&dir);
    let out = cmd.output().expect("spawn bench_cutcache");
    assert_eq!(out.status.code(), Some(0));
    let json = std::fs::read_to_string(dir.join("BENCH_cutcache.json")).expect("JSON written");
    assert!(json.contains("\"cache_hits\""), "json: {json}");
    assert!(json.contains("\"cache_misses\""), "json: {json}");
    assert!(json.contains("\"speedup\""), "json: {json}");
    // The stdout copy is the same document.
    assert_eq!(String::from_utf8_lossy(&out.stdout), json);
    let _ = std::fs::remove_dir_all(&dir);
}
