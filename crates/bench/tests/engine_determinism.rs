//! Property-based tests for the trial engine: every record is a pure
//! function of `(reduction, seeding, trial)`, so whole-report
//! fingerprints are bit-identical across worker-pool widths,
//! scheduling orders, and repeated runs — for all three paper
//! reductions and all three seeding disciplines.

use dircut_bench::{Seeding, TrialEngine};
use dircut_core::reduction::{
    ForAllGapHammingReduction, ForEachIndexReduction, OracleSpec, TwoSumMinCutReduction,
};
use dircut_core::{ForAllParams, ForEachParams, SubsetSearch};
use dircut_sketch::adversarial::NoiseModel;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn foreach_rdx(noisy: bool) -> ForEachIndexReduction {
    ForEachIndexReduction {
        params: ForEachParams::new(4, 1, 2),
        oracle: if noisy {
            OracleSpec::Noisy {
                err: 0.1,
                model: NoiseModel::SignedRelative,
            }
        } else {
            OracleSpec::Exact
        },
    }
}

fn forall_rdx() -> ForAllGapHammingReduction {
    ForAllGapHammingReduction {
        params: ForAllParams::new(1, 8, 2),
        half_gap: 2,
        search: SubsetSearch::Exact,
        oracle: OracleSpec::Exact,
    }
}

fn twosum_rdx() -> TwoSumMinCutReduction {
    TwoSumMinCutReduction {
        t: 4,
        l: 64,
        alpha: 2,
        intersecting: 2,
        eps: 0.2,
        beta0: 0.25,
        algo_seed: 13,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For-each records are bit-identical across thread counts under
    /// the substream discipline.
    #[test]
    fn foreach_substream_is_thread_invariant(
        seed in 0u64..10_000,
        trials in 1usize..24,
        noisy in any::<bool>(),
    ) {
        let rdx = foreach_rdx(noisy);
        let reference = TrialEngine::new(1).run(&rdx, trials, Seeding::Substream(seed));
        for threads in [4usize, 8] {
            let rep = TrialEngine::new(threads).run(&rdx, trials, Seeding::Substream(seed));
            prop_assert_eq!(rep.fingerprint(), reference.fingerprint());
        }
    }

    /// Same invariance under the legacy reseed-per-rep discipline.
    #[test]
    fn foreach_offset_is_thread_invariant(
        base in 0u64..10_000,
        trials in 1usize..24,
    ) {
        let rdx = foreach_rdx(true);
        let reference = TrialEngine::new(1).run(&rdx, trials, Seeding::Offset(base));
        for threads in [4usize, 8] {
            let rep = TrialEngine::new(threads).run(&rdx, trials, Seeding::Offset(base));
            prop_assert_eq!(rep.fingerprint(), reference.fingerprint());
        }
    }

    /// Shared-stream runs re-create the caller RNG per run, so records
    /// must match across thread counts AND across repeated runs.
    #[test]
    fn foreach_shared_is_thread_invariant(
        seed in 0u64..10_000,
        trials in 1usize..24,
    ) {
        let rdx = foreach_rdx(true);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let reference = TrialEngine::new(1).run(&rdx, trials, Seeding::Shared(&mut rng));
        for threads in [4usize, 8] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let rep = TrialEngine::new(threads).run(&rdx, trials, Seeding::Shared(&mut rng));
            prop_assert_eq!(rep.fingerprint(), reference.fingerprint());
        }
    }
}

proptest! {
    // The for-all game enumerates C(8,4) subsets per trial and the
    // 2-SUM game runs a real max-flow — keep the case counts low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For-all records are bit-identical across thread counts.
    #[test]
    fn forall_substream_is_thread_invariant(
        seed in 0u64..1_000,
        trials in 1usize..8,
    ) {
        let rdx = forall_rdx();
        let reference = TrialEngine::new(1).run(&rdx, trials, Seeding::Substream(seed));
        for threads in [4usize, 8] {
            let rep = TrialEngine::new(threads).run(&rdx, trials, Seeding::Substream(seed));
            prop_assert_eq!(rep.fingerprint(), reference.fingerprint());
        }
    }
}

/// The Theorem 1.3 pipeline (gadget build, Lemma 5.5 max-flow, local
/// algorithm) is deterministic across thread counts and repeated runs.
#[test]
fn twosum_is_thread_invariant_and_repeatable() {
    let rdx = twosum_rdx();
    let reference = TrialEngine::new(1).run(&rdx, 3, Seeding::Offset(11));
    for threads in [4usize, 8] {
        let rep = TrialEngine::new(threads).run(&rdx, 3, Seeding::Offset(11));
        assert_eq!(rep.fingerprint(), reference.fingerprint());
    }
    let again = TrialEngine::new(4).run(&rdx, 3, Seeding::Offset(11));
    assert_eq!(again.fingerprint(), reference.fingerprint());
}

/// The PR-5 billing invariant, end to end: `TrialRecord::fingerprint`
/// covers every billed quantity (wire bits, cut queries, flow solves,
/// measured counters, aux) and excludes wall time, so fingerprints must
/// be bit-identical whether the cut/flow memo serves the queries or
/// not — warm replays included. The toggle is process-global; that is
/// fine here because toggle-invariance is exactly the property under
/// test, so a concurrent flip cannot cause a spurious failure.
#[test]
fn records_are_invariant_under_the_cache_toggle() {
    let rdx = twosum_rdx();
    let run = |on: bool| {
        dircut_graph::cache::set_enabled(on);
        TrialEngine::new(2)
            .run(&rdx, 6, Seeding::Substream(9))
            .fingerprint()
    };
    let off = run(false);
    let on_first = run(true);
    let on_replay = run(true);
    dircut_graph::cache::set_enabled(true);
    assert_eq!(off, on_first, "cold cache must not change billed records");
    assert_eq!(off, on_replay, "warm replay must not change billed records");
}

/// Repeated runs on the same engine are identical (no hidden state
/// leaks between runs through the stats registry or the worker pool).
#[test]
fn repeated_runs_are_identical() {
    let rdx = foreach_rdx(true);
    let engine = TrialEngine::new(4);
    let a = engine.run(&rdx, 20, Seeding::Substream(42));
    let b = engine.run(&rdx, 20, Seeding::Substream(42));
    assert_eq!(a.fingerprint(), b.fingerprint());
}
