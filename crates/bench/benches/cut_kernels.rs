//! Criterion benches for the batched cut-query kernels: the naive
//! query-at-a-time loop vs the word-parallel batch at 1 and N workers.
//!
//! The ISSUE acceptance target: on a ForEach gadget with n ≥ 2¹² nodes
//! and a batch of k ≥ 64 decoder-shaped queries, the batch kernel must
//! beat the per-query loop by ≥ 5×. The JSON-emitting companion binary
//! (`bench_cutkernels`) measures the same workload without criterion's
//! harness for CI smoke runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dircut_core::foreach::{ForEachDecoder, ForEachEncoding, ForEachParams};
use dircut_graph::cuteval::{
    cut_both_batch_threaded, cut_out_batch_threaded, set_lanes, MAX_LANES,
};
use dircut_graph::{cache, DiGraph, NodeId, NodeSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The decoder-shaped workload: the ForEach gadget graph and the first
/// `k` query sets Bob would issue (4 per bit).
fn gadget_workload(k: usize) -> (DiGraph, Vec<NodeSet>) {
    // inv_eps = 32, sqrt_beta = 4, ell = 32 → n = 4096 nodes.
    let params = ForEachParams::new(32, 4, 32);
    assert!(params.num_nodes() >= 1 << 12);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let signs: Vec<i8> = (0..params.total_bits())
        .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
        .collect();
    let enc = ForEachEncoding::encode(params, &signs);
    let dec = ForEachDecoder::new(params);
    let mut sets = Vec::with_capacity(k);
    let mut q = 0usize;
    while sets.len() < k {
        sets.extend(dec.queries_for_bit(q).sets);
        q += 1;
    }
    sets.truncate(k);
    (enc.graph().clone(), sets)
}

fn bench_batch_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_kernels");
    group.sample_size(10);
    let (g, sets) = gadget_workload(128);
    for k in [64usize, 128] {
        let batch = &sets[..k];
        group.bench_with_input(BenchmarkId::new("naive_loop", k), &k, |b, _| {
            b.iter(|| {
                batch
                    .iter()
                    .map(|s| g.cut_out(black_box(s)))
                    .collect::<Vec<f64>>()
            });
        });
        group.bench_with_input(BenchmarkId::new("batch_1t", k), &k, |b, _| {
            b.iter(|| cut_out_batch_threaded(black_box(&g), batch, 1));
        });
        group.bench_with_input(BenchmarkId::new("batch_8t", k), &k, |b, _| {
            b.iter(|| cut_out_batch_threaded(black_box(&g), batch, 8));
        });
        group.bench_with_input(BenchmarkId::new("batch_both_8t", k), &k, |b, _| {
            b.iter(|| cut_both_batch_threaded(black_box(&g), batch, 8));
        });
    }
    group.finish();
}

fn bench_small_set_fast_path(c: &mut Criterion) {
    // Singleton queries must dodge the O(m) edge pass entirely.
    let mut group = c.benchmark_group("cut_kernels_fast_path");
    group.sample_size(10);
    let (g, _) = gadget_workload(4);
    let n = g.num_nodes();
    let singletons: Vec<NodeSet> = (0..128)
        .map(|i| NodeSet::from_indices(n, [i * 17 % n]))
        .collect();
    group.bench_function("singletons_128_batch", |b| {
        b.iter(|| cut_both_batch_threaded(black_box(&g), &singletons, 8));
    });
    group.bench_function("singletons_128_naive", |b| {
        b.iter(|| {
            singletons
                .iter()
                .map(|s| g.cut_both(black_box(s)))
                .collect::<Vec<(f64, f64)>>()
        });
    });
    group.finish();
}

fn bench_lane_sweep(c: &mut Criterion) {
    // The lane-unrolled edge pass on a workload where edge streaming
    // dominates: one dense cluster per query, > 64 sets so lane count
    // changes the number of mask passes. Cache off — the memo would
    // flatten criterion's repeat iterations.
    let mut group = c.benchmark_group("cut_kernels_lane_sweep");
    group.sample_size(10);
    let n = 4_096usize;
    let per = n / 16;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut g = DiGraph::with_edge_capacity(n, 120_000);
    for _ in 0..120_000 {
        let lo = rng.gen_range(0..16) * per;
        let u = lo + rng.gen_range(0..per);
        let mut v = lo + rng.gen_range(0..per);
        if u == v {
            v = lo + (v - lo + 1) % per;
        }
        g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.1..4.0));
    }
    let sets: Vec<NodeSet> = (0..192)
        .map(|j| {
            let c = j % 16;
            NodeSet::from_indices(n, (c * per..(c + 1) * per).chain([(j / 16) % n]))
        })
        .collect();
    cache::set_enabled(false);
    for lanes in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("batch_1t", lanes), &lanes, |b, &l| {
            set_lanes(l);
            b.iter(|| cut_both_batch_threaded(black_box(&g), &sets, 1));
        });
    }
    set_lanes(MAX_LANES);
    cache::set_enabled(true);
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_vs_naive,
    bench_small_set_fast_path,
    bench_lane_sweep
);
criterion_main!(benches);
