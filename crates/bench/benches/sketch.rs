//! Criterion benches for sketch construction and cut queries in both
//! models (the upper bounds of the paper).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dircut_graph::generators::random_balanced_digraph;
use dircut_graph::NodeSet;
use dircut_sketch::streaming::TurnstileLinearSketch;
use dircut_sketch::{
    BalancedForAllSketcher, BalancedForEachSketcher, CutOracle, CutSketcher,
    DecomposedForEachSketcher, LinearSketcher, StrengthSketcher, UniformSketcher,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_build");
    group.sample_size(20);
    for n in [64usize, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_balanced_digraph(n, 0.6, 4.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("uniform", n), &g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let sk = UniformSketcher::new(0.3);
            b.iter(|| sk.sketch(black_box(g), &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("strength", n), &g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let sk = StrengthSketcher::new(0.3);
            b.iter(|| sk.sketch(black_box(g), &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("balanced_forall", n), &g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let sk = BalancedForAllSketcher::new(0.3, 4.0);
            b.iter(|| sk.sketch(black_box(g), &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("balanced_foreach", n), &g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let sk = BalancedForEachSketcher::new(0.3, 4.0);
            b.iter(|| sk.sketch(black_box(g), &mut rng));
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_query");
    let n = 128;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = random_balanced_digraph(n, 0.6, 4.0, &mut rng);
    let s = NodeSet::from_indices(n, 0..n / 2);
    let forall = BalancedForAllSketcher::new(0.3, 4.0).sketch(&g, &mut rng);
    let foreach = BalancedForEachSketcher::new(0.3, 4.0).sketch(&g, &mut rng);
    group.bench_function("forall_cut_query", |b| {
        b.iter(|| forall.cut_out_estimate(black_box(&s)));
    });
    group.bench_function("foreach_cut_query", |b| {
        b.iter(|| foreach.cut_out_estimate(black_box(&s)));
    });
    group.bench_function("exact_cut_query", |b| {
        b.iter(|| g.cut_out(black_box(&s)));
    });
    group.finish();
}

fn bench_linear_and_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_streaming");
    group.sample_size(20);
    let n = 96;
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let g = random_balanced_digraph(n, 0.5, 2.0, &mut rng);
    group.bench_function("linear_build_eps0.3", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sk = LinearSketcher::new(0.3);
        b.iter(|| sk.sketch(black_box(&g), &mut rng));
    });
    group.bench_function("decomposed_build_eps0.3", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let sk = DecomposedForEachSketcher::new(0.3, 2.0);
        b.iter(|| sk.sketch(black_box(&g), &mut rng));
    });
    group.bench_function("turnstile_update", |b| {
        let mut sk = TurnstileLinearSketch::new(n, 128, 11);
        let mut i = 0usize;
        b.iter(|| {
            let u = dircut_graph::NodeId::new(i % n);
            let v = dircut_graph::NodeId::new((i + 1) % n);
            sk.insert(u, v, 1.0);
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_query,
    bench_linear_and_streaming
);
criterion_main!(benches);
