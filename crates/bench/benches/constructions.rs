//! Criterion benches for the paper's lower-bound constructions:
//! encoding graphs, the 4-cut-query decoder, and `G_{x,y}` with its
//! Lemma 5.5 verification.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dircut_core::foreach::{ForEachDecoder, ForEachEncoding};
use dircut_core::mincut_lb::GxyGraph;
use dircut_core::{ForAllEncoding, ForAllParams, ForEachParams};
use dircut_sketch::ExactOracle;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_foreach_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("foreach_construction");
    group.sample_size(20);
    for (inv_eps, sqrt_beta) in [(8usize, 1usize), (16, 2), (32, 2)] {
        let params = ForEachParams::new(inv_eps, sqrt_beta, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s: Vec<i8> = (0..params.total_bits())
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("encode", format!("e{inv_eps}b{sqrt_beta}")),
            &s,
            |b, s| {
                b.iter(|| ForEachEncoding::encode(params, black_box(s)));
            },
        );
        let enc = ForEachEncoding::encode(params, &s);
        let decoder = ForEachDecoder::new(params);
        group.bench_with_input(
            BenchmarkId::new("decode_bit", format!("e{inv_eps}b{sqrt_beta}")),
            &enc,
            |b, enc| {
                let oracle = ExactOracle::new(enc.graph());
                b.iter(|| decoder.decode_bit(black_box(&oracle), 0));
            },
        );
    }
    group.finish();
}

fn bench_forall_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("forall_construction");
    group.sample_size(20);
    for (beta, inv_eps_sq) in [(1usize, 16usize), (2, 16)] {
        let params = ForAllParams::new(beta, inv_eps_sq, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let strings: Vec<Vec<bool>> = (0..params.num_strings())
            .map(|_| (0..inv_eps_sq).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("encode", format!("b{beta}e{inv_eps_sq}")),
            &strings,
            |b, strings| {
                b.iter(|| ForAllEncoding::encode(params, black_box(strings)));
            },
        );
    }
    group.finish();
}

fn bench_gxy(c: &mut Criterion) {
    let mut group = c.benchmark_group("gxy");
    group.sample_size(10);
    for ell in [16usize, 32, 64] {
        let n = ell * ell;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let gamma = ell / 4;
        let mut x = vec![false; n];
        let mut y = vec![false; n];
        for p in 0..gamma {
            x[p] = true;
            y[p] = true;
        }
        for p in gamma..n {
            match rng.gen_range(0..4) {
                0 => x[p] = true,
                1 => y[p] = true,
                _ => {}
            }
        }
        group.bench_with_input(
            BenchmarkId::new("build", ell),
            &(x.clone(), y.clone()),
            |b, (x, y)| {
                b.iter(|| GxyGraph::build(black_box(x), black_box(y)));
            },
        );
        if ell <= 32 {
            let g = GxyGraph::build(&x, &y);
            group.bench_with_input(BenchmarkId::new("verify_lemma_5_5", ell), &g, |b, g| {
                b.iter(|| g.verify_lemma_5_5());
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_foreach_construction,
    bench_forall_construction,
    bench_gxy
);
criterion_main!(benches);
