//! Criterion benches for the local-query algorithms: VERIFY-GUESS and
//! the full BGMP21 search (both variants).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dircut_graph::generators::connected_gnp;
use dircut_localquery::{
    global_min_cut_local, query_degrees, verify_guess, AdjOracle, MultiAdjOracle, SearchVariant,
    VerifyGuessConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_verify_guess(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_guess");
    group.sample_size(10);
    let mut gen = ChaCha8Rng::seed_from_u64(0);
    let g = connected_gnp(80, 0.4, &mut gen);
    let oracle = AdjOracle::new(&g);
    let degrees = query_degrees(&oracle);
    for t in [4.0f64, 64.0] {
        group.bench_with_input(BenchmarkId::new("t", t as u64), &t, |b, &t| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| {
                verify_guess(
                    black_box(&oracle),
                    &degrees,
                    t,
                    0.3,
                    VerifyGuessConfig::default(),
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

fn bench_full_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgmp_search");
    group.sample_size(10);
    let mut gen = ChaCha8Rng::seed_from_u64(2);
    let g = connected_gnp(80, 0.4, &mut gen);
    let oracle = AdjOracle::new(&g);
    group.bench_function("original_eps0.2", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            global_min_cut_local(
                black_box(&oracle),
                0.2,
                SearchVariant::Original,
                VerifyGuessConfig::default(),
                &mut rng,
            )
        });
    });
    group.bench_function("modified_eps0.2", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| {
            global_min_cut_local(
                black_box(&oracle),
                0.2,
                SearchVariant::Modified { beta0: 0.5 },
                VerifyGuessConfig::default(),
                &mut rng,
            )
        });
    });
    let blowup = MultiAdjOracle::cycle_blowup(12, 2000);
    group.bench_function("modified_blowup_eps0.3", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            global_min_cut_local(
                black_box(&blowup),
                0.3,
                SearchVariant::Modified { beta0: 0.5 },
                VerifyGuessConfig::default(),
                &mut rng,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_verify_guess, bench_full_search);
criterion_main!(benches);
