//! Criterion benches for the graph substrate: cut scans, max-flow,
//! global min-cut (deterministic and randomized), sparse certificates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dircut_graph::flow::max_flow_digraph;
use dircut_graph::generators::{connected_gnp, random_balanced_digraph};
use dircut_graph::gomory_hu::GomoryHuTree;
use dircut_graph::karger::karger_stein_once;
use dircut_graph::mincut::{min_cut_unweighted, stoer_wagner};
use dircut_graph::nagamochi::sparse_certificate;
use dircut_graph::{NodeId, NodeSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_scan");
    for n in [64usize, 256] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_balanced_digraph(n, 0.5, 4.0, &mut rng);
        let s = NodeSet::from_indices(n, 0..n / 2);
        group.bench_with_input(BenchmarkId::new("cut_both", g.num_edges()), &g, |b, g| {
            b.iter(|| g.cut_both(black_box(&s)));
        });
    }
    group.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    group.sample_size(20);
    for n in [64usize, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_balanced_digraph(n, 0.4, 2.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("dinic", n), &g, |b, g| {
            b.iter(|| max_flow_digraph(black_box(g), NodeId::new(0), NodeId::new(n - 1)));
        });
    }
    group.finish();
}

fn bench_global_mincut(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_mincut");
    group.sample_size(10);
    for n in [64usize, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_balanced_digraph(n, 0.4, 2.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("stoer_wagner", n), &g, |b, g| {
            b.iter(|| stoer_wagner(black_box(g)));
        });
        group.bench_with_input(BenchmarkId::new("karger_stein", n), &g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| karger_stein_once(black_box(g), &mut rng));
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let ug = connected_gnp(48, 0.3, &mut rng);
    group.bench_function("edge_connectivity_48", |b| {
        b.iter(|| min_cut_unweighted(black_box(&ug)));
    });
    group.finish();
}

fn bench_certificates(c: &mut Criterion) {
    let mut group = c.benchmark_group("nagamochi");
    for n in [128usize, 512] {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = connected_gnp(n, 0.2, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("certificate_k4", g.num_edges()),
            &g,
            |b, g| {
                b.iter(|| sparse_certificate(black_box(g), 4));
            },
        );
    }
    group.finish();
}

fn bench_gomory_hu(c: &mut Criterion) {
    let mut group = c.benchmark_group("gomory_hu");
    group.sample_size(10);
    for n in [24usize, 48] {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = random_balanced_digraph(n, 0.4, 2.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("build", n), &g, |b, g| {
            b.iter(|| GomoryHuTree::build(black_box(g)));
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = random_balanced_digraph(32, 0.4, 2.0, &mut rng);
    let tree = GomoryHuTree::build(&g);
    group.bench_function("query_32", |b| {
        b.iter(|| tree.min_cut(NodeId::new(3), NodeId::new(29)));
    });
    group.finish();
}

fn bench_parallel_engine(c: &mut Criterion) {
    // The ISSUE acceptance target: Gomory–Hu on a seeded 200-node,
    // ~4000-edge graph, seed implementation (rebuild per sink, serial)
    // vs the snapshot-reset engine at 1 and 8 workers. All three
    // produce bit-identical trees.
    let mut group = c.benchmark_group("parallel_engine");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let g = random_balanced_digraph(200, 0.09, 2.0, &mut rng);
    group.bench_function("gomory_hu_200_serial_seed", |b| {
        b.iter(|| GomoryHuTree::build_reference(black_box(&g)));
    });
    group.bench_function("gomory_hu_200_engine_1t", |b| {
        b.iter(|| GomoryHuTree::build_threaded(black_box(&g), 1));
    });
    group.bench_function("gomory_hu_200_engine_8t", |b| {
        b.iter(|| GomoryHuTree::build_threaded(black_box(&g), 8));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cuts,
    bench_flow,
    bench_global_mincut,
    bench_certificates,
    bench_gomory_hu,
    bench_parallel_engine
);
criterion_main!(benches);
