//! Criterion benches for the PR-5 query-result cache: repeated
//! Gomory–Hu builds on one flow network and repeated batch cut
//! queries, each measured with the cache disabled and enabled.
//!
//! The ISSUE acceptance target: cache-on must beat cache-off by ≥ 1.5×
//! on the repeat-heavy workloads. The JSON-emitting companion binary
//! (`bench_cutcache`) measures the same workloads (plus the BGMP
//! local-query run) without criterion's harness for CI smoke runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dircut_graph::cuteval::cut_out_batch_threaded;
use dircut_graph::flow::symmetric_network_from_digraph;
use dircut_graph::gomory_hu::GomoryHuTree;
use dircut_graph::{cache, DiGraph, NodeId, NodeSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Dense symmetric weighted graph (same shape as `bench_cutcache`).
fn gh_graph(n: usize) -> DiGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(0.3) {
                let w = rng.gen_range(0.5..4.0);
                g.add_edge(NodeId::new(u), NodeId::new(v), w);
                g.add_edge(NodeId::new(v), NodeId::new(u), w);
            }
        }
        g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n), 1.0);
        g.add_edge(NodeId::new((u + 1) % n), NodeId::new(u), 1.0);
    }
    g
}

/// Random query sets over `n` nodes for the batch-repeat workload.
fn query_sets(n: usize, k: usize) -> Vec<NodeSet> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    (0..k)
        .map(|_| {
            let mut s = NodeSet::empty(n);
            for v in 0..n {
                if rng.gen_bool(0.4) {
                    s.insert(NodeId::new(v));
                }
            }
            s
        })
        .collect()
}

fn bench_cache_on_vs_off(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_cache");
    group.sample_size(10);

    let g = gh_graph(72);
    for on in [false, true] {
        let label = if on { "cache_on" } else { "cache_off" };
        group.bench_with_input(
            BenchmarkId::new("gomory_hu_rebuild", label),
            &on,
            |b, &on| {
                cache::set_enabled(on);
                // The network persists across iterations, so with the
                // cache on every build after the first replays its solves.
                let mut net = symmetric_network_from_digraph(&g);
                b.iter(|| GomoryHuTree::build_with_network(black_box(&g), &mut net, 1));
                cache::set_enabled(true);
            },
        );
    }

    let sets = query_sets(256, 64);
    let gq = {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut g = DiGraph::new(256);
        for _ in 0..4096 {
            let u = rng.gen_range(0..256usize);
            let v = rng.gen_range(0..256usize);
            if u != v {
                g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.5..2.0));
            }
        }
        g
    };
    for on in [false, true] {
        let label = if on { "cache_on" } else { "cache_off" };
        group.bench_with_input(BenchmarkId::new("batch_repeat", label), &on, |b, &on| {
            cache::set_enabled(on);
            b.iter(|| cut_out_batch_threaded(black_box(&gq), &sets, 1));
            cache::set_enabled(true);
        });
    }

    group.finish();
}

criterion_group!(benches, bench_cache_on_vs_off);
criterion_main!(benches);
