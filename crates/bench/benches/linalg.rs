//! Criterion benches for the Hadamard/FWHT machinery behind the
//! Section 3 encoding: the fast 2-D transform is what makes encoding
//! `O(ε⁻² log(1/ε))` instead of `O(ε⁻⁴)`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dircut_linalg::{fwht, fwht2d, Lemma32Matrix};

fn bench_fwht(c: &mut Criterion) {
    let mut group = c.benchmark_group("fwht");
    for log_d in [8u32, 12, 16] {
        let d = 1usize << log_d;
        let v: Vec<f64> = (0..d).map(|i| (i as f64).sin()).collect();
        group.bench_with_input(BenchmarkId::new("1d", d), &d, |b, _| {
            b.iter_batched(
                || v.clone(),
                |mut w| fwht(black_box(&mut w)),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    for d in [32usize, 64, 128] {
        let m: Vec<f64> = (0..d * d).map(|i| (i as f64).cos()).collect();
        group.bench_with_input(BenchmarkId::new("2d", d), &d, |b, &d| {
            b.iter_batched(
                || m.clone(),
                |mut w| fwht2d(black_box(&mut w), d),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_lemma32(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma32");
    for d in [16usize, 64, 128] {
        let m = Lemma32Matrix::new(d);
        let z: Vec<i8> = (0..m.num_rows())
            .map(|t| if t % 2 == 0 { 1 } else { -1 })
            .collect();
        group.bench_with_input(BenchmarkId::new("encode", d), &d, |b, _| {
            b.iter(|| m.encode(black_box(&z)));
        });
        let w = m.encode(&z);
        group.bench_with_input(BenchmarkId::new("decode_all", d), &d, |b, _| {
            b.iter(|| m.decode_all(black_box(&w)));
        });
        group.bench_with_input(BenchmarkId::new("decode_one", d), &d, |b, _| {
            b.iter(|| m.decode_one(black_box(&w), 0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fwht, bench_lemma32);
criterion_main!(benches);
