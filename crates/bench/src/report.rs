//! Table printing and the unified `BENCH_reductions.json` emitter.
//!
//! Stdout is reserved for the experiment tables, which must stay
//! byte-identical run to run — the stage report goes to stderr and the
//! JSON goes to a file. Sections are registered process-globally so a
//! binary can run several engine sweeps and flush them in one document
//! at exit.

use crate::record::EngineReport;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Prints a table row of equal-width cells to stdout.
pub fn print_row(cells: &[String]) {
    println!("{}", format_row(cells));
}

/// Prints a header row plus a separator sized to the actual formatted
/// row (cells wider than the 14-column pad stretch the separator with
/// them instead of drifting out of line).
pub fn print_header(cells: &[&str]) {
    let row = format_row(&cells.iter().map(|c| (*c).to_string()).collect::<Vec<_>>());
    println!("{row}");
    println!("{}", "-".repeat(row.chars().count()));
}

fn format_row(cells: &[String]) -> String {
    let formatted: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    formatted.join(" | ")
}

/// When `DIRCUT_STATS` is set, prints the per-stage solve / cut-query /
/// wall-clock report to **stderr** (stdout is reserved for the
/// experiment tables, which must stay byte-identical run to run).
pub fn maybe_print_stage_report() {
    if std::env::var_os("DIRCUT_STATS").is_none() {
        return;
    }
    let report = dircut_graph::stats::stage_report();
    eprintln!(
        "\n[DIRCUT_STATS] total solves: {}, total cut queries: {}",
        dircut_graph::stats::total_solves(),
        dircut_graph::stats::total_cut_queries()
    );
    eprintln!(
        "[DIRCUT_STATS] cache hits: {} (delta-retained: {}, fresh: {}), cache misses: {} (billed counts above are cache-independent)",
        dircut_graph::stats::total_cache_hits(),
        dircut_graph::stats::total_cache_hits_retained(),
        dircut_graph::stats::total_cache_hits_fresh(),
        dircut_graph::stats::total_cache_misses()
    );
    eprintln!(
        "[DIRCUT_STATS] {:<32} {:>6} {:>10} {:>12} {:>12}",
        "stage", "runs", "solves", "cut_queries", "wall_ms"
    );
    // One pass per stage: its row, then its named metrics (link
    // transcripts: bits sent/acked, retries, drops, latency buckets)
    // indented directly beneath it, so a stage's numbers read as one
    // block instead of being split across two sweeps of the registry.
    for (stage, stat) in &report {
        eprintln!(
            "[DIRCUT_STATS] {:<32} {:>6} {:>10} {:>12} {:>12.1}",
            stage,
            stat.runs,
            stat.solves,
            stat.cut_queries,
            stat.wall.as_secs_f64() * 1e3
        );
        for (name, value) in &stat.metrics {
            eprintln!("[DIRCUT_STATS] {stage:<32}   .{name} = {value}");
        }
    }
}

fn sections() -> &'static Mutex<Vec<(String, EngineReport)>> {
    static SECTIONS: OnceLock<Mutex<Vec<(String, EngineReport)>>> = OnceLock::new();
    SECTIONS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers one engine run for the end-of-process JSON document.
pub fn record_section(label: &str, report: &EngineReport) {
    sections()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push((label.to_owned(), report.clone()));
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        // NaN/inf are not JSON; a degraded run's estimate becomes null.
        "null".to_owned()
    }
}

/// Renders every registered section as the `dircut-reductions-v1`
/// document.
#[must_use]
pub fn reductions_json(bin: &str) -> String {
    let sections = sections().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dircut-reductions-v1\",");
    let _ = writeln!(out, "  \"bin\": {},", json_str(bin));
    out.push_str("  \"sections\": [\n");
    for (si, (label, report)) in sections.iter().enumerate() {
        let (lo, hi) = report.wilson95();
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"label\": {},", json_str(label));
        let _ = writeln!(out, "      \"reduction\": {},", json_str(&report.reduction));
        let _ = writeln!(out, "      \"trials\": {},", report.trials());
        let _ = writeln!(out, "      \"successes\": {},", report.successes());
        let _ = writeln!(
            out,
            "      \"success_rate\": {},",
            json_f64(report.success_rate())
        );
        let _ = writeln!(
            out,
            "      \"wilson95\": [{}, {}],",
            json_f64(lo),
            json_f64(hi)
        );
        let _ = writeln!(
            out,
            "      \"total_wire_bits\": {},",
            report.total_wire_bits()
        );
        let _ = writeln!(
            out,
            "      \"mean_cut_queries\": {},",
            json_f64(report.mean_cut_queries())
        );
        out.push_str("      \"records\": [\n");
        for (ri, r) in report.records.iter().enumerate() {
            let mut aux = String::new();
            for (ai, (name, value)) in r.aux.iter().enumerate() {
                if ai > 0 {
                    aux.push_str(", ");
                }
                let _ = write!(aux, "{}: {}", json_str(name), json_f64(*value));
            }
            let _ = write!(
                out,
                "        {{\"trial\": {}, \"success\": {}, \"wire_bits\": {}, \
                 \"cut_queries\": {}, \"flow_solves\": {}, \"measured_cut_queries\": {}, \
                 \"measured_solves\": {}, \"wall_ns\": {}, \"aux\": {{{}}}}}",
                r.trial,
                r.success,
                r.wire_bits,
                r.cut_queries,
                r.flow_solves,
                r.measured_cut_queries,
                r.measured_solves,
                r.wall_ns,
                aux
            );
            out.push_str(if ri + 1 < report.records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 < sections.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the JSON document to `DIRCUT_BENCH_JSON` (path override) or
/// `BENCH_reductions.json` in the working directory.
///
/// # Errors
/// Returns the I/O error (annotated with the path) when the file
/// cannot be written. An unwritable record must not abort the run and
/// take the already-printed stdout tables with it — experiment
/// binaries route through [`finish_reductions_json`], the CLI maps the
/// error to its `Io` exit code.
pub fn write_reductions_json(bin: &str) -> std::io::Result<()> {
    let path =
        std::env::var("DIRCUT_BENCH_JSON").unwrap_or_else(|_| "BENCH_reductions.json".to_owned());
    std::fs::write(&path, reductions_json(bin))
        .map_err(|e| std::io::Error::new(e.kind(), format!("writing {path}: {e}")))
}

/// End-of-process JSON flush for the experiment binaries: on failure
/// the computed results (already on stdout) are preserved, a warning
/// goes to stderr, and the returned exit code is 3 — the same code the
/// CLI uses for I/O failures.
#[must_use]
pub fn finish_reductions_json(bin: &str) -> std::process::ExitCode {
    match write_reductions_json(bin) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("warning: {e}");
            eprintln!("warning: the tables above are complete; only the JSON record was lost");
            std::process::ExitCode::from(3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TrialRecord;

    #[test]
    fn json_document_has_schema_sections_and_records() {
        let report = EngineReport {
            reduction: "foreach-index".into(),
            records: vec![TrialRecord {
                trial: 0,
                success: true,
                wire_bits: 64,
                cut_queries: 4,
                flow_solves: 0,
                measured_cut_queries: 0,
                measured_solves: 0,
                wall_ns: 123,
                aux: vec![("err", 0.5), ("nan_guard", f64::NAN)],
            }],
        };
        record_section("unit-test-section", &report);
        let doc = reductions_json("unit-test");
        assert!(doc.contains("\"schema\": \"dircut-reductions-v1\""));
        assert!(doc.contains("\"label\": \"unit-test-section\""));
        assert!(doc.contains("\"reduction\": \"foreach-index\""));
        assert!(doc.contains("\"wilson95\": ["));
        assert!(doc.contains("\"err\": 0.5"));
        // Non-finite aux values must not produce invalid JSON tokens.
        assert!(doc.contains("\"nan_guard\": null"));
        assert!(!doc.contains("NaN"));
    }

    #[test]
    fn header_separator_tracks_actual_row_width() {
        // The formatted row for k cells of width ≤ 14 is 14k + 3(k−1)
        // characters; a wide cell stretches both the row and the rule.
        let short = format_row(&["a".into(), "b".into()]);
        assert_eq!(short.chars().count(), 14 * 2 + 3);
        let wide = format_row(&["max rel err (sampled cuts)".into(), "b".into()]);
        assert_eq!(wide.chars().count(), 26 + 3 + 14);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("tab\there"), "\"tab\\u0009here\"");
    }
}
