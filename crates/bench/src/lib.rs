//! Experiment harness for the `dircut` workspace.
//!
//! * [`harness`] — the [`TrialEngine`](harness::TrialEngine): fans any
//!   [`Reduction`](dircut_core::reduction::Reduction) over the
//!   deterministic worker pool under one of three seeding disciplines,
//! * [`record`] — typed per-trial [`TrialRecord`](record::TrialRecord)s
//!   and their aggregation (success rates, Wilson 95% intervals,
//!   wire-bit totals),
//! * [`report`] — byte-stable stdout tables, the stderr stage report,
//!   and the unified `BENCH_reductions.json` emitter,
//! * [`reductions`] — bench-local reductions for measurement axes that
//!   are not paper games (ε-scaling, boosting, VERIFY-GUESS boundary),
//! * [`soak`] — the long-running mutation/query/rebuild interleave
//!   that continuously asserts billing, cache-coherence, and
//!   determinism invariants over the adversarial family roster.

#![forbid(unsafe_code)]

pub mod harness;
pub mod record;
pub mod reductions;
pub mod report;
pub mod soak;

pub use harness::{Seeding, TrialEngine};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use record::{wilson95, EngineReport, TrialRecord};
pub use report::{
    finish_reductions_json, maybe_print_stage_report, print_header, print_row, record_section,
    reductions_json, write_reductions_json,
};
