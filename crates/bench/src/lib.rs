//! Experiment harness support for the `dircut` workspace: shared table
//! printing used by the `exp_*` binaries and criterion benches.

#![forbid(unsafe_code)]

/// Prints a table row of equal-width cells to stdout.
pub fn print_row(cells: &[String]) {
    let formatted: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", formatted.join(" | "));
}

/// Prints a header row plus a separator.
pub fn print_header(cells: &[&str]) {
    print_row(&cells.iter().map(|c| (*c).to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(cells.len() * 17));
}
