//! Experiment harness support for the `dircut` workspace: shared table
//! printing used by the `exp_*` binaries and criterion benches.

#![forbid(unsafe_code)]

/// Prints a table row of equal-width cells to stdout.
pub fn print_row(cells: &[String]) {
    let formatted: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", formatted.join(" | "));
}

/// Prints a header row plus a separator.
pub fn print_header(cells: &[&str]) {
    print_row(&cells.iter().map(|c| (*c).to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(cells.len() * 17));
}

/// When `DIRCUT_STATS` is set, prints the per-stage solve / cut-query /
/// wall-clock report to **stderr** (stdout is reserved for the
/// experiment tables, which must stay byte-identical run to run).
pub fn maybe_print_stage_report() {
    if std::env::var_os("DIRCUT_STATS").is_none() {
        return;
    }
    let report = dircut_graph::stats::stage_report();
    eprintln!(
        "\n[DIRCUT_STATS] total solves: {}, total cut queries: {}",
        dircut_graph::stats::total_solves(),
        dircut_graph::stats::total_cut_queries()
    );
    eprintln!(
        "[DIRCUT_STATS] {:<32} {:>6} {:>10} {:>12} {:>12}",
        "stage", "runs", "solves", "cut_queries", "wall_ms"
    );
    for (stage, stat) in &report {
        eprintln!(
            "[DIRCUT_STATS] {:<32} {:>6} {:>10} {:>12} {:>12.1}",
            stage,
            stat.runs,
            stat.solves,
            stat.cut_queries,
            stat.wall.as_secs_f64() * 1e3
        );
    }
    // Named metrics (link transcripts: bits sent/acked, retries,
    // drops, latency buckets) ride the same registry; one indented
    // line per metric keeps the table grep-friendly.
    for (stage, stat) in &report {
        for (name, value) in &stat.metrics {
            eprintln!("[DIRCUT_STATS] {stage:<32}   .{name} = {value}");
        }
    }
}
