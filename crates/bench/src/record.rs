//! Typed per-trial observations and their aggregation.
//!
//! The [`TrialEngine`](crate::harness::TrialEngine) produces one
//! [`TrialRecord`] per trial; an [`EngineReport`] holds them in trial
//! order (regardless of which worker ran which trial) and derives the
//! table-facing aggregates: success rate, Wilson 95% interval, mean
//! query counts, wire-bit totals, and auxiliary sums. Everything except
//! `wall_ns` is deterministic given the reduction and seeding, which is
//! what [`TrialRecord::fingerprint`] captures for the determinism
//! proptests.

/// Everything observed about one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Trial index (also the substream key under per-trial seeding).
    pub trial: usize,
    /// Did the decoder answer correctly?
    pub success: bool,
    /// Wire bits of the artifact (serialized sketch / message size).
    pub wire_bits: u64,
    /// Cut queries by the reduction's own accounting.
    pub cut_queries: u64,
    /// Max-flow solves the artifact is statically billed for.
    pub flow_solves: u64,
    /// Cut queries actually counted by `dircut_graph::stats` inside
    /// this trial's encode → decode → verify scope.
    pub measured_cut_queries: u64,
    /// Max-flow solves actually counted inside the trial scope.
    pub measured_solves: u64,
    /// Wall-clock of encode → decode → verify, in nanoseconds. The one
    /// nondeterministic field; excluded from [`Self::fingerprint`].
    pub wall_ns: u64,
    /// Named per-trial measurements the reduction attached.
    pub aux: Vec<(&'static str, f64)>,
}

impl TrialRecord {
    /// A stable textual digest of every deterministic field — equal
    /// across thread counts and scheduling orders by construction.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut out = format!(
            "t{} s{} w{} q{} f{} mq{} ms{}",
            self.trial,
            u8::from(self.success),
            self.wire_bits,
            self.cut_queries,
            self.flow_solves,
            self.measured_cut_queries,
            self.measured_solves,
        );
        for (name, value) in &self.aux {
            out.push_str(&format!(" {name}={value:?}"));
        }
        out
    }
}

/// The two-sided Wilson score interval at 95% confidence.
///
/// Unlike the normal approximation it stays inside `[0, 1]` and
/// behaves at the success rates the lower-bound games actually produce
/// (near 1.0 below threshold, near 0.5 at collapse).
#[must_use]
pub fn wilson95(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 0.0);
    }
    let z = 1.959_963_984_540_054_f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((center - half) / denom).max(0.0),
        ((center + half) / denom).min(1.0),
    )
}

/// All records of one engine run, in trial order.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// [`Reduction::name`](dircut_core::reduction::Reduction::name) of
    /// the reduction that ran.
    pub reduction: String,
    /// One record per trial, index `i` holds trial `i`.
    pub records: Vec<TrialRecord>,
}

impl EngineReport {
    /// Trials run.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.records.len()
    }

    /// Trials where the decoder answered correctly.
    #[must_use]
    pub fn successes(&self) -> usize {
        self.records.iter().filter(|r| r.success).count()
    }

    /// Empirical success probability.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.successes() as f64 / self.records.len() as f64
        }
    }

    /// Wilson 95% interval of the success probability.
    #[must_use]
    pub fn wilson95(&self) -> (f64, f64) {
        wilson95(self.successes(), self.trials())
    }

    /// Mean reduction-accounted cut queries per trial.
    #[must_use]
    pub fn mean_cut_queries(&self) -> f64 {
        let total: u64 = self.records.iter().map(|r| r.cut_queries).sum();
        total as f64 / self.records.len().max(1) as f64
    }

    /// Sum of artifact wire bits across trials.
    #[must_use]
    pub fn total_wire_bits(&self) -> u64 {
        self.records.iter().map(|r| r.wire_bits).sum()
    }

    /// Mean artifact wire bits per trial.
    #[must_use]
    pub fn mean_wire_bits(&self) -> f64 {
        self.total_wire_bits() as f64 / self.records.len().max(1) as f64
    }

    /// The named auxiliary value of one record, if present.
    #[must_use]
    pub fn aux_of(record: &TrialRecord, name: &str) -> Option<f64> {
        record.aux.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Sum of a named auxiliary value, accumulated in trial order (so
    /// floating-point totals reproduce the retired sequential loops
    /// bit for bit).
    #[must_use]
    pub fn aux_sum(&self, name: &str) -> f64 {
        let mut total = 0.0;
        for r in &self.records {
            if let Some(v) = Self::aux_of(r, name) {
                total += v;
            }
        }
        total
    }

    /// Sum of a named auxiliary value cast per-record to `u64` (for
    /// legacy tables that accumulated integer counters).
    #[must_use]
    pub fn aux_sum_u64(&self, name: &str) -> u64 {
        let mut total = 0u64;
        for r in &self.records {
            if let Some(v) = Self::aux_of(r, name) {
                total += v as u64;
            }
        }
        total
    }

    /// Maximum of a named auxiliary value across trials.
    #[must_use]
    pub fn aux_max(&self, name: &str) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for r in &self.records {
            if let Some(v) = Self::aux_of(r, name) {
                best = best.max(v);
            }
        }
        best
    }

    /// Number of records carrying the named auxiliary value with a
    /// nonzero value (legacy "samples" counters).
    #[must_use]
    pub fn aux_count_nonzero(&self, name: &str) -> usize {
        self.records
            .iter()
            .filter(|r| Self::aux_of(r, name).is_some_and(|v| v != 0.0))
            .count()
    }

    /// Concatenated fingerprints of every record — one string equal
    /// across thread counts and scheduling orders.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.fingerprint());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trial: usize, success: bool) -> TrialRecord {
        TrialRecord {
            trial,
            success,
            wire_bits: 100,
            cut_queries: 4,
            flow_solves: 0,
            measured_cut_queries: 4,
            measured_solves: 0,
            wall_ns: 1,
            aux: vec![("err", 0.25)],
        }
    }

    #[test]
    fn wilson_interval_brackets_the_point_estimate() {
        let (lo, hi) = wilson95(90, 100);
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(lo > 0.8 && hi < 0.96);
        assert_eq!(wilson95(0, 0), (0.0, 0.0));
        let (lo, hi) = wilson95(10, 10);
        assert!(hi <= 1.0 && lo < 1.0);
        let (lo, hi) = wilson95(0, 10);
        assert!(lo >= 0.0 && hi > 0.0);
    }

    #[test]
    fn report_aggregates_match_hand_computation() {
        let report = EngineReport {
            reduction: "test".into(),
            records: vec![record(0, true), record(1, false), record(2, true)],
        };
        assert_eq!(report.trials(), 3);
        assert_eq!(report.successes(), 2);
        assert_eq!(report.mean_cut_queries(), 4.0);
        assert_eq!(report.total_wire_bits(), 300);
        assert_eq!(report.aux_sum("err"), 0.75);
        assert_eq!(report.aux_count_nonzero("err"), 3);
        assert_eq!(report.aux_max("err"), 0.25);
    }

    #[test]
    fn fingerprint_ignores_wall_clock_only() {
        let a = record(0, true);
        let mut b = a.clone();
        b.wall_ns = 999_999;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.measured_cut_queries = 5;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
