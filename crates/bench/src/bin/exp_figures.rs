//! Experiments F1–F6: the paper's figures as executable checks.
//!
//! * F1 (Figure 1): the composition of Bob's Section 3 decoder cut —
//!   forward edges `Θ(log(1/ε))` each, backward edges `1/β` each,
//!   total `Θ(log(1/ε)/ε²)`.
//! * F2 (Figure 2): exact reconstruction of the example
//!   `G_{x,y}` for `x = 000000100`, `y = 100010100`.
//! * F3–F6 (Figures 3–6 / Lemma 5.5 cases 1–4): at least `2γ`
//!   edge-disjoint paths between representatives of every node-pair
//!   class, verified by integer max-flow.

use dircut_bench::{print_header, print_row};
use dircut_core::foreach::{cut_composition, ForEachEncoding};
use dircut_core::mincut_lb::GxyGraph;
use dircut_core::{ForEachParams, Region};
use dircut_graph::flow::edge_disjoint_paths;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== F1 (Figure 1): decoder cut composition, Section 3 ===\n");
    print_header(&[
        "1/eps",
        "sqrt_beta",
        "fwd weight",
        "bwd edges",
        "cut value",
        "theory cut",
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for (inv_eps, sqrt_beta) in [(4usize, 1usize), (8, 1), (8, 2), (16, 2)] {
        let p = ForEachParams::new(inv_eps, sqrt_beta, 2);
        let s: Vec<i8> = (0..p.total_bits())
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        let enc = ForEachEncoding::encode(p, &s);
        let comp = cut_composition(&enc, 0);
        // Theory: forward ≈ (1/(2ε))²·2c₁ln(1/ε), backward (k−1/(2ε))²/β.
        let half = inv_eps as f64 / 2.0;
        let k = p.group_size() as f64;
        let theory = half * half * p.shift() + (k - half) * (k - half) / p.beta();
        print_row(&[
            inv_eps.to_string(),
            sqrt_beta.to_string(),
            format!("{:.1}", comp.forward_weight),
            comp.backward_edges.to_string(),
            format!("{:.1}", comp.cut_value),
            format!("{theory:.1}"),
        ]);
    }

    println!("\n=== F2 (Figure 2): G_xy for x=000000100, y=100010100 ===\n");
    let x: Vec<bool> = "000000100".chars().map(|c| c == '1').collect();
    let y: Vec<bool> = "100010100".chars().map(|c| c == '1').collect();
    let g = GxyGraph::build(&x, &y);
    println!("γ = INT(x,y) = {}", g.gamma());
    println!("red (intersection) edges:");
    for (u, v) in g.graph().edges() {
        let cross = matches!(
            (g.region(u), g.region(v)),
            (Region::A, Region::BPrime)
                | (Region::BPrime, Region::A)
                | (Region::B, Region::APrime)
                | (Region::APrime, Region::B)
        );
        if cross {
            println!("  {u} — {v}");
        }
    }
    println!("min-cut (verified by max-flow) = {}", g.verify_lemma_5_5());

    println!("\n=== F3–F6 (Figures 3–6): ≥ 2γ edge-disjoint paths per case ===\n");
    print_header(&["ell", "gamma", "case", "min flow", "2*gamma"]);
    for (ell, gamma) in [(9usize, 2usize), (12, 4), (18, 6)] {
        // Plant exactly `gamma` intersections.
        let n = ell * ell;
        let mut rng = ChaCha8Rng::seed_from_u64(7 + ell as u64);
        let mut x = vec![false; n];
        let mut yv = vec![false; n];
        use rand::seq::SliceRandom;
        let mut pos: Vec<usize> = (0..n).collect();
        pos.shuffle(&mut rng);
        for &p in &pos[..gamma] {
            x[p] = true;
            yv[p] = true;
        }
        for &p in &pos[gamma..] {
            match rng.gen_range(0..4) {
                0 => x[p] = true,
                1 => yv[p] = true,
                _ => {}
            }
        }
        let g = GxyGraph::build(&x, &yv);
        assert!(g.premise_holds());
        let labels = [
            "A-A (Fig 3)",
            "A-A' (Fig 4)",
            "A-B' (Fig 5/6)",
            "A-B (Case 4)",
        ];
        for (pair, label) in g.case_pairs().into_iter().zip(labels) {
            let flow = edge_disjoint_paths(g.graph(), pair.0, pair.1);
            print_row(&[
                ell.to_string(),
                gamma.to_string(),
                label.into(),
                flow.to_string(),
                (2 * gamma).to_string(),
            ]);
            assert!(flow >= 2 * gamma as u64, "{label}: flow {flow} < 2γ");
        }
    }
    println!("\nall flows ≥ 2γ: the connectivity argument of Lemma 5.5 checks out.");
}
