//! Experiment E7 (extension): cut sketches over graph *streams* — the
//! database setting the paper's introduction motivates via \[AGM12\] and
//! \[McG14\].
//!
//! * Insert-only: the budgeted streaming sparsifier processes a long
//!   edge stream in bounded memory; we report the stored-edge count
//!   (never above budget), the final sampling rate, and the cut error
//!   against the offline graph.
//! * Turnstile: the linear sketch absorbs interleaved insertions and
//!   deletions in Θ(n/ε²) memory independent of stream length; after a
//!   churn phase that inserts and deletes 10× the surviving edges, the
//!   estimate still tracks the net graph.

use dircut_bench::{print_header, print_row};
use dircut_graph::{DiGraph, NodeId, NodeSet};
use dircut_sketch::streaming::{StreamingSparsifier, TurnstileLinearSketch};
use dircut_sketch::{CutOracle, CutSketch};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== E7 (extension): streaming cut sketches ===\n");

    // ---- insert-only sparsifier --------------------------------------
    println!("--- insert-only: budgeted streaming sparsifier ---");
    print_header(&[
        "stream len",
        "budget",
        "stored",
        "rate",
        "halvings",
        "cut rel err",
    ]);
    let n = 64;
    let s = NodeSet::from_indices(n, 0..n / 2);
    for target_len in [2_000usize, 8_000, 32_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut offline = DiGraph::new(n);
        let mut sp = StreamingSparsifier::new(n, 1_000, 7);
        // A random multigraph stream (repeats allowed — streams do that).
        for _ in 0..target_len {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            let w = rng.gen_range(0.5..1.5);
            offline.add_edge(NodeId::new(u), NodeId::new(v), w);
            sp.insert(NodeId::new(u), NodeId::new(v), w);
        }
        let truth = offline.cut_out(&s);
        let est = sp.snapshot().cut_out_estimate(&s);
        print_row(&[
            target_len.to_string(),
            "1000".into(),
            sp.stored_edges().to_string(),
            format!("{:.4}", sp.rate()),
            sp.halvings().to_string(),
            format!("{:.3}", (est - truth).abs() / truth),
        ]);
    }

    // ---- turnstile linear sketch --------------------------------------
    println!("\n--- turnstile: insert/delete churn, Θ(n/ε²) memory ---");
    print_header(&["updates", "net edges", "memory bits", "cut rel err"]);
    let n = 48;
    let s = NodeSet::from_indices(n, (0..n).filter(|i| i % 3 == 0));
    for churn in [0usize, 5, 20] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut sk = TurnstileLinearSketch::new(n, 800, 11);
        let mut net = DiGraph::new(n);
        // Survivors: a fixed random simple graph, one insert per pair.
        let mut pairs = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.4) {
                    pairs.push((u, v, rng.gen_range(0.5..2.0)));
                }
            }
        }
        for &(u, v, w) in &pairs {
            sk.insert(NodeId::new(u), NodeId::new(v), w);
            net.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        // Churn: insert/delete ephemeral edges `churn` times per pair.
        for round in 0..churn {
            for (i, &(u, v, _)) in pairs.iter().enumerate() {
                let w = 1.0 + ((i + round) % 7) as f64;
                // Use a *different* pair (shifted) so churn touches other slots.
                let a = NodeId::new((u + 1) % n);
                let b = NodeId::new((v + 3) % n);
                if a != b {
                    sk.insert(a, b, w);
                    sk.delete(a, b, w);
                }
            }
        }
        // Each pair was inserted once as a single arc, so the crossing
        // weight in either direction sums to the undirected cut value.
        let (out, into) = net.cut_both(&s);
        let truth = out + into;
        let est = sk.undirected_cut_estimate(&s);
        print_row(&[
            sk.stream_length().to_string(),
            net.num_edges().to_string(),
            sk.size_bits().to_string(),
            format!("{:.3}", (est - truth).abs() / truth),
        ]);
    }
    println!("\nmemory bits are identical across churn levels — stream length never");
    println!("touches the sketch size, and deletions cancel exactly (AGM12).");
}
