//! Experiment E3 (Theorem 1.3): measured local-query cost on the
//! lower-bound instance family vs the Ω(min{m, m/(ε²k)}) curve.
//!
//! For 2-SUM instances of growing size we build `G_{x,y}`, verify
//! Lemma 5.5 with a real min-cut computation, run the (modified)
//! BGMP21 algorithm through the bit-counting oracle, and report
//! queries, simulated communication bits, and the reference curve.
//! Each configuration is one [`TrialEngine`] trial under
//! `Seeding::Offset(11)` — the legacy loop's fixed instance seed.

use dircut_bench::{print_header, print_row, record_section, Seeding, TrialEngine};
use dircut_core::reduction::TwoSumMinCutReduction;

fn main() -> std::process::ExitCode {
    println!("=== E3: local-query min-cut lower bound (Theorem 1.3) ===\n");
    print_header(&[
        "m",
        "k",
        "eps",
        "queries",
        "bits",
        "m/(e^2 k)",
        "2SUM err",
        "LB bits",
    ]);

    let eps = 0.2;
    let engine = TrialEngine::with_default_threads();
    // (t, L, α, intersecting): t·L must be a perfect square and
    // √(tL) ≥ 3·INT.
    let configs: [(usize, usize, usize, usize); 4] = [
        (4, 64, 2, 2),    // N = 256,  ℓ = 16
        (8, 128, 2, 3),   // N = 1024, ℓ = 32
        (16, 256, 4, 4),  // N = 4096, ℓ = 64
        (16, 1024, 8, 5), // N = 16384, ℓ = 128
    ];
    for (t, l, alpha, hits) in configs {
        let rdx = TwoSumMinCutReduction {
            t,
            l,
            alpha,
            intersecting: hits,
            eps,
            beta0: 0.25,
            algo_seed: 13,
        };
        let rep = engine.run(&rdx, 1, Seeding::Offset(11));
        record_section(&format!("E3 t={t} L={l} alpha={alpha}"), &rep);
        let m = rep.aux_sum_u64("m");
        let k = rep.aux_sum_u64("k");
        let curve = m as f64 / (eps * eps * (k.max(1)) as f64);
        print_row(&[
            m.to_string(),
            k.to_string(),
            format!("{eps}"),
            rep.aux_sum_u64("queries").to_string(),
            rep.aux_sum_u64("bits").to_string(),
            format!("{curve:.0}"),
            format!("{:.2}", rep.aux_sum("twosum_err")),
            rep.aux_sum_u64("lb_bits").to_string(),
        ]);
    }
    println!(
        "\nShape check: queries track min(m, m/(ε²k)) up to log factors; every\n\
         query costs 2 simulated bits, so bits ≈ 2×(neighbor+adjacency queries),\n\
         and Theorem 5.4 says any correct protocol needs Ω(tL/α) bits."
    );

    let code = dircut_bench::finish_reductions_json("exp_localquery");
    // Stage counters go to stderr behind DIRCUT_STATS: the localquery
    // stages now record on every run, and their wall-clock column must
    // not leak into the byte-stable stdout tables.
    dircut_bench::maybe_print_stage_report();
    code
}
