//! Experiment E3 (Theorem 1.3): measured local-query cost on the
//! lower-bound instance family vs the Ω(min{m, m/(ε²k)}) curve.
//!
//! For 2-SUM instances of growing size we build `G_{x,y}`, verify
//! Lemma 5.5 with a real min-cut computation, run the (modified)
//! BGMP21 algorithm through the bit-counting oracle, and report
//! queries, simulated communication bits, and the reference curve.

use dircut_bench::{print_header, print_row};
use dircut_comm::TwoSumInstance;
use dircut_core::mincut_lb::{solve_twosum_via_mincut, GxyGraph};
use dircut_localquery::{global_min_cut_local, SearchVariant, VerifyGuessConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== E3: local-query min-cut lower bound (Theorem 1.3) ===\n");
    print_header(&[
        "m",
        "k",
        "eps",
        "queries",
        "bits",
        "m/(e^2 k)",
        "2SUM err",
        "LB bits",
    ]);

    let eps = 0.2;
    // (t, L, α, intersecting): t·L must be a perfect square and
    // √(tL) ≥ 3·INT.
    let configs: [(usize, usize, usize, usize); 4] = [
        (4, 64, 2, 2),    // N = 256,  ℓ = 16
        (8, 128, 2, 3),   // N = 1024, ℓ = 32
        (16, 256, 4, 4),  // N = 4096, ℓ = 64
        (16, 1024, 8, 5), // N = 16384, ℓ = 128
    ];
    for (t, l, alpha, hits) in configs {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let inst = TwoSumInstance::sample(t, l, alpha, hits, &mut rng);
        assert!(inst.promise_holds());
        let (x, y) = inst.concatenated();
        let g = GxyGraph::build(&x, &y);
        let k = g.verify_lemma_5_5(); // also validates Lemma 5.5
        let m = g.graph().num_edges();

        let mut queries = 0u64;
        let mut algo_rng = ChaCha8Rng::seed_from_u64(13);
        let result = solve_twosum_via_mincut(&inst, |oracle| {
            let res = global_min_cut_local(
                oracle,
                eps,
                SearchVariant::Modified { beta0: 0.25 },
                VerifyGuessConfig::default(),
                &mut algo_rng,
            );
            queries = res.total_queries;
            res.estimate
        });
        let curve = m as f64 / (eps * eps * (k.max(1)) as f64);
        print_row(&[
            m.to_string(),
            k.to_string(),
            format!("{eps}"),
            queries.to_string(),
            result.bits_exchanged.to_string(),
            format!("{curve:.0}"),
            format!("{:.2}", (result.disj_estimate - result.disj_truth).abs()),
            inst.lower_bound_bits().to_string(),
        ]);
    }
    println!(
        "\nShape check: queries track min(m, m/(ε²k)) up to log factors; every\n\
         query costs 2 simulated bits, so bits ≈ 2×(neighbor+adjacency queries),\n\
         and Theorem 5.4 says any correct protocol needs Ω(tL/α) bits."
    );

    // Stage counters go to stderr behind DIRCUT_STATS: the localquery
    // stages now record on every run, and their wall-clock column must
    // not leak into the byte-stable stdout tables.
    dircut_bench::maybe_print_stage_report();
}
