//! Experiment E9: the sparsifier zoo — every [`SparsifierSpec`] in the
//! registry, measured the same way.
//!
//! Three sections, one registry:
//!
//! 1. **Error table** (small `n`): for each graph family × ε, every
//!    registry entry is constructed and its exhaustive
//!    `max_relative_cut_error` over all `2^{n−1}−1` directed cuts is
//!    measured. Success means the error stays inside ε — for-all
//!    sparsifiers should pass, the undirected linear sketch should
//!    visibly fail on directed instances.
//! 2. **Theorem 1.1/1.2 decoders**: every entry plays the Section 3
//!    Index game (for-each kinds) or the Section 4 Gap-Hamming game
//!    (for-all kinds) through the `Reduction`/`TrialEngine` pipeline,
//!    with wire bits billed from the sketch's own accounting.
//! 3. **Size sweep** (large `n`): measured wire bits and retained
//!    edges next to the paper's Ω(n√m/ε) and Ω(n·log n/ε²) reference
//!    curves (constant 1).
//!
//! Sections 1 and 3 are also emitted as `BENCH_sparsifiers.json`
//! (schema `dircut-sparsifiers-v1`, path overridable via
//! `DIRCUT_SPARSIFIER_JSON`) — the measured-vs-proved chart's data.
//! `--smoke` shrinks the section-2 trial counts only, so the JSON
//! document is identical in both modes.
//!
//! [`SparsifierSpec`]: dircut_sketch::SparsifierSpec

use dircut_bench::reductions::SparsifierCellReduction;
use dircut_bench::{print_header, print_row, EngineReport, Seeding, TrialEngine};
use dircut_core::reduction::{ForAllSketchReduction, ForEachSketchReduction};
use dircut_core::{ForAllParams, ForEachParams, SubsetSearch};
use dircut_graph::families::clustered_graph;
use dircut_graph::generators::{random_balanced_digraph, random_eulerian_digraph};
use dircut_graph::{DiGraph, FamilySpec};
use dircut_sketch::{registry, CutSketcher, SketchKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

/// Node count of the error-table graphs (exhaustive cut enumeration).
const SMALL_N: usize = 14;
/// ε sweep of the error table.
const EPSILONS: [f64; 4] = [0.5, 0.4, 0.3, 0.25];
/// Trials per error-table cell.
const ERROR_TRIALS: usize = 2;

/// One row of the JSON document (a measured cell).
struct JsonRow {
    family: &'static str,
    n: usize,
    m: usize,
    eps: f64,
    beta: f64,
    sparsifier: &'static str,
    kind: &'static str,
    trials: usize,
    successes: usize,
    mean_wire_bits: f64,
    mean_retained_edges: f64,
    /// `None` for size-only cells (n too large to enumerate cuts).
    max_relative_cut_error: Option<f64>,
    lb_foreach_bits: f64,
    lb_forall_bits: f64,
}

fn kind_str(kind: SketchKind) -> &'static str {
    match kind {
        SketchKind::ForEach => "foreach",
        SketchKind::ForAll => "forall",
    }
}

/// The paper's reference curves at constant 1, in bits.
fn lower_bounds(n: usize, m: usize, eps: f64) -> (f64, f64) {
    let (n, m) = (n as f64, m as f64);
    (n * m.sqrt() / eps, n * n.log2() / (eps * eps))
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn write_json(rows: &[JsonRow]) -> std::io::Result<String> {
    let mut out = String::from("{\n  \"schema\": \"dircut-sparsifiers-v1\",\n");
    out.push_str("  \"bin\": \"exp_sparsifier_zoo\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"eps\": {}, \"beta\": {}, \
             \"sparsifier\": \"{}\", \"kind\": \"{}\", \"trials\": {}, \"successes\": {}, \
             \"mean_wire_bits\": {}, \"mean_retained_edges\": {}, \
             \"max_relative_cut_error\": {}, \"lb_foreach_bits\": {}, \"lb_forall_bits\": {}}}{}\n",
            r.family,
            r.n,
            r.m,
            json_f64(r.eps),
            json_f64(r.beta),
            r.sparsifier,
            r.kind,
            r.trials,
            r.successes,
            json_f64(r.mean_wire_bits),
            json_f64(r.mean_retained_edges),
            r.max_relative_cut_error.map_or("null".into(), json_f64),
            json_f64(r.lb_foreach_bits),
            json_f64(r.lb_forall_bits),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path =
        std::env::var("DIRCUT_SPARSIFIER_JSON").unwrap_or_else(|_| "BENCH_sparsifiers.json".into());
    std::fs::write(&path, &out)?;
    Ok(path)
}

fn main() -> ExitCode {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let engine = TrialEngine::with_default_threads();
    let mut json_rows: Vec<JsonRow> = Vec::new();

    println!("=== E9: sparsifier zoo — every registry entry, measured ===\n");

    // ---- 1. exhaustive error table -----------------------------------
    println!("--- max relative cut error over all 2^(n-1)-1 cuts (n = {SMALL_N}) ---");
    let families: Vec<(&'static str, DiGraph, f64)> = vec![
        (
            "balanced",
            random_balanced_digraph(SMALL_N, 0.7, 4.0, &mut ChaCha8Rng::seed_from_u64(40)),
            4.0,
        ),
        (
            "eulerian",
            random_eulerian_digraph(SMALL_N, 24, &mut ChaCha8Rng::seed_from_u64(41)),
            1.0,
        ),
        ("clustered", clustered_graph(SMALL_N), 2.0),
    ];
    // Adversarial axis: the lower-bound witness families, at the same
    // exhaustive-enumeration scale (n ≤ 14). Each carries its exact
    // certificate as the sweep's β.
    let families: Vec<(&'static str, DiGraph, f64)> = families
        .into_iter()
        .chain(
            FamilySpec::adversarial_zoo()
                .into_iter()
                .enumerate()
                .map(|(i, spec)| {
                    let beta = spec
                        .beta_bound()
                        .expect("adversarial zoo families carry a certificate");
                    let g = spec.generate(&mut ChaCha8Rng::seed_from_u64(42 + i as u64));
                    (spec.name(), g, beta)
                }),
        )
        .collect();
    for (family_idx, (family, g, beta)) in families.iter().enumerate() {
        println!(
            "\nfamily: {family} (n = {}, m = {}, beta = {beta})",
            g.num_nodes(),
            g.num_edges()
        );
        print_header(&[
            "eps",
            "sparsifier",
            "kind",
            "wire bits",
            "retained",
            "max rel err",
            "ok",
        ]);
        for (eps_idx, &eps) in EPSILONS.iter().enumerate() {
            for (spec_idx, spec) in registry(eps, *beta).into_iter().enumerate() {
                let rdx = SparsifierCellReduction {
                    graph: g,
                    spec,
                    band: eps,
                    measure_error: true,
                };
                let seed = 9000 + (family_idx * 100 + eps_idx * 10 + spec_idx) as u64;
                let report = engine.run(&rdx, ERROR_TRIALS, Seeding::Substream(seed));
                let err = report.aux_max("err");
                let retained = report.aux_sum("retained") / report.trials() as f64;
                let (lb_fe, lb_fa) = lower_bounds(g.num_nodes(), g.num_edges(), eps);
                print_row(&[
                    format!("{eps}"),
                    spec.name().into(),
                    kind_str(spec.kind()).into(),
                    format!("{:.0}", report.mean_wire_bits()),
                    format!("{retained:.1}"),
                    format!("{err:.4}"),
                    if report.successes() == report.trials() {
                        "yes".into()
                    } else {
                        "no".into()
                    },
                ]);
                json_rows.push(JsonRow {
                    family,
                    n: g.num_nodes(),
                    m: g.num_edges(),
                    eps,
                    beta: *beta,
                    sparsifier: spec.name(),
                    kind: kind_str(spec.kind()),
                    trials: report.trials(),
                    successes: report.successes(),
                    mean_wire_bits: report.mean_wire_bits(),
                    mean_retained_edges: retained,
                    max_relative_cut_error: Some(err),
                    lb_foreach_bits: lb_fe,
                    lb_forall_bits: lb_fa,
                });
            }
        }
    }

    // ---- 2. the paper's decoders through the registry ----------------
    let (fe_trials, fa_trials) = if smoke { (8, 4) } else { (40, 16) };
    println!("\n--- Thm 1.1/1.2 decoders through the registry ---");
    println!(
        "for-each: Index game, 1/eps = 4, ell = 2, {fe_trials} trials; \
         for-all: Gap-Hamming, 1/eps^2 = 8, {fa_trials} trials"
    );
    print_header(&["sparsifier", "game", "trials", "success", "mean wire bits"]);
    let game_eps = 0.25;
    for spec in registry(game_eps, 1.0) {
        let report = match spec.kind() {
            SketchKind::ForEach => {
                let rdx = ForEachSketchReduction {
                    params: ForEachParams::new(4, 1, 2),
                    sketcher: spec,
                };
                engine.run(&rdx, fe_trials, Seeding::Substream(11))
            }
            SketchKind::ForAll => {
                let rdx = ForAllSketchReduction {
                    params: ForAllParams::new(1, 8, 2),
                    half_gap: 2,
                    search: SubsetSearch::Exact,
                    sketcher: spec,
                };
                engine.run(&rdx, fa_trials, Seeding::Substream(12))
            }
        };
        print_row(&[
            spec.name().into(),
            match spec.kind() {
                SketchKind::ForEach => "index".into(),
                SketchKind::ForAll => "gap-hamming".into(),
            },
            report.trials().to_string(),
            format!("{:.3}", report.success_rate()),
            format!("{:.0}", report.mean_wire_bits()),
        ]);
    }

    // ---- 3. size sweep vs the lower-bound curves ---------------------
    println!("\n--- measured size vs lower-bound curves (balanced, beta = 4) ---");
    print_header(&[
        "n",
        "eps",
        "sparsifier",
        "wire bits",
        "retained",
        "LB n√m/e",
        "LB nlgn/e^2",
    ]);
    for (n_idx, n) in [32usize, 64, 128].into_iter().enumerate() {
        for (eps_idx, &eps) in [0.5f64, 0.25].iter().enumerate() {
            let mut gen = ChaCha8Rng::seed_from_u64(50 + n_idx as u64);
            let g = random_balanced_digraph(n, 1.0, 4.0, &mut gen);
            let (lb_fe, lb_fa) = lower_bounds(n, g.num_edges(), eps);
            for (spec_idx, spec) in registry(eps, 4.0).into_iter().enumerate() {
                let rdx = SparsifierCellReduction {
                    graph: &g,
                    spec,
                    band: eps,
                    measure_error: false,
                };
                let seed = 7000 + (n_idx * 100 + eps_idx * 20 + spec_idx) as u64;
                let report = engine.run(&rdx, 1, Seeding::Substream(seed));
                let retained = EngineReport::aux_of(&report.records[0], "retained").unwrap_or(0.0);
                print_row(&[
                    n.to_string(),
                    format!("{eps}"),
                    spec.name().into(),
                    format!("{:.0}", report.mean_wire_bits()),
                    format!("{retained:.0}"),
                    format!("{lb_fe:.0}"),
                    format!("{lb_fa:.0}"),
                ]);
                json_rows.push(JsonRow {
                    family: "balanced",
                    n,
                    m: g.num_edges(),
                    eps,
                    beta: 4.0,
                    sparsifier: spec.name(),
                    kind: kind_str(spec.kind()),
                    trials: report.trials(),
                    successes: report.successes(),
                    mean_wire_bits: report.mean_wire_bits(),
                    mean_retained_edges: retained,
                    max_relative_cut_error: None,
                    lb_foreach_bits: lb_fe,
                    lb_forall_bits: lb_fa,
                });
            }
        }
    }

    println!(
        "\nReading: for-all entries hold max rel err ≤ eps (the linear sketch\n\
         answers undirected cuts, so it fails directed instances by design);\n\
         measured sizes sit above the Ω(n√m/ε) / Ω(n·lg n/ε²) curves until\n\
         the p = 1 cap makes a sampler store the whole graph."
    );
    match write_json(&json_rows) {
        Ok(path) => {
            println!("rows: {path}");
            dircut_bench::maybe_print_stage_report();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write BENCH_sparsifiers.json: {e}");
            ExitCode::from(3)
        }
    }
}
