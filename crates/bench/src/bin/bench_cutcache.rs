//! Standalone cache benchmark: measures the PR-5 query-result cache
//! and flow warm-starts on the two workloads the ISSUE acceptance gate
//! reads — repeated Gomory–Hu builds on one flow network, and repeated
//! same-seed BGMP local-query min-cut runs — and writes the numbers to
//! `BENCH_cutcache.json`: ms/run cache-on vs cache-off, the speedups,
//! and the hit/miss counters each workload produced.
//!
//! The bench also *checks* the two contracts the cache ships under:
//! results are bit-identical with the cache on and off, and billed
//! counts (flow solves, local queries) do not change — the cache is
//! visible only through `cache_hits`/`cache_misses` and wall-clock.
//!
//! `--smoke` shrinks the graphs and repetition counts so CI can run
//! the whole binary in seconds; the JSON shape is identical.

use dircut_graph::flow::symmetric_network_from_digraph;
use dircut_graph::generators::connected_gnp;
use dircut_graph::gomory_hu::GomoryHuTree;
use dircut_graph::{cache, stats, DiGraph, NodeId};
use dircut_localquery::{global_min_cut_local, AdjOracle, SearchVariant, VerifyGuessConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// One workload timed cache-off then cache-on.
struct Comparison {
    label: String,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds (after one
/// warm-up call, which for the cache-on runs is also what populates
/// the memo tables).
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e3
}

/// Times `f` with the cache disabled then enabled, checking that the
/// run's fingerprint (whatever f64 the workload folds to) is
/// bit-identical both ways, and reports the hit/miss counters the
/// cache-on reps generated.
fn compare(label: &str, reps: usize, mut f: impl FnMut() -> f64) -> Comparison {
    cache::set_enabled(false);
    let mut cold_fp = 0u64;
    let cold_ms = best_ms(reps, || cold_fp = f().to_bits());
    cache::set_enabled(true);
    let (hits0, misses0) = (stats::total_cache_hits(), stats::total_cache_misses());
    let mut warm_fp = 0u64;
    let warm_ms = best_ms(reps, || warm_fp = f().to_bits());
    assert_eq!(
        cold_fp, warm_fp,
        "{label}: cache-on result differs from cache-off"
    );
    Comparison {
        label: label.to_owned(),
        cold_ms,
        warm_ms,
        speedup: cold_ms / warm_ms,
        cache_hits: stats::total_cache_hits() - hits0,
        cache_misses: stats::total_cache_misses() - misses0,
    }
}

/// Dense symmetric weighted graph for the Gomory–Hu workload.
fn gh_graph(n: usize) -> DiGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(0.3) {
                let w = rng.gen_range(0.5..4.0);
                g.add_edge(NodeId::new(u), NodeId::new(v), w);
                g.add_edge(NodeId::new(v), NodeId::new(u), w);
            }
        }
        let w = 1.0;
        g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n), w);
        g.add_edge(NodeId::new((u + 1) % n), NodeId::new(u), w);
    }
    g
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (gh_n, bgmp_n, reps) = if smoke { (28, 36, 3) } else { (72, 60, 6) };

    // Workload 1: repeated Gomory–Hu builds sharing one flow network.
    // Every build solves the same deterministic (sink, parent) pair
    // sequence, so after the warm-up build each max-flow is a replay.
    let g = gh_graph(gh_n);
    let mut net = symmetric_network_from_digraph(&g);
    let solves0 = stats::total_solves();
    let gh = compare("gomory_hu_rebuild", reps, || {
        GomoryHuTree::build_with_network(&g, &mut net, 1).global_min_cut()
    });
    let gh_solves = stats::total_solves() - solves0;

    // Workload 2: repeated same-seed BGMP runs. Identical seeds replay
    // identical edge samples, so every skeleton min-cut after the first
    // run comes from the process-global skeleton memo.
    let mut gen = ChaCha8Rng::seed_from_u64(7);
    let ug = connected_gnp(bgmp_n, 0.4, &mut gen);
    let oracle = AdjOracle::new(&ug);
    let mut billed = Vec::new();
    let bgmp = compare("bgmp_same_seed", reps, || {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let res = global_min_cut_local(
            &oracle,
            0.3,
            SearchVariant::Modified { beta0: 0.25 },
            VerifyGuessConfig::default(),
            &mut rng,
        );
        billed.push(res.total_queries);
        res.estimate
    });
    // Billing invariant: every run billed the same local-query count,
    // cache or no cache.
    assert!(
        billed.windows(2).all(|w| w[0] == w[1]),
        "billed query counts varied across cache modes: {billed:?}"
    );
    let billed_queries = billed[0];

    for c in [&gh, &bgmp] {
        eprintln!(
            "{}: cold {:.2} ms, warm {:.2} ms, speedup {:.2}x ({} hits / {} misses)",
            c.label, c.cold_ms, c.warm_ms, c.speedup, c.cache_hits, c.cache_misses
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"gh_nodes\": {gh_n},");
    let _ = writeln!(json, "  \"gh_flow_solves\": {gh_solves},");
    let _ = writeln!(json, "  \"bgmp_nodes\": {bgmp_n},");
    let _ = writeln!(json, "  \"bgmp_billed_queries\": {billed_queries},");
    let _ = writeln!(
        json,
        "  \"cache_hits\": {},",
        gh.cache_hits + bgmp.cache_hits
    );
    let _ = writeln!(
        json,
        "  \"cache_misses\": {},",
        gh.cache_misses + bgmp.cache_misses
    );
    json.push_str("  \"workloads\": [\n");
    for (i, c) in [&gh, &bgmp].into_iter().enumerate() {
        let comma = if i == 0 { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"speedup\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}}}{}",
            c.label, c.cold_ms, c.warm_ms, c.speedup, c.cache_hits, c.cache_misses, comma
        );
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    // Fail soft like the reductions JSON: the numbers above are
    // already on stdout, so a bad path only loses the file copy.
    if let Err(e) = std::fs::write("BENCH_cutcache.json", &json) {
        eprintln!("warning: writing BENCH_cutcache.json: {e}");
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
