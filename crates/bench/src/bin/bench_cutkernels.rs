//! Standalone cut-kernel benchmark, two workloads:
//!
//! * **gadget** — the decoder-shaped ForEach queries from PR 2,
//!   batched vs the naive query-at-a-time loop (the original
//!   acceptance gate: `speedup_batch_vs_naive`).
//! * **bigscan** — a clustered graph at 10⁷ edges (full mode) whose
//!   query sets are dense enough to stay on the fused edge-pass
//!   kernel, swept over every lane count (1/2/4) × thread count and
//!   with degree-ordered relabeling on/off. Edge streaming dominates
//!   here, so this is the workload where the lane-unrolled tiled
//!   kernel shows up: `speedup_lane4_vs_lane1` and per-run
//!   `edges_per_sec` (= m × ⌈k / 64L⌉ mask-pass edges per second).
//!
//! A **delta-epoch** section then mutates one edge of the bigscan
//! graph and re-queries warm: it reports the delta-retained vs fresh
//! hit split and the warm-vs-cold wall clock.
//!
//! Everything lands in `BENCH_cutkernels.json`. `--smoke` shrinks both
//! workloads so CI runs the binary in seconds and additionally
//! bit-verifies the blocked lane kernels against the scalar whole-edge
//! scan at every lane count (the JSON shape is identical).

use dircut_core::foreach::{ForEachDecoder, ForEachEncoding, ForEachParams};
use dircut_graph::cuteval::{
    cut_both_batch_threaded, cut_out_batch_threaded, set_lanes, set_relabel, MAX_LANES,
};
use dircut_graph::{cache, parallel, stats, DiGraph, NodeId, NodeSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    label: String,
    lanes: usize,
    threads: usize,
    queries: usize,
    ns_per_query: f64,
    queries_per_sec: f64,
    /// Mask-pass edge throughput: `m × ⌈k / 64·lanes⌉ / seconds`
    /// (`m × k / seconds` for the naive per-query scan).
    edges_per_sec: f64,
}

/// Builds the gadget graph and the first `k` decoder query sets.
fn gadget_workload(params: ForEachParams, k: usize) -> (DiGraph, Vec<NodeSet>) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let signs: Vec<i8> = (0..params.total_bits())
        .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
        .collect();
    let enc = ForEachEncoding::encode(params, &signs);
    let dec = ForEachDecoder::new(params);
    let mut sets = Vec::with_capacity(k);
    let mut q = 0usize;
    while sets.len() < k {
        sets.extend(dec.queries_for_bit(q).sets);
        q += 1;
    }
    sets.truncate(k);
    (enc.graph().clone(), sets)
}

/// A 16-cluster graph with ~99.9% intra-cluster edges, plus `k` query
/// sets that each cover one whole cluster (so Σdeg·16 ≥ m and the
/// batch kernel routes them to the fused edge pass, never the
/// incident-scan fast path).
fn bigscan_workload(n: usize, m: usize, k: usize) -> (DiGraph, Vec<NodeSet>) {
    const CLUSTERS: usize = 16;
    let per = n / CLUSTERS;
    let mut rng = ChaCha8Rng::seed_from_u64(0x51_6ca9);
    let mut g = DiGraph::with_edge_capacity(n, m);
    for _ in 0..m {
        let (lo, span) = if rng.gen_bool(0.999) {
            (rng.gen_range(0..CLUSTERS) * per, per)
        } else {
            (0, n)
        };
        let u = lo + rng.gen_range(0..span);
        let mut v = lo + rng.gen_range(0..span);
        if u == v {
            v = lo + (v - lo + 1) % span.max(2);
        }
        if u != v {
            g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.001..8.0));
        }
    }
    let sets = (0..k)
        .map(|j| {
            let c = j % CLUSTERS;
            // A distinct extra node keeps repeated clusters from
            // collapsing to identical sets across the > CLUSTERS batch.
            let extra = ((c + 1) % CLUSTERS) * per + (j / CLUSTERS) % per;
            NodeSet::from_indices(n, (c * per..(c + 1) * per).chain([extra]))
        })
        .collect();
    (g, sets)
}

/// Times `f` over `reps` repetitions of a `queries`-query workload and
/// returns the per-query cost (best-of-reps, to dodge scheduler noise).
fn time_queries(
    label: &str,
    lanes: usize,
    threads: usize,
    queries: usize,
    reps: usize,
    mask_pass_edges: f64,
    mut f: impl FnMut(),
) -> Measurement {
    // Warm-up run (CSR build, thread-pool spawn).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    Measurement {
        label: label.to_owned(),
        lanes,
        threads,
        queries,
        ns_per_query: best * 1e9 / queries as f64,
        queries_per_sec: queries as f64 / best,
        edges_per_sec: mask_pass_edges / best,
    }
}

fn push_runs_json(json: &mut String, runs: &[Measurement]) {
    json.push_str("    \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"label\": \"{}\", \"lanes\": {}, \"threads\": {}, \"queries\": {}, \
             \"ns_per_query\": {:.1}, \"queries_per_sec\": {:.1}, \"edges_per_sec\": {:.0}}}{}",
            m.label,
            m.lanes,
            m.threads,
            m.queries,
            m.ns_per_query,
            m.queries_per_sec,
            m.edges_per_sec,
            comma
        );
    }
    json.push_str("    ]\n");
}

/// `--smoke` only: every lane count (and relabeling) must reproduce
/// the scalar whole-edge scan bit for bit.
fn verify_bit_identity(g: &DiGraph, sets: &[NodeSet], threads_hi: usize) {
    cache::set_enabled(false);
    let naive: Vec<(f64, f64)> = sets.iter().map(|s| g.cut_both(s)).collect();
    for lanes in [1, 2, 4] {
        set_lanes(lanes);
        for relabel in [false, true] {
            set_relabel(relabel);
            for threads in [1, threads_hi] {
                let batch = cut_both_batch_threaded(g, sets, threads);
                for (i, (b, nv)) in batch.iter().zip(&naive).enumerate() {
                    assert_eq!(
                        (b.0.to_bits(), b.1.to_bits()),
                        (nv.0.to_bits(), nv.1.to_bits()),
                        "bit mismatch: set {i}, lanes {lanes}, relabel {relabel}, threads {threads}"
                    );
                }
            }
        }
    }
    set_relabel(false);
    set_lanes(MAX_LANES);
    eprintln!(
        "smoke bit-identity OK: lanes 1/2/4 x relabel on/off x threads 1/{threads_hi} \
         all match the scalar scan on {} sets",
        sets.len()
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let default_threads = parallel::default_threads();
    // On a single-core host the two thread configurations coincide;
    // run each measurement once.
    let thread_counts: &[usize] = if default_threads > 1 {
        &[1, default_threads]
    } else {
        &[1]
    };
    set_lanes(MAX_LANES);
    set_relabel(false);

    // ---- gadget section (the PR-2 acceptance shape) -------------------
    let (params, gadget_k, reps) = if smoke {
        (ForEachParams::new(8, 2, 8), 64, 3)
    } else {
        (ForEachParams::new(32, 4, 32), 128, 10)
    };
    let (gg, gsets) = gadget_workload(params, gadget_k);
    eprintln!(
        "gadget: n = {}, m = {}, k = {} queries, reps = {}, default threads = {}",
        gg.num_nodes(),
        gg.num_edges(),
        gadget_k,
        reps,
        default_threads
    );
    let gm = gg.num_edges() as f64;
    let mut gadget_runs = Vec::new();
    gadget_runs.push(time_queries(
        "naive_loop",
        1,
        1,
        gadget_k,
        reps,
        gm * gadget_k as f64,
        || {
            let v: Vec<f64> = gsets.iter().map(|s| gg.cut_out(s)).collect();
            std::hint::black_box(v);
        },
    ));
    for &threads in thread_counts {
        let passes = gadget_k.div_ceil(64 * MAX_LANES) as f64;
        gadget_runs.push(time_queries(
            &format!("batch_{threads}t"),
            MAX_LANES,
            threads,
            gadget_k,
            reps,
            gm * passes,
            || {
                std::hint::black_box(cut_out_batch_threaded(&gg, &gsets, threads));
            },
        ));
    }
    let gadget_speedup = gadget_runs[0].ns_per_query
        / gadget_runs[1..]
            .iter()
            .map(|m| m.ns_per_query)
            .fold(f64::INFINITY, f64::min);

    // ---- bigscan section (lane sweep on an edge-bound workload) -------
    let (n, m, bigscan_k, big_reps) = if smoke {
        // k = 256 fills all four lanes, so the smoke lane sweep is
        // shaped like the full one (1/2/4 mask passes).
        (2_048, 50_000, 256, 3)
    } else {
        (200_000, 10_000_000, 256, 3)
    };
    let (mut bg, bsets) = bigscan_workload(n, m, bigscan_k);
    eprintln!(
        "bigscan: n = {}, m = {}, k = {} cluster queries, reps = {}",
        bg.num_nodes(),
        bg.num_edges(),
        bigscan_k,
        big_reps
    );
    if smoke {
        verify_bit_identity(&bg, &bsets, default_threads);
    }
    // Raw kernel timings: the memo would flatten repeat passes.
    cache::set_enabled(false);
    let bm = bg.num_edges() as f64;
    let mut bigscan_runs = Vec::new();
    // The PR-2 scalar path: one whole-edge scan per query. Timed on the
    // 16 distinct cluster sets — per-query cost is scale-free.
    let naive_sets = &bsets[..16.min(bsets.len())];
    bigscan_runs.push(time_queries(
        "naive_loop",
        1,
        1,
        naive_sets.len(),
        big_reps.min(2),
        bm * naive_sets.len() as f64,
        || {
            let v: Vec<(f64, f64)> = naive_sets.iter().map(|s| bg.cut_both(s)).collect();
            std::hint::black_box(v);
        },
    ));
    for lanes in [1, 2, 4] {
        set_lanes(lanes);
        let passes = bigscan_k.div_ceil(64 * lanes) as f64;
        for &threads in thread_counts {
            bigscan_runs.push(time_queries(
                &format!("batch_l{lanes}_{threads}t"),
                lanes,
                threads,
                bigscan_k,
                big_reps,
                bm * passes,
                || {
                    std::hint::black_box(cut_both_batch_threaded(&bg, &bsets, threads));
                },
            ));
        }
    }
    set_lanes(MAX_LANES);
    set_relabel(true);
    {
        let passes = bigscan_k.div_ceil(64 * MAX_LANES) as f64;
        for &threads in thread_counts {
            bigscan_runs.push(time_queries(
                &format!("batch_l4_relabel_{threads}t"),
                MAX_LANES,
                threads,
                bigscan_k,
                big_reps,
                bm * passes,
                || {
                    std::hint::black_box(cut_both_batch_threaded(&bg, &bsets, threads));
                },
            ));
        }
    }
    set_relabel(false);
    let ns_of = |label: &str| {
        bigscan_runs
            .iter()
            .find(|r| r.label == label)
            .map_or(f64::NAN, |r| r.ns_per_query)
    };
    let bigscan_speedup = bigscan_runs[0].ns_per_query
        / bigscan_runs[1..]
            .iter()
            .map(|m| m.ns_per_query)
            .fold(f64::INFINITY, f64::min);
    let lane_speedup = ns_of("batch_l1_1t") / ns_of("batch_l4_1t");

    // ---- delta-epoch section ------------------------------------------
    // Warm the memo on the 16 distinct cluster sets, append one edge
    // inside the last cluster, re-query warm: 15 entries survive as
    // delta-retained hits, one recomputes. Cold = cache-off recompute.
    cache::set_enabled(true);
    let delta_sets: Vec<NodeSet> = bsets[..16.min(bsets.len())].to_vec();
    let _ = cut_both_batch_threaded(&bg, &delta_sets, default_threads);
    let per = n / 16;
    bg.add_edge(NodeId::new(n - per), NodeId::new(n - per + 1), 1.0);
    let retained0 = stats::total_cache_hits_retained();
    let fresh0 = stats::total_cache_hits_fresh();
    let t = Instant::now();
    let warm = cut_both_batch_threaded(&bg, &delta_sets, default_threads);
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let retained_hits = stats::total_cache_hits_retained() - retained0;
    let fresh_hits = stats::total_cache_hits_fresh() - fresh0;
    // Steady state after the post-mutation rebuild: every set now
    // serves straight from the migrated memo.
    let t = Instant::now();
    let _ = cut_both_batch_threaded(&bg, &delta_sets, default_threads);
    let warm_hit_ms = t.elapsed().as_secs_f64() * 1e3;
    cache::set_enabled(false);
    let t = Instant::now();
    let cold = cut_both_batch_threaded(&bg, &delta_sets, default_threads);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    cache::set_enabled(true);
    for (i, (w, c)) in warm.iter().zip(&cold).enumerate() {
        assert_eq!(
            (w.0.to_bits(), w.1.to_bits()),
            (c.0.to_bits(), c.1.to_bits()),
            "delta-retained answer differs from cold recompute: set {i}"
        );
    }
    eprintln!(
        "delta-epoch: {retained_hits} retained, {fresh_hits} fresh after 1-edge mutation; \
         warm {warm_ms:.2} ms (then {warm_hit_ms:.2} ms all-hit) vs cold {cold_ms:.2} ms \
         (answers bit-identical)"
    );

    // ---- JSON ----------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"speedup_batch_vs_naive\": {bigscan_speedup:.3},");
    let _ = writeln!(json, "  \"speedup_lane4_vs_lane1\": {lane_speedup:.3},");
    json.push_str("  \"gadget\": {\n");
    let _ = writeln!(json, "    \"nodes\": {},", gg.num_nodes());
    let _ = writeln!(json, "    \"edges\": {},", gg.num_edges());
    let _ = writeln!(json, "    \"batch_queries\": {gadget_k},");
    let _ = writeln!(json, "    \"speedup_batch_vs_naive\": {gadget_speedup:.3},");
    push_runs_json(&mut json, &gadget_runs);
    json.push_str("  },\n");
    json.push_str("  \"bigscan\": {\n");
    let _ = writeln!(json, "    \"nodes\": {},", bg.num_nodes());
    let _ = writeln!(json, "    \"edges\": {},", bg.num_edges());
    let _ = writeln!(json, "    \"batch_queries\": {bigscan_k},");
    let _ = writeln!(
        json,
        "    \"speedup_batch_vs_naive\": {bigscan_speedup:.3},"
    );
    let _ = writeln!(json, "    \"speedup_lane4_vs_lane1\": {lane_speedup:.3},");
    push_runs_json(&mut json, &bigscan_runs);
    json.push_str("  },\n");
    json.push_str("  \"delta_epoch\": {\n");
    let _ = writeln!(json, "    \"sets\": {},", delta_sets.len());
    let _ = writeln!(json, "    \"retained_hits\": {retained_hits},");
    let _ = writeln!(json, "    \"fresh_hits\": {fresh_hits},");
    let _ = writeln!(json, "    \"warm_ms\": {warm_ms:.3},");
    let _ = writeln!(json, "    \"warm_hit_ms\": {warm_hit_ms:.3},");
    let _ = writeln!(json, "    \"cold_ms\": {cold_ms:.3}");
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_cutkernels.json", &json).expect("write BENCH_cutkernels.json");
    print!("{json}");
    eprintln!("bigscan batch speedup over scalar loop: {bigscan_speedup:.2}x");
    eprintln!("bigscan lane-4 over lane-1 (1 thread): {lane_speedup:.2}x");
}
