//! Standalone cut-kernel benchmark: measures the naive query-at-a-time
//! loop against the batched word-parallel kernels on the decoder-shaped
//! workload (ForEach gadget queries) and writes the numbers to
//! `BENCH_cutkernels.json` — ns/query, queries/sec, and thread count
//! per configuration, plus the batch-vs-naive speedup the ISSUE
//! acceptance gate reads.
//!
//! `--smoke` shrinks the gadget and repetition counts so CI can run the
//! whole binary in seconds; the JSON shape is identical.

use dircut_core::foreach::{ForEachDecoder, ForEachEncoding, ForEachParams};
use dircut_graph::cuteval::cut_out_batch_threaded;
use dircut_graph::{parallel, DiGraph, NodeSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    label: String,
    threads: usize,
    queries: usize,
    ns_per_query: f64,
    queries_per_sec: f64,
}

/// Builds the gadget graph and the first `k` decoder query sets.
fn workload(params: ForEachParams, k: usize) -> (DiGraph, Vec<NodeSet>) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let signs: Vec<i8> = (0..params.total_bits())
        .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
        .collect();
    let enc = ForEachEncoding::encode(params, &signs);
    let dec = ForEachDecoder::new(params);
    let mut sets = Vec::with_capacity(k);
    let mut q = 0usize;
    while sets.len() < k {
        sets.extend(dec.queries_for_bit(q).sets);
        q += 1;
    }
    sets.truncate(k);
    (enc.graph().clone(), sets)
}

/// Times `f` over `reps` repetitions of a `queries`-query workload and
/// returns the per-query cost (best-of-reps, to dodge scheduler noise).
fn time_queries(
    label: &str,
    threads: usize,
    queries: usize,
    reps: usize,
    mut f: impl FnMut(),
) -> Measurement {
    // Warm-up run (CSR build, thread-pool spawn).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let ns_per_query = best * 1e9 / queries as f64;
    Measurement {
        label: label.to_owned(),
        threads,
        queries,
        ns_per_query,
        queries_per_sec: queries as f64 / best,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Full mode: n = 4096 (≥ 2¹²) with k = 128 (≥ 64) per the ISSUE
    // acceptance shape. Smoke mode: same pipeline at toy scale.
    let (params, k, reps) = if smoke {
        (ForEachParams::new(8, 2, 8), 64, 3)
    } else {
        (ForEachParams::new(32, 4, 32), 128, 10)
    };
    let (g, sets) = workload(params, k);
    let default_threads = parallel::default_threads();
    eprintln!(
        "cut-kernel bench: n = {}, m = {}, k = {} queries, reps = {}, default threads = {}",
        g.num_nodes(),
        g.num_edges(),
        k,
        reps,
        default_threads
    );

    let mut runs = Vec::new();
    runs.push(time_queries("naive_loop", 1, k, reps, || {
        let v: Vec<f64> = sets.iter().map(|s| g.cut_out(s)).collect();
        std::hint::black_box(v);
    }));
    for threads in [1, default_threads] {
        let label = format!("batch_{threads}t");
        runs.push(time_queries(&label, threads, k, reps, || {
            std::hint::black_box(cut_out_batch_threaded(&g, &sets, threads));
        }));
    }

    let naive_ns = runs[0].ns_per_query;
    let best_batch_ns = runs[1..]
        .iter()
        .map(|m| m.ns_per_query)
        .fold(f64::INFINITY, f64::min);
    let speedup = naive_ns / best_batch_ns;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"nodes\": {},", g.num_nodes());
    let _ = writeln!(json, "  \"edges\": {},", g.num_edges());
    let _ = writeln!(json, "  \"batch_queries\": {k},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"speedup_batch_vs_naive\": {speedup:.3},");
    json.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"threads\": {}, \"queries\": {}, \"ns_per_query\": {:.1}, \"queries_per_sec\": {:.1}}}{}",
            m.label, m.threads, m.queries, m.ns_per_query, m.queries_per_sec, comma
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_cutkernels.json", &json).expect("write BENCH_cutkernels.json");
    print!("{json}");
    eprintln!("batch speedup over naive loop: {speedup:.2}x");
}
