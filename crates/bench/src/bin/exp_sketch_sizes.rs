//! Experiment E5: measured upper-bound sketch sizes vs the paper's
//! lower-bound curves.
//!
//! For a sweep over `(n, β, ε)` we build the for-all and for-each
//! sketches of dense β-balanced digraphs and print their *measured*
//! serialized size next to the Ω(nβ/ε²) and Ω̃(n√β/ε) reference
//! curves (constant 1). Theorems 1.1/1.2 say no sketch can beat the
//! curves by more than log factors; the measured sizes should track
//! them from above.

use dircut_bench::{print_header, print_row};
use dircut_graph::generators::random_balanced_digraph;
use dircut_sketch::{
    BalancedForAllSketcher, BalancedForEachSketcher, CutSketch, CutSketcher,
    DecomposedForEachSketcher, EdgeListSketch,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== E5: measured sketch sizes vs lower-bound curves ===\n");
    print_header(&[
        "n",
        "beta",
        "eps",
        "exact bits",
        "forall bits",
        "LB nB/e^2",
        "foreach bits",
        "2-level bits",
        "LB n√B/e",
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for n in [32usize, 64, 128] {
        for beta in [1.0f64, 4.0] {
            for eps in [0.5f64, 0.25] {
                let g = random_balanced_digraph(n, 1.0, beta, &mut rng);
                let exact = EdgeListSketch::from_graph(&g);
                let fa = BalancedForAllSketcher::new(eps, beta).sketch(&g, &mut rng);
                let fe = BalancedForEachSketcher::new(eps, beta).sketch(&g, &mut rng);
                let two_level = DecomposedForEachSketcher::new(eps, beta).sketch(&g, &mut rng);
                let lb_forall = (n as f64 * beta / (eps * eps)) as usize;
                let lb_foreach = (n as f64 * beta.sqrt() / eps) as usize;
                print_row(&[
                    n.to_string(),
                    format!("{beta}"),
                    format!("{eps}"),
                    exact.size_bits().to_string(),
                    fa.size_bits().to_string(),
                    lb_forall.to_string(),
                    fe.size_bits().to_string(),
                    two_level.size_bits().to_string(),
                    lb_foreach.to_string(),
                ]);
            }
        }
    }
    println!(
        "\nReading: measured sizes sit above their lower-bound columns and the\n\
         for-each column grows ∝ 1/ε while the for-all column grows ∝ 1/ε²\n\
         (until the p = 1 cap makes the sketch store the whole graph)."
    );
}
