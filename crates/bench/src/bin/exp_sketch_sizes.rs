//! Experiment E5: measured upper-bound sketch sizes vs the paper's
//! lower-bound curves.
//!
//! For a sweep over `(n, β, ε)` we build the for-all and for-each
//! sketches of dense β-balanced digraphs and print their *measured*
//! serialized size next to the Ω(nβ/ε²) and Ω̃(n√β/ε) reference
//! curves (constant 1). Theorems 1.1/1.2 say no sketch can beat the
//! curves by more than log factors; the measured sizes should track
//! them from above.
//!
//! The sweep runs on the [`TrialEngine`] (one trial per cell, sketches
//! drawn through the [`SparsifierSpec`] registry entries) under
//! `Seeding::Shared` on the legacy seed, so the table is byte-identical
//! to the retired hand-rolled loop at any `DIRCUT_THREADS`.
//!
//! [`SparsifierSpec`]: dircut_sketch::SparsifierSpec

use dircut_bench::reductions::{SketchSizeCell, SketchSizeCellReduction};
use dircut_bench::{print_header, print_row, EngineReport, Seeding, TrialEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== E5: measured sketch sizes vs lower-bound curves ===\n");
    print_header(&[
        "n",
        "beta",
        "eps",
        "exact bits",
        "forall bits",
        "LB nB/e^2",
        "foreach bits",
        "2-level bits",
        "LB n√B/e",
    ]);
    let mut cells = Vec::new();
    for n in [32usize, 64, 128] {
        for beta in [1.0f64, 4.0] {
            for eps in [0.5f64, 0.25] {
                cells.push(SketchSizeCell { n, beta, eps });
            }
        }
    }
    let rdx = SketchSizeCellReduction {
        cells: cells.clone(),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let report =
        TrialEngine::with_default_threads().run(&rdx, cells.len(), Seeding::Shared(&mut rng));
    for (cell, rec) in cells.iter().zip(&report.records) {
        let bits = |name| EngineReport::aux_of(rec, name).expect("cell aux") as usize;
        let lb_forall = (cell.n as f64 * cell.beta / (cell.eps * cell.eps)) as usize;
        let lb_foreach = (cell.n as f64 * cell.beta.sqrt() / cell.eps) as usize;
        print_row(&[
            cell.n.to_string(),
            format!("{}", cell.beta),
            format!("{}", cell.eps),
            bits("exact_bits").to_string(),
            bits("forall_bits").to_string(),
            lb_forall.to_string(),
            bits("foreach_bits").to_string(),
            bits("two_level_bits").to_string(),
            lb_foreach.to_string(),
        ]);
    }
    println!(
        "\nReading: measured sizes sit above their lower-bound columns and the\n\
         for-each column grows ∝ 1/ε while the for-all column grows ∝ 1/ε²\n\
         (until the p = 1 cap makes the sketch store the whole graph)."
    );
}
