//! Experiment E6 (Section 1 application): distributed min-cut
//! communication vs ε, measured on the wire.
//!
//! Servers ship a coarse `(1±0.2)` for-all sketch plus a fine `(1±ε)`
//! for-each sketch; the coordinator enumerates candidate cuts from the
//! coarse union and re-queries them through the fine sketches. Every
//! message here actually crosses the socket-backed runtime as sealed
//! frame bytes over a real connection (`--topology loopback|tcp|unix`),
//! so the bit columns are *counted serialized bits* — payload plus
//! framing — and the byte columns are *measured socket bytes* read by
//! the coordinator. The coarse bits are ε-independent; the fine bits
//! grow like 1/ε — the linear dependence the paper proves optimal (a
//! for-all-only protocol pays 1/ε²); framing is a constant
//! `servers × 112` bits on clean links. The runtime is bit-identical
//! across topologies, so one golden covers every wire.
//!
//! `--scale` runs a separate section (not covered by the golden, since
//! measured byte totals depend on per-server payload splits) that fans
//! the same graph across 4 → 128 servers and prints counted wire bits
//! next to measured socket bytes; the rows also land in
//! `BENCH_dist.json` so CI archives the counted-vs-measured pairs.
//!
//! With `--drop P` (and optionally `--retries R`) the same protocol
//! runs over lossy links: dropped frames burn real read deadlines and
//! retransmissions, and servers lost past the retry budget degrade the
//! run — the coordinator solves from the `k` arrived slices rescaled
//! by `s/k` and reports the widened `effective ε = ε + (s−k)/s`. Lossy
//! output is seed-deterministic but not covered by the checked-in
//! golden (only the clean run is).
//!
//! Each ε is one [`DistReduction`] trial on the [`TrialEngine`]: the
//! fixed protocol seed (17, the legacy single-shot call) makes the run
//! a pure replay, the table prints straight from the trial record's
//! aux values, and the per-trial records land in the unified
//! `BENCH_reductions.json` alongside every other experiment.

use dircut_bench::{print_header, print_row, record_section, EngineReport, Seeding, TrialEngine};
use dircut_dist::reduction::{DistPath, DistReduction};
use dircut_dist::runtime::RuntimeConfig;
use dircut_dist::{run_min_cut, symmetric_graph, FaultPlan, ProtocolConfig, Topology};
use dircut_graph::mincut::stoer_wagner;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> Result<Option<f64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{name} requires a value")),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad {name} value `{v}`")),
        },
    }
}

fn parse_args(args: &[String]) -> Result<(f64, u32, Topology, bool), String> {
    let drop = flag(args, "--drop")?.unwrap_or(0.0);
    let retries = flag(args, "--retries")?.unwrap_or(3.0) as u32;
    let topology = match args.iter().position(|a| a == "--topology") {
        None => Topology::Loopback,
        Some(i) => match args.get(i + 1) {
            None => return Err("--topology requires a value".into()),
            Some(v) => Topology::parse(v)?,
        },
    };
    let scale = args.iter().any(|a| a == "--scale");
    Ok((drop, retries, topology, scale))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (drop, retries, topology, scale) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: exp_distributed [--drop P] [--retries R] \
                 [--topology loopback|tcp|unix] [--scale]"
            );
            return ExitCode::from(2);
        }
    };

    println!("=== E6: distributed min-cut over sketches (Section 1) ===\n");
    // Dense and heavily connected so per-server subgraphs keep a large
    // min-cut: that is the regime where the fine sketch samples below
    // rate 1 and its 1/ε size scaling is visible.
    let n = 72;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, rng.gen_range(4.0..8.0)));
        }
    }
    let g = symmetric_graph(n, &edges);
    let truth = stoer_wagner(&g).value / 2.0;
    println!(
        "graph: n = {n}, arcs = {}, true min cut = {truth:.3}, servers = 4\n",
        g.num_edges()
    );

    if scale {
        // The scale section bypasses the TrialEngine (it calls the
        // runtime directly), so there are no reduction records to
        // flush — returning here keeps BENCH_reductions.json untouched
        // for the golden-checked runs.
        scale_sweep(&g, topology);
        dircut_bench::maybe_print_stage_report();
        return ExitCode::SUCCESS;
    }
    if drop > 0.0 {
        fault_sweep(&g, truth, drop, retries, topology);
    } else {
        clean_sweep(&g, truth, topology);
    }

    let code = dircut_bench::finish_reductions_json("exp_distributed");
    // Stage counters and link-transcript metrics (bits sent/acked,
    // retries, latency buckets) go to stderr behind DIRCUT_STATS so
    // the stdout table stays byte-stable — the committed
    // results/exp_distributed.txt has no wall-clock lines.
    dircut_bench::maybe_print_stage_report();
    code
}

/// Runs one fixed-seed trial of the socket-backed path at `eps` and
/// returns its record.
fn run_trial(
    g: &dircut_graph::DiGraph,
    truth: f64,
    eps: f64,
    cfg: RuntimeConfig,
    label: &str,
) -> dircut_bench::TrialRecord {
    let rdx = DistReduction {
        graph: g,
        servers: 4,
        cfg: cfg.protocol,
        path: DistPath::FaultInjected(cfg),
        seed: Some(17),
        truth,
    };
    let rep = TrialEngine::with_default_threads().run(&rdx, 1, Seeding::Substream(0));
    record_section(&format!("E6 {label} eps={eps}"), &rep);
    rep.records.into_iter().next().expect("one trial")
}

/// Aux value of `record` as the u64 it was cast from.
fn aux_u64(record: &dircut_bench::TrialRecord, name: &str) -> u64 {
    EngineReport::aux_of(record, name).unwrap_or_else(|| panic!("missing aux `{name}`")) as u64
}

/// The golden-checked table: clean links, so the answers match the
/// in-process coordinator bit for bit and framing is exactly
/// `servers × (frame header + server id)` — pure, constant overhead.
/// The runtime is answer- and bill-identical across topologies, so the
/// same golden covers loopback, TCP, and Unix-socket runs; measured
/// byte columns live in the `--scale` and `--drop` sections, which the
/// golden does not pin.
fn clean_sweep(g: &dircut_graph::DiGraph, truth: f64, topology: Topology) {
    print_header(&[
        "eps",
        "estimate",
        "rel err",
        "coarse bits",
        "fine bits",
        "framing",
        "candidates",
    ]);
    for eps in [0.4, 0.2, 0.1, 0.05, 0.025] {
        let mut protocol = ProtocolConfig::new(eps);
        protocol.enumeration_trials = 150;
        let cfg = RuntimeConfig::builder(protocol).topology(topology).build();
        let r = run_trial(g, truth, eps, cfg, "clean");
        let estimate = EngineReport::aux_of(&r, "estimate").expect("estimate aux");
        assert!(estimate.is_finite(), "clean run");
        print_row(&[
            format!("{eps}"),
            format!("{estimate:.3}"),
            format!(
                "{:.3}",
                EngineReport::aux_of(&r, "rel_err").expect("rel_err")
            ),
            aux_u64(&r, "coarse_bits").to_string(),
            aux_u64(&r, "fine_bits").to_string(),
            aux_u64(&r, "framing_bits").to_string(),
            aux_u64(&r, "candidates").to_string(),
        ]);
    }
    println!(
        "\nReading: coarse bits constant in ε; fine bits grow ≈ linearly in 1/ε\n\
         until the sampling cap stores every edge. All bits are counted on the\n\
         wire: framing = 4 sealed frames × 112 bits, and nothing is resent."
    );
}

/// The scale section: the same graph fanned across 4 → 128 servers at
/// ε = 0.2, counted wire bits next to measured socket bytes. Rows land
/// in `BENCH_dist.json` so CI archives the counted-vs-measured pairs.
fn scale_sweep(g: &dircut_graph::DiGraph, topology: Topology) {
    println!("--- scale: counted bits vs measured socket bytes (eps = 0.2) ---\n");
    print_header(&[
        "servers",
        "wire bits",
        "framing",
        "wire bytes",
        "ctl bytes",
        "estimate",
    ]);
    let mut protocol = ProtocolConfig::new(0.2);
    protocol.enumeration_trials = 150;
    let mut rows = String::new();
    for (i, servers) in [4usize, 32, 128].into_iter().enumerate() {
        let cfg = RuntimeConfig::builder(protocol)
            .topology(topology)
            .seed(17)
            .build();
        let out = run_min_cut(g, servers, &cfg).expect("clean scale run");
        assert!(!out.degraded, "clean scale run degraded");
        let wire_bytes = out.wire_bytes();
        let ctl_bytes: u64 = out.transcripts.iter().map(|t| t.ctl_bytes).sum();
        print_row(&[
            servers.to_string(),
            out.answer.total_wire_bits.to_string(),
            out.answer.framing_bits.to_string(),
            wire_bytes.to_string(),
            ctl_bytes.to_string(),
            format!("{:.3}", out.answer.estimate),
        ]);
        let comma = if i < 2 { "," } else { "" };
        let _ = writeln!(
            rows,
            "    {{\"servers\": {servers}, \"wire_bits\": {}, \"framing_bits\": {}, \
             \"wire_bytes\": {wire_bytes}, \"ctl_bytes\": {ctl_bytes}, \
             \"arrived\": {}, \"estimate\": {:.3}}}{comma}",
            out.answer.total_wire_bits, out.answer.framing_bits, out.arrived, out.answer.estimate,
        );
    }
    println!(
        "\nReading: every server pays the constant 112-bit frame overhead plus\n\
         its sketch payload, so counted bits grow with the fan-out while the\n\
         measured bytes track them exactly: bytes = Σ per-server frame units\n\
         (8-byte prefix + ⌈bits/8⌉) + one 19-byte done marker per delivery."
    );
    let mut json = String::from("{\n  \"schema\": \"dircut-dist-bench-v1\",\n");
    let _ = writeln!(json, "  \"eps\": 0.2,");
    let _ = writeln!(json, "  \"seed\": 17,");
    json.push_str("  \"rows\": [\n");
    json.push_str(&rows);
    json.push_str("  ]\n}\n");
    // Fail soft like the reductions JSON: the numbers above are
    // already on stdout, so a bad path only loses the file copy.
    if let Err(e) = std::fs::write("BENCH_dist.json", &json) {
        eprintln!("warning: writing BENCH_dist.json: {e}");
    }
}

/// The lossy sweep: one run per ε at the requested drop rate. Exit is
/// by completion, not accuracy — CI smokes `--drop 0.2` over TCP to
/// check that real-deadline retries and degradation keep the protocol
/// live under heavy loss.
fn fault_sweep(g: &dircut_graph::DiGraph, truth: f64, drop: f64, retries: u32, topology: Topology) {
    println!("fault model: drop = {drop}, retries = {retries}\n");
    print_header(&[
        "eps",
        "estimate",
        "rel err",
        "arrived",
        "retries",
        "total bits",
        "wire bytes",
        "eff eps",
    ]);
    for eps in [0.4, 0.2, 0.1] {
        let mut protocol = ProtocolConfig::new(eps);
        protocol.enumeration_trials = 150;
        let cfg = RuntimeConfig::builder(protocol)
            .faults(FaultPlan::new().drop(drop).build())
            .retries(retries)
            .topology(topology)
            .build();
        let r = run_trial(g, truth, eps, cfg, "lossy");
        let (arrived, servers) = (aux_u64(&r, "arrived"), aux_u64(&r, "servers"));
        assert!(arrived > 0, "run lost every server");
        print_row(&[
            format!("{eps}"),
            format!(
                "{:.3}",
                EngineReport::aux_of(&r, "estimate").expect("estimate")
            ),
            format!(
                "{:.3}",
                EngineReport::aux_of(&r, "rel_err").expect("rel_err")
            ),
            format!("{arrived}/{servers}"),
            aux_u64(&r, "retries").to_string(),
            r.wire_bits.to_string(),
            aux_u64(&r, "wire_bytes").to_string(),
            format!(
                "{:.3}",
                EngineReport::aux_of(&r, "effective_epsilon").expect("effective_epsilon")
            ),
        ]);
        if aux_u64(&r, "degraded") == 1 {
            println!(
                "  -> degraded: solved from {arrived}/{servers} slices rescaled by {:.3}",
                servers as f64 / arrived as f64
            );
        }
    }
    println!(
        "\nReading: every retransmission bills the full frame again, so total\n\
         bits grow with the drop rate while measured bytes only count what\n\
         actually crossed the socket; lost stragglers widen the guarantee\n\
         instead of killing the run."
    );
}
