//! Experiment E6 (Section 1 application): distributed min-cut
//! communication vs ε.
//!
//! Servers ship a coarse `(1±0.2)` for-all sketch plus a fine `(1±ε)`
//! for-each sketch; the coordinator enumerates candidate cuts from the
//! coarse union and re-queries them through the fine sketches. The
//! coarse bits are ε-independent; the fine bits should grow like 1/ε
//! — the linear dependence the paper proves optimal (and which a
//! for-all-only protocol, paying 1/ε², cannot match).

use dircut_bench::{print_header, print_row};
use dircut_dist::{distributed_min_cut, symmetric_graph, ProtocolConfig};
use dircut_graph::mincut::stoer_wagner;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== E6: distributed min-cut over sketches (Section 1) ===\n");
    // Dense and heavily connected so per-server subgraphs keep a large
    // min-cut: that is the regime where the fine sketch samples below
    // rate 1 and its 1/ε size scaling is visible.
    let n = 72;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, rng.gen_range(4.0..8.0)));
        }
    }
    let g = symmetric_graph(n, &edges);
    let truth = stoer_wagner(&g).value / 2.0;
    println!(
        "graph: n = {n}, arcs = {}, true min cut = {truth:.3}, servers = 4\n",
        g.num_edges()
    );

    print_header(&[
        "eps",
        "estimate",
        "rel err",
        "coarse bits",
        "fine bits",
        "candidates",
    ]);
    for eps in [0.4, 0.2, 0.1, 0.05, 0.025] {
        let mut cfg = ProtocolConfig::new(eps);
        cfg.enumeration_trials = 150;
        let res = distributed_min_cut(&g, 4, cfg, 17);
        print_row(&[
            format!("{eps}"),
            format!("{:.3}", res.estimate),
            format!("{:.3}", (res.estimate - truth).abs() / truth),
            res.coarse_bits.to_string(),
            res.fine_bits.to_string(),
            res.candidates.to_string(),
        ]);
    }
    println!(
        "\nReading: coarse bits constant in ε; fine bits grow ≈ linearly in 1/ε\n\
         until the sampling cap stores every edge."
    );

    // Stage counters (solves, cut queries, wall-clock) go to stderr
    // behind DIRCUT_STATS so the stdout table stays byte-stable — the
    // committed results/exp_distributed.txt has no wall-clock lines.
    dircut_bench::maybe_print_stage_report();
}
