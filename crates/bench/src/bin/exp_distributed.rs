//! Experiment E6 (Section 1 application): distributed min-cut
//! communication vs ε, measured on the wire.
//!
//! Servers ship a coarse `(1±0.2)` for-all sketch plus a fine `(1±ε)`
//! for-each sketch; the coordinator enumerates candidate cuts from the
//! coarse union and re-queries them through the fine sketches. Every
//! message here actually crosses the fault-injected runtime as sealed
//! frame bytes, so the bit columns are *counted serialized bits* —
//! payload plus framing — not analytic size formulas. The coarse bits
//! are ε-independent; the fine bits grow like 1/ε — the linear
//! dependence the paper proves optimal (a for-all-only protocol pays
//! 1/ε²); framing is a constant `servers × 112` bits on clean links.
//!
//! With `--drop P` (and optionally `--retries R`) the same protocol
//! runs over lossy links: dropped frames burn retransmissions, and
//! servers lost past the retry budget degrade the run — the
//! coordinator solves from the `k` arrived slices rescaled by `s/k`
//! and reports the widened `effective ε = ε + (s−k)/s`. Lossy output
//! is seed-deterministic but not covered by the checked-in golden
//! (only the clean run is).

use dircut_bench::{print_header, print_row};
use dircut_dist::runtime::RuntimeConfig;
use dircut_dist::{fault_injected_min_cut, symmetric_graph, FaultConfig, ProtocolConfig};
use dircut_graph::mincut::stoer_wagner;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn flag(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name} value")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let drop = flag(&args, "--drop").unwrap_or(0.0);
    let retries = flag(&args, "--retries").unwrap_or(3.0) as u32;

    println!("=== E6: distributed min-cut over sketches (Section 1) ===\n");
    // Dense and heavily connected so per-server subgraphs keep a large
    // min-cut: that is the regime where the fine sketch samples below
    // rate 1 and its 1/ε size scaling is visible.
    let n = 72;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, rng.gen_range(4.0..8.0)));
        }
    }
    let g = symmetric_graph(n, &edges);
    let truth = stoer_wagner(&g).value / 2.0;
    println!(
        "graph: n = {n}, arcs = {}, true min cut = {truth:.3}, servers = 4\n",
        g.num_edges()
    );

    if drop > 0.0 {
        fault_sweep(&g, truth, drop, retries);
    } else {
        clean_sweep(&g, truth);
    }

    // Stage counters and link-transcript metrics (bits sent/acked,
    // retries, latency buckets) go to stderr behind DIRCUT_STATS so
    // the stdout table stays byte-stable — the committed
    // results/exp_distributed.txt has no wall-clock lines.
    dircut_bench::maybe_print_stage_report();
}

/// The golden-checked table: clean links, so the answers match the
/// in-process coordinator bit for bit and framing is exactly
/// `servers × (frame header + server id)` — pure, constant overhead.
fn clean_sweep(g: &dircut_graph::DiGraph, truth: f64) {
    print_header(&[
        "eps",
        "estimate",
        "rel err",
        "coarse bits",
        "fine bits",
        "framing",
        "candidates",
    ]);
    for eps in [0.4, 0.2, 0.1, 0.05, 0.025] {
        let mut cfg = RuntimeConfig::new(ProtocolConfig::new(eps));
        cfg.protocol.enumeration_trials = 150;
        let out = fault_injected_min_cut(g, 4, &cfg, 17).expect("clean run");
        let a = &out.answer;
        print_row(&[
            format!("{eps}"),
            format!("{:.3}", a.estimate),
            format!("{:.3}", (a.estimate - truth).abs() / truth),
            a.coarse_bits.to_string(),
            a.fine_bits.to_string(),
            a.framing_bits.to_string(),
            a.candidates.to_string(),
        ]);
    }
    println!(
        "\nReading: coarse bits constant in ε; fine bits grow ≈ linearly in 1/ε\n\
         until the sampling cap stores every edge. All bits are counted on the\n\
         wire: framing = 4 sealed frames × 112 bits, and nothing is resent."
    );
}

/// The lossy sweep: one run per ε at the requested drop rate. Exit is
/// by completion, not accuracy — CI smokes `--drop 0.2` to check that
/// retries and degradation keep the protocol live under heavy loss.
fn fault_sweep(g: &dircut_graph::DiGraph, truth: f64, drop: f64, retries: u32) {
    println!("fault model: drop = {drop}, retries = {retries}\n");
    print_header(&[
        "eps",
        "estimate",
        "rel err",
        "arrived",
        "retries",
        "total bits",
        "eff eps",
    ]);
    for eps in [0.4, 0.2, 0.1] {
        let faults = FaultConfig {
            drop,
            ..FaultConfig::clean()
        };
        let mut cfg = RuntimeConfig::with_faults(ProtocolConfig::new(eps), faults);
        cfg.protocol.enumeration_trials = 150;
        cfg.max_retries = retries;
        let out = fault_injected_min_cut(g, 4, &cfg, 17).expect("run lost every server");
        let a = &out.answer;
        let used: u32 = out.transcripts.iter().map(|t| t.retries).sum();
        print_row(&[
            format!("{eps}"),
            format!("{:.3}", a.estimate),
            format!("{:.3}", (a.estimate - truth).abs() / truth),
            format!("{}/{}", out.arrived, out.servers),
            used.to_string(),
            a.total_wire_bits.to_string(),
            format!("{:.3}", out.effective_epsilon),
        ]);
        if out.degraded {
            println!(
                "  -> degraded: solved from {}/{} slices rescaled by {:.3}",
                out.arrived,
                out.servers,
                out.servers as f64 / out.arrived as f64
            );
        }
    }
    println!(
        "\nReading: every retransmission bills the full frame again, so total\n\
         bits grow with the drop rate; lost stragglers widen the guarantee\n\
         instead of killing the run."
    );
}
