//! Experiment E1 (Theorem 1.1): the for-each lower bound made
//! observable.
//!
//! For each `(β, ε, ℓ)` we run the Section 3 Index game and report
//! Bob's decoding success rate against: an exact oracle, `(1 ± err)`
//! worst-case noisy oracles at and above the `c₂ε/ln(1/ε)` threshold,
//! and bit-budgeted sketches around the Ω̃(n√β/ε) line. The theorem
//! predicts: success at/below the threshold error, collapse above it,
//! and collapse once the budget sinks well below the lower bound.
//!
//! Every sweep runs on the [`TrialEngine`] under `Seeding::Shared`
//! with the legacy per-sweep seeds, so the tables are byte-identical
//! to the retired hand-rolled loops at any `DIRCUT_THREADS`.

use dircut_bench::reductions::{FamilyCutReduction, FamilyGame};
use dircut_bench::{print_header, print_row, record_section, Seeding, TrialEngine};
use dircut_core::naive::NaiveParams;
use dircut_core::reduction::{ForEachIndexReduction, NaiveIndexReduction, OracleSpec};
use dircut_core::ForEachParams;
use dircut_graph::FamilySpec;
use dircut_sketch::adversarial::NoiseModel;
use dircut_sketch::{registry, CutSketcher, SketchKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> std::process::ExitCode {
    let trials = 120;
    let engine = TrialEngine::with_default_threads();
    println!("=== E1: for-each cut sketch lower bound (Theorem 1.1) ===\n");
    println!("--- decoding success vs oracle error ---");
    print_header(&["n", "beta", "1/eps", "ell", "oracle", "success"]);

    for (inv_eps, sqrt_beta, ell) in [(4, 1, 2), (8, 1, 2), (8, 2, 2), (4, 2, 3), (16, 1, 2)] {
        let params = ForEachParams::new(inv_eps, sqrt_beta, ell);
        let eps = params.epsilon();
        let threshold = 0.25 * eps / (1.0 / eps).ln();

        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rdx = ForEachIndexReduction {
            params,
            oracle: OracleSpec::Exact,
        };
        let exact = engine.run(&rdx, trials, Seeding::Shared(&mut rng));
        record_section(&format!("E1 exact 1/eps={inv_eps} ell={ell}"), &exact);
        print_row(&[
            params.num_nodes().to_string(),
            format!("{}", params.beta()),
            inv_eps.to_string(),
            ell.to_string(),
            "exact".into(),
            format!("{:.3}", exact.success_rate()),
        ]);

        for (label, err) in [
            ("noise@thresh", threshold),
            ("noise@4x", 4.0 * threshold),
            ("noise@16x", 16.0 * threshold),
            ("noise@64x", 64.0 * threshold),
        ] {
            let err = err.min(0.9);
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let rdx = ForEachIndexReduction {
                params,
                oracle: OracleSpec::Noisy {
                    err,
                    model: NoiseModel::SignedRelative,
                },
            };
            let rep = engine.run(&rdx, trials, Seeding::Shared(&mut rng));
            record_section(&format!("E1 {label} 1/eps={inv_eps} ell={ell}"), &rep);
            print_row(&[
                params.num_nodes().to_string(),
                format!("{}", params.beta()),
                inv_eps.to_string(),
                ell.to_string(),
                format!("{label}({err:.4})"),
                format!("{:.3}", rep.success_rate()),
            ]);
        }
        println!();
    }

    println!("--- Section 1.2 head-to-head: Hadamard vs naive one-bit-per-edge ---");
    {
        print_header(&["1/eps", "sqrt_beta", "noise", "hadamard", "naive"]);
        for (inv_eps, sqrt_beta) in [(8usize, 1usize), (8, 2), (16, 2)] {
            let eps = 1.0 / inv_eps as f64;
            let noise = 0.25 * eps / (1.0 / eps).ln();
            let spec = OracleSpec::Noisy {
                err: noise,
                model: NoiseModel::SignedRelative,
            };
            let hadamard = ForEachIndexReduction {
                params: ForEachParams::new(inv_eps, sqrt_beta, 2),
                oracle: spec,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let good = engine.run(&hadamard, trials, Seeding::Shared(&mut rng));
            let naive = NaiveIndexReduction {
                params: NaiveParams::new(sqrt_beta * inv_eps, (sqrt_beta * sqrt_beta) as f64),
                oracle: spec,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            let bad = engine.run(&naive, trials, Seeding::Shared(&mut rng));
            record_section(
                &format!("E1 hadamard 1/eps={inv_eps} sb={sqrt_beta}"),
                &good,
            );
            record_section(&format!("E1 naive 1/eps={inv_eps} sb={sqrt_beta}"), &bad);
            print_row(&[
                inv_eps.to_string(),
                sqrt_beta.to_string(),
                format!("{noise:.4}"),
                format!("{:.3}", good.success_rate()),
                format!("{:.3}", bad.success_rate()),
            ]);
        }
        println!();
    }

    println!("--- decoding success vs sketch bit budget ---");
    let params = ForEachParams::new(8, 2, 2);
    println!(
        "construction: n = {}, β = {}, ε = {}, Ω̃(n√β/ε) reference = {} bits",
        params.num_nodes(),
        params.beta(),
        params.epsilon(),
        params.lower_bound_bits()
    );
    print_header(&["budget bits", "x(LB)", "success"]);
    let lb = params.lower_bound_bits();
    for factor in [256usize, 64, 16, 4, 1] {
        let budget = lb * factor;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let rdx = ForEachIndexReduction {
            params,
            oracle: OracleSpec::Budgeted { bits: budget },
        };
        let rep = engine.run(&rdx, trials, Seeding::Shared(&mut rng));
        record_section(&format!("E1 budget {factor}x"), &rep);
        print_row(&[
            budget.to_string(),
            format!("{factor}x"),
            format!("{:.3}", rep.success_rate()),
        ]);
    }

    println!("\n--- adversarial families: known-min-cut for-each estimation ---");
    println!("every for-each registry sketcher vs the closed-form min cut of");
    println!("the bit-gadget / scale-free / beta-extreme instances (eps = 0.25)");
    print_header(&["family", "n", "beta", "sparsifier", "success", "max err"]);
    let family_eps = 0.25;
    let family_trials = 24;
    for family in FamilySpec::adversarial_zoo() {
        let beta = family
            .beta_bound()
            .expect("adversarial zoo families carry a certificate");
        for spec in registry(family_eps, beta) {
            if spec.kind() != SketchKind::ForEach {
                continue;
            }
            // The for-each observable is one designated cut: the
            // closed-form min-cut side where the family has one, a
            // single prefix cut otherwise (scale-free has no closed
            // form).
            let game = if family.known_min_cut_side().is_some() {
                FamilyGame::KnownMinCut
            } else {
                FamilyGame::PrefixDeck(1)
            };
            let rdx = FamilyCutReduction {
                family,
                spec,
                eps: family_eps,
                game,
            };
            let rep = engine.run(&rdx, family_trials, Seeding::Substream(0xfa41));
            record_section(
                &format!("E1 family {} {}", family.name(), spec.name()),
                &rep,
            );
            print_row(&[
                family.name().into(),
                family.num_nodes().to_string(),
                format!("{beta}"),
                spec.name().into(),
                format!("{:.3}", rep.success_rate()),
                format!("{:.4}", rep.aux_max("err")),
            ]);
        }
    }

    let code = dircut_bench::finish_reductions_json("exp_foreach");
    // Per-stage solve / cut-query counters, stderr-only behind DIRCUT_STATS.
    dircut_bench::maybe_print_stage_report();
    code
}
