//! Ablations for the design choices DESIGN.md calls out:
//!
//! A1 — distributed fine-sketch family: two-tier for-each (the paper's
//!      recipe) vs for-all-only vs mergeable linear sketches, at equal ε.
//! A2 — median-of-k boosting: per-cut success probability vs replica
//!      count (footnotes 2–3 of the paper).
//! A3 — VERIFY-GUESS acceptance threshold: where the accept boundary
//!      t*/k lands as `accept_fraction` varies (robustness of the
//!      Lemma 5.8 contract to its constants).
//! A4 — uniform vs NI-strength sampling: sketch size and worst-case cut
//!      error on graphs with skewed connectivity.
//!
//! A1–A3 run on the [`TrialEngine`] under the legacy seeding (shared
//! stream for A2, per-rep reseeds for A3, fixed protocol seed for A1),
//! so the tables are byte-identical to the retired hand-rolled loops.

use dircut_bench::reductions::{BoostingReduction, VerifyGuessReduction};
use dircut_bench::{print_header, print_row, record_section, Seeding, TrialEngine};
use dircut_dist::{symmetric_graph, DistPath, DistReduction, ProtocolConfig};
use dircut_graph::generators::{connected_gnp, random_balanced_digraph};
use dircut_graph::mincut::{min_cut_unweighted, stoer_wagner};
use dircut_graph::{DiGraph, NodeId, NodeSet};
use dircut_localquery::{query_degrees, AdjOracle, VerifyGuessConfig};
use dircut_sketch::{
    BalancedForEachSketcher, BoostedSketcher, CutOracle, CutSketch, CutSketcher, StrengthSketcher,
    UniformSketcher,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn ablation_distributed() {
    println!("--- A1: distributed fine-sketch family (n = 72 dense, 4 servers) ---");
    let n = 72;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, rng.gen_range(4.0..8.0)));
        }
    }
    let g = symmetric_graph(n, &edges);
    let truth = stoer_wagner(&g).value / 2.0;
    let engine = TrialEngine::with_default_threads();
    print_header(&["eps", "variant", "estimate", "rel err", "total bits"]);
    for eps in [0.2, 0.1] {
        let mut cfg = ProtocolConfig::new(eps);
        cfg.enumeration_trials = 80;
        for (name, path) in [
            ("two-tier for-each", DistPath::TwoTier),
            ("for-all only", DistPath::ForAllOnly),
            ("linear fine", DistPath::LinearFine),
        ] {
            let rdx = DistReduction {
                graph: &g,
                servers: 4,
                cfg,
                path,
                seed: Some(17),
                truth,
            };
            let rep = engine.run(&rdx, 1, Seeding::Offset(0));
            record_section(&format!("A1 {name} eps={eps}"), &rep);
            print_row(&[
                format!("{eps}"),
                name.into(),
                format!("{:.2}", rep.aux_sum("estimate")),
                format!("{:.3}", rep.aux_sum("rel_err")),
                rep.total_wire_bits().to_string(),
            ]);
        }
    }
    println!();
}

fn ablation_boosting() {
    println!("--- A2: median-of-k boosting (per-cut success vs replicas) ---");
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let g = random_balanced_digraph(16, 0.8, 2.0, &mut rng);
    let s = NodeSet::from_indices(16, 0..8);
    let truth = g.cut_out(&s);
    let eps = 0.25;
    // Deliberately under-sampled base sketch (oversample 0.2) so the
    // single-replica success sits near the Definition 2.3 floor and the
    // boosting effect is visible.
    let base = BalancedForEachSketcher {
        epsilon: eps,
        beta: 2.0,
        oversample: 0.2,
    };
    let engine = TrialEngine::with_default_threads();
    print_header(&["replicas", "success", "size bits"]);
    for k in [1usize, 3, 5, 9] {
        let rdx = BoostingReduction {
            graph: &g,
            sketcher: BoostedSketcher::new(base, k),
            set: &s,
            truth,
            eps,
        };
        let trials = 120;
        let rep = engine.run(&rdx, trials, Seeding::Shared(&mut rng));
        record_section(&format!("A2 replicas={k}"), &rep);
        let bits = rep.records.last().map_or(0, |r| r.wire_bits);
        print_row(&[
            k.to_string(),
            format!("{:.3}", rep.successes() as f64 / trials as f64),
            bits.to_string(),
        ]);
    }
    println!();
}

fn ablation_accept_fraction() {
    println!("--- A3: VERIFY-GUESS accept boundary vs accept_fraction ---");
    let mut gen = ChaCha8Rng::seed_from_u64(1);
    let g = connected_gnp(60, 0.5, &mut gen);
    let k = min_cut_unweighted(&g) as f64;
    let oracle = AdjOracle::new(&g);
    let degrees = query_degrees(&oracle);
    let engine = TrialEngine::with_default_threads();
    print_header(&["accept_frac", "t*/k (accept boundary)"]);
    for frac in [0.25, 0.5, 0.75] {
        let cfg = VerifyGuessConfig {
            oversample: 6.0,
            accept_fraction: frac,
        };
        // Binary-search the boundary guess where acceptance flips.
        let mut lo = k / 8.0;
        let mut hi = k * 16.0;
        let mut last = None;
        for _ in 0..12 {
            let mid = (lo * hi).sqrt();
            let rdx = VerifyGuessReduction {
                oracle: &oracle,
                degrees: &degrees,
                guess: mid,
                eps: 0.3,
                cfg,
            };
            let rep = engine.run(&rdx, 5, Seeding::Offset(100));
            if rep.successes() >= 3 {
                lo = mid;
            } else {
                hi = mid;
            }
            last = Some(rep);
        }
        if let Some(rep) = last {
            record_section(&format!("A3 accept_frac={frac}"), &rep);
        }
        print_row(&[format!("{frac}"), format!("{:.2}", (lo * hi).sqrt() / k)]);
    }
    println!("(Lemma 5.8 tolerates any boundary in [1, κ]; the search descends past it.)\n");
}

fn ablation_sampling_family() {
    println!("--- A4: uniform vs NI-strength sampling on skewed connectivity ---");
    // Two dense cliques joined by a modest bridge bundle: uniform
    // sampling must keep nearly everything (the bridges force a high
    // rate); strength-based sampling thins the cliques aggressively.
    let half = 50;
    let n = 2 * half;
    let mut g = DiGraph::new(n);
    for base in [0usize, half] {
        for i in 0..half {
            for j in 0..half {
                if i != j {
                    g.add_edge(NodeId::new(base + i), NodeId::new(base + j), 1.0);
                }
            }
        }
    }
    for b in 0..6 {
        g.add_edge(NodeId::new(b), NodeId::new(half + b), 1.0);
        g.add_edge(NodeId::new(half + b), NodeId::new(b), 1.0);
    }
    print_header(&[
        "sketcher",
        "kept edges",
        "bits",
        "max rel err (sampled cuts)",
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let eps = 0.7;
    // Uniform must set its rate from the GLOBAL min cut (the bridge
    // bundle), which caps it at 1; NI labels let the strength sampler
    // thin the cliques while always keeping low-label (bridge) edges.
    let uni = UniformSketcher::new(eps).sketch(&g, &mut rng);
    let strength = StrengthSketcher {
        epsilon: eps,
        oversample: 1.0,
    }
    .sketch(&g, &mut rng);
    // Exhaustive cut check is 2³⁹ — sample cuts instead, always
    // including the bridge cut (the hard one).
    let mut worst = |sk: &dyn CutOracle| -> f64 {
        let mut w: f64 = 0.0;
        let bridge = NodeSet::from_indices(n, 0..50);
        let truth = g.cut_out(&bridge);
        w = w.max((sk.cut_out_estimate(&bridge) - truth).abs() / truth);
        for _ in 0..200 {
            let mut s = NodeSet::empty(n);
            for i in 0..n {
                if rng.gen_bool(0.5) {
                    s.insert(NodeId::new(i));
                }
            }
            if !s.is_proper_cut() {
                continue;
            }
            let truth = g.cut_out(&s);
            if truth > 0.0 {
                w = w.max((sk.cut_out_estimate(&s) - truth).abs() / truth);
            }
        }
        w
    };
    let ue = worst(&uni);
    let se = worst(&strength);
    print_row(&[
        "uniform".into(),
        uni.num_edges().to_string(),
        uni.size_bits().to_string(),
        format!("{ue:.3}"),
    ]);
    print_row(&[
        "strength".into(),
        strength.num_edges().to_string(),
        strength.size_bits().to_string(),
        format!("{se:.3}"),
    ]);
    println!();
}

fn main() -> std::process::ExitCode {
    println!("=== Ablations (DESIGN.md A1–A4) ===\n");
    ablation_boosting();
    ablation_accept_fraction();
    ablation_sampling_family();
    ablation_distributed();
    dircut_bench::finish_reductions_json("exp_ablation")
}
