//! Experiment E2 (Theorem 1.2): the for-all lower bound made
//! observable.
//!
//! Runs the Section 4 Gap-Hamming game: Bob enumerates half-subsets
//! `Q ⊂ L`, re-queries each through the oracle, and answers from
//! `ℓ_i ∈ Q`. We report success against exact and `(1 ± c₂ε)` noisy
//! oracles, plus the measurable Lemma 4.3 / 4.4 events
//! (`L_high`/`L_low` densities and argmax-subset recall).

use dircut_bench::{print_header, print_row};
use dircut_comm::gap_hamming::random_weighted_string;
use dircut_core::forall::{high_low_split, ForAllDecoder, ForAllEncoding};
use dircut_core::games::{plant_gap_target, run_forall_gap_hamming_game};
use dircut_core::{ForAllParams, SubsetSearch};
use dircut_sketch::adversarial::{NoiseModel, NoisyOracle};
use dircut_sketch::EdgeListSketch;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== E2: for-all cut sketch lower bound (Theorem 1.2) ===\n");
    println!("--- decoding success vs oracle error ---");
    print_header(&["n", "beta", "1/eps^2", "oracle", "success", "cut queries"]);

    let trials = 40;
    for (beta, inv_eps_sq) in [(1, 8), (1, 16), (2, 8)] {
        let params = ForAllParams::new(beta, inv_eps_sq, 2);
        let eps = params.epsilon();
        let half_gap = ((0.4 / eps) / 2.0).ceil() as usize;

        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let exact = run_forall_gap_hamming_game(
            params,
            half_gap,
            SubsetSearch::Exact,
            trials,
            |g, _| EdgeListSketch::from_graph(g),
            &mut rng,
        );
        print_row(&[
            params.num_nodes().to_string(),
            beta.to_string(),
            inv_eps_sq.to_string(),
            "exact".into(),
            format!("{:.3}", exact.success_rate()),
            format!("{:.0}", exact.mean_queries),
        ]);

        for c2 in [0.05, 0.2, 0.8] {
            let err = (c2 * eps).min(0.9);
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let rep = run_forall_gap_hamming_game(
                params,
                half_gap,
                SubsetSearch::Exact,
                trials,
                |g, r| NoisyOracle::new(g.clone(), err, r.gen(), NoiseModel::UniformRelative),
                &mut rng,
            );
            print_row(&[
                params.num_nodes().to_string(),
                beta.to_string(),
                inv_eps_sq.to_string(),
                format!("noisy(1±{err:.3})"),
                format!("{:.3}", rep.success_rate()),
                format!("{:.0}", rep.mean_queries),
            ]);
        }
        println!();
    }

    println!("--- single-cut baseline vs enumeration under (1±c₂ε) noise ---");
    {
        use dircut_core::forall::ForAllEncoding;
        print_header(&["1/eps^2", "noise", "single cut", "enumeration"]);
        let params = ForAllParams::new(1, 16, 2);
        let noise = 0.8 * params.epsilon();
        let reps = 60;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (mut single_ok, mut enum_ok) = (0usize, 0usize);
        for trial in 0..reps {
            let l = params.inv_eps_sq;
            let mut strings: Vec<Vec<bool>> = (0..params.num_strings())
                .map(|_| random_weighted_string(l, l / 2, &mut rng))
                .collect();
            let q = (trial * 5) % params.num_strings();
            let is_far = trial % 2 == 0;
            let t = random_weighted_string(l, l / 2, &mut rng);
            strings[q] = plant_gap_target(&t, 2, is_far, &mut rng);
            let enc = ForAllEncoding::encode(params, &strings);
            let dec = ForAllDecoder::new(params, SubsetSearch::Exact);
            let noisy = NoisyOracle::new(
                enc.graph().clone(),
                noise,
                rng.gen(),
                NoiseModel::UniformRelative,
            );
            if dec.decide_single_cut(&noisy, q, &t) == is_far {
                single_ok += 1;
            }
            if dec.decide(&noisy, q, &t, &mut rng).is_far == is_far {
                enum_ok += 1;
            }
        }
        print_row(&[
            "16".into(),
            format!("{noise:.3}"),
            format!("{:.3}", single_ok as f64 / reps as f64),
            format!("{:.3}", enum_ok as f64 / reps as f64),
        ]);
        println!();
    }

    println!("--- decoding success vs sketch bit budget ---");
    {
        let params = ForAllParams::new(1, 16, 2);
        let lb = params.lower_bound_bits();
        println!(
            "construction: n = {}, β = 1, 1/ε² = 16, Ω(nβ/ε²) reference = {lb} bits",
            params.num_nodes()
        );
        print_header(&["budget bits", "x(LB)", "success"]);
        for factor in [64usize, 16, 4, 1] {
            let budget = lb * factor;
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let rep = run_forall_gap_hamming_game(
                params,
                2,
                SubsetSearch::Exact,
                trials,
                |g, _| dircut_sketch::BudgetedSketch::new(g, budget),
                &mut rng,
            );
            print_row(&[
                budget.to_string(),
                format!("{factor}x"),
                format!("{:.3}", rep.success_rate()),
            ]);
        }
        println!();
    }

    println!("--- Lemma 4.3 / 4.4: L_high density and argmax-Q recall ---");
    print_header(&["1/eps^2", "|L|", "high frac", "low frac", "Q recall"]);
    for inv_eps_sq in [8usize, 16] {
        let params = ForAllParams::new(1, inv_eps_sq, 2);
        let l = params.inv_eps_sq;
        let k = params.group_size();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let reps = 25;
        let (mut high_frac, mut low_frac, mut recall) = (0.0, 0.0, 0.0);
        let mut recall_samples = 0usize;
        for _ in 0..reps {
            let mut strings: Vec<Vec<bool>> = (0..params.num_strings())
                .map(|_| random_weighted_string(l, l / 2, &mut rng))
                .collect();
            let q = rng.gen_range(0..params.num_strings());
            let t = random_weighted_string(l, l / 2, &mut rng);
            strings[q] = plant_gap_target(&t, 1, false, &mut rng);
            let enc = ForAllEncoding::encode(params, &strings);
            let split = high_low_split(&enc, q, &t, 0.1);
            high_frac += split.high.len() as f64 / k as f64;
            low_frac += split.low.len() as f64 / k as f64;
            // Lemma 4.4: the argmax subset should capture most of L_high.
            let decoder = ForAllDecoder::new(params, SubsetSearch::Exact);
            let oracle = EdgeListSketch::from_graph(enc.graph());
            let decision = decoder.decide(&oracle, q, &t, &mut rng);
            if !split.high.is_empty() {
                let captured = split
                    .high
                    .iter()
                    .filter(|i| decision.q_subset.contains(i))
                    .count();
                recall += captured as f64 / split.high.len() as f64;
                recall_samples += 1;
            }
        }
        print_row(&[
            inv_eps_sq.to_string(),
            k.to_string(),
            format!("{:.3}", high_frac / reps as f64),
            format!("{:.3}", low_frac / reps as f64),
            format!("{:.3}", recall / recall_samples.max(1) as f64),
        ]);
    }

    // Per-stage solve / cut-query counters, stderr-only behind DIRCUT_STATS.
    dircut_bench::maybe_print_stage_report();
}
