//! Experiment E2 (Theorem 1.2): the for-all lower bound made
//! observable.
//!
//! Runs the Section 4 Gap-Hamming game: Bob enumerates half-subsets
//! `Q ⊂ L`, re-queries each through the oracle, and answers from
//! `ℓ_i ∈ Q`. We report success against exact and `(1 ± c₂ε)` noisy
//! oracles, plus the measurable Lemma 4.3 / 4.4 events
//! (`L_high`/`L_low` densities and argmax-subset recall).
//!
//! Every sweep runs on the [`TrialEngine`] under `Seeding::Shared`
//! with the legacy per-sweep seeds, so the tables are byte-identical
//! to the retired hand-rolled loops at any `DIRCUT_THREADS`.

use dircut_bench::reductions::{FamilyCutReduction, FamilyGame};
use dircut_bench::{print_header, print_row, record_section, Seeding, TrialEngine};
use dircut_core::reduction::{
    ForAllGapHammingReduction, ForAllHeadToHeadReduction, ForAllLemma43Reduction, OracleSpec,
};
use dircut_core::{ForAllParams, SubsetSearch};
use dircut_graph::FamilySpec;
use dircut_sketch::adversarial::NoiseModel;
use dircut_sketch::{registry, CutSketcher, SketchKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> std::process::ExitCode {
    println!("=== E2: for-all cut sketch lower bound (Theorem 1.2) ===\n");
    println!("--- decoding success vs oracle error ---");
    print_header(&["n", "beta", "1/eps^2", "oracle", "success", "cut queries"]);

    let trials = 40;
    let engine = TrialEngine::with_default_threads();
    for (beta, inv_eps_sq) in [(1, 8), (1, 16), (2, 8)] {
        let params = ForAllParams::new(beta, inv_eps_sq, 2);
        let eps = params.epsilon();
        let half_gap = ((0.4 / eps) / 2.0).ceil() as usize;

        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rdx = ForAllGapHammingReduction {
            params,
            half_gap,
            search: SubsetSearch::Exact,
            oracle: OracleSpec::Exact,
        };
        let exact = engine.run(&rdx, trials, Seeding::Shared(&mut rng));
        record_section(
            &format!("E2 exact beta={beta} 1/eps^2={inv_eps_sq}"),
            &exact,
        );
        print_row(&[
            params.num_nodes().to_string(),
            beta.to_string(),
            inv_eps_sq.to_string(),
            "exact".into(),
            format!("{:.3}", exact.success_rate()),
            format!("{:.0}", exact.mean_cut_queries()),
        ]);

        for c2 in [0.05, 0.2, 0.8] {
            let err = (c2 * eps).min(0.9);
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let rdx = ForAllGapHammingReduction {
                params,
                half_gap,
                search: SubsetSearch::Exact,
                oracle: OracleSpec::Noisy {
                    err,
                    model: NoiseModel::UniformRelative,
                },
            };
            let rep = engine.run(&rdx, trials, Seeding::Shared(&mut rng));
            record_section(
                &format!("E2 noisy c2={c2} beta={beta} 1/eps^2={inv_eps_sq}"),
                &rep,
            );
            print_row(&[
                params.num_nodes().to_string(),
                beta.to_string(),
                inv_eps_sq.to_string(),
                format!("noisy(1±{err:.3})"),
                format!("{:.3}", rep.success_rate()),
                format!("{:.0}", rep.mean_cut_queries()),
            ]);
        }
        println!();
    }

    println!("--- single-cut baseline vs enumeration under (1±c₂ε) noise ---");
    {
        print_header(&["1/eps^2", "noise", "single cut", "enumeration"]);
        let params = ForAllParams::new(1, 16, 2);
        let noise = 0.8 * params.epsilon();
        let reps = 60;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let rdx = ForAllHeadToHeadReduction {
            params,
            half_gap: 2,
            noise,
        };
        let rep = engine.run(&rdx, reps, Seeding::Shared(&mut rng));
        record_section("E2 head-to-head 1/eps^2=16", &rep);
        print_row(&[
            "16".into(),
            format!("{noise:.3}"),
            format!("{:.3}", rep.aux_sum("single_ok") / reps as f64),
            format!("{:.3}", rep.aux_sum("enum_ok") / reps as f64),
        ]);
        println!();
    }

    println!("--- decoding success vs sketch bit budget ---");
    {
        let params = ForAllParams::new(1, 16, 2);
        let lb = params.lower_bound_bits();
        println!(
            "construction: n = {}, β = 1, 1/ε² = 16, Ω(nβ/ε²) reference = {lb} bits",
            params.num_nodes()
        );
        print_header(&["budget bits", "x(LB)", "success"]);
        for factor in [64usize, 16, 4, 1] {
            let budget = lb * factor;
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let rdx = ForAllGapHammingReduction {
                params,
                half_gap: 2,
                search: SubsetSearch::Exact,
                oracle: OracleSpec::Budgeted { bits: budget },
            };
            let rep = engine.run(&rdx, trials, Seeding::Shared(&mut rng));
            record_section(&format!("E2 budget {factor}x"), &rep);
            print_row(&[
                budget.to_string(),
                format!("{factor}x"),
                format!("{:.3}", rep.success_rate()),
            ]);
        }
        println!();
    }

    println!("--- Lemma 4.3 / 4.4: L_high density and argmax-Q recall ---");
    print_header(&["1/eps^2", "|L|", "high frac", "low frac", "Q recall"]);
    for inv_eps_sq in [8usize, 16] {
        let params = ForAllParams::new(1, inv_eps_sq, 2);
        let k = params.group_size();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let reps = 25;
        let rdx = ForAllLemma43Reduction { params, c: 0.1 };
        let rep = engine.run(&rdx, reps, Seeding::Shared(&mut rng));
        record_section(&format!("E2 lemma43 1/eps^2={inv_eps_sq}"), &rep);
        let recall_samples = rep.aux_count_nonzero("recall_sampled");
        print_row(&[
            inv_eps_sq.to_string(),
            k.to_string(),
            format!("{:.3}", rep.aux_sum("high_frac") / reps as f64),
            format!("{:.3}", rep.aux_sum("low_frac") / reps as f64),
            format!(
                "{:.3}",
                rep.aux_sum("recall") / recall_samples.max(1) as f64
            ),
        ]);
    }

    println!("\n--- adversarial families: prefix-deck for-all estimation ---");
    println!("every for-all registry sketcher must band-bound a nested deck of");
    println!("prefix cuts on the adversarial instances (eps = 0.3, deck = 6)");
    print_header(&["family", "n", "beta", "sparsifier", "success", "max err"]);
    let family_eps = 0.3;
    let family_trials = 24;
    for family in FamilySpec::adversarial_zoo() {
        let beta = family
            .beta_bound()
            .expect("adversarial zoo families carry a certificate");
        for spec in registry(family_eps, beta) {
            if spec.kind() != SketchKind::ForAll {
                continue;
            }
            let rdx = FamilyCutReduction {
                family,
                spec,
                eps: family_eps,
                game: FamilyGame::PrefixDeck(6),
            };
            let rep = engine.run(&rdx, family_trials, Seeding::Substream(0xfa42));
            record_section(
                &format!("E2 family {} {}", family.name(), spec.name()),
                &rep,
            );
            print_row(&[
                family.name().into(),
                family.num_nodes().to_string(),
                format!("{beta}"),
                spec.name().into(),
                format!("{:.3}", rep.success_rate()),
                format!("{:.4}", rep.aux_max("err")),
            ]);
        }
    }

    let code = dircut_bench::finish_reductions_json("exp_forall");
    // Per-stage solve / cut-query counters, stderr-only behind DIRCUT_STATS.
    dircut_bench::maybe_print_stage_report();
    code
}
