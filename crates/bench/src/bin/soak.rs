//! Soak harness entry point. See [`dircut_bench::soak`] for the
//! workload and the invariants it asserts.
//!
//! ```text
//! soak [--smoke] [--seconds N] [--seed N] [--out PATH]
//! ```
//!
//! `--smoke` runs a fixed round count (deterministic digest, for CI
//! back-to-back diffing); otherwise the workload loops until the
//! `--seconds` budget (default 60) is spent. Exit is nonzero iff any
//! invariant was violated.

use dircut_bench::soak::{soak_main, SoakConfig};
use std::process::ExitCode;

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SoakConfig::default();
    cfg.smoke = args.iter().any(|a| a == "--smoke");
    if let Some(s) = parse_flag(&args, "--seconds") {
        cfg.seconds = s;
    }
    if let Some(s) = parse_flag(&args, "--seed") {
        cfg.seed = s;
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        cfg.out = args.get(i + 1).cloned();
    }
    soak_main(&cfg)
}
