//! Experiment E8: the reductions as *literal one-way protocols* with
//! measured message bits.
//!
//! Alice's message is a serialized sketch; every trial counts the
//! exact bits on the channel. The information-theoretic floors: any
//! protocol winning the Index game needs Ω(#bits-encoded) bits
//! (Lemma 3.1), and the encoding carries Ω(n√β/ε) bits (Theorem 1.1);
//! likewise Ω(nβ/ε²) for the Gap-Hamming game (Lemma 4.1 /
//! Theorem 1.2). Every correct row must sit above its floor — and
//! does.
//!
//! Each sweep runs on the [`TrialEngine`] under `Seeding::Shared` with
//! the legacy per-sweep seeds, so the tables are byte-identical to the
//! retired `measure` loops at any `DIRCUT_THREADS`.

use dircut_bench::{print_header, print_row, record_section, Seeding, TrialEngine};
use dircut_core::protocol::ExactEdgeListSketcher;
use dircut_core::reduction::{ForAllProtocolReduction, ForEachProtocolReduction};
use dircut_core::{ForAllParams, ForEachParams, SubsetSearch};
use dircut_sketch::UniformSketcher;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> std::process::ExitCode {
    println!("=== E8: measured one-way protocols (serialized sketch messages) ===\n");
    let engine = TrialEngine::with_default_threads();

    println!("--- Theorem 1.1 / Index game ---");
    print_header(&[
        "1/eps",
        "sqrt_beta",
        "sketcher",
        "success",
        "mean bits",
        "Index LB",
        "Thm1.1 LB",
    ]);
    for (inv_eps, sqrt_beta) in [(4usize, 1usize), (8, 1), (8, 2)] {
        let params = ForEachParams::new(inv_eps, sqrt_beta, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let exact = engine.run(
            &ForEachProtocolReduction {
                params,
                sketcher: ExactEdgeListSketcher,
            },
            30,
            Seeding::Shared(&mut rng),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sampled = engine.run(
            &ForEachProtocolReduction {
                params,
                sketcher: UniformSketcher::new(0.05),
            },
            30,
            Seeding::Shared(&mut rng),
        );
        record_section(
            &format!("E8 index exact 1/eps={inv_eps} sb={sqrt_beta}"),
            &exact,
        );
        record_section(
            &format!("E8 index uniform 1/eps={inv_eps} sb={sqrt_beta}"),
            &sampled,
        );
        for (name, rep) in [("exact", &exact), ("uniform(0.05)", &sampled)] {
            print_row(&[
                inv_eps.to_string(),
                sqrt_beta.to_string(),
                name.into(),
                format!("{:.3}", rep.success_rate()),
                format!("{:.0}", rep.mean_wire_bits()),
                params.total_bits().to_string(),
                params.lower_bound_bits().to_string(),
            ]);
        }
    }

    println!("\n--- Theorem 1.2 / Gap-Hamming game ---");
    print_header(&["1/eps^2", "sketcher", "success", "mean bits", "Thm1.2 LB"]);
    for inv_eps_sq in [8usize, 16] {
        let params = ForAllParams::new(1, inv_eps_sq, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let rep = engine.run(
            &ForAllProtocolReduction {
                params,
                half_gap: 2,
                search: SubsetSearch::Exact,
                sketcher: ExactEdgeListSketcher,
            },
            12,
            Seeding::Shared(&mut rng),
        );
        record_section(&format!("E8 gap-hamming 1/eps^2={inv_eps_sq}"), &rep);
        print_row(&[
            inv_eps_sq.to_string(),
            "exact".into(),
            format!("{:.3}", rep.success_rate()),
            format!("{:.0}", rep.mean_wire_bits()),
            params.lower_bound_bits().to_string(),
        ]);
    }
    println!(
        "\nReading: every succeeding protocol's message sits above its Ω(·)\n\
         column — the theorems say no encoding can dip below and still win."
    );

    dircut_bench::finish_reductions_json("exp_protocol")
}
