//! Experiment E8: the reductions as *literal one-way protocols* with
//! measured message bits.
//!
//! Alice's message is a serialized sketch; `dircut_comm::measure`
//! counts every bit on the channel and every decoding success. The
//! information-theoretic floors: any protocol winning the Index game
//! needs Ω(#bits-encoded) bits (Lemma 3.1), and the encoding carries
//! Ω(n√β/ε) bits (Theorem 1.1); likewise Ω(nβ/ε²) for the Gap-Hamming
//! game (Lemma 4.1 / Theorem 1.2). Every correct row must sit above
//! its floor — and does.

use dircut_bench::{print_header, print_row};
use dircut_comm::protocol::measure;
use dircut_comm::IndexInstance;
use dircut_core::games::plant_gap_target;
use dircut_core::protocol::{
    ExactEdgeListSketcher, ForAllGapHammingProtocol, ForEachIndexProtocol,
};
use dircut_core::{ForAllParams, ForEachParams, SubsetSearch};
use dircut_sketch::UniformSketcher;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== E8: measured one-way protocols (serialized sketch messages) ===\n");

    println!("--- Theorem 1.1 / Index game ---");
    print_header(&[
        "1/eps",
        "sqrt_beta",
        "sketcher",
        "success",
        "mean bits",
        "Index LB",
        "Thm1.1 LB",
    ]);
    for (inv_eps, sqrt_beta) in [(4usize, 1usize), (8, 1), (8, 2)] {
        let params = ForEachParams::new(inv_eps, sqrt_beta, 2);
        let sample = |rng: &mut ChaCha8Rng| {
            let inst = IndexInstance::sample(params.total_bits(), rng);
            let truth = inst.answer();
            (inst.s, inst.i, truth)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let exact = measure(
            &ForEachIndexProtocol::new(params, ExactEdgeListSketcher),
            30,
            &mut rng,
            sample,
            |a, b| a == b,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sampled = measure(
            &ForEachIndexProtocol::new(params, UniformSketcher::new(0.05)),
            30,
            &mut rng,
            sample,
            |a, b| a == b,
        );
        for (name, stats) in [("exact", &exact), ("uniform(0.05)", &sampled)] {
            print_row(&[
                inv_eps.to_string(),
                sqrt_beta.to_string(),
                name.into(),
                format!("{:.3}", stats.success_rate()),
                format!("{:.0}", stats.mean_bits),
                params.total_bits().to_string(),
                params.lower_bound_bits().to_string(),
            ]);
        }
    }

    println!("\n--- Theorem 1.2 / Gap-Hamming game ---");
    print_header(&["1/eps^2", "sketcher", "success", "mean bits", "Thm1.2 LB"]);
    for inv_eps_sq in [8usize, 16] {
        let params = ForAllParams::new(1, inv_eps_sq, 2);
        let sample = |rng: &mut ChaCha8Rng| {
            let l = params.inv_eps_sq;
            let mut strings: Vec<Vec<bool>> = (0..params.num_strings())
                .map(|_| dircut_comm::gap_hamming::random_weighted_string(l, l / 2, rng))
                .collect();
            let q = rng.gen_range(0..params.num_strings());
            let is_far = rng.gen_bool(0.5);
            let t = dircut_comm::gap_hamming::random_weighted_string(l, l / 2, rng);
            strings[q] = plant_gap_target(&t, 2, is_far, rng);
            (strings, (q, t), is_far)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let stats = measure(
            &ForAllGapHammingProtocol::new(params, SubsetSearch::Exact, ExactEdgeListSketcher),
            12,
            &mut rng,
            sample,
            |a, b| a == b,
        );
        print_row(&[
            inv_eps_sq.to_string(),
            "exact".into(),
            format!("{:.3}", stats.success_rate()),
            format!("{:.0}", stats.mean_bits),
            params.lower_bound_bits().to_string(),
        ]);
    }
    println!(
        "\nReading: every succeeding protocol's message sits above its Ω(·)\n\
         column — the theorems say no encoding can dip below and still win."
    );
}
