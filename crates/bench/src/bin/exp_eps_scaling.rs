//! Experiment E4 (Theorem 5.7): the ε⁴ → ε² query-complexity
//! improvement of the paper's Section 5.4 modification, measured.
//!
//! Two regimes:
//!
//! 1. **Simple graph** (`G(n, p)`): `k = O(n)` so `ε²k ≪ log n` for
//!    small ε and every VERIFY-GUESS call caps at `p = 1`. Both
//!    variants read Θ(m) slots — the `min{m, ·}` branch of
//!    Theorem 1.3, observable as flat query counts.
//! 2. **Blow-up cycle multigraph** (`k = 2·multiplicity ≫ log n/ε²`):
//!    the sampling probability is genuinely below 1 and the final
//!    VERIFY-GUESS call — made at guess `t = t_acc/κ`, where κ is the
//!    Lemma 5.8 safety gap of the *search* error — dominates. The
//!    original algorithm searches at error ε, so κ = Θ(log n/ε²) and
//!    the final call costs Θ̃(m/(ε⁴k)); the modified algorithm searches
//!    at constant β₀, κ = Θ(log n), and pays Θ̃(m/(ε²k)).
//!
//! Repetitions run on the [`TrialEngine`] under `Seeding::Offset(100)`
//! (the legacy loop's per-rep reseeding), so the tables are
//! byte-identical to the retired loops at any `DIRCUT_THREADS`.

use dircut_bench::reductions::EpsScalingReduction;
use dircut_bench::{print_header, print_row, record_section, Seeding, TrialEngine};
use dircut_graph::generators::connected_gnp;
use dircut_graph::mincut::min_cut_unweighted;
use dircut_localquery::{AdjOracle, GraphOracle, MultiAdjOracle};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn fit_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

fn sweep<O: GraphOracle + Sync>(
    oracle: &O,
    label: &str,
    eps_sweep: &[f64],
    true_k: f64,
    reps: u64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    println!("--- {label} ---");
    print_header(&[
        "eps",
        "orig total",
        "orig final",
        "mod total",
        "mod final",
        "est err",
    ]);
    let beta0 = 0.5;
    let engine = TrialEngine::with_default_threads();
    let mut log_inv_eps = Vec::new();
    let mut log_orig = Vec::new();
    let mut log_modi = Vec::new();
    for &eps in eps_sweep {
        let rdx = EpsScalingReduction {
            oracle,
            eps,
            beta0,
            true_k,
            modified_seed_base: 200,
        };
        let rep = engine.run(&rdx, reps as usize, Seeding::Offset(100));
        record_section(&format!("E4 {label} eps={eps}"), &rep);
        let (ot, of, mt, mf) = (
            rep.aux_sum_u64("orig_total") / reps,
            rep.aux_sum_u64("orig_final") / reps,
            rep.aux_sum_u64("mod_total") / reps,
            rep.aux_sum_u64("mod_final") / reps,
        );
        let worst_err = rep.aux_max("worst_err").max(0.0);
        print_row(&[
            format!("{eps}"),
            ot.to_string(),
            of.to_string(),
            mt.to_string(),
            mf.to_string(),
            format!("{worst_err:.3}"),
        ]);
        log_inv_eps.push((1.0 / eps).ln());
        log_orig.push((ot as f64).ln());
        log_modi.push((mt as f64).ln());
    }
    (log_inv_eps, log_orig, log_modi)
}

fn main() -> std::process::ExitCode {
    println!("=== E4: original vs modified BGMP21 query scaling in ε (Theorem 5.7) ===\n");

    // Regime 1: simple graph, everything caps at p = 1 (min{m, ·}).
    let mut gen = ChaCha8Rng::seed_from_u64(0);
    let g = connected_gnp(140, 0.5, &mut gen);
    let k = min_cut_unweighted(&g);
    println!(
        "simple G(140, 0.5): m = {}, k = {k} (ε²k ≪ ln n ⇒ p caps at 1)\n",
        g.num_edges()
    );
    let oracle = AdjOracle::new(&g);
    let _ = sweep(
        &oracle,
        "simple graph (cap regime)",
        &[0.4, 0.2, 0.1],
        k as f64,
        3,
    );

    // Regime 2: blow-up cycle, k = 12000 ≫ ln n/ε².
    let mult = 6000usize;
    let blowup = MultiAdjOracle::cycle_blowup(12, mult);
    let true_k = (2 * mult) as f64;
    println!(
        "\nblow-up cycle: n = 12, multiplicity = {mult}, m = {}, k = {true_k}\n",
        blowup.num_edges()
    );
    let eps_sweep = [0.5, 0.4, 0.3, 0.25, 0.2, 0.15, 0.1];
    let (lx, lo, lm) = sweep(
        &blowup,
        "blow-up cycle (scaling regime)",
        &eps_sweep,
        true_k,
        3,
    );

    // Fit slopes on the uncapped windows: original is uncapped only for
    // the first ~3 points, modified for the first ~6.
    println!(
        "\nlog-log slopes in 1/ε: original (ε ∈ [0.3, 0.5]) ≈ {:.2}, \
         modified (ε ∈ [0.2, 0.5]) ≈ {:.2}",
        fit_slope(&lx[..3], &lo[..3]),
        fit_slope(&lx[..5], &lm[..5]),
    );
    println!("paper: original scales like ε⁻⁴ (slope → 4), modified like ε⁻² (slope → 2);");
    println!("past its window each variant caps at Θ(m) slots — the min{{m, ·}} of Theorem 1.3.");

    let code = dircut_bench::finish_reductions_json("exp_eps_scaling");
    // Per-stage solve / cut-query counters, stderr-only behind DIRCUT_STATS.
    dircut_bench::maybe_print_stage_report();
    code
}
