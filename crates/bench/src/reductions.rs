//! Bench-local [`Reduction`] implementations for experiment axes that
//! are measurements rather than paper games: the ε-scaling comparison
//! of the Section 5.4 modification, median-of-k boosting, the
//! VERIFY-GUESS acceptance boundary, and the sparsifier-zoo cells that
//! fan every [`SparsifierSpec`] through the trial engine.

use dircut_core::reduction::{Reduction, Resources, TrialOutcome};
use dircut_graph::generators::random_balanced_digraph;
use dircut_graph::{DiGraph, FamilySpec, NodeSet};
use dircut_localquery::{
    global_min_cut_local, verify_guess, GraphOracle, MinCutRunResult, SearchVariant,
    VerifyGuessConfig,
};
use dircut_sketch::{
    max_relative_cut_error, AnySketch, CutOracle, CutSketch, CutSketcher, EdgeListSketch,
    Sparsified, Sparsifier, SparsifierSpec,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One repetition of the E4 sweep: the original and the modified
/// BGMP21 algorithm run on the same oracle at the same ε, each on its
/// own seed family (the legacy loop reseeded `100 + rep` / `200 + rep`;
/// under `Seeding::Offset(100)` the engine hands decode the first and
/// this reduction derives the second from `modified_seed_base + trial`).
#[derive(Debug, Clone, Copy)]
pub struct EpsScalingReduction<'a, O> {
    /// The local-query oracle (shared across trials).
    pub oracle: &'a O,
    /// Target accuracy.
    pub eps: f64,
    /// The modification's constant search error.
    pub beta0: f64,
    /// The known min-cut value, for error accounting.
    pub true_k: f64,
    /// Seed base of the modified variant's private randomness.
    pub modified_seed_base: u64,
}

/// Both variants' run results for one repetition.
#[derive(Debug, Clone)]
pub struct EpsScalingAnswer {
    /// The original (search error ε) run.
    pub orig: MinCutRunResult,
    /// The modified (search error β₀) run.
    pub modi: MinCutRunResult,
}

impl<O: GraphOracle + Sync> Reduction for EpsScalingReduction<'_, O> {
    type Instance = usize;
    type Artifact = usize;
    type Answer = EpsScalingAnswer;

    fn name(&self) -> &'static str {
        "eps-scaling"
    }

    fn sample<R: Rng>(&self, trial: usize, _rng: &mut R) -> Self::Instance {
        trial
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        *inst
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, rng: &mut R) -> Self::Answer {
        let orig = global_min_cut_local(
            self.oracle,
            self.eps,
            SearchVariant::Original,
            VerifyGuessConfig::default(),
            rng,
        );
        let mut modi_rng = ChaCha8Rng::seed_from_u64(self.modified_seed_base + *artifact as u64);
        let modi = global_min_cut_local(
            self.oracle,
            self.eps,
            SearchVariant::Modified { beta0: self.beta0 },
            VerifyGuessConfig::default(),
            &mut modi_rng,
        );
        EpsScalingAnswer { orig, modi }
    }

    fn verify(&self, _inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        let orig_err = (answer.orig.estimate - self.true_k).abs() / self.true_k;
        let modi_err = (answer.modi.estimate - self.true_k).abs() / self.true_k;
        TrialOutcome::new(true, 0)
            .with_aux("orig_total", answer.orig.total_queries as f64)
            .with_aux("orig_final", answer.orig.final_call_queries as f64)
            .with_aux("mod_total", answer.modi.total_queries as f64)
            .with_aux("mod_final", answer.modi.final_call_queries as f64)
            .with_aux("worst_err", orig_err.max(modi_err))
    }
}

/// One repetition of the A2 boosting ablation: draw a (possibly
/// boosted) sketch of a fixed graph, read one fixed cut, score against
/// the `(1 ± ε)` band.
#[derive(Debug, Clone, Copy)]
pub struct BoostingReduction<'a, S> {
    /// The fixed input graph.
    pub graph: &'a DiGraph,
    /// The (boosted) sketching algorithm.
    pub sketcher: S,
    /// The fixed cut the trial reads.
    pub set: &'a NodeSet,
    /// The cut's true value.
    pub truth: f64,
    /// The accuracy band.
    pub eps: f64,
}

impl<S> Reduction for BoostingReduction<'_, S>
where
    S: CutSketcher,
{
    type Instance = S::Sketch;
    type Artifact = (f64, u64);
    type Answer = f64;

    fn name(&self) -> &'static str {
        "boosting"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        self.sketcher.sketch(self.graph, rng)
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        (inst.cut_out_estimate(self.set), inst.size_bits() as u64)
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        artifact.0
    }

    fn verify(&self, _inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new((answer - self.truth).abs() <= self.eps * self.truth, 1)
            .with_aux("estimate", *answer)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.1,
            cut_queries: 1,
            flow_solves: 0,
        }
    }
}

/// One repetition of the A3 acceptance-boundary ablation: a single
/// VERIFY-GUESS call at a fixed guess; success = accepted.
#[derive(Debug, Clone, Copy)]
pub struct VerifyGuessReduction<'a, O> {
    /// The local-query oracle.
    pub oracle: &'a O,
    /// Pre-queried degrees.
    pub degrees: &'a [usize],
    /// The guessed min-cut value.
    pub guess: f64,
    /// VERIFY-GUESS accuracy parameter.
    pub eps: f64,
    /// Oversampling / acceptance configuration.
    pub cfg: VerifyGuessConfig,
}

impl<O: GraphOracle + Sync> Reduction for VerifyGuessReduction<'_, O> {
    type Instance = ();
    type Artifact = ();
    type Answer = bool;

    fn name(&self) -> &'static str {
        "verify-guess-boundary"
    }

    fn sample<R: Rng>(&self, _trial: usize, _rng: &mut R) -> Self::Instance {}

    fn encode(&self, _inst: &Self::Instance) -> Self::Artifact {}

    fn decode<R: Rng>(&self, _artifact: &Self::Artifact, rng: &mut R) -> Self::Answer {
        verify_guess(
            self.oracle,
            self.degrees,
            self.guess,
            self.eps,
            self.cfg,
            rng,
        )
        .accepted
    }

    fn verify(&self, _inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(*answer, 0)
    }
}

/// One sparsifier-zoo cell: draw a sketch of a fixed graph through a
/// registry [`SparsifierSpec`] and (optionally) measure its exhaustive
/// `max_relative_cut_error`. Success means the measured error stays
/// inside the acceptance band ε — the for-all guarantee made a
/// per-trial observable.
#[derive(Debug, Clone, Copy)]
pub struct SparsifierCellReduction<'a> {
    /// The fixed input graph of this cell.
    pub graph: &'a DiGraph,
    /// The registry entry under test.
    pub spec: SparsifierSpec,
    /// Acceptance band ε for the measured error.
    pub band: f64,
    /// Measure the exhaustive cut error (needs `2 ≤ n ≤ 20`)? Size-only
    /// sweeps on large graphs turn this off and always succeed.
    pub measure_error: bool,
}

impl Reduction for SparsifierCellReduction<'_> {
    type Instance = AnySketch;
    type Artifact = AnySketch;
    type Answer = f64;

    fn name(&self) -> &'static str {
        "sparsifier-cell"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        self.spec.construct(self.graph, rng)
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        inst.clone()
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        if self.measure_error {
            max_relative_cut_error(self.graph, artifact)
        } else {
            f64::NAN
        }
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        let (success, queries) = if self.measure_error {
            let n = self.graph.num_nodes();
            (*answer <= self.band, (1u64 << (n - 1)) - 1)
        } else {
            (true, 0)
        };
        let mut outcome =
            TrialOutcome::new(success, queries).with_aux("retained", inst.retained_edges() as f64);
        if self.measure_error {
            outcome = outcome.with_aux("err", *answer);
        }
        outcome
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.wire_bits() as u64,
            cut_queries: 0,
            flow_solves: 0,
        }
    }
}

/// How a family-axis trial scores its sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FamilyGame {
    /// Estimate the family's closed-form min-cut side — the for-each
    /// observable: one designated (and adversarially small) cut.
    KnownMinCut,
    /// Estimate a deck of `k` nested prefix sets and require *every*
    /// answer inside the band — the for-all observable on a bounded
    /// deck (exhaustive enumeration stays in the zoo bin).
    PrefixDeck(usize),
}

/// One adversarial-family cell: generate a [`FamilySpec`] instance,
/// sketch it through a registry [`SparsifierSpec`], and score the
/// sketch against ground truth per the chosen [`FamilyGame`]. This is
/// the axis that runs the paper's lower-bound witnesses (bit gadget,
/// β-extreme bipartite, scale-free) through the same engine as the
/// friendly families.
#[derive(Debug, Clone, Copy)]
pub struct FamilyCutReduction {
    /// The graph family under test.
    pub family: FamilySpec,
    /// The registry sketcher.
    pub spec: SparsifierSpec,
    /// Acceptance band ε.
    pub eps: f64,
    /// The scoring game.
    pub game: FamilyGame,
}

impl FamilyCutReduction {
    /// The query deck of this cell on an `n`-node instance.
    fn deck(&self, n: usize) -> Vec<NodeSet> {
        match self.game {
            FamilyGame::KnownMinCut => {
                let side = self
                    .family
                    .known_min_cut_side()
                    .expect("KnownMinCut needs a family with a closed-form side");
                vec![side]
            }
            FamilyGame::PrefixDeck(k) => (1..=k)
                .map(|i| {
                    // Nested prefixes, clamped to proper cuts.
                    let take = (i * n / (k + 1)).clamp(1, n - 1);
                    NodeSet::from_indices(n, 0..take)
                })
                .collect(),
        }
    }
}

impl Reduction for FamilyCutReduction {
    type Instance = (DiGraph, AnySketch);
    type Artifact = AnySketch;
    type Answer = Vec<f64>;

    fn name(&self) -> &'static str {
        "family-cut"
    }

    fn sample<R: Rng>(&self, _trial: usize, rng: &mut R) -> Self::Instance {
        let g = self.family.generate(rng);
        let sketch = self.spec.construct(&g, rng);
        (g, sketch)
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        inst.1.clone()
    }

    fn decode<R: Rng>(&self, artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {
        let n = artifact.universe();
        self.deck(n)
            .iter()
            .map(|s| artifact.cut_out_estimate(s))
            .collect()
    }

    fn verify(&self, inst: &Self::Instance, answer: &Self::Answer) -> TrialOutcome {
        let (g, sketch) = inst;
        let deck = self.deck(g.num_nodes());
        let mut worst = 0.0f64;
        for (set, est) in deck.iter().zip(answer) {
            let truth = g.cut_out(set);
            let err = if truth > 0.0 {
                (est - truth).abs() / truth
            } else {
                est.abs()
            };
            worst = worst.max(err);
        }
        TrialOutcome::new(worst <= self.eps, deck.len() as u64)
            .with_aux("err", worst)
            .with_aux("retained", sketch.retained_edges() as f64)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: artifact.wire_bits() as u64,
            cut_queries: 0,
            flow_solves: 0,
        }
    }
}

/// One `(n, β, ε)` cell of the E5 sketch-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct SketchSizeCell {
    /// Node count of the dense balanced digraph.
    pub n: usize,
    /// Balance factor of the generator.
    pub beta: f64,
    /// Target accuracy of the sketches.
    pub eps: f64,
}

/// Measured serialized sizes of one E5 cell's four sketches.
#[derive(Debug, Clone, Copy)]
pub struct SketchSizeRow {
    /// Exact edge-list bits.
    pub exact_bits: usize,
    /// `balanced-forall` sketch bits.
    pub forall_bits: usize,
    /// `balanced-foreach` sketch bits.
    pub foreach_bits: usize,
    /// `two-level` sketch bits.
    pub two_level_bits: usize,
}

/// The E5 sweep as a reduction: trial `t` is cell `t`, and *all* of a
/// cell's randomness (the graph and its three sampled sketches, drawn
/// through the [`SparsifierSpec`] registry entries) is consumed during
/// sampling. Under `Seeding::Shared` on `seed_from_u64(4)` the engine
/// replays the retired sequential loop's byte stream exactly, so the
/// E5 table survives the migration bit for bit at any thread count.
#[derive(Debug, Clone)]
pub struct SketchSizeCellReduction {
    /// The sweep cells in trial order.
    pub cells: Vec<SketchSizeCell>,
}

impl Reduction for SketchSizeCellReduction {
    type Instance = SketchSizeRow;
    type Artifact = SketchSizeRow;
    type Answer = ();

    fn name(&self) -> &'static str {
        "sketch-size-cell"
    }

    fn sample<R: Rng>(&self, trial: usize, rng: &mut R) -> Self::Instance {
        let cell = &self.cells[trial];
        let g = random_balanced_digraph(cell.n, 1.0, cell.beta, rng);
        let exact = EdgeListSketch::from_graph(&g);
        let fa = SparsifierSpec::BalancedForAll {
            epsilon: cell.eps,
            beta: cell.beta,
        }
        .construct(&g, rng);
        let fe = SparsifierSpec::BalancedForEach {
            epsilon: cell.eps,
            beta: cell.beta,
        }
        .construct(&g, rng);
        let two_level = SparsifierSpec::TwoLevel {
            epsilon: cell.eps,
            beta: cell.beta,
        }
        .construct(&g, rng);
        SketchSizeRow {
            exact_bits: exact.size_bits(),
            forall_bits: fa.size_bits(),
            foreach_bits: fe.size_bits(),
            two_level_bits: two_level.size_bits(),
        }
    }

    fn encode(&self, inst: &Self::Instance) -> Self::Artifact {
        *inst
    }

    fn decode<R: Rng>(&self, _artifact: &Self::Artifact, _rng: &mut R) -> Self::Answer {}

    fn verify(&self, inst: &Self::Instance, _answer: &Self::Answer) -> TrialOutcome {
        TrialOutcome::new(true, 0)
            .with_aux("exact_bits", inst.exact_bits as f64)
            .with_aux("forall_bits", inst.forall_bits as f64)
            .with_aux("foreach_bits", inst.foreach_bits as f64)
            .with_aux("two_level_bits", inst.two_level_bits as f64)
    }

    fn resources(&self, artifact: &Self::Artifact) -> Resources {
        Resources {
            wire_bits: (artifact.forall_bits + artifact.foreach_bits + artifact.two_level_bits)
                as u64,
            cut_queries: 0,
            flow_solves: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Seeding, TrialEngine};
    use dircut_graph::generators::connected_gnp;
    use dircut_graph::mincut::min_cut_unweighted;
    use dircut_localquery::{query_degrees, AdjOracle};

    #[test]
    fn eps_scaling_offset_seeding_replays_the_legacy_seed_family() {
        let mut gen = ChaCha8Rng::seed_from_u64(0);
        let g = connected_gnp(40, 0.4, &mut gen);
        let k = min_cut_unweighted(&g) as f64;
        let oracle = AdjOracle::new(&g);
        let rdx = EpsScalingReduction {
            oracle: &oracle,
            eps: 0.4,
            beta0: 0.5,
            true_k: k,
            modified_seed_base: 200,
        };
        // Reference: the retired loop's exact per-rep reseeding.
        let mut ot = 0u64;
        for rep in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + rep);
            let orig = global_min_cut_local(
                &oracle,
                0.4,
                SearchVariant::Original,
                VerifyGuessConfig::default(),
                &mut rng,
            );
            ot += orig.total_queries;
        }
        let report = TrialEngine::new(3).run(&rdx, 3, Seeding::Offset(100));
        assert_eq!(report.aux_sum_u64("orig_total"), ot);
    }

    #[test]
    fn verify_guess_reduction_accepts_below_and_rejects_far_above() {
        let mut gen = ChaCha8Rng::seed_from_u64(1);
        let g = connected_gnp(40, 0.5, &mut gen);
        let k = min_cut_unweighted(&g) as f64;
        let oracle = AdjOracle::new(&g);
        let degrees = query_degrees(&oracle);
        let cfg = VerifyGuessConfig {
            oversample: 6.0,
            accept_fraction: 0.5,
        };
        let low = VerifyGuessReduction {
            oracle: &oracle,
            degrees: &degrees,
            guess: k / 8.0,
            eps: 0.3,
            cfg,
        };
        let high = VerifyGuessReduction {
            oracle: &oracle,
            degrees: &degrees,
            guess: k * 64.0,
            eps: 0.3,
            cfg,
        };
        let engine = TrialEngine::new(2);
        let low_accepts = engine.run(&low, 5, Seeding::Offset(100)).successes();
        let high_accepts = engine.run(&high, 5, Seeding::Offset(100)).successes();
        assert!(low_accepts > high_accepts);
        assert!(low_accepts >= 3, "guess below k accepted {low_accepts}/5");
    }

    #[test]
    fn sparsifier_cell_measures_zero_error_for_the_exact_spec() {
        let mut gen = ChaCha8Rng::seed_from_u64(2);
        let g = random_balanced_digraph(10, 0.7, 2.0, &mut gen);
        let rdx = SparsifierCellReduction {
            graph: &g,
            spec: SparsifierSpec::Exact,
            band: 0.25,
            measure_error: true,
        };
        let report = TrialEngine::new(2).run(&rdx, 3, Seeding::Substream(5));
        assert_eq!(report.successes(), 3);
        assert_eq!(report.aux_max("err"), 0.0);
        for r in &report.records {
            assert!(r.wire_bits > 0, "exact sketch must bill its wire bits");
            assert_eq!(r.cut_queries, (1 << 9) - 1);
            assert_eq!(
                crate::record::EngineReport::aux_of(r, "retained"),
                Some(g.num_edges() as f64)
            );
        }
    }

    #[test]
    fn sketch_size_cells_replay_the_legacy_sequential_loop() {
        use dircut_sketch::{BalancedForAllSketcher, BalancedForEachSketcher};
        let cells = vec![
            SketchSizeCell {
                n: 16,
                beta: 1.0,
                eps: 0.5,
            },
            SketchSizeCell {
                n: 16,
                beta: 4.0,
                eps: 0.25,
            },
        ];
        // Reference: the retired loop's exact draw order on one rng.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut reference = Vec::new();
        for cell in &cells {
            let g = random_balanced_digraph(cell.n, 1.0, cell.beta, &mut rng);
            let fa = BalancedForAllSketcher::new(cell.eps, cell.beta).sketch(&g, &mut rng);
            let fe = BalancedForEachSketcher::new(cell.eps, cell.beta).sketch(&g, &mut rng);
            reference.push((fa.size_bits(), fe.size_bits()));
            let _ = dircut_sketch::DecomposedForEachSketcher::new(cell.eps, cell.beta)
                .sketch(&g, &mut rng);
        }
        let rdx = SketchSizeCellReduction {
            cells: cells.clone(),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let report = TrialEngine::new(2).run(&rdx, cells.len(), Seeding::Shared(&mut rng));
        for (rec, (fa_bits, fe_bits)) in report.records.iter().zip(&reference) {
            assert_eq!(
                crate::record::EngineReport::aux_of(rec, "forall_bits"),
                Some(*fa_bits as f64)
            );
            assert_eq!(
                crate::record::EngineReport::aux_of(rec, "foreach_bits"),
                Some(*fe_bits as f64)
            );
        }
    }
}
