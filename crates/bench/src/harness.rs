//! The trial engine: fans any [`Reduction`] over the PR-1
//! deterministic worker pool and collects typed per-trial records.
//!
//! # Determinism contract
//!
//! Every seeding mode makes trial `t`'s work a pure function of
//! `(reduction, seeding, t)`, so results are bit-identical across
//! `DIRCUT_THREADS` values and scheduling orders —
//! [`run_indexed`] reassembles records by trial index.
//!
//! * [`Seeding::Substream`] is the preferred discipline for new code:
//!   trial `t` runs on `ChaCha8Rng::seed_from_u64(seed)` with
//!   `set_stream(t)` — independent substreams, one seed.
//! * [`Seeding::Offset`] reproduces legacy loops that reseeded per
//!   repetition (`seed_from_u64(base + rep)`).
//! * [`Seeding::Shared`] reproduces legacy loops that threaded one
//!   shared RNG through all trials. The engine replays that byte
//!   stream exactly by running every [`Reduction::sample`] call in
//!   trial order on the caller's RNG before fanning out; this is
//!   faithful because the retired loops drew *all* per-trial
//!   randomness (instances and oracle seeds) before decoding, and the
//!   shipped decoders under `SubsetSearch::Exact` consume none. A
//!   decoder that does draw gets a constant-keyed per-trial substream:
//!   still deterministic, but not byte-comparable against a
//!   pre-refactor sequential run.

use crate::record::{EngineReport, TrialRecord};
use dircut_core::reduction::Reduction;
use dircut_graph::parallel::{default_threads, run_indexed};
use dircut_graph::stats;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How per-trial randomness is derived.
pub enum Seeding<'a> {
    /// One caller-owned RNG threaded through all `sample` calls in
    /// trial order (legacy shared-stream loops; state advances across
    /// consecutive engine runs, which some experiments rely on).
    Shared(&'a mut ChaCha8Rng),
    /// Trial `t` runs on a fresh `seed_from_u64(base + t)` (legacy
    /// reseed-per-rep loops).
    Offset(u64),
    /// Trial `t` runs on `seed_from_u64(seed)` + `set_stream(t)` — the
    /// substream discipline for new experiments.
    Substream(u64),
}

/// Runs a reduction's trials over the deterministic worker pool.
#[derive(Debug, Clone, Copy)]
pub struct TrialEngine {
    /// Worker threads; ≤ 1 runs serially on the calling thread.
    pub threads: usize,
}

impl TrialEngine {
    /// An engine with an explicit thread count.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// An engine sized by `DIRCUT_THREADS` (the same knob the flow
    /// engine honors).
    #[must_use]
    pub fn with_default_threads() -> Self {
        Self {
            threads: default_threads(),
        }
    }

    /// Runs `trials` trials of `rdx` under `seeding` and returns the
    /// records in trial order.
    pub fn run<Rdx>(&self, rdx: &Rdx, trials: usize, seeding: Seeding<'_>) -> EngineReport
    where
        Rdx: Reduction + Sync,
        Rdx::Instance: Send + Sync,
    {
        let records = match seeding {
            Seeding::Shared(rng) => {
                // Phase 1 (caller thread): replay the legacy shared
                // byte stream — every sample in trial order.
                let instances: Vec<Rdx::Instance> =
                    (0..trials).map(|t| rdx.sample(t, rng)).collect();
                // Phase 2 (workers): encode → decode → verify per
                // trial, each on a constant-keyed substream.
                run_indexed(trials, self.threads, |t| {
                    let mut decode_rng = ChaCha8Rng::seed_from_u64(0);
                    decode_rng.set_stream(t as u64);
                    run_one(rdx, t, &instances[t], &mut decode_rng)
                })
            }
            Seeding::Offset(base) => run_indexed(trials, self.threads, |t| {
                let mut rng = ChaCha8Rng::seed_from_u64(base.wrapping_add(t as u64));
                let inst = rdx.sample(t, &mut rng);
                run_one(rdx, t, &inst, &mut rng)
            }),
            Seeding::Substream(seed) => run_indexed(trials, self.threads, |t| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                rng.set_stream(t as u64);
                let inst = rdx.sample(t, &mut rng);
                run_one(rdx, t, &inst, &mut rng)
            }),
        };
        EngineReport {
            reduction: rdx.name().to_owned(),
            records,
        }
    }
}

/// One trial's encode → decode → verify, wholly on the current thread,
/// with `dircut_graph::stats` scoped so stage counters cannot bleed
/// across concurrent trials.
fn run_one<Rdx: Reduction>(
    rdx: &Rdx,
    trial: usize,
    inst: &Rdx::Instance,
    rng: &mut ChaCha8Rng,
) -> TrialRecord {
    let start = std::time::Instant::now();
    let ((artifact, outcome), counts) = stats::scoped(|| {
        let artifact = rdx.encode(inst);
        let answer = rdx.decode(&artifact, rng);
        let outcome = rdx.verify(inst, &answer);
        (artifact, outcome)
    });
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let resources = rdx.resources(&artifact);
    TrialRecord {
        trial,
        success: outcome.success,
        wire_bits: resources.wire_bits,
        cut_queries: outcome.cut_queries,
        flow_solves: resources.flow_solves,
        measured_cut_queries: counts.cut_queries,
        measured_solves: counts.solves,
        wall_ns,
        aux: outcome.aux,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_core::reduction::{ForEachIndexReduction, OracleSpec};
    use dircut_core::ForEachParams;

    fn reduction() -> ForEachIndexReduction {
        ForEachIndexReduction {
            params: ForEachParams::new(4, 1, 2),
            oracle: OracleSpec::Exact,
        }
    }

    #[test]
    fn shared_seeding_matches_the_sequential_reference() {
        // Engine in shared mode == run_reduction_game on the same
        // seed, because the exact-oracle decoder consumes no RNG.
        let rdx = reduction();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let reference = dircut_core::reduction::run_reduction_game(&rdx, 30, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = TrialEngine::new(4).run(&rdx, 30, Seeding::Shared(&mut rng));
        assert_eq!(report.successes(), reference.successes);
        assert_eq!(report.mean_cut_queries(), reference.mean_queries);
    }

    #[test]
    fn thread_count_does_not_change_records() {
        let rdx = reduction();
        let serial = TrialEngine::new(1).run(&rdx, 16, Seeding::Substream(7));
        let parallel = TrialEngine::new(4).run(&rdx, 16, Seeding::Substream(7));
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
    }

    #[test]
    fn trials_are_scoped_for_stats_attribution() {
        let rdx = reduction();
        let report = TrialEngine::new(2).run(&rdx, 8, Seeding::Substream(3));
        // The 4-query decoder issues exactly 4 oracle reads per trial;
        // the scoped counters must see each trial's own reads only.
        for r in &report.records {
            assert_eq!(r.measured_cut_queries, 0, "oracle reads bypass stats");
            assert_eq!(r.cut_queries, 4);
        }
    }
}
