//! Long-running soak harness: every mutation/query/rebuild path the
//! workspace ships, interleaved over the adversarial family roster,
//! with the workspace's cross-cutting invariants asserted continuously.
//!
//! One soak *round* visits one [`FamilySpec`] from
//! [`FamilySpec::soak_roster`] and runs, in order:
//!
//! 1. an edge-mutation batch (advances the graph's mutation epoch, so
//!    the delta-epoch cut cache must retire or revalidate entries);
//! 2. a batch of random proper cut queries answered with the cache
//!    enabled, then again with the cache disabled — the two answer
//!    vectors must be **bit-equal** (delta-epoch coherence: a retained
//!    cache entry is only legal if it equals a cold recompute) and each
//!    pass must bill exactly one cut query per set regardless of hit
//!    rate (the billing invariant);
//! 3. the same batch through the word-parallel kernel at 1 lane, at
//!    4 lanes, and threaded — all bit-equal (lane/thread determinism);
//! 4. every 4th round, a Gomory–Hu rebuild, serial vs threaded, whose
//!    global min cuts must be bit-equal;
//! 5. a snapshot publish plus reader queries that must match the live
//!    graph bit-for-bit;
//! 6. every 8th round, a fault-injected distributed min-cut run
//!    executed twice on one seed — the two outcomes must agree bit-
//!    for-bit (end-to-end runtime determinism under drops/retries).
//!
//! Every answer bit is folded into an FNV-1a digest. `--smoke` runs a
//! fixed round count so the digest itself is deterministic and CI can
//! diff two back-to-back runs; the timed mode runs rounds until the
//! wall-clock budget is spent (the acceptance mode: ≥ 60 s, zero
//! violations).

use dircut_dist::{run_min_cut, FaultPlan, ProtocolConfig, RuntimeConfig};
use dircut_graph::gomory_hu::GomoryHuTree;
use dircut_graph::{cache, cuteval, stats};
use dircut_graph::{DiGraph, FamilySpec, NodeId, NodeSet, SnapshotStore};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Edges added per mutation batch.
const MUTATIONS_PER_ROUND: usize = 4;
/// Random cut queries per round.
const QUERIES_PER_ROUND: usize = 16;
/// Rounds between Gomory–Hu rebuild checks.
const GH_EVERY: u64 = 4;
/// Rounds between fault-injected distributed rounds.
const DIST_EVERY: u64 = 8;
/// Servers per distributed round.
const DIST_SERVERS: usize = 3;

/// Soak run parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Wall-clock budget for the timed mode, in seconds.
    pub seconds: u64,
    /// Fixed-round smoke mode (two passes over the roster); the digest
    /// is deterministic, so CI diffs two runs.
    pub smoke: bool,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// JSON report path (`None` writes `BENCH_soak.json`).
    pub out: Option<String>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            seconds: 60,
            smoke: false,
            seed: 0x50a4,
            out: None,
        }
    }
}

/// What a soak run did and what it found.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Rounds completed.
    pub rounds: u64,
    /// Cut queries issued (cache-on pass only; the billing check
    /// doubles this internally).
    pub queries: u64,
    /// Edges added across all mutation batches.
    pub mutations: u64,
    /// Serial-vs-threaded Gomory–Hu rebuild comparisons.
    pub gh_rebuilds: u64,
    /// Snapshot publishes verified against the live graph.
    pub snapshots: u64,
    /// Fault-injected distributed determinism checks.
    pub dist_rounds: u64,
    /// Every invariant violation observed, in order (empty on a
    /// healthy run).
    pub violations: Vec<String>,
    /// FNV-1a fold of every answer bit the run produced.
    pub digest: u64,
    /// Wall-clock time spent.
    pub elapsed_secs: f64,
}

impl SoakReport {
    /// True iff no invariant was violated.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_fold(h: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// A random proper nonempty node subset.
fn random_cut_set<R: Rng>(n: usize, rng: &mut R) -> NodeSet {
    loop {
        let picked: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.5)).collect();
        if !picked.is_empty() && picked.len() < n {
            return NodeSet::from_indices(n, picked);
        }
    }
}

/// One family's persistent soak state: the live graph it mutates and
/// the snapshot store whose version history it grows.
struct FamilyState {
    spec: FamilySpec,
    graph: DiGraph,
    store: Arc<SnapshotStore>,
}

/// Runs the soak workload and returns the report. Never panics on an
/// invariant violation — violations are collected so a long run
/// reports everything it saw.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let start = Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut states: Vec<FamilyState> = FamilySpec::soak_roster()
        .into_iter()
        .map(|spec| {
            let graph = spec.generate(&mut rng);
            let store = Arc::new(SnapshotStore::from_graph(&graph));
            FamilyState { spec, graph, store }
        })
        .collect();
    let roster_len = states.len() as u64;
    let smoke_rounds = 2 * roster_len;

    let cache_was = cache::enabled();
    let lanes_was = cuteval::lanes();

    let mut report = SoakReport {
        rounds: 0,
        queries: 0,
        mutations: 0,
        gh_rebuilds: 0,
        snapshots: 0,
        dist_rounds: 0,
        violations: Vec::new(),
        digest: FNV_OFFSET,
        elapsed_secs: 0.0,
    };

    let mut round: u64 = 0;
    loop {
        let done = if cfg.smoke {
            round >= smoke_rounds
        } else {
            start.elapsed().as_secs() >= cfg.seconds
        };
        if done {
            break;
        }
        let state = &mut states[(round % roster_len) as usize];
        soak_round(state, round, &mut rng, &mut report);
        round += 1;
        report.rounds = round;
    }

    cache::set_enabled(cache_was);
    cuteval::set_lanes(lanes_was);
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report
}

/// One full round on one family. Appends to `report`.
fn soak_round(state: &mut FamilyState, round: u64, rng: &mut ChaCha8Rng, report: &mut SoakReport) {
    let name = state.spec.name();
    let fail = |report: &mut SoakReport, msg: String| {
        report
            .violations
            .push(format!("round {round} [{name}]: {msg}"));
    };

    // 1. Mutation batch: random extra edges, advancing the epoch.
    let n = state.graph.num_nodes();
    for _ in 0..MUTATIONS_PER_ROUND {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if v == u {
            v = (v + 1) % n;
        }
        let w = rng.gen_range(0.5..2.0);
        state.graph.add_edge(NodeId::new(u), NodeId::new(v), w);
    }
    report.mutations += MUTATIONS_PER_ROUND as u64;

    let sets: Vec<NodeSet> = (0..QUERIES_PER_ROUND)
        .map(|_| random_cut_set(n, rng))
        .collect();

    // 2. Billing invariant + delta-epoch cache coherence. The cache-on
    // pass runs first so it both populates and (after the mutation
    // above) revalidates entries retained from earlier rounds.
    cache::set_enabled(true);
    let before_on = stats::total_cut_queries();
    let warm: Vec<(f64, f64)> = sets.iter().map(|s| state.graph.cut_both(s)).collect();
    let billed_on = stats::total_cut_queries() - before_on;
    cache::set_enabled(false);
    let before_off = stats::total_cut_queries();
    let cold: Vec<(f64, f64)> = sets.iter().map(|s| state.graph.cut_both(s)).collect();
    let billed_off = stats::total_cut_queries() - before_off;
    cache::set_enabled(true);
    report.queries += QUERIES_PER_ROUND as u64;
    if billed_on != QUERIES_PER_ROUND as u64 || billed_off != QUERIES_PER_ROUND as u64 {
        fail(
            report,
            format!(
                "billing: {billed_on} (cache on) / {billed_off} (cache off) \
                 queries billed for {QUERIES_PER_ROUND} sets"
            ),
        );
    }
    for (i, (w, c)) in warm.iter().zip(&cold).enumerate() {
        if w.0.to_bits() != c.0.to_bits() || w.1.to_bits() != c.1.to_bits() {
            fail(
                report,
                format!("cache coherence: set {i} warm {w:?} != cold {c:?}"),
            );
        }
    }

    // 3. Lane and thread determinism of the batched kernel.
    cuteval::set_lanes(1);
    let lane1 = cuteval::cut_both_batch_threaded(&state.graph, &sets, 1);
    cuteval::set_lanes(4);
    let lane4 = cuteval::cut_both_batch_threaded(&state.graph, &sets, 1);
    let threaded = cuteval::cut_both_batch_threaded(&state.graph, &sets, 4);
    for (i, ((a, b), c)) in lane1.iter().zip(&lane4).zip(&threaded).enumerate() {
        let agree = a.0.to_bits() == b.0.to_bits()
            && a.1.to_bits() == b.1.to_bits()
            && a.0.to_bits() == c.0.to_bits()
            && a.1.to_bits() == c.1.to_bits();
        if !agree {
            fail(
                report,
                format!("lane/thread determinism: set {i} 1-lane {a:?} 4-lane {b:?} threaded {c:?}"),
            );
        }
        if a.0.to_bits() != cold[i].0.to_bits() || a.1.to_bits() != cold[i].1.to_bits() {
            fail(
                report,
                format!("kernel vs scalar: set {i} batch {a:?} != direct {:?}", cold[i]),
            );
        }
    }
    for (o, i) in &cold {
        fnv_fold(&mut report.digest, o.to_bits());
        fnv_fold(&mut report.digest, i.to_bits());
    }

    // 4. Gomory–Hu rebuild: serial vs threaded must agree.
    if round % GH_EVERY == GH_EVERY - 1 {
        let serial = GomoryHuTree::build(&state.graph);
        let threaded = GomoryHuTree::build_threaded(&state.graph, 4);
        let (a, b) = (serial.global_min_cut(), threaded.global_min_cut());
        if a.to_bits() != b.to_bits() {
            fail(report, format!("gomory-hu: serial {a} != threaded {b}"));
        }
        fnv_fold(&mut report.digest, a.to_bits());
        report.gh_rebuilds += 1;
    }

    // 5. Snapshot publish + reader coherence against the live graph.
    let version = state.store.publish_graph(&state.graph);
    if state.store.version() != version {
        fail(
            report,
            format!(
                "snapshot: store version {} != returned {version}",
                state.store.version()
            ),
        );
    }
    let mut reader = state.store.reader();
    let snap = reader.load().clone();
    if snap.epoch() != state.graph.mutation_epoch() {
        fail(
            report,
            format!(
                "snapshot: captured epoch {} != live epoch {}",
                snap.epoch(),
                state.graph.mutation_epoch()
            ),
        );
    }
    for (i, s) in sets.iter().take(4).enumerate() {
        match snap.try_cut_both(s) {
            Ok(pair) => {
                if pair.0.to_bits() != cold[i].0.to_bits() || pair.1.to_bits() != cold[i].1.to_bits()
                {
                    fail(
                        report,
                        format!("snapshot: set {i} snapshot {pair:?} != live {:?}", cold[i]),
                    );
                }
            }
            Err(e) => fail(report, format!("snapshot: set {i} universe error: {e}")),
        }
    }
    report.snapshots += 1;

    // 6. Fault-injected distributed round, twice on one seed.
    if round % DIST_EVERY == DIST_EVERY - 1 {
        let mut protocol = ProtocolConfig::new(0.3);
        protocol.enumeration_trials = 40;
        let dist_seed = 0xd157_0000 + round;
        let build = || {
            RuntimeConfig::builder(protocol)
                .faults(FaultPlan::new().drop(0.1).build())
                .retries(4)
                .seed(dist_seed)
                .build()
        };
        let g = state.graph.coalesced();
        match (
            run_min_cut(&g, DIST_SERVERS, &build()),
            run_min_cut(&g, DIST_SERVERS, &build()),
        ) {
            (Ok(x), Ok(y)) => {
                let same = x.answer.estimate.to_bits() == y.answer.estimate.to_bits()
                    && x.answer.side == y.answer.side
                    && x.answer.total_wire_bits == y.answer.total_wire_bits
                    && x.arrived == y.arrived;
                if !same {
                    fail(
                        report,
                        format!(
                            "dist determinism: seed {dist_seed} gave ({}, {} bits, {} arrived) \
                             then ({}, {} bits, {} arrived)",
                            x.answer.estimate,
                            x.answer.total_wire_bits,
                            x.arrived,
                            y.answer.estimate,
                            y.answer.total_wire_bits,
                            y.arrived
                        ),
                    );
                }
                fnv_fold(&mut report.digest, x.answer.estimate.to_bits());
                fnv_fold(&mut report.digest, x.answer.total_wire_bits as u64);
            }
            (Err(e), _) | (_, Err(e)) => {
                fail(report, format!("dist round failed outright: {e}"));
            }
        }
        report.dist_rounds += 1;
    }
}

/// Renders the report as the `dircut-soak-v1` JSON document.
#[must_use]
pub fn soak_json(cfg: &SoakConfig, report: &SoakReport) -> String {
    let mut out = String::from("{\n  \"schema\": \"dircut-soak-v1\",\n  \"bin\": \"soak\",\n");
    let _ = writeln!(out, "  \"smoke\": {},", cfg.smoke);
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"seconds_budget\": {},", cfg.seconds);
    let _ = writeln!(out, "  \"rounds\": {},", report.rounds);
    let _ = writeln!(out, "  \"queries\": {},", report.queries);
    let _ = writeln!(out, "  \"mutations\": {},", report.mutations);
    let _ = writeln!(out, "  \"gh_rebuilds\": {},", report.gh_rebuilds);
    let _ = writeln!(out, "  \"snapshots\": {},", report.snapshots);
    let _ = writeln!(out, "  \"dist_rounds\": {},", report.dist_rounds);
    let _ = writeln!(out, "  \"digest\": \"{:016x}\",", report.digest);
    let _ = writeln!(out, "  \"elapsed_secs\": {:.3},", report.elapsed_secs);
    out.push_str("  \"violations\": [\n");
    for (i, v) in report.violations.iter().enumerate() {
        let comma = if i + 1 < report.violations.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\"{comma}", v.replace('"', "'"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the human summary, writes the JSON document, and returns
/// whether the run was clean. Shared by the `soak` bin and the
/// `dircut soak` subcommand.
pub fn soak_emit(cfg: &SoakConfig, report: &SoakReport) -> bool {
    println!(
        "rounds = {}, queries = {}, mutations = {}, gh rebuilds = {}, \
         snapshots = {}, dist rounds = {}",
        report.rounds,
        report.queries,
        report.mutations,
        report.gh_rebuilds,
        report.snapshots,
        report.dist_rounds
    );
    println!("digest = {:016x}", report.digest);
    println!("elapsed = {:.1} s", report.elapsed_secs);
    for v in &report.violations {
        eprintln!("VIOLATION: {v}");
    }
    let path = cfg.out.clone().unwrap_or_else(|| "BENCH_soak.json".into());
    if let Err(e) = std::fs::write(&path, soak_json(cfg, report)) {
        eprintln!("warning: writing {path}: {e}");
    } else {
        println!("report: {path}");
    }
    if report.clean() {
        println!("OK: zero violations");
    } else {
        eprintln!("FAILED: {} violation(s)", report.violations.len());
    }
    report.clean()
}

/// Runs the soak end to end and returns the process exit code
/// (failure iff any violation).
pub fn soak_main(cfg: &SoakConfig) -> std::process::ExitCode {
    println!(
        "=== soak: mutation/query/rebuild interleave over {} families ===",
        FamilySpec::soak_roster().len()
    );
    if cfg.smoke {
        println!(
            "mode: smoke (fixed rounds, deterministic digest), seed = {}",
            cfg.seed
        );
    } else {
        println!("mode: timed, budget = {} s, seed = {}", cfg.seconds, cfg.seed);
    }
    let report = run_soak(cfg);
    if soak_emit(cfg, &report) {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(seed: u64) -> SoakConfig {
        SoakConfig {
            seconds: 0,
            smoke: true,
            seed,
            out: None,
        }
    }

    #[test]
    fn smoke_run_is_clean_and_deterministic() {
        let a = run_soak(&smoke_cfg(7));
        assert!(a.clean(), "violations: {:?}", a.violations);
        assert_eq!(a.rounds, 2 * FamilySpec::soak_roster().len() as u64);
        assert!(a.dist_rounds >= 1, "smoke must cover a distributed round");
        let b = run_soak(&smoke_cfg(7));
        assert_eq!(a.digest, b.digest, "same seed must replay bit-identically");
        let c = run_soak(&smoke_cfg(8));
        assert_ne!(a.digest, c.digest, "digest must depend on the seed");
    }

    #[test]
    fn json_document_carries_the_schema_and_digest() {
        let cfg = smoke_cfg(3);
        let report = run_soak(&cfg);
        let json = soak_json(&cfg, &report);
        assert!(json.contains("\"schema\": \"dircut-soak-v1\""));
        assert!(json.contains(&format!("{:016x}", report.digest)));
        assert!(json.contains("\"violations\": [\n  ]"));
    }
}
