//! Property-based tests for the local query model and VERIFY-GUESS.

use dircut_graph::generators::connected_gnp;
use dircut_graph::mincut::min_cut_unweighted;
use dircut_graph::NodeId;
use dircut_localquery::{
    query_degrees, verify_guess, AdjOracle, CountingOracle, GraphOracle, MultiAdjOracle,
    VerifyGuessConfig,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn full_sampling_recovers_exact_min_cut(n in 6usize..24, seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = connected_gnp(n, 0.4, &mut rng);
        let k = min_cut_unweighted(&g);
        let oracle = AdjOracle::new(&g);
        let degrees = query_degrees(&oracle);
        // Tiny t forces p = 1: the skeleton is the whole graph.
        let out = verify_guess(&oracle, &degrees, 0.25, 0.3, VerifyGuessConfig::default(), &mut rng);
        prop_assert_eq!(out.sample_probability, 1.0);
        prop_assert!((out.estimate - k as f64).abs() < 1e-9);
    }

    #[test]
    fn query_counters_account_for_every_call(n in 4usize..20, seed in 0u64..10_000, reps in 1usize..20) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = connected_gnp(n, 0.5, &mut rng);
        let oracle = CountingOracle::new(AdjOracle::new(&g));
        use rand::Rng;
        let (mut d, mut nb, mut adj) = (0u64, 0u64, 0u64);
        for _ in 0..reps {
            match rng.gen_range(0..3) {
                0 => {
                    let _ = oracle.degree(NodeId::new(rng.gen_range(0..n)));
                    d += 1;
                }
                1 => {
                    let _ = oracle.ith_neighbor(NodeId::new(rng.gen_range(0..n)), rng.gen_range(0..n));
                    nb += 1;
                }
                _ => {
                    let _ = oracle.adjacent(
                        NodeId::new(rng.gen_range(0..n)),
                        NodeId::new(rng.gen_range(0..n)),
                    );
                    adj += 1;
                }
            }
        }
        let c = oracle.counts();
        prop_assert_eq!(c.degree, d);
        prop_assert_eq!(c.neighbor, nb);
        prop_assert_eq!(c.adjacency, adj);
        prop_assert_eq!(c.total(), d + nb + adj);
    }

    #[test]
    fn neighbor_queries_bounded_by_slot_count(n in 8usize..24, seed in 0u64..10_000, t in 1u32..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = connected_gnp(n, 0.5, &mut rng);
        let oracle = CountingOracle::new(AdjOracle::new(&g));
        let degrees = query_degrees(&oracle);
        oracle.reset();
        let out = verify_guess(&oracle, &degrees, f64::from(t), 0.4, VerifyGuessConfig::default(), &mut rng);
        let slots: u64 = degrees.iter().map(|&d| d as u64).sum();
        prop_assert!(out.neighbor_queries <= slots);
        prop_assert_eq!(oracle.counts().neighbor, out.neighbor_queries);
    }

    #[test]
    fn blowup_oracle_invariants(n in 3usize..12, mult in 1usize..20) {
        let g = MultiAdjOracle::cycle_blowup(n, mult);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.num_edges(), n * mult);
        for u in 0..n {
            let u_id = NodeId::new(u);
            prop_assert_eq!(g.degree(u_id), 2 * mult);
            prop_assert!(g.adjacent(u_id, NodeId::new((u + 1) % n)));
            if n > 3 {
                prop_assert!(!g.adjacent(u_id, NodeId::new((u + 2) % n)));
            }
            // Every slot resolves; one past the degree is ⊥.
            for i in 0..g.degree(u_id) {
                prop_assert!(g.ith_neighbor(u_id, i).is_some());
            }
            prop_assert!(g.ith_neighbor(u_id, g.degree(u_id)).is_none());
        }
    }

    #[test]
    fn blowup_estimate_matches_known_min_cut(n in 4usize..8, mult in 5usize..40, seed in 0u64..1000) {
        // p = 1 regime: the estimate must be exactly 2·multiplicity.
        let g = MultiAdjOracle::cycle_blowup(n, mult);
        let degrees = query_degrees(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = verify_guess(&g, &degrees, 0.25, 0.3, VerifyGuessConfig::default(), &mut rng);
        prop_assert_eq!(out.sample_probability, 1.0);
        prop_assert!((out.estimate - 2.0 * mult as f64).abs() < 1e-9, "estimate {}", out.estimate);
    }
}
