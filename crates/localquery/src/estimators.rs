//! Sublinear estimators in the local query model.
//!
//! The min-cut algorithms need `m` (or the degree vector) to budget
//! their sampling; when only the oracle is available, classic
//! vertex-sampling estimators recover the edge count from a handful of
//! degree queries. These are the standard warm-ups of the sublinear
//! literature the paper's Section 5 model comes from [RSW18, ER18].

use crate::oracle::GraphOracle;
use dircut_graph::NodeId;
use rand::Rng;

/// Estimate of the average degree from `samples` uniform degree
/// queries. Unbiased; relative error `O(σ_deg/(d̄·√samples))`.
///
/// # Panics
/// Panics if `samples == 0` or the graph is empty.
#[must_use]
pub fn estimate_average_degree<O: GraphOracle, R: Rng>(
    oracle: &O,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let n = oracle.num_nodes();
    assert!(n > 0, "empty graph");
    assert!(samples > 0, "need at least one sample");
    let total: usize = (0..samples)
        .map(|_| oracle.degree(NodeId::new(rng.gen_range(0..n))))
        .sum();
    total as f64 / samples as f64
}

/// Estimate of the edge count `m = n·d̄/2` from degree sampling.
#[must_use]
pub fn estimate_edge_count<O: GraphOracle, R: Rng>(oracle: &O, samples: usize, rng: &mut R) -> f64 {
    estimate_average_degree(oracle, samples, rng) * oracle.num_nodes() as f64 / 2.0
}

/// Estimate of the number of triangles incident to sampled wedges —
/// the standard wedge-sampling estimator: sample a vertex ∝ uniform,
/// then two random neighbor slots, and test adjacency. Returns the
/// estimated *global* triangle count (each triangle is counted from
/// its 3 wedges at closing probability 1, so the wedge count scales
/// back exactly).
///
/// # Panics
/// Panics if `samples == 0`.
#[must_use]
pub fn estimate_triangles<O: GraphOracle, R: Rng>(oracle: &O, samples: usize, rng: &mut R) -> f64 {
    let n = oracle.num_nodes();
    assert!(samples > 0, "need at least one sample");
    // Total wedge count Σ_v C(deg v, 2) needs the degree vector; spend
    // n degree queries (cheap next to the sampling phase).
    let degrees: Vec<usize> = (0..n).map(|v| oracle.degree(NodeId::new(v))).collect();
    let wedges: f64 = degrees
        .iter()
        .map(|&d| (d * d.saturating_sub(1)) as f64 / 2.0)
        .sum();
    if wedges == 0.0 {
        return 0.0;
    }
    // Sample wedges ∝ their center's wedge count.
    let mut closed = 0usize;
    for _ in 0..samples {
        // Weighted center pick by C(deg, 2).
        let mut pick = rng.gen_range(0.0..wedges);
        let mut center = n - 1;
        for (v, &d) in degrees.iter().enumerate() {
            let w = (d * d.saturating_sub(1)) as f64 / 2.0;
            if pick < w {
                center = v;
                break;
            }
            pick -= w;
        }
        let d = degrees[center];
        if d < 2 {
            continue;
        }
        let i = rng.gen_range(0..d);
        let mut j = rng.gen_range(0..d - 1);
        if j >= i {
            j += 1;
        }
        let c = NodeId::new(center);
        let (a, b) = (
            oracle
                .ith_neighbor(c, i)
                .expect("degree/neighbor inconsistency"),
            oracle
                .ith_neighbor(c, j)
                .expect("degree/neighbor inconsistency"),
        );
        if oracle.adjacent(a, b) {
            closed += 1;
        }
    }
    // Each triangle closes 3 of the `wedges` wedges.
    (closed as f64 / samples as f64) * wedges / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{AdjOracle, CountingOracle};
    use dircut_graph::generators::connected_gnp;
    use dircut_graph::{NodeId as N, UnGraph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn edge_count_estimator_is_accurate() {
        let mut gen = ChaCha8Rng::seed_from_u64(0);
        let g = connected_gnp(200, 0.2, &mut gen);
        let oracle = AdjOracle::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = estimate_edge_count(&oracle, 400, &mut rng);
        let truth = g.num_edges() as f64;
        assert!(
            (est - truth).abs() < 0.15 * truth,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn estimator_spends_exactly_the_sampled_queries() {
        let mut gen = ChaCha8Rng::seed_from_u64(2);
        let g = connected_gnp(40, 0.3, &mut gen);
        let oracle = CountingOracle::new(AdjOracle::new(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = estimate_edge_count(&oracle, 25, &mut rng);
        assert_eq!(oracle.counts().degree, 25);
        assert_eq!(oracle.counts().neighbor, 0);
    }

    #[test]
    fn triangle_estimator_on_known_graphs() {
        // K5 has C(5,3) = 10 triangles.
        let mut g = UnGraph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(N::new(u), N::new(v));
            }
        }
        let oracle = AdjOracle::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let est = estimate_triangles(&oracle, 3000, &mut rng);
        assert!((est - 10.0).abs() < 1.0, "est {est}");
        // A star has none.
        let mut star = UnGraph::new(6);
        for v in 1..6 {
            star.add_edge(N::new(0), N::new(v));
        }
        let est = estimate_triangles(&AdjOracle::new(&star), 500, &mut rng);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn triangle_estimator_handles_degenerate_graphs() {
        let g = UnGraph::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(estimate_triangles(&AdjOracle::new(&g), 10, &mut rng), 0.0);
    }
}
