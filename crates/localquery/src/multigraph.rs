//! Multigraph oracles: the local query model extended with parallel
//! edges.
//!
//! The paper defines the model over simple unweighted graphs, but the
//! interesting query-complexity regime `ε²k ≫ log n` (where the
//! sampling probability `p = C·ln n/(ε²t)` is genuinely below 1)
//! requires min-cuts far larger than the node count — impossible for
//! simple graphs of tractable size. Parallel edges are the standard
//! fix: a *blow-up* multigraph keeps `n` small while making `k`
//! arbitrarily large, and degree/neighbor/adjacency queries extend
//! verbatim (the `i`-th neighbor now ranges over edge slots).
//! DESIGN.md records this substitution for experiment E4.

use crate::oracle::GraphOracle;
use dircut_graph::NodeId;

/// An explicit multigraph oracle: ordered adjacency lists that may
/// repeat neighbors.
#[derive(Debug, Clone)]
pub struct MultiAdjOracle {
    adj: Vec<Vec<NodeId>>,
}

impl MultiAdjOracle {
    /// Builds from adjacency lists (must be symmetric: every copy of
    /// `{u,v}` appears in both lists).
    #[must_use]
    pub fn new(adj: Vec<Vec<NodeId>>) -> Self {
        Self { adj }
    }

    /// A blow-up cycle: `n` nodes in a ring, each consecutive pair
    /// joined by `multiplicity` parallel edges. Its min cut is
    /// `2·multiplicity` and it has `n·multiplicity` edges.
    ///
    /// # Panics
    /// Panics if `n < 3` or `multiplicity == 0`.
    #[must_use]
    pub fn cycle_blowup(n: usize, multiplicity: usize) -> Self {
        assert!(n >= 3, "cycle needs ≥ 3 nodes");
        assert!(multiplicity >= 1, "multiplicity must be ≥ 1");
        let mut adj = vec![Vec::with_capacity(2 * multiplicity); n];
        for u in 0..n {
            let v = (u + 1) % n;
            for _ in 0..multiplicity {
                adj[u].push(NodeId::new(v));
                adj[v].push(NodeId::new(u));
            }
        }
        Self { adj }
    }

    /// Total number of edges (each parallel copy counted once).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

impl GraphOracle for MultiAdjOracle {
    fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    fn ith_neighbor(&self, u: NodeId, i: usize) -> Option<NodeId> {
        self.adj[u.index()].get(i).copied()
    }

    fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_blowup_shape() {
        let g = MultiAdjOracle::cycle_blowup(5, 3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 15);
        for u in 0..5 {
            assert_eq!(g.degree(NodeId::new(u)), 6);
        }
        assert!(g.adjacent(NodeId::new(0), NodeId::new(1)));
        assert!(g.adjacent(NodeId::new(0), NodeId::new(4)));
        assert!(!g.adjacent(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn neighbor_slots_cover_all_parallels() {
        let g = MultiAdjOracle::cycle_blowup(4, 2);
        let u = NodeId::new(1);
        let neighbors: Vec<_> = (0..g.degree(u))
            .map(|i| g.ith_neighbor(u, i).unwrap())
            .collect();
        assert_eq!(
            neighbors.iter().filter(|&&v| v == NodeId::new(0)).count(),
            2
        );
        assert_eq!(
            neighbors.iter().filter(|&&v| v == NodeId::new(2)).count(),
            2
        );
        assert_eq!(g.ith_neighbor(u, 4), None);
    }
}
