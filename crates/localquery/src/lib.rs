//! The local query model of Section 5 of the paper, plus the min-cut
//! algorithms whose query complexity the paper bounds.
//!
//! * [`oracle`] — degree / i-th-neighbor / adjacency oracles with exact
//!   per-type query counting,
//! * [`verify_guess`] — the VERIFY-GUESS sub-routine (Lemma 5.8),
//! * [`bgmp`] — the BGMP21 halving search, in its original
//!   (`Õ(m/(ε⁴k))`) and the paper's modified (`Õ(m/(ε²k))`,
//!   Theorem 5.7) variants,
//! * [`multigraph`] — the model with parallel edges (blow-up instances
//!   for the E4 scaling regime),
//! * [`estimators`] — classic sublinear degree/edge/triangle estimators
//!   in the same query model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgmp;
pub mod estimators;
pub mod multigraph;
pub mod oracle;
pub mod verify_guess;

pub use bgmp::{global_min_cut_local, safety_gap, MinCutRunResult, SearchVariant};
pub use estimators::{estimate_average_degree, estimate_edge_count, estimate_triangles};
pub use multigraph::MultiAdjOracle;
pub use oracle::{read_entire_graph, AdjOracle, CountingOracle, GraphOracle, QueryCounts};
pub use verify_guess::{query_degrees, verify_guess, VerifyGuessConfig, VerifyGuessOutcome};
