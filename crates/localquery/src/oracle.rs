//! The local query model of Section 5 of the paper.
//!
//! The graph is unknown; algorithms may only issue three query types
//! against an oracle: **degree** (`deg(u)`), **edge** (the `i`-th
//! neighbor of `u`, or ⊥ past the degree), and **adjacency**
//! (`{u,v} ∈ E?`). Complexity is the number of queries.

use dircut_graph::{NodeId, UnGraph};
use std::cell::Cell;

/// An oracle answering the three local queries.
pub trait GraphOracle {
    /// Number of vertices (known to the algorithm in this model).
    fn num_nodes(&self) -> usize;

    /// Degree query.
    fn degree(&self, u: NodeId) -> usize;

    /// Edge query: the `i`-th neighbor of `u` (0-indexed), or `None`
    /// (the paper's ⊥) if `i ≥ deg(u)`.
    fn ith_neighbor(&self, u: NodeId, i: usize) -> Option<NodeId>;

    /// Adjacency query.
    fn adjacent(&self, u: NodeId, v: NodeId) -> bool;
}

/// Direct oracle over a concrete [`UnGraph`].
#[derive(Debug, Clone)]
pub struct AdjOracle<'a> {
    graph: &'a UnGraph,
}

impl<'a> AdjOracle<'a> {
    /// Wraps a graph.
    #[must_use]
    pub fn new(graph: &'a UnGraph) -> Self {
        Self { graph }
    }
}

impl GraphOracle for AdjOracle<'_> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn degree(&self, u: NodeId) -> usize {
        self.graph.degree(u)
    }

    fn ith_neighbor(&self, u: NodeId, i: usize) -> Option<NodeId> {
        self.graph.ith_neighbor(u, i)
    }

    fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.has_edge(u, v)
    }
}

/// Exact per-type query counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCounts {
    /// Degree queries issued.
    pub degree: u64,
    /// Edge (i-th neighbor) queries issued.
    pub neighbor: u64,
    /// Adjacency queries issued.
    pub adjacency: u64,
}

impl QueryCounts {
    /// Total queries across all three types.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.degree + self.neighbor + self.adjacency
    }
}

/// Wraps any oracle, counting every query.
#[derive(Debug)]
pub struct CountingOracle<O> {
    inner: O,
    degree: Cell<u64>,
    neighbor: Cell<u64>,
    adjacency: Cell<u64>,
}

impl<O: GraphOracle> CountingOracle<O> {
    /// Wraps `inner` with zeroed counters.
    #[must_use]
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            degree: Cell::new(0),
            neighbor: Cell::new(0),
            adjacency: Cell::new(0),
        }
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn counts(&self) -> QueryCounts {
        QueryCounts {
            degree: self.degree.get(),
            neighbor: self.neighbor.get(),
            adjacency: self.adjacency.get(),
        }
    }

    /// Resets the counters to zero.
    pub fn reset(&self) {
        self.degree.set(0);
        self.neighbor.set(0);
        self.adjacency.set(0);
    }
}

impl<O: GraphOracle> GraphOracle for CountingOracle<O> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn degree(&self, u: NodeId) -> usize {
        self.degree.set(self.degree.get() + 1);
        self.inner.degree(u)
    }

    fn ith_neighbor(&self, u: NodeId, i: usize) -> Option<NodeId> {
        self.neighbor.set(self.neighbor.get() + 1);
        self.inner.ith_neighbor(u, i)
    }

    fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency.set(self.adjacency.get() + 1);
        self.inner.adjacent(u, v)
    }
}

/// Reconstructs the entire unknown graph by exhaustively spending
/// `n` degree queries plus one neighbor query per edge slot — the
/// trivial `Θ(m)` upper bound every lower bound is measured against.
#[must_use]
pub fn read_entire_graph<O: GraphOracle>(oracle: &O) -> UnGraph {
    dircut_graph::stats::timed_stage("localquery/read_entire_graph", || {
        let n = oracle.num_nodes();
        let mut g = UnGraph::new(n);
        for u in 0..n {
            let u_id = NodeId::new(u);
            let deg = oracle.degree(u_id);
            for i in 0..deg {
                let v = oracle
                    .ith_neighbor(u_id, i)
                    .expect("degree/neighbor inconsistency");
                g.add_edge(u_id, v);
            }
        }
        g
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UnGraph {
        let mut g = UnGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        g.add_edge(NodeId::new(2), NodeId::new(0));
        g
    }

    #[test]
    fn adj_oracle_answers_all_three_queries() {
        let g = triangle();
        let o = AdjOracle::new(&g);
        assert_eq!(o.num_nodes(), 3);
        assert_eq!(o.degree(NodeId::new(0)), 2);
        assert_eq!(o.ith_neighbor(NodeId::new(0), 0), Some(NodeId::new(1)));
        assert_eq!(o.ith_neighbor(NodeId::new(0), 2), None);
        assert!(o.adjacent(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn counting_oracle_tracks_each_type() {
        let g = triangle();
        let o = CountingOracle::new(AdjOracle::new(&g));
        let _ = o.degree(NodeId::new(0));
        let _ = o.degree(NodeId::new(1));
        let _ = o.ith_neighbor(NodeId::new(0), 0);
        let _ = o.adjacent(NodeId::new(0), NodeId::new(2));
        let c = o.counts();
        assert_eq!(c.degree, 2);
        assert_eq!(c.neighbor, 1);
        assert_eq!(c.adjacency, 1);
        assert_eq!(c.total(), 4);
        o.reset();
        assert_eq!(o.counts().total(), 0);
    }

    #[test]
    fn read_entire_graph_reconstructs_and_counts() {
        let g = triangle();
        let o = CountingOracle::new(AdjOracle::new(&g));
        let back = read_entire_graph(&o);
        assert_eq!(back.num_edges(), 3);
        assert!(back.has_edge(NodeId::new(0), NodeId::new(2)));
        let c = o.counts();
        assert_eq!(c.degree, 3);
        assert_eq!(c.neighbor, 6); // both slots of each edge
    }

    #[test]
    fn num_nodes_is_free() {
        let g = triangle();
        let o = CountingOracle::new(AdjOracle::new(&g));
        let _ = o.num_nodes();
        assert_eq!(o.counts().total(), 0);
    }
}
