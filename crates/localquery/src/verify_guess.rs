//! The VERIFY-GUESS sub-routine (Lemma 5.8 of the paper, after
//! \[BGMP21\]).
//!
//! Given a guess `t` for the min-cut size `k`, sample every edge of
//! the unknown graph independently with probability
//! `p = min(1, C·ln n / (ε²·t))` through neighbor queries, compute the
//! min-cut of the sampled skeleton, and scale back by `1/p`. Karger's
//! sampling theorem gives:
//!
//! * if `t ≤ k`, the scaled estimate is a `(1±ε)`-approximation of `k`
//!   w.h.p. and the guess is **accepted**;
//! * if `t ≫ k`, the skeleton's min-cut is far below its accepted
//!   level and the guess is **rejected**.
//!
//! The expected number of queries is `O(m·p) = O(m·ln n/(ε²·t))`.
//!
//! Edge sampling through slots: each undirected edge `{u,v}` owns two
//! neighbor-query slots (`(u,i)` and `(v,j)`); sampling each slot with
//! probability `q = 1 − √(1−p)` keeps the edge with probability
//! exactly `p` while only touching slots the oracle model offers.

use crate::oracle::GraphOracle;
use dircut_graph::mincut::stoer_wagner;
use dircut_graph::{DiGraph, NodeId};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Upper bound on memoized skeletons. A key stores one `(u32, u32,
/// u64)` triple per distinct skeleton pair, so at experiment scale
/// (hundreds of pairs) the table stays well under a few MiB.
const SKELETON_MEMO_CAP: usize = 1 << 12;

/// Process-global memo of skeleton → Stoer–Wagner min-cut value.
///
/// The key is the *exact* skeleton content: the node count plus every
/// sorted `(u, v, weight_bits)` triple, so two samples hit only when
/// they would build bit-identical `DiGraph`s — the cached value is then
/// the value the cold solve would have produced, bit for bit. Repeated
/// same-seed runs (benchmark reps, multi-trial experiments) replay
/// identical sample sequences and hit on every skeleton after the
/// first run.
///
/// Billing invariant: the neighbor queries that *built* the skeleton
/// were already counted during sampling, and the skeleton solve itself
/// is not a billed oracle query, so serving it from the memo changes
/// no query count. Observable only via
/// [`dircut_graph::stats::total_cache_hits`] and wall-clock time.
fn skeleton_memo() -> &'static Mutex<HashMap<SkeletonKey, f64>> {
    static MEMO: OnceLock<Mutex<HashMap<SkeletonKey, f64>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

type SkeletonKey = (usize, Box<[(u32, u32, u64)]>);

/// Computes (or replays) the min-cut of a skeleton multigraph, keyed
/// by its exact content. Falls through to `compute` verbatim when the
/// cache is disabled.
fn skeleton_mincut_cached(key: SkeletonKey, compute: impl FnOnce() -> f64) -> f64 {
    if !dircut_graph::cache::enabled() {
        return compute();
    }
    if let Some(&value) = skeleton_memo()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&key)
    {
        dircut_graph::stats::count_cache_hits(1);
        return value;
    }
    let value = compute();
    dircut_graph::stats::count_cache_misses(1);
    let mut memo = skeleton_memo()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if memo.len() < SKELETON_MEMO_CAP || memo.contains_key(&key) {
        memo.insert(key, value);
    }
    value
}

/// Tunable constants of VERIFY-GUESS. The paper's `2000·log n/ε²`-style
/// constants are not optimized; defaults here are calibrated so the
/// accept/reject contract holds empirically at experiment scale.
#[derive(Debug, Clone, Copy)]
pub struct VerifyGuessConfig {
    /// The oversampling constant `C` in `p = C·ln n/(ε²·t)`.
    pub oversample: f64,
    /// Accept iff `estimate ≥ accept_fraction · t`.
    pub accept_fraction: f64,
}

impl Default for VerifyGuessConfig {
    fn default() -> Self {
        Self {
            oversample: 6.0,
            accept_fraction: 0.5,
        }
    }
}

/// Outcome of one VERIFY-GUESS call.
#[derive(Debug, Clone, Copy)]
pub struct VerifyGuessOutcome {
    /// Whether the guess `t` was accepted (evidence that `t ≲ k`).
    pub accepted: bool,
    /// The scaled min-cut estimate `mincut(skeleton)/p`. Only a valid
    /// `(1±ε)`-approximation of `k` when `t ≤ k` (Lemma 5.8 case 2).
    pub estimate: f64,
    /// The edge-sampling probability used.
    pub sample_probability: f64,
    /// Neighbor queries issued by this call.
    pub neighbor_queries: u64,
    /// Sampled slots contributing to the skeleton (≈ 2q·m in
    /// expectation, where q = 1 − √(1−p) is the per-slot rate).
    pub skeleton_edges: usize,
}

/// Runs VERIFY-GUESS(D, t, ε) against `oracle`.
///
/// `degrees` is the degree vector (the paper's `D`; obtain it with `n`
/// degree queries, counted by the caller).
///
/// # Panics
/// Panics unless `t > 0`, `0 < ε < 1`, and `degrees.len()` matches the
/// oracle's node count.
#[must_use]
pub fn verify_guess<O: GraphOracle, R: Rng>(
    oracle: &O,
    degrees: &[usize],
    t: f64,
    eps: f64,
    cfg: VerifyGuessConfig,
    rng: &mut R,
) -> VerifyGuessOutcome {
    // One stats stage per call: the stage report shows how many
    // skeleton min-cut solves and how much wall-clock each guess costs.
    dircut_graph::stats::timed_stage("localquery/verify_guess", || {
        verify_guess_inner(oracle, degrees, t, eps, cfg, rng)
    })
}

fn verify_guess_inner<O: GraphOracle, R: Rng>(
    oracle: &O,
    degrees: &[usize],
    t: f64,
    eps: f64,
    cfg: VerifyGuessConfig,
    rng: &mut R,
) -> VerifyGuessOutcome {
    let n = oracle.num_nodes();
    assert_eq!(degrees.len(), n, "degree vector length mismatch");
    assert!(t > 0.0, "guess t must be positive");
    assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
    let p = (cfg.oversample * (n.max(2) as f64).ln() / (eps * eps * t)).min(1.0);
    // Per-slot probability so that P[edge kept] = p exactly.
    let q = 1.0 - (1.0 - p).sqrt();

    // The skeleton is a multigraph in general (parallel edges must be
    // counted, not deduplicated): accumulate multiplicities per
    // unordered node pair. Each *slot* sampled is one neighbor query;
    // an undirected edge sampled from both endpoints counts once in
    // the skeleton (that is what the q ↦ p conversion accounts for).
    let mut neighbor_queries = 0u64;
    let mut multiplicity: HashMap<(u32, u32), f64> = HashMap::new();
    let mut skeleton_edges = 0usize;
    // Parallel edges make slot-to-edge pairing ambiguous, so every
    // sampled slot simply contributes weight p/(2q): each edge owns two
    // slots, so its expected skeleton weight is 2q·(p/2q) = p, and the
    // weighted min-cut divided by p stays an unbiased per-cut estimate.
    let slots_per_edge = 2.0 * q / p.max(f64::MIN_POSITIVE);
    for (u, &deg) in degrees.iter().enumerate() {
        let u_id = NodeId::new(u);
        for i in 0..deg {
            if p >= 1.0 || rng.gen_bool(q) {
                neighbor_queries += 1;
                let v = oracle
                    .ith_neighbor(u_id, i)
                    .expect("oracle degree/neighbor inconsistency");
                let key = (u_id.0.min(v.0), u_id.0.max(v.0));
                *multiplicity.entry(key).or_insert(0.0) += 1.0;
                skeleton_edges += 1;
            }
        }
    }

    // Connectivity of the skeleton's support (unsampled vertices make
    // the sampled min-cut zero).
    let mut dsu: Vec<u32> = (0..n as u32).collect();
    fn find(dsu: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while dsu[r as usize] != r {
            r = dsu[r as usize];
        }
        let mut c = x;
        while dsu[c as usize] != r {
            let nx = dsu[c as usize];
            dsu[c as usize] = r;
            c = nx;
        }
        r
    }
    for &(a, b) in multiplicity.keys() {
        let (ra, rb) = (find(&mut dsu, a), find(&mut dsu, b));
        if ra != rb {
            dsu[ra as usize] = rb;
        }
    }
    let root0 = find(&mut dsu, 0);
    let connected = n < 2 || (1..n as u32).all(|v| find(&mut dsu, v) == root0);

    // Min-cut of the sampled multigraph via Stoer–Wagner with
    // multiplicities as weights. When p = 1 the count is exact; when
    // p < 1 each slot hit is worth p/(2q) edges in expectation, so the
    // weighted min-cut divided by p estimates the true min-cut.
    let skeleton_mincut = if !connected {
        0.0
    } else {
        let mut pairs: Vec<(&(u32, u32), &f64)> = multiplicity.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        let key: SkeletonKey = (
            n,
            pairs
                .iter()
                .map(|(&(a, b), &m)| (a, b, (m / slots_per_edge).to_bits()))
                .collect(),
        );
        skeleton_mincut_cached(key, || {
            let mut d = DiGraph::with_edge_capacity(n, multiplicity.len());
            for (&(a, b), &m) in pairs {
                d.add_edge(
                    NodeId::new(a as usize),
                    NodeId::new(b as usize),
                    m / slots_per_edge,
                );
            }
            stoer_wagner(&d).value
        })
    };

    let estimate = skeleton_mincut / p;
    VerifyGuessOutcome {
        accepted: estimate >= cfg.accept_fraction * t,
        estimate,
        sample_probability: p,
        neighbor_queries,
        skeleton_edges,
    }
}

/// Convenience: the degree vector via `n` degree queries.
#[must_use]
pub fn query_degrees<O: GraphOracle>(oracle: &O) -> Vec<usize> {
    (0..oracle.num_nodes())
        .map(|u| oracle.degree(NodeId::new(u)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{AdjOracle, CountingOracle};
    use dircut_graph::generators::connected_gnp;
    use dircut_graph::mincut::min_cut_unweighted;
    use dircut_graph::UnGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance(seed: u64) -> (UnGraph, u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = connected_gnp(40, 0.4, &mut rng);
        let k = min_cut_unweighted(&g);
        (g, k)
    }

    #[test]
    fn small_guess_is_accepted_with_good_estimate() {
        let (g, k) = instance(0);
        let oracle = AdjOracle::new(&g);
        let degrees = query_degrees(&oracle);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let eps = 0.3;
        for trial in 0..5 {
            let out = verify_guess(
                &oracle,
                &degrees,
                k as f64 / 2.0,
                eps,
                VerifyGuessConfig::default(),
                &mut rng,
            );
            assert!(out.accepted, "trial {trial}: rejected t = k/2");
            assert!(
                (out.estimate - k as f64).abs() <= eps * k as f64 + 1e-9,
                "trial {trial}: estimate {} vs k {k}",
                out.estimate
            );
        }
    }

    #[test]
    fn huge_guess_is_rejected() {
        let (g, k) = instance(2);
        let oracle = AdjOracle::new(&g);
        let degrees = query_degrees(&oracle);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = (k as f64) * 200.0;
        for trial in 0..5 {
            let out = verify_guess(
                &oracle,
                &degrees,
                t,
                0.3,
                VerifyGuessConfig::default(),
                &mut rng,
            );
            assert!(!out.accepted, "trial {trial}: accepted t = 200k");
        }
    }

    #[test]
    fn queries_scale_inversely_with_t() {
        let (g, _) = instance(4);
        let oracle = CountingOracle::new(AdjOracle::new(&g));
        let degrees = query_degrees(&oracle);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        oracle.reset();
        let _ = verify_guess(
            &oracle,
            &degrees,
            4.0,
            0.5,
            VerifyGuessConfig::default(),
            &mut rng,
        );
        let q_small_t = oracle.counts().neighbor;
        oracle.reset();
        let _ = verify_guess(
            &oracle,
            &degrees,
            800.0,
            0.5,
            VerifyGuessConfig::default(),
            &mut rng,
        );
        let q_large_t = oracle.counts().neighbor;
        // p is capped at 1 for t = 4; t = 64 should sample a strict subset.
        assert!(q_large_t < q_small_t, "{q_large_t} !< {q_small_t}");
    }

    #[test]
    fn sampling_probability_is_exactly_p_per_edge() {
        // Statistical check of the slot-to-edge conversion.
        let (g, _) = instance(6);
        let oracle = AdjOracle::new(&g);
        let degrees = query_degrees(&oracle);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = 500.0;
        let eps = 0.4;
        let cfg = VerifyGuessConfig::default();
        let p = (cfg.oversample * (g.num_nodes() as f64).ln() / (eps * eps * t)).min(1.0);
        assert!(p < 1.0, "test needs a non-trivial p, got {p}");
        let reps = 200;
        let mean_edges: f64 = (0..reps)
            .map(|_| verify_guess(&oracle, &degrees, t, eps, cfg, &mut rng).skeleton_edges as f64)
            .sum::<f64>()
            / reps as f64;
        let q = 1.0 - (1.0 - p).sqrt();
        let expected = 2.0 * q * g.num_edges() as f64;
        assert!(
            (mean_edges - expected).abs() < 0.1 * expected,
            "mean {mean_edges} vs expected {expected}"
        );
    }

    #[test]
    fn repeated_same_seed_calls_replay_skeleton_mincut_bit_identically() {
        let (g, _) = instance(10);
        let oracle = AdjOracle::new(&g);
        let degrees = query_degrees(&oracle);
        let cfg = VerifyGuessConfig::default();
        // t and ε chosen so p < 1: the skeleton is a genuine random
        // sample, and identical seeds replay identical samples.
        let run = |on: bool| {
            dircut_graph::cache::set_enabled(on);
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            verify_guess(&oracle, &degrees, 200.0, 0.5, cfg, &mut rng)
        };
        let cold = run(false);
        let warm1 = run(true); // stores (or replays) the skeleton solve
        let hits_before = dircut_graph::stats::total_cache_hits();
        let warm2 = run(true); // must replay
        dircut_graph::cache::set_enabled(true);
        assert!(
            dircut_graph::stats::total_cache_hits() > hits_before,
            "second warm run did not hit the skeleton memo"
        );
        assert_eq!(cold.estimate.to_bits(), warm1.estimate.to_bits());
        assert_eq!(warm1.estimate.to_bits(), warm2.estimate.to_bits());
        // Billing invariant: sampling queries are identical no matter
        // where the skeleton min-cut came from.
        assert_eq!(cold.neighbor_queries, warm2.neighbor_queries);
    }

    #[test]
    fn full_sampling_gives_exact_min_cut() {
        let (g, k) = instance(8);
        let oracle = AdjOracle::new(&g);
        let degrees = query_degrees(&oracle);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // Tiny t forces p = 1 → skeleton is the whole graph.
        let out = verify_guess(
            &oracle,
            &degrees,
            0.5,
            0.2,
            VerifyGuessConfig::default(),
            &mut rng,
        );
        assert_eq!(out.sample_probability, 1.0);
        assert!((out.estimate - k as f64).abs() < 1e-9);
        assert!(out.accepted);
    }
}
