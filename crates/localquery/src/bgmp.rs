//! Global min-cut estimation in the local query model (after
//! \[BGMP21\]), in two variants:
//!
//! * [`SearchVariant::Original`] — the published algorithm: the halving
//!   search over the guess `t` runs VERIFY-GUESS *at the target error
//!   ε* at every step, and after the first acceptance descends by the
//!   safety gap `κ(ε) = Θ(log n/ε²)` mandated by Lemma 5.8 before the
//!   final call. The final call therefore runs at `t ≈ k·ε²/log n`,
//!   costing `Õ(m/(ε⁴k))` queries.
//! * [`SearchVariant::Modified`] — the paper's Section 5.4 fix
//!   (Theorem 5.7): search with a *constant* error `β₀`, whose safety
//!   gap is only `Θ(log n)`, then make a single ε-accurate call at
//!   `t ≈ k/log n`, costing `Õ(m/(ε²k))`.
//!
//! Both descend by the gap their *contract* requires — Lemma 5.8 only
//! promises rejection above `κ·k`, so a correct implementation cannot
//! assume the first acceptance happened near `k`. This is exactly the
//! source of the ε⁴ → ε² improvement the paper proves, and experiment
//! E4 measures it.

use crate::oracle::{CountingOracle, GraphOracle};
use crate::verify_guess::{query_degrees, verify_guess, VerifyGuessConfig, VerifyGuessOutcome};
use rand::Rng;

/// Which search strategy to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchVariant {
    /// BGMP21 as published: ε-accurate VERIFY-GUESS during the search.
    Original,
    /// Theorem 5.7: constant-error `beta0` search, one final ε call.
    Modified {
        /// The constant search error β₀ (0.25 in the paper's spirit).
        beta0: f64,
    },
}

/// Result of a full min-cut estimation run.
#[derive(Debug, Clone)]
pub struct MinCutRunResult {
    /// The `(1±ε)` min-cut estimate.
    pub estimate: f64,
    /// Total local queries (degree + neighbor + adjacency).
    pub total_queries: u64,
    /// Queries spent by the final (ε-accurate) VERIFY-GUESS call.
    pub final_call_queries: u64,
    /// Number of VERIFY-GUESS invocations.
    pub verify_calls: usize,
    /// The guess at which the search first accepted.
    pub accepted_at: f64,
}

/// The safety gap κ the Lemma 5.8 contract forces for error `eps`:
/// `κ(ε) = gap_constant·ln n / ε²`.
#[must_use]
pub fn safety_gap(n: usize, eps: f64, gap_constant: f64) -> f64 {
    (gap_constant * (n.max(2) as f64).ln() / (eps * eps)).max(1.0)
}

/// Estimates the global min-cut of the unknown graph behind `oracle`
/// to a `(1±ε)` factor, counting every local query.
///
/// # Panics
/// Panics unless `0 < ε < 1` and the graph has ≥ 2 nodes.
#[must_use]
pub fn global_min_cut_local<O: GraphOracle, R: Rng>(
    oracle: &O,
    eps: f64,
    variant: SearchVariant,
    cfg: VerifyGuessConfig,
    rng: &mut R,
) -> MinCutRunResult {
    // Stage-level instrumentation: each full run shows up in the stats
    // report with its solve count (skeleton min-cuts) and wall-clock,
    // alongside the per-call "localquery/verify_guess" entries.
    dircut_graph::stats::timed_stage("localquery/global_min_cut", || {
        global_min_cut_local_inner(oracle, eps, variant, cfg, rng)
    })
}

fn global_min_cut_local_inner<O: GraphOracle, R: Rng>(
    oracle: &O,
    eps: f64,
    variant: SearchVariant,
    cfg: VerifyGuessConfig,
    rng: &mut R,
) -> MinCutRunResult {
    assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
    let counting = CountingOracle::new(ForwardOracle { inner: oracle });
    let n = counting.num_nodes();
    assert!(n >= 2, "min-cut needs ≥ 2 nodes");
    let degrees = query_degrees(&counting);

    let search_eps = match variant {
        SearchVariant::Original => eps,
        SearchVariant::Modified { beta0 } => {
            assert!(beta0 > 0.0 && beta0 < 1.0, "β₀ must be in (0,1)");
            beta0
        }
    };

    // Halving search. The min cut is at most the min degree.
    let max_cut = degrees.iter().copied().min().unwrap_or(0).max(1) as f64;
    let mut t = max_cut;
    let mut verify_calls = 0usize;
    let accepted_at;
    loop {
        let out = verify_guess(&counting, &degrees, t, search_eps, cfg, rng);
        verify_calls += 1;
        if out.accepted {
            accepted_at = t;
            break;
        }
        if t <= 1.0 {
            // Even t = 1 rejected: the sampled graph was disconnected at
            // p = 1, i.e. the true graph is disconnected.
            let counts = counting.counts();
            return MinCutRunResult {
                estimate: 0.0,
                total_queries: counts.total(),
                final_call_queries: out.neighbor_queries,
                verify_calls,
                accepted_at: t,
            };
        }
        t = (t / 2.0).max(1.0);
    }

    // Descend by the contract-mandated gap, then one ε-accurate call.
    // (5.4: "set t = t/κ ... and return VERIFY-GUESS(D, t, ε)".)
    let kappa = safety_gap(n, search_eps, 2.0);
    let t_final = (accepted_at / kappa).max(0.5);
    let final_out: VerifyGuessOutcome = verify_guess(&counting, &degrees, t_final, eps, cfg, rng);
    verify_calls += 1;

    let counts = counting.counts();
    MinCutRunResult {
        estimate: final_out.estimate,
        total_queries: counts.total(),
        final_call_queries: final_out.neighbor_queries,
        verify_calls,
        accepted_at,
    }
}

/// A by-reference adaptor so we can layer a [`CountingOracle`] over a
/// caller-owned oracle without consuming it.
struct ForwardOracle<'a, O> {
    inner: &'a O,
}

impl<O: GraphOracle> GraphOracle for ForwardOracle<'_, O> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }
    fn degree(&self, u: dircut_graph::NodeId) -> usize {
        self.inner.degree(u)
    }
    fn ith_neighbor(&self, u: dircut_graph::NodeId, i: usize) -> Option<dircut_graph::NodeId> {
        self.inner.ith_neighbor(u, i)
    }
    fn adjacent(&self, u: dircut_graph::NodeId, v: dircut_graph::NodeId) -> bool {
        self.inner.adjacent(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AdjOracle;
    use dircut_graph::generators::connected_gnp;
    use dircut_graph::mincut::min_cut_unweighted;
    use dircut_graph::{NodeId, UnGraph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn both_variants_estimate_within_epsilon() {
        let mut gen = ChaCha8Rng::seed_from_u64(0);
        let g = connected_gnp(50, 0.35, &mut gen);
        let k = min_cut_unweighted(&g) as f64;
        let oracle = AdjOracle::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let eps = 0.3;
        for variant in [
            SearchVariant::Original,
            SearchVariant::Modified { beta0: 0.25 },
        ] {
            let res = global_min_cut_local(
                &oracle,
                eps,
                variant,
                VerifyGuessConfig::default(),
                &mut rng,
            );
            assert!(
                (res.estimate - k).abs() <= eps * k + 1e-9,
                "{variant:?}: estimate {} vs k {k}",
                res.estimate
            );
            assert!(res.verify_calls >= 2);
        }
    }

    #[test]
    fn modified_variant_uses_fewer_queries_at_small_epsilon() {
        let mut gen = ChaCha8Rng::seed_from_u64(2);
        let g = connected_gnp(60, 0.5, &mut gen);
        let oracle = AdjOracle::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let eps = 0.1;
        let orig = global_min_cut_local(
            &oracle,
            eps,
            SearchVariant::Original,
            VerifyGuessConfig::default(),
            &mut rng,
        );
        let modi = global_min_cut_local(
            &oracle,
            eps,
            SearchVariant::Modified { beta0: 0.25 },
            VerifyGuessConfig::default(),
            &mut rng,
        );
        assert!(
            modi.total_queries <= orig.total_queries,
            "modified {} > original {}",
            modi.total_queries,
            orig.total_queries
        );
    }

    #[test]
    fn disconnected_graph_returns_zero() {
        let mut g = UnGraph::new(6);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        g.add_edge(NodeId::new(4), NodeId::new(5));
        let oracle = AdjOracle::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let res = global_min_cut_local(
            &oracle,
            0.3,
            SearchVariant::Modified { beta0: 0.25 },
            VerifyGuessConfig::default(),
            &mut rng,
        );
        assert_eq!(res.estimate, 0.0);
    }

    #[test]
    fn query_accounting_includes_degree_queries() {
        let mut gen = ChaCha8Rng::seed_from_u64(5);
        let g = connected_gnp(30, 0.4, &mut gen);
        let oracle = AdjOracle::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let res = global_min_cut_local(
            &oracle,
            0.4,
            SearchVariant::Modified { beta0: 0.3 },
            VerifyGuessConfig::default(),
            &mut rng,
        );
        // At least the n degree queries plus some neighbor queries.
        assert!(res.total_queries > 30);
    }

    #[test]
    fn safety_gap_scales_with_inverse_epsilon_squared() {
        let g1 = safety_gap(100, 0.2, 2.0);
        let g2 = safety_gap(100, 0.1, 2.0);
        assert!((g2 / g1 - 4.0).abs() < 1e-9);
    }
}
