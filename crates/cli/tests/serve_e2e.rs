//! End-to-end tests of `dircut serve` + `dircut loadgen`: real server
//! process on a Unix socket, real client connections, corrupt frames,
//! clean shutdown.

use dircut_graph::io::from_edge_list;
use dircut_graph::NodeSet;
use dircut_serve::{Client, Endpoint, Response};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_dircut");

/// A deterministic 24-node test graph as an edge list.
fn graph_text() -> String {
    let n = 24;
    let mut text = format!("n {n}\n");
    for u in 0..n {
        text.push_str(&format!(
            "e {} {} {}\n",
            u,
            (u + 1) % n,
            1.0 + u as f64 * 0.5
        ));
        text.push_str(&format!("e {} {} {}\n", (u + 5) % n, u, 0.25 + u as f64));
    }
    text
}

/// Spawns `dircut serve` on a fresh Unix socket, feeds it the graph
/// on stdin, and blocks until the readiness line appears.
struct ServerProc {
    child: Child,
    sock: PathBuf,
}

impl ServerProc {
    fn spawn(tag: &str) -> Self {
        let sock = std::env::temp_dir().join(format!(
            "dircut-serve-e2e-{}-{tag}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&sock);
        let mut child = Command::new(BIN)
            .args([
                "serve",
                "--listen",
                &format!("unix:{}", sock.display()),
                "--batch",
                "16",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn dircut serve");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(graph_text().as_bytes())
            .unwrap();
        // Wait for the readiness line; the socket exists once printed.
        let stdout = child.stdout.take().unwrap();
        let mut lines = BufReader::new(stdout).lines();
        let ready = lines
            .next()
            .expect("server exited before readiness")
            .expect("read server stdout");
        assert!(ready.contains("DIRCUT_SERVE listening="), "{ready}");
        assert!(ready.contains("nodes=24"), "{ready}");
        Self { child, sock }
    }

    fn endpoint(&self) -> Endpoint {
        Endpoint::Unix(self.sock.clone())
    }

    /// Waits (bounded) for the server to exit and returns its status.
    fn wait(mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                let _ = std::fs::remove_file(&self.sock);
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "server did not exit after shutdown"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = std::fs::remove_file(&self.sock);
    }
}

#[test]
fn serve_answers_bit_identically_and_shuts_down_cleanly() {
    let server = ServerProc::spawn("roundtrip");
    let g = from_edge_list(&graph_text()).unwrap();
    let mut client = Client::connect(&server.endpoint()).unwrap();

    let info = client.info().unwrap();
    assert_eq!(info.nodes as usize, g.num_nodes());
    assert_eq!(info.edges as usize, g.num_edges());

    for i in 0..10usize {
        let set = NodeSet::from_indices(24, (0..24).filter(|v| (v + i) % 4 == 0));
        let served = client.cut(&set).unwrap();
        let (out, into) = g.try_cut_both(&set).unwrap();
        assert_eq!(served.out.to_bits(), out.to_bits(), "set {i}");
        assert_eq!(served.into.to_bits(), into.to_bits(), "set {i}");
    }

    client.shutdown().unwrap();
    let status = server.wait();
    assert!(status.success(), "server exited {status:?}");
}

#[test]
fn corrupt_frames_are_rejected_without_killing_the_connection() {
    let server = ServerProc::spawn("corrupt");
    let mut client = Client::connect(&server.endpoint()).unwrap();

    // Garbage bytes under a plausible prefix: the CRC/magic layer
    // must reject them with an error response, not a hangup or crash.
    client.send_raw(96, &[0xAB; 12]).unwrap();
    match client.recv_response().unwrap() {
        Response::Error { message } => assert!(message.contains("bad frame"), "{message}"),
        other => panic!("expected an error response, got {other:?}"),
    }

    // Same connection still serves real queries afterwards.
    let g = from_edge_list(&graph_text()).unwrap();
    let set = NodeSet::from_indices(24, [0, 3, 7]);
    let served = client.cut(&set).unwrap();
    assert_eq!(
        served.out.to_bits(),
        g.try_cut_both(&set).unwrap().0.to_bits()
    );

    // An oversized length prefix cannot be resynchronized: the server
    // answers with an error and hangs up, but stays alive for others.
    let mut rogue = Client::connect(&server.endpoint()).unwrap();
    rogue.send_raw(u32::MAX, &[]).unwrap();
    match rogue.recv_response() {
        Ok(Response::Error { .. }) | Err(_) => {}
        Ok(other) => panic!("expected rejection, got {other:?}"),
    }
    assert!(rogue.cut(&set).is_err(), "rogue connection must be dead");

    client.shutdown().unwrap();
    assert!(server.wait().success());
}

#[test]
fn loadgen_smoke_verifies_and_writes_the_bench_document() {
    let server = ServerProc::spawn("loadgen");
    let graph_file = std::env::temp_dir().join(format!(
        "dircut-serve-e2e-{}-loadgen.edges",
        std::process::id()
    ));
    let bench_file = std::env::temp_dir().join(format!(
        "dircut-serve-e2e-{}-BENCH_serve.json",
        std::process::id()
    ));
    std::fs::write(&graph_file, graph_text()).unwrap();

    let out = Command::new(BIN)
        .args([
            "loadgen",
            "--connect",
            &format!("unix:{}", server.sock.display()),
            "--smoke",
            "--verify",
            "--shutdown",
            "--seed",
            "42",
            "--out",
            bench_file.to_str().unwrap(),
            graph_file.to_str().unwrap(),
        ])
        .output()
        .expect("run loadgen");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "loadgen failed: {stdout} {stderr}");
    assert!(stdout.contains("verified bit-identical"), "{stdout}");

    let json = std::fs::read_to_string(&bench_file).unwrap();
    for field in [
        "\"schema\": \"dircut-serve-bench-v1\"",
        "\"p50_us\":",
        "\"p99_us\":",
        "\"qps\":",
        "\"completed\": 100",
        "\"errors\": 0",
        "\"verified\": 100",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }

    // --shutdown asked the server to exit after the run.
    assert!(server.wait().success());
    let _ = std::fs::remove_file(&graph_file);
    let _ = std::fs::remove_file(&bench_file);
}
