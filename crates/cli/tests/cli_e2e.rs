//! End-to-end tests of the `dircut` binary: real process spawns,
//! piped stdin/stdout, exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_dircut");

fn run_coded(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dircut");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("wait for dircut");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("exit code"),
    )
}

fn run(args: &[&str], stdin: &str) -> (String, String, bool) {
    let (stdout, stderr, code) = run_coded(args, stdin);
    (stdout, stderr, code == 0)
}

#[test]
fn help_succeeds() {
    let (stdout, _, ok) = run(&["help"], "");
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (_, stderr, ok) = run(&["frobnicate"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn gen_then_stats_pipeline() {
    let (edges, _, ok) = run(
        &[
            "gen", "balanced", "--nodes", "10", "--beta", "3", "--seed", "1",
        ],
        "",
    );
    assert!(ok);
    assert!(edges.starts_with("n 10\n"));
    let (stats, _, ok) = run(&["stats"], &edges);
    assert!(ok);
    assert!(stats.contains("nodes: 10"));
    assert!(stats.contains("strongly connected: true"));
    assert!(stats.contains("balance certificate: β ≤ 3.0000"));
}

#[test]
fn cut_command_computes_both_directions() {
    let graph = "n 3\ne 0 1 2.0\ne 1 2 3.0\ne 2 0 5.0\n";
    let (out, _, ok) = run(&["cut", "--side", "0"], graph);
    assert!(ok);
    assert!(out.contains("w(S, V∖S) = 2.000000"), "{out}");
    assert!(out.contains("w(V∖S, S) = 5.000000"), "{out}");
}

#[test]
fn mincut_reports_directed_and_symmetrized() {
    let graph = "n 3\ne 0 1 1.0\ne 1 2 10.0\ne 2 0 10.0\n";
    let (out, _, ok) = run(&["mincut"], graph);
    assert!(ok);
    assert!(out.contains("directed min cut:    1.000000"), "{out}");
}

#[test]
fn sketch_reports_size_and_estimate() {
    let (edges, _, _) = run(
        &[
            "gen", "balanced", "--nodes", "8", "--beta", "2", "--seed", "2",
        ],
        "",
    );
    let (out, _, ok) = run(
        &["sketch", "--eps", "0.3", "--beta", "2", "--side", "0,1,2,3"],
        &edges,
    );
    assert!(ok, "{out}");
    assert!(out.contains("sketch size:"));
    assert!(out.contains("estimate w(S, V∖S)"));
}

#[test]
fn dot_emits_graphviz() {
    let graph = "n 2\ne 0 1 1.5\n";
    let (out, _, ok) = run(&["dot"], graph);
    assert!(ok);
    assert!(out.contains("digraph dircut {"));
    assert!(out.contains("0 -> 1"));
}

#[test]
fn malformed_input_fails_cleanly() {
    let (_, stderr, code) = run_coded(&["stats"], "e 0 1 1.0\n");
    assert_eq!(code, 3, "malformed input is an I/O error");
    assert!(stderr.contains("error"));
}

#[test]
fn usage_errors_exit_2_and_io_errors_exit_3() {
    let (_, stderr, code) = run_coded(&["frobnicate"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown command"));
    let (_, _, code) = run_coded(&["cut"], "n 2\ne 0 1 1.0\n");
    assert_eq!(code, 2, "missing --side is a usage error");
    let (_, stderr, code) = run_coded(&["stats", "/no/such/file.g"], "");
    assert_eq!(code, 3);
    assert!(stderr.contains("error"));
}

fn gen_dense(nodes: &str, seed: &str) -> String {
    let (edges, _, ok) = run(
        &[
            "gen",
            "balanced",
            "--nodes",
            nodes,
            "--beta",
            "2",
            "--density",
            "0.8",
            "--seed",
            seed,
        ],
        "",
    );
    assert!(ok);
    edges
}

#[test]
fn dist_clean_run_succeeds_and_reports_the_bill() {
    let edges = gen_dense("16", "7");
    let (out, stderr, code) = run_coded(
        &["dist", "--servers", "3", "--eps", "0.3", "--seed", "11"],
        &edges,
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(out.contains("servers: 3 (arrived: 3)"), "{out}");
    assert!(out.contains("wire bits:"), "{out}");
    assert!(out.contains("framing"), "{out}");
    assert!(out.contains("degraded: false"), "{out}");
    assert!(!stderr.contains("DIRCUT_DEGRADED"));
}

#[test]
fn dist_degraded_run_exits_4_with_machine_readable_stderr() {
    let edges = gen_dense("16", "8");
    let (out, stderr, code) = run_coded(
        &[
            "dist",
            "--servers",
            "4",
            "--eps",
            "0.25",
            "--seed",
            "11",
            "--kill",
            "2",
        ],
        &edges,
    );
    assert_eq!(code, 4, "stderr: {stderr}");
    // The answer is still printed: degraded, not dead.
    assert!(out.contains("servers: 4 (arrived: 3)"), "{out}");
    assert!(out.contains("degraded: true"), "{out}");
    let line = stderr
        .lines()
        .find(|l| l.starts_with("DIRCUT_DEGRADED"))
        .unwrap_or_else(|| panic!("no DIRCUT_DEGRADED line in {stderr:?}"));
    assert!(line.contains("arrived=3"), "{line}");
    assert!(line.contains("servers=4"), "{line}");
    assert!(line.contains("effective_epsilon=0.500000"), "{line}");
}

#[test]
fn dist_survives_heavy_drop_via_retries() {
    let edges = gen_dense("14", "9");
    let (out, _, code) = run_coded(
        &[
            "dist",
            "--servers",
            "3",
            "--eps",
            "0.3",
            "--seed",
            "5",
            "--drop",
            "0.2",
            "--retries",
            "9",
        ],
        &edges,
    );
    // Either every server eventually got through (exit 0) or the run
    // degraded (exit 4); both must print the communication bill.
    assert!(code == 0 || code == 4, "unexpected exit {code}: {out}");
    assert!(out.contains("wire bits:"), "{out}");
}
