//! End-to-end tests of the `dircut` binary: real process spawns,
//! piped stdin/stdout, exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_dircut");

fn run(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dircut");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("wait for dircut");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_succeeds() {
    let (stdout, _, ok) = run(&["help"], "");
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (_, stderr, ok) = run(&["frobnicate"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn gen_then_stats_pipeline() {
    let (edges, _, ok) = run(
        &[
            "gen", "balanced", "--nodes", "10", "--beta", "3", "--seed", "1",
        ],
        "",
    );
    assert!(ok);
    assert!(edges.starts_with("n 10\n"));
    let (stats, _, ok) = run(&["stats"], &edges);
    assert!(ok);
    assert!(stats.contains("nodes: 10"));
    assert!(stats.contains("strongly connected: true"));
    assert!(stats.contains("balance certificate: β ≤ 3.0000"));
}

#[test]
fn cut_command_computes_both_directions() {
    let graph = "n 3\ne 0 1 2.0\ne 1 2 3.0\ne 2 0 5.0\n";
    let (out, _, ok) = run(&["cut", "--side", "0"], graph);
    assert!(ok);
    assert!(out.contains("w(S, V∖S) = 2.000000"), "{out}");
    assert!(out.contains("w(V∖S, S) = 5.000000"), "{out}");
}

#[test]
fn mincut_reports_directed_and_symmetrized() {
    let graph = "n 3\ne 0 1 1.0\ne 1 2 10.0\ne 2 0 10.0\n";
    let (out, _, ok) = run(&["mincut"], graph);
    assert!(ok);
    assert!(out.contains("directed min cut:    1.000000"), "{out}");
}

#[test]
fn sketch_reports_size_and_estimate() {
    let (edges, _, _) = run(
        &[
            "gen", "balanced", "--nodes", "8", "--beta", "2", "--seed", "2",
        ],
        "",
    );
    let (out, _, ok) = run(
        &["sketch", "--eps", "0.3", "--beta", "2", "--side", "0,1,2,3"],
        &edges,
    );
    assert!(ok, "{out}");
    assert!(out.contains("sketch size:"));
    assert!(out.contains("estimate w(S, V∖S)"));
}

#[test]
fn dot_emits_graphviz() {
    let graph = "n 2\ne 0 1 1.5\n";
    let (out, _, ok) = run(&["dot"], graph);
    assert!(ok);
    assert!(out.contains("digraph dircut {"));
    assert!(out.contains("0 -> 1"));
}

#[test]
fn malformed_input_fails_cleanly() {
    let (_, stderr, ok) = run(&["stats"], "e 0 1 1.0\n");
    assert!(!ok);
    assert!(stderr.contains("error"));
}
