//! `dircut` — command-line interface to the toolkit.
//!
//! ```text
//! dircut gen balanced --nodes 32 --beta 4 --density 0.5 [--seed S]   # emit edge list
//! dircut gen gadget-foreach --inv-eps 8 --sqrt-beta 2 --ell 2 [--seed S]
//! dircut stats [FILE]                 # nodes/edges/weight/balance/connectivity
//! dircut mincut [FILE]                # global min cuts (directed + symmetrized)
//! dircut cut --side 0,1,2 [FILE]      # one directed cut value
//! dircut sketch --eps 0.25 --beta 4 --model foreach|forall [FILE]
//! dircut sparsify --name cut-balance [--eps E] [--beta B] [--measure] [FILE]
//! dircut sparsify --list              # the registry, one name per line
//! dircut dist --servers 4 --eps 0.25 [--drop P] [--kill LIST] [FILE]
//! dircut serve --listen unix:/tmp/d.sock [--batch N] [FILE]   # cut-query server
//! dircut loadgen --connect unix:/tmp/d.sock [--smoke] [--verify] [--shutdown] [FILE]
//! dircut dot [FILE]                   # Graphviz export
//! dircut repro foreach|forall|localquery|all [--trials N] [--seed S] [--threads T]
//! dircut soak [--smoke] [--seconds N] [--seed S] [--out PATH]   # invariant soak
//! ```
//!
//! Exit codes are typed: `0` success, `2` bad usage, `3` I/O or input
//! failure, `4` a distributed run that completed in degraded mode (the
//! answer is printed, the guarantee is weaker than requested, and
//! stderr carries a machine-readable `DIRCUT_DEGRADED` line).
//!
//! Graphs use the plain-text edge-list format of `dircut_graph::io`
//! (`n <count>` then `e <from> <to> <weight>` lines); `FILE` defaults
//! to stdin so commands compose:
//!
//! ```text
//! dircut gen balanced --nodes 24 --beta 4 | dircut sketch --eps 0.3 --beta 4
//! ```

use dircut_dist::runtime::RuntimeConfig;
use dircut_dist::{run_min_cut, DistError, FaultPlan, ProtocolConfig, Topology};
use dircut_graph::balance::{edgewise_balance_bound, exact_balance_factor, is_eulerian};
use dircut_graph::connectivity::is_strongly_connected;
use dircut_graph::generators::random_balanced_digraph;
use dircut_graph::io::{from_edge_list, to_dot, to_edge_list};
use dircut_graph::mincut::{global_min_cut_directed, stoer_wagner};
use dircut_graph::{DiGraph, NodeSet};
use dircut_serve::{Endpoint, LoadgenConfig, ServerConfig};
use dircut_sketch::{
    max_relative_cut_error, registry, BalancedForAllSketcher, BalancedForEachSketcher, CutOracle,
    CutSketch, CutSketcher, Sparsified, Sparsifier, SparsifierSpec,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::io::{Read, Write as _};
use std::process::ExitCode;

/// Everything that can go wrong at the CLI boundary, typed so each
/// failure class gets its own exit code (scripts branch on them).
#[derive(Debug, Clone, PartialEq)]
enum CliError {
    /// The command line itself was wrong (unknown command, missing or
    /// unparsable flag). Exit code 2.
    Usage(String),
    /// Reading or parsing input failed (missing file, malformed edge
    /// list, stdin error). Exit code 3.
    Io(String),
    /// A distributed run completed but in degraded mode: only
    /// `arrived` of `servers` messages survived the link, so the
    /// printed answer carries the widened `effective_epsilon` rather
    /// than the requested accuracy. Exit code 4; stderr gets a
    /// machine-readable `DIRCUT_DEGRADED` line.
    Degraded {
        arrived: usize,
        servers: usize,
        effective_epsilon: f64,
    },
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            Self::Usage(_) => 2,
            Self::Io(_) => 3,
            Self::Degraded { .. } => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) | Self::Io(msg) => write!(f, "{msg}"),
            Self::Degraded {
                arrived, servers, ..
            } => write!(f, "degraded: only {arrived} of {servers} servers reported"),
        }
    }
}

/// Flag-parsing helpers produce plain strings; at the boundary they
/// are all usage errors.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        Self::Usage(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            match &err {
                CliError::Degraded {
                    arrived,
                    servers,
                    effective_epsilon,
                } => {
                    // One greppable line; the human-readable story is
                    // already on stdout.
                    eprintln!(
                        "DIRCUT_DEGRADED arrived={arrived} servers={servers} \
                         effective_epsilon={effective_epsilon:.6}"
                    );
                }
                CliError::Usage(_) => {
                    eprintln!("error: {err}");
                    eprintln!("run `dircut help` for usage");
                }
                CliError::Io(_) => eprintln!("error: {err}"),
            }
            ExitCode::from(err.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => {
            print!("{}", USAGE);
            Ok(())
        }
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("mincut") => cmd_mincut(&args[1..]),
        Some("cut") => cmd_cut(&args[1..]),
        Some("sketch") => cmd_sketch(&args[1..]),
        Some("sparsify") => cmd_sparsify(&args[1..]),
        Some("dist") => cmd_dist(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("repro") => cmd_repro(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        Some(other) => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

const USAGE: &str = "\
dircut — directed cut sparsification toolkit

USAGE:
  dircut gen balanced --nodes N --beta B [--density P] [--seed S]
  dircut gen gadget-foreach --inv-eps E --sqrt-beta B [--ell L]
  dircut stats   [FILE]
  dircut mincut  [FILE]
  dircut cut --side 0,1,2 [FILE]
  dircut sketch --eps E --beta B [--model foreach|forall] [--side LIST] [FILE]
  dircut sparsify --name NAME [--eps E] [--beta B] [--seed S]
              [--side LIST] [--measure] [FILE]
  dircut sparsify --list
  dircut dist --servers K --eps E [--seed S] [--drop P] [--dup P]
              [--corrupt P] [--delay P] [--timeout T] [--retries R]
              [--kill LIST] [--topology loopback|tcp|unix]
              [--listen unix:PATH|HOST:PORT] [FILE]
  dircut serve --listen unix:PATH|HOST:PORT [--batch N] [--threads T]
              [FILE]
  dircut loadgen --connect unix:PATH|HOST:PORT [--conns C]
              [--requests R] [--pool K] [--zipf S] [--seed S]
              [--out PATH] [--smoke] [--verify] [--shutdown] [FILE]
  dircut dot     [FILE]
  dircut repro foreach|forall|localquery|all
              [--trials N] [--seed S] [--threads T]
  dircut soak [--smoke] [--seconds N] [--seed S] [--out PATH]

Graphs are plain-text edge lists (`n <count>` / `e <u> <v> <w>`);
FILE defaults to stdin, so commands pipe into each other.

EXIT CODES:
  0 success   2 bad usage   3 input/IO failure
  4 distributed run degraded (answer printed; stderr has a
    machine-readable DIRCUT_DEGRADED line)
";

/// Pulls `--flag value` pairs out of an argument list.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    positional: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        Self::parse_with_bools(args, &[])
    }

    /// Like [`Flags::parse`], but flags named in `bools` take no
    /// value — their presence is the whole signal (query with
    /// [`Flags::has`]).
    fn parse_with_bools(args: &'a [String], bools: &[&str]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                if bools.contains(&name) {
                    pairs.push((name, ""));
                    i += 1;
                    continue;
                }
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                pairs.push((name, v.as_str()));
                i += 2;
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok(Self { pairs, positional })
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| *n == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    fn num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        self.get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{name}: cannot parse `{v}`"))
            })
            .transpose()
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.num(name)?
            .ok_or_else(|| format!("missing required --{name}"))
    }
}

fn read_graph(flags: &Flags) -> Result<DiGraph, CliError> {
    let text = match flags.positional.first() {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| CliError::Io(e.to_string()))?;
            buf
        }
    };
    from_edge_list(&text).map_err(|e| CliError::Io(e.to_string()))
}

fn parse_side(spec: &str, n: usize) -> Result<NodeSet, String> {
    let mut s = NodeSet::empty(n);
    for part in spec.split(',') {
        let idx: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("bad node index `{part}`"))?;
        if idx >= n {
            return Err(format!("node {idx} out of range (n = {n})"));
        }
        s.insert(dircut_graph::NodeId::new(idx));
    }
    Ok(s)
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let kind = args
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage("gen needs a kind".into()))?;
    let flags = Flags::parse(&args[1..])?;
    let seed: u64 = flags.num("seed")?.unwrap_or(42);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = match kind {
        "balanced" => {
            let nodes: usize = flags.require("nodes")?;
            let beta: f64 = flags.require("beta")?;
            let density: f64 = flags.num("density")?.unwrap_or(0.5);
            random_balanced_digraph(nodes, density, beta, &mut rng)
        }
        "gadget-foreach" => {
            use dircut_core::{ForEachEncoding, ForEachParams};
            use rand::Rng;
            let inv_eps: usize = flags.require("inv-eps")?;
            let sqrt_beta: usize = flags.require("sqrt-beta")?;
            let ell: usize = flags.num("ell")?.unwrap_or(2);
            let params = ForEachParams::new(inv_eps, sqrt_beta, ell);
            let s: Vec<i8> = (0..params.total_bits())
                .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
                .collect();
            ForEachEncoding::encode(params, &s).graph().clone()
        }
        other => return Err(CliError::Usage(format!("unknown gen kind `{other}`"))),
    };
    print!("{}", to_edge_list(&g));
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    println!("nodes: {}", g.num_nodes());
    println!("edges: {}", g.num_edges());
    println!("total weight: {:.6}", g.total_weight());
    println!("strongly connected: {}", is_strongly_connected(&g));
    println!("eulerian (1-balanced): {}", is_eulerian(&g));
    match edgewise_balance_bound(&g) {
        Some(b) => println!("balance certificate: β ≤ {b:.4}"),
        None => println!("balance certificate: none (some edge lacks a reverse)"),
    }
    if g.num_nodes() <= 20 && g.num_nodes() >= 2 {
        println!("balance exact: β = {:.4}", exact_balance_factor(&g));
    }
    Ok(())
}

fn cmd_mincut(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    if g.num_nodes() < 2 {
        return Err(CliError::Io("min-cut needs ≥ 2 nodes".into()));
    }
    let directed = global_min_cut_directed(&g);
    let sym = stoer_wagner(&g);
    println!("directed min cut:    {:.6}", directed.value);
    println!("  side: {:?}", directed.side);
    println!("symmetrized min cut: {:.6}", sym.value);
    println!("  side: {:?}", sym.side);
    Ok(())
}

fn cmd_cut(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    let side = flags
        .get("side")
        .ok_or_else(|| CliError::Usage("cut needs --side".into()))?;
    let s = parse_side(side, g.num_nodes())?;
    let (out, into) = g.cut_both(&s);
    println!("w(S, V∖S) = {out:.6}");
    println!("w(V∖S, S) = {into:.6}");
    Ok(())
}

/// A boxed cut-query closure (the CLI's model-erased sketch handle).
type CutAnswer = Box<dyn Fn(&NodeSet) -> f64>;

fn cmd_sketch(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    let eps: f64 = flags.require("eps")?;
    let beta: f64 = flags.num("beta")?.unwrap_or(1.0);
    let model = flags.get("model").unwrap_or("foreach");
    let seed: u64 = flags.num("seed")?.unwrap_or(42);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (bits, answer): (usize, CutAnswer) = match model {
        "foreach" => {
            let sk = BalancedForEachSketcher::new(eps, beta).sketch(&g, &mut rng);
            let bits = sk.size_bits();
            (bits, Box::new(move |s| sk.cut_out_estimate(s)))
        }
        "forall" => {
            let sk = BalancedForAllSketcher::new(eps, beta).sketch(&g, &mut rng);
            let bits = sk.size_bits();
            (bits, Box::new(move |s| sk.cut_out_estimate(s)))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown model `{other}` (foreach|forall)"
            )))
        }
    };
    println!("model: {model}, ε = {eps}, β = {beta}");
    println!("sketch size: {bits} bits");
    if let Some(side) = flags.get("side") {
        let s = parse_side(side, g.num_nodes())?;
        println!("estimate w(S, V∖S) = {:.6}", answer(&s));
        println!("exact    w(S, V∖S) = {:.6}", g.cut_out(&s));
    }
    Ok(())
}

/// `dircut sparsify`: run one registry [`SparsifierSpec`] over the
/// input graph and report its billed wire bits and retained edges.
/// `--list` prints the registry instead; `--measure` adds the
/// exhaustive `max_relative_cut_error` (small graphs only, since it
/// enumerates every directed cut).
fn cmd_sparsify(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_bools(args, &["list", "measure"])?;
    let eps: f64 = flags.num("eps")?.unwrap_or(0.25);
    let beta: f64 = flags.num("beta")?.unwrap_or(1.0);
    if flags.has("list") {
        for spec in registry(eps, beta) {
            let kind = match Sparsifier::kind(&spec) {
                dircut_sketch::SketchKind::ForEach => "foreach",
                dircut_sketch::SketchKind::ForAll => "forall",
            };
            println!("{:<16} {kind}", spec.name());
        }
        return Ok(());
    }
    let name = flags
        .get("name")
        .ok_or_else(|| CliError::Usage("sparsify needs --name (or --list)".into()))?;
    let spec = SparsifierSpec::by_name(name, eps, beta)
        .ok_or_else(|| CliError::Usage(format!("unknown sparsifier `{name}` (try --list)")))?;
    let g = read_graph(&flags)?;
    let seed: u64 = flags.num("seed")?.unwrap_or(42);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sk = spec.construct(&g, &mut rng);
    println!(
        "sparsifier: {} ({:?})",
        spec.name(),
        Sparsifier::kind(&spec)
    );
    println!("input: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    println!(
        "retained edges: {} ({:.1}%)",
        sk.retained_edges(),
        100.0 * sk.retained_edges() as f64 / g.num_edges().max(1) as f64
    );
    println!("wire bits: {}", sk.wire_bits());
    if flags.has("measure") {
        let n = g.num_nodes();
        if !(2..=20).contains(&n) {
            return Err(CliError::Usage(
                "--measure enumerates all cuts and needs 2 ≤ n ≤ 20".into(),
            ));
        }
        println!(
            "max relative cut error: {:.6}",
            max_relative_cut_error(&g, &sk)
        );
    }
    if let Some(side) = flags.get("side") {
        let s = parse_side(side, g.num_nodes())?;
        println!("estimate w(S, V∖S) = {:.6}", sk.cut_out_estimate(&s));
        println!("exact    w(S, V∖S) = {:.6}", g.cut_out(&s));
    }
    Ok(())
}

/// `dircut repro`: re-run the paper's lower-bound games on the trial
/// engine under the substream seeding discipline (`seed_from_u64(S)` +
/// `set_stream(trial)`), print one summary row per reduction with its
/// Wilson 95% interval, and write the per-trial records to
/// `BENCH_reductions.json` (path overridable via `DIRCUT_BENCH_JSON`).
/// Results are bit-identical at any `--threads` / `DIRCUT_THREADS`.
fn cmd_repro(args: &[String]) -> Result<(), CliError> {
    use dircut_bench::{print_header, print_row, record_section, Seeding, TrialEngine};
    use dircut_core::reduction::{
        ForAllGapHammingReduction, ForEachIndexReduction, OracleSpec, TwoSumMinCutReduction,
    };
    use dircut_core::{ForAllParams, ForEachParams, SubsetSearch};

    let target = args.first().map(String::as_str).ok_or_else(|| {
        CliError::Usage("repro needs a target (foreach|forall|localquery|all)".into())
    })?;
    let flags = Flags::parse(&args[1..])?;
    let seed: u64 = flags.num("seed")?.unwrap_or(0);
    let engine = match flags.num::<usize>("threads")? {
        Some(t) => TrialEngine::new(t),
        None => TrialEngine::with_default_threads(),
    };
    let run_foreach = |trials: usize| {
        let rdx = ForEachIndexReduction {
            params: ForEachParams::new(8, 2, 2),
            oracle: OracleSpec::Exact,
        };
        engine.run(&rdx, trials, Seeding::Substream(seed))
    };
    let run_forall = |trials: usize| {
        let rdx = ForAllGapHammingReduction {
            params: ForAllParams::new(1, 16, 2),
            half_gap: 2,
            search: SubsetSearch::Exact,
            oracle: OracleSpec::Exact,
        };
        engine.run(&rdx, trials, Seeding::Substream(seed))
    };
    let run_localquery = |trials: usize| {
        let rdx = TwoSumMinCutReduction {
            t: 4,
            l: 64,
            alpha: 2,
            intersecting: 2,
            eps: 0.2,
            beta0: 0.25,
            algo_seed: 13,
        };
        engine.run(&rdx, trials, Seeding::Substream(seed))
    };
    let trials: Option<usize> = flags.num("trials")?;
    let reports = match target {
        "foreach" => vec![run_foreach(trials.unwrap_or(40))],
        "forall" => vec![run_forall(trials.unwrap_or(24))],
        "localquery" => vec![run_localquery(trials.unwrap_or(8))],
        "all" => vec![
            run_foreach(trials.unwrap_or(40)),
            run_forall(trials.unwrap_or(24)),
            run_localquery(trials.unwrap_or(8)),
        ],
        other => {
            return Err(CliError::Usage(format!(
                "unknown repro target `{other}` (foreach|forall|localquery|all)"
            )))
        }
    };
    print_header(&[
        "reduction",
        "trials",
        "success",
        "wilson95 lo",
        "wilson95 hi",
        "mean queries",
    ]);
    for rep in &reports {
        record_section(&format!("repro {}", rep.reduction), rep);
        let (lo, hi) = rep.wilson95();
        print_row(&[
            rep.reduction.clone(),
            rep.trials().to_string(),
            format!("{:.3}", rep.success_rate()),
            format!("{lo:.3}"),
            format!("{hi:.3}"),
            format!("{:.1}", rep.mean_cut_queries()),
        ]);
    }
    dircut_bench::write_reductions_json("dircut-repro").map_err(|e| CliError::Io(e.to_string()))?;
    println!("\nper-trial records: BENCH_reductions.json (override with DIRCUT_BENCH_JSON)");
    Ok(())
}

/// `dircut soak`: the long-running mutation/query/rebuild interleave
/// from `dircut_bench::soak`. `--smoke` runs a fixed round count with
/// a deterministic digest; otherwise the workload loops for
/// `--seconds` (default 60). Any invariant violation is an I/O-class
/// failure (exit 3) after the full report has been printed.
fn cmd_soak(args: &[String]) -> Result<(), CliError> {
    use dircut_bench::soak::{run_soak, soak_emit, SoakConfig};

    let flags = Flags::parse_with_bools(args, &["smoke"])?;
    let mut cfg = SoakConfig::default();
    cfg.smoke = flags.has("smoke");
    if let Some(s) = flags.num("seconds")? {
        cfg.seconds = s;
    }
    if let Some(s) = flags.num("seed")? {
        cfg.seed = s;
    }
    cfg.out = flags.get("out").map(str::to_owned);
    let report = run_soak(&cfg);
    if soak_emit(&cfg, &report) {
        Ok(())
    } else {
        Err(CliError::Io(format!(
            "soak: {} invariant violation(s)",
            report.violations.len()
        )))
    }
}

/// `dircut serve`: load a graph, bind a socket, and answer cut
/// queries until a client sends a shutdown request. One line goes to
/// stdout as soon as the socket is live (`DIRCUT_SERVE listening=…`)
/// so scripts and tests know when to connect; a coalescing summary
/// follows after shutdown.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let listen = flags
        .get("listen")
        .ok_or_else(|| CliError::Usage("missing required --listen".into()))?;
    let endpoint = Endpoint::parse(listen).map_err(CliError::Usage)?;
    let cfg = ServerConfig {
        batch_max: flags
            .num::<usize>("batch")?
            .unwrap_or_else(dircut_graph::cuteval::chunk_capacity),
        threads: flags.num::<usize>("threads")?.unwrap_or(0),
    };
    let g = read_graph(&flags)?;
    let handle = dircut_serve::serve(&g, &endpoint, &cfg)
        .map_err(|e| CliError::Io(format!("bind {endpoint}: {e}")))?;
    let stats = handle.batch_stats();
    println!(
        "DIRCUT_SERVE listening={} nodes={} edges={} batch={}",
        handle.endpoint(),
        g.num_nodes(),
        g.num_edges(),
        cfg.batch_max
    );
    // The readiness line must be visible to a parent process now, not
    // when the (possibly hours-later) shutdown flushes the pipe.
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Io(e.to_string()))?;
    handle.join();
    let (batches, jobs) = (stats.batches(), stats.jobs());
    let coalesce = if batches == 0 {
        1.0
    } else {
        jobs as f64 / batches as f64
    };
    // The parent may have closed the pipe long ago (it only needed
    // the readiness line); a dead stdout must not turn a clean
    // shutdown into a panic.
    let _ = writeln!(
        std::io::stdout(),
        "served {jobs} cut queries in {batches} batches ({coalesce:.2} per dispatch)"
    );
    Ok(())
}

/// `dircut loadgen`: drive a running server with Zipf-distributed cut
/// queries and write the latency/QPS document to `BENCH_serve.json`.
/// `--verify` re-evaluates every pool set on a local copy of the
/// served graph (FILE/stdin) and fails unless the bits match.
fn cmd_loadgen(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_bools(args, &["smoke", "verify", "shutdown"])?;
    let connect = flags
        .get("connect")
        .ok_or_else(|| CliError::Usage("missing required --connect".into()))?;
    let endpoint = Endpoint::parse(connect).map_err(CliError::Usage)?;
    let seed = flags.num::<u64>("seed")?.unwrap_or(0);
    let mut cfg = if flags.has("smoke") {
        LoadgenConfig::smoke(seed)
    } else {
        LoadgenConfig {
            connections: 4,
            requests_per_conn: 500,
            pool: 64,
            zipf_s: 1.1,
            seed,
            verify: false,
            shutdown: false,
        }
    };
    if let Some(c) = flags.num::<usize>("conns")? {
        cfg.connections = c;
    }
    if let Some(r) = flags.num::<usize>("requests")? {
        cfg.requests_per_conn = r;
    }
    if let Some(p) = flags.num::<usize>("pool")? {
        cfg.pool = p;
    }
    if let Some(s) = flags.num::<f64>("zipf")? {
        cfg.zipf_s = s;
    }
    cfg.verify = flags.has("verify");
    cfg.shutdown = flags.has("shutdown");
    let verify_graph = if cfg.verify {
        Some(read_graph(&flags)?)
    } else {
        None
    };
    let report = dircut_serve::run_loadgen(&endpoint, &cfg, verify_graph.as_ref())
        .map_err(|e| CliError::Io(e.to_string()))?;
    let json = dircut_serve::report_json(&endpoint, &cfg, &report);
    let out_path = flags.get("out").unwrap_or("BENCH_serve.json");
    std::fs::write(out_path, &json).map_err(|e| CliError::Io(format!("{out_path}: {e}")))?;
    println!(
        "{} ok, {} errors; p50 {:.1} µs, p99 {:.1} µs, {:.0} QPS{}",
        report.completed,
        report.errors,
        report.p50_us,
        report.p99_us,
        report.qps,
        if cfg.verify {
            format!(" ({} answers verified bit-identical)", report.verified)
        } else {
            String::new()
        }
    );
    println!("report: {out_path}");
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    print!("{}", to_dot(&g, "dircut"));
    Ok(())
}

/// `dircut dist`: run the socket-backed distributed min-cut protocol
/// and report the answer plus the full communication bill — counted
/// wire bits and the bytes measured at the coordinator's sockets. The
/// wire is picked with `--topology` (in-process loopback by default;
/// `tcp` and `unix` cross real OS sockets) and `--listen` pins the
/// coordinator's address. A degraded run (straggler servers lost past
/// the retry budget) still prints its answer but exits 4 through
/// [`CliError::Degraded`].
fn cmd_dist(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    let servers: usize = flags.num("servers")?.unwrap_or(4);
    if servers == 0 {
        return Err(CliError::Usage("--servers must be ≥ 1".into()));
    }
    let eps: f64 = flags.num("eps")?.unwrap_or(0.25);
    let seed: u64 = flags.num("seed")?.unwrap_or(42);
    let faults = FaultPlan::new()
        .drop(flags.num("drop")?.unwrap_or(0.0))
        .delay(flags.num("delay")?.unwrap_or(0.0))
        .duplicate(flags.num("dup")?.unwrap_or(0.0))
        .corrupt(flags.num("corrupt")?.unwrap_or(0.0))
        .kill(match flags.get("kill") {
            Some(spec) => parse_side(spec, servers)?
                .iter()
                .map(|v| v.index())
                .collect(),
            None => Vec::new(),
        })
        .build();
    let mut builder = RuntimeConfig::builder(ProtocolConfig::new(eps))
        .faults(faults)
        .seed(seed);
    if let Some(t) = flags.num("timeout")? {
        builder = builder.timeout_ticks(t);
    }
    if let Some(r) = flags.num("retries")? {
        builder = builder.retries(r);
    }
    if let Some(spec) = flags.get("topology") {
        builder = builder.topology(Topology::parse(spec).map_err(CliError::Usage)?);
    }
    if let Some(spec) = flags.get("listen") {
        builder = builder.listen(Endpoint::parse(spec).map_err(CliError::Usage)?);
    }
    let cfg = builder.build();
    match run_min_cut(&g, servers, &cfg) {
        Ok(out) => {
            let a = &out.answer;
            println!("servers: {} (arrived: {})", out.servers, out.arrived);
            println!("estimate: {:.6}", a.estimate);
            println!(
                "wire bits: {} (coarse {}, fine {}, framing {})",
                a.total_wire_bits, a.coarse_bits, a.fine_bits, a.framing_bits
            );
            let ctl_bytes: u64 = out.transcripts.iter().map(|t| t.ctl_bytes).sum();
            println!(
                "wire bytes: {} observed at the coordinator (+{ctl_bytes} control)",
                out.wire_bytes()
            );
            let retries: u32 = out.transcripts.iter().map(|t| t.retries).sum();
            println!("retries: {retries}");
            println!(
                "effective ε: {:.6} (degraded: {})",
                out.effective_epsilon, out.degraded
            );
            if out.degraded {
                Err(CliError::Degraded {
                    arrived: out.arrived,
                    servers: out.servers,
                    effective_epsilon: out.effective_epsilon,
                })
            } else {
                Ok(())
            }
        }
        // Total loss is the limit of degradation: nothing arrived, no
        // guarantee at all (ε + 1 by the widening formula).
        Err(DistError::AllServersLost { servers }) => Err(CliError::Degraded {
            arrived: 0,
            servers,
            effective_epsilon: eps + 1.0,
        }),
        // A sketch that cannot even be framed never reached the link;
        // treat it like any other unusable input.
        Err(e @ (DistError::Encode(_) | DistError::Transport(_))) => {
            Err(CliError::Io(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_pairs_and_positionals() {
        let args: Vec<String> = ["--nodes", "10", "file.txt", "--beta", "2.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.get("nodes"), Some("10"));
        assert_eq!(f.get("beta"), Some("2.5"));
        assert_eq!(f.positional, vec!["file.txt"]);
        let n: usize = f.require("nodes").unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn flags_report_missing_values() {
        let args: Vec<String> = ["--nodes"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_err());
    }

    #[test]
    fn parse_side_accepts_lists_and_validates() {
        let s = parse_side("0, 2,3", 5).unwrap();
        assert_eq!(s.len(), 3);
        assert!(parse_side("9", 5).is_err());
        assert!(parse_side("x", 5).is_err());
    }

    #[test]
    fn repro_rejects_unknown_targets() {
        let err = run(&["repro".to_string(), "bogus".to_string()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run(&["repro".to_string()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn sparsify_rejects_missing_and_unknown_names_before_reading_input() {
        let err = run(&["sparsify".to_string()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run(&[
            "sparsify".to_string(),
            "--name".to_string(),
            "bogus".to_string(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn sparsify_list_prints_the_registry() {
        assert!(run(&["sparsify".to_string(), "--list".to_string()]).is_ok());
    }

    #[test]
    fn unknown_commands_error_as_usage() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn error_classes_map_to_distinct_exit_codes() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Io("x".into()).exit_code(), 3);
        let degraded = CliError::Degraded {
            arrived: 1,
            servers: 4,
            effective_epsilon: 0.75,
        };
        assert_eq!(degraded.exit_code(), 4);
        assert!(degraded.to_string().contains("1 of 4"));
    }

    #[test]
    fn missing_files_are_io_errors() {
        let err = run(&[
            "stats".to_string(),
            "/nonexistent/definitely-not-here.g".to_string(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn help_prints() {
        assert!(run(&[]).is_ok());
        assert!(run(&["help".to_string()]).is_ok());
    }
}
