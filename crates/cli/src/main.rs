//! `dircut` — command-line interface to the toolkit.
//!
//! ```text
//! dircut gen balanced --nodes 32 --beta 4 --density 0.5 [--seed S]   # emit edge list
//! dircut gen gadget-foreach --inv-eps 8 --sqrt-beta 2 --ell 2 [--seed S]
//! dircut stats [FILE]                 # nodes/edges/weight/balance/connectivity
//! dircut mincut [FILE]                # global min cuts (directed + symmetrized)
//! dircut cut --side 0,1,2 [FILE]      # one directed cut value
//! dircut sketch --eps 0.25 --beta 4 --model foreach|forall [FILE]
//! dircut dot [FILE]                   # Graphviz export
//! ```
//!
//! Graphs use the plain-text edge-list format of `dircut_graph::io`
//! (`n <count>` then `e <from> <to> <weight>` lines); `FILE` defaults
//! to stdin so commands compose:
//!
//! ```text
//! dircut gen balanced --nodes 24 --beta 4 | dircut sketch --eps 0.3 --beta 4
//! ```

use dircut_graph::balance::{edgewise_balance_bound, exact_balance_factor, is_eulerian};
use dircut_graph::connectivity::is_strongly_connected;
use dircut_graph::generators::random_balanced_digraph;
use dircut_graph::io::{from_edge_list, to_dot, to_edge_list};
use dircut_graph::mincut::{global_min_cut_directed, stoer_wagner};
use dircut_graph::{DiGraph, NodeSet};
use dircut_sketch::{
    BalancedForAllSketcher, BalancedForEachSketcher, CutOracle, CutSketch, CutSketcher,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `dircut help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => {
            print!("{}", USAGE);
            Ok(())
        }
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("mincut") => cmd_mincut(&args[1..]),
        Some("cut") => cmd_cut(&args[1..]),
        Some("sketch") => cmd_sketch(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

const USAGE: &str = "\
dircut — directed cut sparsification toolkit

USAGE:
  dircut gen balanced --nodes N --beta B [--density P] [--seed S]
  dircut gen gadget-foreach --inv-eps E --sqrt-beta B [--ell L]
  dircut stats   [FILE]
  dircut mincut  [FILE]
  dircut cut --side 0,1,2 [FILE]
  dircut sketch --eps E --beta B [--model foreach|forall] [--side LIST] [FILE]
  dircut dot     [FILE]

Graphs are plain-text edge lists (`n <count>` / `e <u> <v> <w>`);
FILE defaults to stdin, so commands pipe into each other.
";

/// Pulls `--flag value` pairs out of an argument list.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    positional: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                pairs.push((name, v.as_str()));
                i += 2;
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok(Self { pairs, positional })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    fn num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        self.get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{name}: cannot parse `{v}`"))
            })
            .transpose()
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.num(name)?
            .ok_or_else(|| format!("missing required --{name}"))
    }
}

fn read_graph(flags: &Flags) -> Result<DiGraph, String> {
    let text = match flags.positional.first() {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| e.to_string())?;
            buf
        }
    };
    from_edge_list(&text).map_err(|e| e.to_string())
}

fn parse_side(spec: &str, n: usize) -> Result<NodeSet, String> {
    let mut s = NodeSet::empty(n);
    for part in spec.split(',') {
        let idx: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("bad node index `{part}`"))?;
        if idx >= n {
            return Err(format!("node {idx} out of range (n = {n})"));
        }
        s.insert(dircut_graph::NodeId::new(idx));
    }
    Ok(s)
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let kind = args.first().map(String::as_str).ok_or("gen needs a kind")?;
    let flags = Flags::parse(&args[1..])?;
    let seed: u64 = flags.num("seed")?.unwrap_or(42);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = match kind {
        "balanced" => {
            let nodes: usize = flags.require("nodes")?;
            let beta: f64 = flags.require("beta")?;
            let density: f64 = flags.num("density")?.unwrap_or(0.5);
            random_balanced_digraph(nodes, density, beta, &mut rng)
        }
        "gadget-foreach" => {
            use dircut_core::{ForEachEncoding, ForEachParams};
            use rand::Rng;
            let inv_eps: usize = flags.require("inv-eps")?;
            let sqrt_beta: usize = flags.require("sqrt-beta")?;
            let ell: usize = flags.num("ell")?.unwrap_or(2);
            let params = ForEachParams::new(inv_eps, sqrt_beta, ell);
            let s: Vec<i8> = (0..params.total_bits())
                .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
                .collect();
            ForEachEncoding::encode(params, &s).graph().clone()
        }
        other => return Err(format!("unknown gen kind `{other}`")),
    };
    print!("{}", to_edge_list(&g));
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    println!("nodes: {}", g.num_nodes());
    println!("edges: {}", g.num_edges());
    println!("total weight: {:.6}", g.total_weight());
    println!("strongly connected: {}", is_strongly_connected(&g));
    println!("eulerian (1-balanced): {}", is_eulerian(&g));
    match edgewise_balance_bound(&g) {
        Some(b) => println!("balance certificate: β ≤ {b:.4}"),
        None => println!("balance certificate: none (some edge lacks a reverse)"),
    }
    if g.num_nodes() <= 20 && g.num_nodes() >= 2 {
        println!("balance exact: β = {:.4}", exact_balance_factor(&g));
    }
    Ok(())
}

fn cmd_mincut(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    if g.num_nodes() < 2 {
        return Err("min-cut needs ≥ 2 nodes".into());
    }
    let directed = global_min_cut_directed(&g);
    let sym = stoer_wagner(&g);
    println!("directed min cut:    {:.6}", directed.value);
    println!("  side: {:?}", directed.side);
    println!("symmetrized min cut: {:.6}", sym.value);
    println!("  side: {:?}", sym.side);
    Ok(())
}

fn cmd_cut(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    let side = flags.get("side").ok_or("cut needs --side")?;
    let s = parse_side(side, g.num_nodes())?;
    let (out, into) = g.cut_both(&s);
    println!("w(S, V∖S) = {out:.6}");
    println!("w(V∖S, S) = {into:.6}");
    Ok(())
}

/// A boxed cut-query closure (the CLI's model-erased sketch handle).
type CutAnswer = Box<dyn Fn(&NodeSet) -> f64>;

fn cmd_sketch(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    let eps: f64 = flags.require("eps")?;
    let beta: f64 = flags.num("beta")?.unwrap_or(1.0);
    let model = flags.get("model").unwrap_or("foreach");
    let seed: u64 = flags.num("seed")?.unwrap_or(42);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (bits, answer): (usize, CutAnswer) = match model {
        "foreach" => {
            let sk = BalancedForEachSketcher::new(eps, beta).sketch(&g, &mut rng);
            let bits = sk.size_bits();
            (bits, Box::new(move |s| sk.cut_out_estimate(s)))
        }
        "forall" => {
            let sk = BalancedForAllSketcher::new(eps, beta).sketch(&g, &mut rng);
            let bits = sk.size_bits();
            (bits, Box::new(move |s| sk.cut_out_estimate(s)))
        }
        other => return Err(format!("unknown model `{other}` (foreach|forall)")),
    };
    println!("model: {model}, ε = {eps}, β = {beta}");
    println!("sketch size: {bits} bits");
    if let Some(side) = flags.get("side") {
        let s = parse_side(side, g.num_nodes())?;
        println!("estimate w(S, V∖S) = {:.6}", answer(&s));
        println!("exact    w(S, V∖S) = {:.6}", g.cut_out(&s));
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let g = read_graph(&flags)?;
    print!("{}", to_dot(&g, "dircut"));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_pairs_and_positionals() {
        let args: Vec<String> = ["--nodes", "10", "file.txt", "--beta", "2.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.get("nodes"), Some("10"));
        assert_eq!(f.get("beta"), Some("2.5"));
        assert_eq!(f.positional, vec!["file.txt"]);
        let n: usize = f.require("nodes").unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn flags_report_missing_values() {
        let args: Vec<String> = ["--nodes"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_err());
    }

    #[test]
    fn parse_side_accepts_lists_and_validates() {
        let s = parse_side("0, 2,3", 5).unwrap();
        assert_eq!(s.len(), 3);
        assert!(parse_side("9", 5).is_err());
        assert!(parse_side("x", 5).is_err());
    }

    #[test]
    fn unknown_commands_error() {
        assert!(run(&["frobnicate".to_string()]).is_err());
    }

    #[test]
    fn help_prints() {
        assert!(run(&[]).is_ok());
        assert!(run(&["help".to_string()]).is_ok());
    }
}
