//! Batched cut-query evaluation: `k` directed cut queries answered in
//! `O(m · k/(64·L))` word-parallel work instead of `k` independent
//! `O(m)` scans, where `L` is the configured lane count.
//!
//! The decoders of Theorems 1.1–1.3 measure a sketch or oracle by
//! firing thousands of cut queries at it, and the exact-truth side of
//! every experiment answers each one with a whole-edge scan. This
//! module batches those scans:
//!
//! * **Lane-unrolled word-parallel kernel** — queries are grouped into
//!   chunks of up to `64·L` sets (`L` ∈ {1, 2, 4} u64 mask lanes,
//!   default 4 → 256 sets a chunk, `DIRCUT_LANES` / [`set_lanes`]).
//!   A chunk builds `L` interleaved `u64` membership words per node
//!   (lane `l`, bit `j` set ⇔ node in set `64·l + j`) and then makes a
//!   *single* pass over the edge list. For an edge `u → v` the
//!   crossing sets in the forward direction are `mask[u] & !mask[v]`
//!   and in the reverse direction `!mask[u] & mask[v]`, per lane — the
//!   lane loop is a `const`-generic unroll, so one 16-byte edge record
//!   read from memory answers the edge for up to 256 queries at once.
//!   On the 10⁷–10⁸-edge graphs the kernel is built for, streaming
//!   those records *is* the cost, which is why amortizing it across
//!   more lanes pays almost linearly.
//! * **LLC tile blocking** — when one worker evaluates several chunks,
//!   the edge list is walked in [`TILE_EDGES`]-record tiles with the
//!   chunk loop *inside* the tile loop, so a tile streamed from DRAM
//!   once is reused from cache by every chunk instead of being
//!   re-fetched per chunk. Per-set accumulation still visits edges in
//!   ascending edge-id order, so tiling never changes a bit.
//! * **Optional degree-ordered relabeling** — with `DIRCUT_RELABEL`
//!   (or [`set_relabel`]) on, snapshot scans use the snapshot's lazily
//!   built [`Relabeling`](crate::snapshot::Relabeling): an
//!   endpoint-renamed edge copy in the same order plus the permutation
//!   applied while building masks, packing the hottest nodes' mask
//!   words onto shared cache lines. External node ids never leak: the
//!   rename exists only between mask build and accumulation.
//! * **Incident-scan fast path** — when a set is small
//!   (`Σ_{v∈S} deg(v) ≪ m`) it is cheaper to walk the members'
//!   incident [`Csr`](crate::digraph::Csr) slices than to touch every
//!   edge. Crossing edges are gathered, sorted by edge id, and summed
//!   in that order, which reproduces the edge-scan's f64 addition
//!   sequence exactly.
//! * **Deterministic fan-out** — chunk groups and fast-path sets are
//!   independent tasks dispatched on [`crate::parallel::run_indexed`],
//!   so results are reassembled in query order and are bit-identical
//!   for any thread count.
//!
//! Every entry point returns, for every query, **the same f64 bits**
//! as the corresponding naive scan ([`DiGraph::cut_out`],
//! [`DiGraph::cut_in`], [`DiGraph::cut_both`]) at every lane count,
//! thread count, tile size, and relabeling setting: per set, weights
//! are accumulated in ascending edge-id order, which is the edge-list
//! order the naive scans use. That property is what lets the
//! experiment tables stay reproducible while the hot path changes
//! underneath them.

use crate::digraph::{DiGraph, Edge, UniverseMismatch};
use crate::ids::NodeSet;
use crate::parallel;
use crate::snapshot::CsrSnapshot;
use std::sync::atomic::{AtomicU8, Ordering};

/// A set is routed to the incident-scan fast path when the total
/// incident degree of its members, times this factor, is below the
/// edge count. At 16, a chunk's worth of fast-path sets costs at most
/// ~4× one shared edge pass (64/16), while genuinely tiny sets (the
/// common case: single-vertex and gadget-group queries) skip the
/// `O(m)` pass entirely.
const FAST_PATH_FACTOR: usize = 16;

/// Maximum (and default) number of u64 mask lanes per chunk.
pub const MAX_LANES: usize = 4;

/// Edge records per cache tile. At 16 bytes an [`Edge`] this is 2 MiB
/// of edge stream per tile — small enough to sit in a shared LLC slice
/// next to the mask arrays it is scanned against, large enough that
/// the per-tile loop overhead vanishes. See DESIGN.md for the sizing
/// argument.
const TILE_EDGES: usize = 1 << 17;

/// Cap on chunks evaluated by one worker group. Bounds the mask
/// memory a group holds live (`≤ MAX_GROUP_CHUNKS · L · 8n` bytes) and
/// keeps the tile loop's working set cache-resident.
const MAX_GROUP_CHUNKS: usize = 8;

/// 0 = not yet read from the environment; otherwise the lane count.
static LANES: AtomicU8 = AtomicU8::new(0);

/// 0 = not yet read from the environment, 1 = on, 2 = off.
static RELABEL: AtomicU8 = AtomicU8::new(0);

fn clamp_lanes(l: usize) -> usize {
    if l >= 4 {
        4
    } else if l >= 2 {
        2
    } else {
        1
    }
}

/// Number of u64 mask lanes per kernel chunk: 1, 2, or 4.
///
/// Controlled by `DIRCUT_LANES` (values are rounded down to the
/// nearest of 1/2/4; unset or unparsable means [`MAX_LANES`]) or by
/// [`set_lanes`]. Lane count is a pure throughput knob: results are
/// bit-identical at every setting.
#[must_use]
pub fn lanes() -> usize {
    match LANES.load(Ordering::Relaxed) {
        0 => {
            let l = std::env::var("DIRCUT_LANES")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map_or(MAX_LANES, clamp_lanes);
            LANES.store(l as u8, Ordering::Relaxed);
            l
        }
        l => l as usize,
    }
}

/// Overrides the `DIRCUT_LANES` lane count for the rest of the process
/// (rounded down to 1, 2, or 4). Used by `bench_cutkernels` to sweep
/// lane counts in one process and by the bit-identity tests.
pub fn set_lanes(l: usize) {
    LANES.store(clamp_lanes(l) as u8, Ordering::Relaxed);
}

/// Sets a kernel chunk holds at the current lane count (`64 · lanes()`).
/// The serve scheduler uses this as its default coalescing width so a
/// full batch fills exactly one kernel chunk.
#[must_use]
pub fn chunk_capacity() -> usize {
    64 * lanes()
}

/// Whether snapshot kernels apply the degree-ordered vertex
/// relabeling. Controlled by `DIRCUT_RELABEL` (`0` or unset disables)
/// or [`set_relabel`]. Off by default: the renamed edge copy costs
/// `O(m)` memory per snapshot and only pays off when the degree
/// distribution is skewed enough that hot mask words collide in cache.
/// Results are bit-identical either way.
#[must_use]
pub fn relabel_enabled() -> bool {
    match RELABEL.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("DIRCUT_RELABEL").is_ok_and(|v| v != "0");
            RELABEL.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the `DIRCUT_RELABEL` toggle for the rest of the process.
pub fn set_relabel(on: bool) {
    RELABEL.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

fn incident_degree(snap: &CsrSnapshot, s: &NodeSet) -> usize {
    let csr = snap.csr();
    s.iter()
        .map(|v| csr.out_targets(v).len() + csr.in_sources(v).len())
        .sum()
}

/// Answers one small set by scanning only its members' incident edges.
/// Gathered crossing edges are sorted by edge id and summed in that
/// order, so the result is bit-identical to the whole-edge scan.
fn eval_incident(snap: &CsrSnapshot, s: &NodeSet) -> (f64, f64) {
    let csr = snap.csr();
    let mut fwd: Vec<(u32, f64)> = Vec::new();
    let mut rev: Vec<(u32, f64)> = Vec::new();
    for v in s.iter() {
        for (id, (&t, &w)) in csr
            .out_edge_ids(v)
            .iter()
            .zip(csr.out_targets(v).iter().zip(csr.out_weights(v)))
        {
            if !s.contains(crate::ids::NodeId(t)) {
                fwd.push((id.0, w));
            }
        }
        for (id, (&f, &w)) in csr
            .in_edge_ids(v)
            .iter()
            .zip(csr.in_sources(v).iter().zip(csr.in_weights(v)))
        {
            if !s.contains(crate::ids::NodeId(f)) {
                rev.push((id.0, w));
            }
        }
    }
    fwd.sort_unstable_by_key(|&(id, _)| id);
    rev.sort_unstable_by_key(|&(id, _)| id);
    // Explicit `+0.0`-seeded folds, matching the naive scans — an
    // `Iterator::sum` would seed with `-0.0` and flip the zero sign of
    // empty cuts.
    let mut out = 0.0;
    for &(_, w) in &fwd {
        out += w;
    }
    let mut into = 0.0;
    for &(_, w) in &rev {
        into += w;
    }
    (out, into)
}

/// Builds the interleaved membership masks for one chunk of up to
/// `64·L` sets: `mask[node·L + lane]` holds bit `j` ⇔ node ∈ set
/// `64·lane + j`. With `perm` set, nodes are renamed through the
/// relabeling permutation while the bits are planted, so the scan side
/// never consults external ids.
fn build_masks<const L: usize>(n: usize, sets: &[&NodeSet], perm: Option<&[u32]>) -> Vec<u64> {
    debug_assert!(sets.len() <= 64 * L);
    let mut mask = vec![0u64; n * L];
    for (j, s) in sets.iter().enumerate() {
        let lane = j / 64;
        let bit = 1u64 << (j % 64);
        match perm {
            Some(p) => {
                for v in s.iter() {
                    mask[p[v.index()] as usize * L + lane] |= bit;
                }
            }
            None => {
                for v in s.iter() {
                    mask[v.index() * L + lane] |= bit;
                }
            }
        }
    }
    mask
}

/// The lane-unrolled inner loop: accumulates one edge tile into one
/// chunk's accumulators. `get` projects an edge record to
/// `(tail, head, weight)` in whatever id space `mask` was built in.
/// The `L` lane loop is a compile-time unroll; `acc[64·l + j]`
/// accumulates set `64·l + j` in ascending edge order, so any tiling
/// of the edge list produces the same bits.
#[inline]
fn scan_tile<const L: usize, E: Copy>(
    tile: &[E],
    get: impl Fn(E) -> (usize, usize, f64),
    mask: &[u64],
    acc: &mut [(f64, f64)],
) {
    for &e in tile {
        let (u, v, w) = get(e);
        let (ub, vb) = (u * L, v * L);
        for l in 0..L {
            let mu = mask[ub + l];
            let mv = mask[vb + l];
            let mut f = mu & !mv;
            while f != 0 {
                acc[(l << 6) + f.trailing_zeros() as usize].0 += w;
                f &= f - 1;
            }
            let mut r = !mu & mv;
            while r != 0 {
                acc[(l << 6) + r.trailing_zeros() as usize].1 += w;
                r &= r - 1;
            }
        }
    }
}

/// Evaluates one worker group of chunks against a snapshot with the
/// tile-blocked, lane-unrolled kernel: masks for every chunk are built
/// up front, then the edge list streams through in [`TILE_EDGES`]
/// tiles with the chunk loop innermost, so each tile is fetched from
/// DRAM once and served to every chunk from cache.
fn eval_group<const L: usize>(
    snap: &CsrSnapshot,
    sets: &[NodeSet],
    group: &[&[usize]],
) -> Vec<Vec<(f64, f64)>> {
    let n = snap.num_nodes();
    let relab = if relabel_enabled() {
        Some(snap.relabeling())
    } else {
        None
    };
    let edges: &[Edge] = relab.map_or_else(|| snap.edges(), |r| &r.edges);
    let perm: Option<&[u32]> = relab.map(|r| &*r.perm);
    let mut masks: Vec<Vec<u64>> = Vec::with_capacity(group.len());
    let mut accs: Vec<Vec<(f64, f64)>> = Vec::with_capacity(group.len());
    for chunk in group {
        let members: Vec<&NodeSet> = chunk.iter().map(|&i| &sets[i]).collect();
        masks.push(build_masks::<L>(n, &members, perm));
        accs.push(vec![(0.0f64, 0.0f64); chunk.len()]);
    }
    for tile in edges.chunks(TILE_EDGES) {
        for (mask, acc) in masks.iter().zip(accs.iter_mut()) {
            scan_tile::<L, Edge>(
                tile,
                |e| (e.from.index(), e.to.index(), e.weight),
                mask,
                acc,
            );
        }
    }
    accs
}

/// Splits `chunks` into contiguous worker groups: enough groups to
/// feed every thread, but no group wider than [`MAX_GROUP_CHUNKS`].
fn group_size(num_chunks: usize, threads: usize) -> usize {
    num_chunks
        .div_ceil(threads.max(1))
        .clamp(1, MAX_GROUP_CHUNKS)
}

fn check_universes(g: &DiGraph, sets: &[NodeSet]) -> Result<(), UniverseMismatch> {
    let n = g.num_nodes();
    for s in sets {
        if s.universe() != n {
            return Err(UniverseMismatch {
                expected: n,
                got: s.universe(),
            });
        }
    }
    Ok(())
}

/// Core batch evaluator over one snapshot: consults the snapshot's cut
/// memo, routes each remaining set to the fast path or the
/// word-parallel kernel, and fans the work across `threads` workers.
/// Billing is the caller's job (the public entry points below and the
/// serve scheduler bill at their own boundaries).
///
/// Evaluating only the memo-missed subset is sound because per-set
/// accumulation is independent in every kernel: a set's fold visits
/// the same crossing edges in the same ascending-edge-id order whether
/// its chunk holds 1 set or 256, so filtering the batch cannot change
/// any bit of any result.
fn eval_batch_on(snap: &CsrSnapshot, sets: &[NodeSet], threads: usize) -> Vec<(f64, f64)> {
    if sets.is_empty() {
        return Vec::new();
    }
    let mut out_vals = vec![0.0f64; sets.len()];
    let mut in_vals = vec![0.0f64; sets.len()];
    let todo = snap.memo_lookup_batch(sets, Some(&mut out_vals), Some(&mut in_vals));
    if !todo.is_empty() {
        let m = snap.num_edges();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for &i in &todo {
            if incident_degree(snap, &sets[i]) * FAST_PATH_FACTOR < m {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        // Large sets: chunks of ≤ 64·L share one edge pass each, and
        // groups of chunks share each edge *tile*. The lane count is
        // latched once per batch so a concurrent `set_lanes` cannot
        // split one batch across layouts.
        let lane_count = lanes();
        let chunks: Vec<&[usize]> = large.chunks(64 * lane_count).collect();
        let groups: Vec<&[&[usize]]> = chunks.chunks(group_size(chunks.len(), threads)).collect();
        let group_out = parallel::run_indexed(groups.len(), threads, |gi| match lane_count {
            1 => eval_group::<1>(snap, sets, groups[gi]),
            2 => eval_group::<2>(snap, sets, groups[gi]),
            _ => eval_group::<4>(snap, sets, groups[gi]),
        });
        for (group, vals) in groups.iter().zip(group_out) {
            for (chunk, cvals) in group.iter().zip(vals) {
                for (&i, (out, into)) in chunk.iter().zip(cvals) {
                    out_vals[i] = out;
                    in_vals[i] = into;
                }
            }
        }
        // Small sets: independent incident scans.
        let small_out = parallel::run_indexed(small.len(), threads, |k| {
            eval_incident(snap, &sets[small[k]])
        });
        for (&i, (out, into)) in small.iter().zip(small_out) {
            out_vals[i] = out;
            in_vals[i] = into;
        }
        snap.memo_store_batch(sets, &todo, Some(&out_vals), Some(&in_vals));
    }
    out_vals.into_iter().zip(in_vals).collect()
}

/// Graph-level batch evaluator: bills every logical query, then runs
/// the batch on the graph's current snapshot (building it on first
/// use, so worker threads share it read-only instead of racing to
/// initialize it).
fn eval_batch(g: &DiGraph, sets: &[NodeSet], threads: usize) -> Vec<(f64, f64)> {
    // Billing first, unconditionally: every logical query counts, no
    // matter how many the memo serves.
    crate::stats::count_cut_queries(sets.len() as u64);
    if sets.is_empty() {
        return Vec::new();
    }
    eval_batch_on(g.snapshot_ref(), sets, threads)
}

/// Batched [`DiGraph::cut_both`]: `(w(Sᵢ,V∖Sᵢ), w(V∖Sᵢ,Sᵢ))` for every
/// query set, bit-identical to calling `cut_both` per set, using the
/// default worker-pool size.
///
/// # Panics
/// Panics (debug builds only) on a universe mismatch; use
/// [`try_cut_both_batch`] for a checked variant.
#[must_use]
pub fn cut_both_batch(g: &DiGraph, sets: &[NodeSet]) -> Vec<(f64, f64)> {
    cut_both_batch_threaded(g, sets, parallel::default_threads())
}

/// [`cut_both_batch`] with an explicit worker count. Results are
/// bit-identical for any `threads ≥ 1`.
#[must_use]
pub fn cut_both_batch_threaded(g: &DiGraph, sets: &[NodeSet], threads: usize) -> Vec<(f64, f64)> {
    debug_assert!(
        check_universes(g, sets).is_ok(),
        "node-set universe mismatch"
    );
    eval_batch(g, sets, threads)
}

/// Batched [`DiGraph::cut_out`]: the forward cut value for every query
/// set, bit-identical to calling `cut_out` per set.
///
/// # Panics
/// Panics (debug builds only) on a universe mismatch.
#[must_use]
pub fn cut_out_batch(g: &DiGraph, sets: &[NodeSet]) -> Vec<f64> {
    cut_out_batch_threaded(g, sets, parallel::default_threads())
}

/// [`cut_out_batch`] with an explicit worker count.
#[must_use]
pub fn cut_out_batch_threaded(g: &DiGraph, sets: &[NodeSet], threads: usize) -> Vec<f64> {
    cut_both_batch_threaded(g, sets, threads)
        .into_iter()
        .map(|(out, _)| out)
        .collect()
}

/// Batched [`DiGraph::cut_in`]: the reverse cut value for every query
/// set, bit-identical to calling `cut_in` per set.
///
/// # Panics
/// Panics (debug builds only) on a universe mismatch.
#[must_use]
pub fn cut_in_batch(g: &DiGraph, sets: &[NodeSet]) -> Vec<f64> {
    cut_in_batch_threaded(g, sets, parallel::default_threads())
}

/// [`cut_in_batch`] with an explicit worker count.
#[must_use]
pub fn cut_in_batch_threaded(g: &DiGraph, sets: &[NodeSet], threads: usize) -> Vec<f64> {
    cut_both_batch_threaded(g, sets, threads)
        .into_iter()
        .map(|(_, into)| into)
        .collect()
}

/// Checked [`cut_both_batch`].
///
/// # Errors
/// [`UniverseMismatch`] if any set's universe differs from the graph's
/// node count.
pub fn try_cut_both_batch(
    g: &DiGraph,
    sets: &[NodeSet],
) -> Result<Vec<(f64, f64)>, UniverseMismatch> {
    check_universes(g, sets)?;
    Ok(eval_batch(g, sets, parallel::default_threads()))
}

/// Batched [`CsrSnapshot::try_cut_both`]: both directed cut values for
/// every query set, answered against one immutable snapshot — this is
/// the kernel the serve scheduler drives. Billed per logical query and
/// bit-identical to [`cut_both_batch_threaded`] on the owning graph at
/// the same epoch (and to per-set `cut_both` calls).
///
/// # Errors
/// [`UniverseMismatch`] if any set's universe differs from the
/// snapshot's node count.
pub fn try_cut_both_batch_snapshot(
    snap: &CsrSnapshot,
    sets: &[NodeSet],
    threads: usize,
) -> Result<Vec<(f64, f64)>, UniverseMismatch> {
    let n = snap.num_nodes();
    for s in sets {
        crate::error::check_universe(n, s.universe())?;
    }
    crate::stats::count_cut_queries(sets.len() as u64);
    Ok(eval_batch_on(snap, sets, threads))
}

/// Evaluates one worker group of chunks against a raw edge list; the
/// tuple-edge twin of [`eval_group`] (no memo, no relabeling — sketch
/// edge lists are tiny and queried once).
fn eval_group_edges<const L: usize>(
    n: usize,
    edges: &[(u32, u32, f64)],
    group: &[&[NodeSet]],
) -> Vec<Vec<(f64, f64)>> {
    let mut masks: Vec<Vec<u64>> = Vec::with_capacity(group.len());
    let mut accs: Vec<Vec<(f64, f64)>> = Vec::with_capacity(group.len());
    for chunk in group {
        let members: Vec<&NodeSet> = chunk.iter().collect();
        masks.push(build_masks::<L>(n, &members, None));
        accs.push(vec![(0.0f64, 0.0f64); chunk.len()]);
    }
    for tile in edges.chunks(TILE_EDGES) {
        for (mask, acc) in masks.iter().zip(accs.iter_mut()) {
            scan_tile::<L, (u32, u32, f64)>(
                tile,
                |(u, v, w)| (u as usize, v as usize, w),
                mask,
                acc,
            );
        }
    }
    accs
}

/// Word-parallel batch kernel over a raw weighted edge list (the
/// storage format of edge-list sketches): for every query set, both
/// directed cut values, accumulated in edge order — bit-identical to a
/// per-set filtered scan of the same list at every lane and thread
/// count. Sets whose universe is not `n` yield garbage (membership
/// tests simply fail); callers validate.
#[must_use]
pub fn cut_both_batch_edges(
    n: usize,
    edges: &[(u32, u32, f64)],
    sets: &[NodeSet],
    threads: usize,
) -> Vec<(f64, f64)> {
    crate::stats::count_cut_queries(sets.len() as u64);
    if sets.is_empty() {
        return Vec::new();
    }
    let lane_count = lanes();
    let chunks: Vec<&[NodeSet]> = sets.chunks(64 * lane_count).collect();
    let groups: Vec<&[&[NodeSet]]> = chunks.chunks(group_size(chunks.len(), threads)).collect();
    let per_group = parallel::run_indexed(groups.len(), threads, |gi| match lane_count {
        1 => eval_group_edges::<1>(n, edges, groups[gi]),
        2 => eval_group_edges::<2>(n, edges, groups[gi]),
        _ => eval_group_edges::<4>(n, edges, groups[gi]),
    });
    per_group.into_iter().flatten().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    /// Deterministic splitmix64 — keeps the tests free of external
    /// RNG crates.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> DiGraph {
        let mut rng = Mix(seed);
        let mut g = DiGraph::with_edge_capacity(n, m);
        for _ in 0..m {
            let u = rng.below(n as u64) as usize;
            let mut v = rng.below(n as u64) as usize;
            if v == u {
                v = (v + 1) % n;
            }
            let w = (rng.below(1000) as f64) / 7.0;
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        g
    }

    fn random_sets(n: usize, k: usize, seed: u64) -> Vec<NodeSet> {
        let mut rng = Mix(seed);
        (0..k)
            .map(|_| {
                let size = 1 + rng.below(n as u64) as usize;
                NodeSet::from_indices(n, (0..size).map(|_| rng.below(n as u64) as usize))
            })
            .collect()
    }

    #[test]
    fn batch_matches_naive_bitwise() {
        let g = random_graph(50, 400, 1);
        let mut sets = random_sets(50, 130, 2);
        // Force a few tiny sets onto the fast path and include the
        // empty and full sets as degenerate queries.
        sets.push(NodeSet::from_indices(50, [7]));
        sets.push(NodeSet::empty(50));
        sets.push(NodeSet::full(50));
        for threads in [1, 4] {
            let got = cut_both_batch_threaded(&g, &sets, threads);
            for (s, &(o, i)) in sets.iter().zip(&got) {
                let (no, ni) = g.cut_both(s);
                assert_eq!(o.to_bits(), no.to_bits(), "threads={threads}");
                assert_eq!(i.to_bits(), ni.to_bits(), "threads={threads}");
            }
            let outs = cut_out_batch_threaded(&g, &sets, threads);
            let ins = cut_in_batch_threaded(&g, &sets, threads);
            for ((s, o), i) in sets.iter().zip(&outs).zip(&ins) {
                assert_eq!(o.to_bits(), g.cut_out(s).to_bits());
                assert_eq!(i.to_bits(), g.cut_in(s).to_bits());
            }
        }
    }

    #[test]
    fn every_lane_count_matches_naive_bitwise() {
        // Lane count is process-global; races with concurrently
        // running tests are benign because every lane count produces
        // identical bits — which is exactly what this test pins.
        let g = random_graph(60, 500, 31);
        // > 64 large sets so lane 1 needs several chunks while lane 4
        // packs them into one, plus relabeling on/off.
        let sets = random_sets(60, 150, 32);
        let naive: Vec<(f64, f64)> = sets.iter().map(|s| g.cut_both(s)).collect();
        for lane_count in [1, 2, 4] {
            set_lanes(lane_count);
            assert_eq!(lanes(), lane_count);
            assert_eq!(chunk_capacity(), 64 * lane_count);
            for relab in [false, true] {
                set_relabel(relab);
                for threads in [1, 8] {
                    let got = cut_both_batch_threaded(&g, &sets, threads);
                    for ((s, a), b) in sets.iter().zip(&naive).zip(&got) {
                        assert_eq!(
                            (a.0.to_bits(), a.1.to_bits()),
                            (b.0.to_bits(), b.1.to_bits()),
                            "lanes={lane_count} relabel={relab} threads={threads} set={s:?}"
                        );
                    }
                }
            }
        }
        set_relabel(false);
        set_lanes(MAX_LANES);
    }

    #[test]
    fn tile_blocking_covers_multi_tile_edge_lists() {
        // More edges than one TILE_EDGES tile, so the tile loop
        // actually splits the scan; with > 64 sets at lane 1 the
        // group also holds several chunks.
        let n = 64;
        let m = TILE_EDGES + TILE_EDGES / 3;
        let mut rng = Mix(77);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let u = rng.below(n as u64) as u32;
            let mut v = rng.below(n as u64) as u32;
            if v == u {
                v = (v + 1) % n as u32;
            }
            edges.push((u, v, (rng.below(100) as f64) / 3.0));
        }
        let sets = random_sets(n, 70, 78);
        let naive: Vec<(f64, f64)> = sets
            .iter()
            .map(|s| {
                let (mut out, mut into) = (0.0f64, 0.0f64);
                for &(u, v, w) in &edges {
                    match (s.contains(NodeId(u)), s.contains(NodeId(v))) {
                        (true, false) => out += w,
                        (false, true) => into += w,
                        _ => {}
                    }
                }
                (out, into)
            })
            .collect();
        for lane_count in [1, 4] {
            set_lanes(lane_count);
            let got = cut_both_batch_edges(n, &edges, &sets, 2);
            for (a, b) in naive.iter().zip(&got) {
                assert_eq!(
                    (a.0.to_bits(), a.1.to_bits()),
                    (b.0.to_bits(), b.1.to_bits()),
                    "lanes={lane_count}"
                );
            }
        }
        set_lanes(MAX_LANES);
    }

    #[test]
    fn more_than_64_queries_split_into_chunks() {
        let g = random_graph(20, 60, 3);
        let sets = random_sets(20, 200, 4);
        let got = cut_both_batch_threaded(&g, &sets, 3);
        assert_eq!(got.len(), 200);
        for (s, &(o, i)) in sets.iter().zip(&got) {
            let (no, ni) = g.cut_both(s);
            assert_eq!((o.to_bits(), i.to_bits()), (no.to_bits(), ni.to_bits()));
        }
    }

    #[test]
    fn fast_path_handles_parallel_edges_and_isolated_nodes() {
        let mut g = DiGraph::new(200);
        // Dense enough that singleton sets hit the fast path; node 199
        // stays isolated.
        let mut rng = Mix(9);
        for _ in 0..3000 {
            let u = rng.below(198) as usize;
            let mut v = rng.below(198) as usize;
            if v == u {
                v = (v + 1) % 198;
            }
            g.add_edge(NodeId::new(u), NodeId::new(v), 1.0 + (rng.below(5) as f64));
        }
        // Duplicate one pair many times to exercise parallel edges.
        for _ in 0..10 {
            g.add_edge(NodeId::new(0), NodeId::new(1), 0.5);
        }
        let sets = vec![
            NodeSet::from_indices(200, [0]),
            NodeSet::from_indices(200, [199]), // isolated
            NodeSet::from_indices(200, [0, 1]),
        ];
        let got = cut_both_batch_threaded(&g, &sets, 2);
        for (s, &(o, i)) in sets.iter().zip(&got) {
            let (no, ni) = g.cut_both(s);
            assert_eq!((o.to_bits(), i.to_bits()), (no.to_bits(), ni.to_bits()));
        }
        assert_eq!(got[1], (0.0, 0.0));
    }

    #[test]
    fn checked_batch_rejects_mismatched_universe() {
        let g = random_graph(10, 20, 5);
        let sets = vec![NodeSet::empty(10), NodeSet::empty(11)];
        assert_eq!(
            try_cut_both_batch(&g, &sets),
            Err(UniverseMismatch {
                expected: 10,
                got: 11
            })
        );
    }

    #[test]
    fn edge_list_kernel_matches_graph_kernel() {
        let g = random_graph(30, 150, 6);
        let sets = random_sets(30, 80, 7);
        let tuples: Vec<(u32, u32, f64)> = g
            .edges()
            .iter()
            .map(|e| (e.from.0, e.to.0, e.weight))
            .collect();
        for threads in [1, 4] {
            let a = cut_both_batch_edges(30, &tuples, &sets, threads);
            for (s, &(o, i)) in sets.iter().zip(&a) {
                let (no, ni) = g.cut_both(s);
                assert_eq!((o.to_bits(), i.to_bits()), (no.to_bits(), ni.to_bits()));
            }
        }
    }

    #[test]
    fn cached_and_uncached_batches_are_bit_identical_and_billed_alike() {
        let _guard = crate::cache::test_lock();
        let g = random_graph(40, 300, 11);
        let sets = random_sets(40, 100, 12);
        crate::cache::set_enabled(false);
        let (cold, cold_counts) = crate::stats::scoped(|| cut_both_batch_threaded(&g, &sets, 2));
        crate::cache::set_enabled(true);
        let (warm1, warm_counts) = crate::stats::scoped(|| cut_both_batch_threaded(&g, &sets, 2));
        // Second warm pass is served entirely from the memo…
        let hits_before = crate::stats::total_cache_hits();
        let (warm2, repeat_counts) = crate::stats::scoped(|| cut_both_batch_threaded(&g, &sets, 2));
        assert!(crate::stats::total_cache_hits() >= hits_before + sets.len() as u64);
        // …but billed exactly like the cold pass.
        assert_eq!(cold_counts, warm_counts);
        assert_eq!(cold_counts, repeat_counts);
        for ((a, b), c) in cold.iter().zip(&warm1).zip(&warm2) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
            assert_eq!(b.0.to_bits(), c.0.to_bits());
            assert_eq!(b.1.to_bits(), c.1.to_bits());
        }
    }

    #[test]
    fn snapshot_batch_matches_graph_batch_bitwise() {
        let mut g = random_graph(40, 300, 21);
        let sets = random_sets(40, 90, 22);
        let snap = g.snapshot();
        let direct = cut_both_batch_threaded(&g, &sets, 2);
        for threads in [1, 4] {
            let via_snap = try_cut_both_batch_snapshot(&snap, &sets, threads).unwrap();
            for (a, b) in direct.iter().zip(&via_snap) {
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "threads={threads}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "threads={threads}");
            }
        }
        // The snapshot keeps answering at its own epoch after mutation…
        g.scale_weights(2.0);
        let again = try_cut_both_batch_snapshot(&snap, &sets, 2).unwrap();
        for (a, b) in direct.iter().zip(&again) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        // …and rejects mismatched universes with a typed error.
        assert_eq!(
            try_cut_both_batch_snapshot(&snap, &[NodeSet::empty(41)], 1),
            Err(UniverseMismatch {
                expected: 40,
                got: 41
            })
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let g = random_graph(5, 6, 8);
        assert!(cut_both_batch(&g, &[]).is_empty());
        assert!(cut_out_batch(&g, &[]).is_empty());
        assert!(cut_in_batch(&g, &[]).is_empty());
    }
}
