//! Named graph-family specifications: one value that says how to
//! build an instance *and* what is provably true of it.
//!
//! Every experiment bin used to carry its own ad-hoc
//! `(name, generator, β)` triples; the soak harness and the
//! adversarial sweeps need the same axis plus the closed-form
//! structural facts (known min cut, exact balance certificate), so
//! [`FamilySpec`] centralises all of it. Deterministic families
//! (the bit gadget, the β-extreme bipartite) ignore the RNG handed to
//! [`FamilySpec::generate`]; randomized ones consume it.

use crate::digraph::DiGraph;
use crate::generators::{
    beta_extreme_bipartite, beta_extreme_min_cut, bit_gadget, bit_gadget_balanced,
    bit_gadget_balanced_min_cut, bit_gadget_min_cut, bit_gadget_nodes, random_balanced_digraph,
    random_eulerian_digraph, scale_free_digraph,
};
use crate::ids::{NodeId, NodeSet};
use rand::Rng;

/// Two dense blocks with a thin 2-balanced bridge — the family where
/// strength-aware samplers shine (intra-block edges are strong, the
/// bridge is not). Moved here from `exp_sparsifier_zoo` so every bin
/// and the soak harness build the identical instance.
#[must_use]
pub fn clustered_graph(n: usize) -> DiGraph {
    assert!(n >= 4 && n % 2 == 0);
    let half = n / 2;
    let mut g = DiGraph::new(n);
    for block in [0..half, half..n] {
        for u in block.clone() {
            for v in block.clone() {
                if u < v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), 1.0);
                    g.add_edge(NodeId::new(v), NodeId::new(u), 0.5);
                }
            }
        }
    }
    for (u, v) in [(0, half), (half / 2, half + half / 2)] {
        g.add_edge(NodeId::new(u), NodeId::new(v), 1.0);
        g.add_edge(NodeId::new(v), NodeId::new(u), 0.5);
    }
    g
}

/// A named graph family with its structural guarantees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FamilySpec {
    /// [`random_balanced_digraph`]`(n, p, beta)`.
    Balanced {
        /// Node count.
        n: usize,
        /// Per-pair edge probability.
        p: f64,
        /// Exact edgewise balance certificate.
        beta: f64,
    },
    /// [`random_eulerian_digraph`]`(n, cycles)` — 1-balanced.
    Eulerian {
        /// Node count.
        n: usize,
        /// Number of superimposed random cycles.
        cycles: usize,
    },
    /// [`clustered_graph`]`(n)` — two dense blocks, thin bridge.
    Clustered {
        /// Node count (even, ≥ 4).
        n: usize,
    },
    /// [`bit_gadget`]`(bits)` — the pure arXiv 1901.01630 adversarial
    /// instance; no finite balance certificate.
    BitGadget {
        /// Word width; `2^bits` words per side.
        bits: usize,
    },
    /// [`bit_gadget_balanced`]`(bits, beta)` — the β-certified gadget
    /// variant the balance-aware sparsifier sweeps need.
    BitGadgetBalanced {
        /// Word width; `2^bits` words per side.
        bits: usize,
        /// Mirror-edge certificate; must exceed `8·bits`.
        beta: f64,
    },
    /// [`scale_free_digraph`]`(n, out_degree, beta)` — preferential
    /// attachment with a β-balanced mirror.
    ScaleFree {
        /// Node count.
        n: usize,
        /// Attachments per new node.
        out_degree: usize,
        /// Balance-certificate upper bound.
        beta: f64,
    },
    /// [`beta_extreme_bipartite`]`(half, beta)` — the widest
    /// directed/undirected sparsification gap.
    BetaExtreme {
        /// Nodes per side.
        half: usize,
        /// Exact edgewise balance certificate.
        beta: f64,
    },
}

impl FamilySpec {
    /// Stable family name, used as the axis key in experiment output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Balanced { .. } => "balanced",
            Self::Eulerian { .. } => "eulerian",
            Self::Clustered { .. } => "clustered",
            Self::BitGadget { .. } => "bitgadget",
            Self::BitGadgetBalanced { .. } => "bitgadget-balanced",
            Self::ScaleFree { .. } => "scalefree",
            Self::BetaExtreme { .. } => "betaextreme",
        }
    }

    /// Node count of the generated instance.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        match *self {
            Self::Balanced { n, .. }
            | Self::Eulerian { n, .. }
            | Self::Clustered { n }
            | Self::ScaleFree { n, .. } => n,
            Self::BitGadget { bits } | Self::BitGadgetBalanced { bits, .. } => {
                bit_gadget_nodes(bits)
            }
            Self::BetaExtreme { half, .. } => 2 * half,
        }
    }

    /// The β upper bound a balance-aware sparsifier may assume, or
    /// `None` when no finite edgewise certificate exists (the pure bit
    /// gadget has edges with no reverse).
    #[must_use]
    pub fn beta_bound(&self) -> Option<f64> {
        match *self {
            Self::Balanced { beta, .. }
            | Self::BitGadgetBalanced { beta, .. }
            | Self::ScaleFree { beta, .. }
            | Self::BetaExtreme { beta, .. } => Some(beta),
            Self::Eulerian { .. } => Some(1.0),
            Self::Clustered { .. } => Some(2.0),
            Self::BitGadget { .. } => None,
        }
    }

    /// Whether [`generate`](Self::generate) consumes the RNG at all.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            Self::Clustered { .. }
                | Self::BitGadget { .. }
                | Self::BitGadgetBalanced { .. }
                | Self::BetaExtreme { .. }
        )
    }

    /// Builds one instance. Deterministic families ignore `rng`.
    #[must_use]
    pub fn generate<R: Rng>(&self, rng: &mut R) -> DiGraph {
        match *self {
            Self::Balanced { n, p, beta } => random_balanced_digraph(n, p, beta, rng),
            Self::Eulerian { n, cycles } => random_eulerian_digraph(n, cycles, rng),
            Self::Clustered { n } => clustered_graph(n),
            Self::BitGadget { bits } => bit_gadget(bits),
            Self::BitGadgetBalanced { bits, beta } => bit_gadget_balanced(bits, beta),
            Self::ScaleFree {
                n,
                out_degree,
                beta,
            } => scale_free_digraph(n, out_degree, beta, rng),
            Self::BetaExtreme { half, beta } => beta_extreme_bipartite(half, beta),
        }
    }

    /// The closed-form global directed min-cut value, when the family
    /// carries one (deterministic adversarial families only).
    #[must_use]
    pub fn known_min_cut(&self) -> Option<f64> {
        match *self {
            Self::BitGadget { bits } => Some(bit_gadget_min_cut(bits)),
            Self::BitGadgetBalanced { bits, beta } => Some(bit_gadget_balanced_min_cut(bits, beta)),
            Self::BetaExtreme { half, beta } => Some(beta_extreme_min_cut(half, beta)),
            _ => None,
        }
    }

    /// A side attaining [`known_min_cut`](Self::known_min_cut): `{ℓ_0}`
    /// for the gadgets, a single right node for the β-extreme family.
    #[must_use]
    pub fn known_min_cut_side(&self) -> Option<NodeSet> {
        let n = self.num_nodes();
        match *self {
            Self::BitGadget { .. } | Self::BitGadgetBalanced { .. } => {
                Some(NodeSet::from_indices(n, [0]))
            }
            Self::BetaExtreme { half, .. } => Some(NodeSet::from_indices(n, [half])),
            _ => None,
        }
    }

    /// The three adversarial families (all β-certified) the experiment
    /// bins sweep alongside the legacy trio, sized for exhaustive cut
    /// enumeration (`n ≤ 14`).
    #[must_use]
    pub fn adversarial_zoo() -> Vec<FamilySpec> {
        vec![
            FamilySpec::BitGadgetBalanced {
                bits: 2,
                beta: 32.0,
            },
            FamilySpec::ScaleFree {
                n: 14,
                out_degree: 2,
                beta: 4.0,
            },
            FamilySpec::BetaExtreme { half: 7, beta: 8.0 },
        ]
    }

    /// The soak roster: every family the long-running harness rotates
    /// through, adversarial gadgets first.
    #[must_use]
    pub fn soak_roster() -> Vec<FamilySpec> {
        vec![
            FamilySpec::BitGadget { bits: 3 },
            FamilySpec::BitGadgetBalanced {
                bits: 2,
                beta: 32.0,
            },
            FamilySpec::BetaExtreme {
                half: 12,
                beta: 8.0,
            },
            FamilySpec::ScaleFree {
                n: 48,
                out_degree: 3,
                beta: 4.0,
            },
            FamilySpec::Balanced {
                n: 32,
                p: 0.3,
                beta: 4.0,
            },
            FamilySpec::Eulerian { n: 24, cycles: 12 },
            FamilySpec::Clustered { n: 16 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_strongly_connected;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn known_min_cut_matches_generated_instance() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for spec in FamilySpec::adversarial_zoo() {
            let g = spec.generate(&mut rng);
            assert_eq!(g.num_nodes(), spec.num_nodes(), "{}", spec.name());
            if let (Some(value), Some(side)) = (spec.known_min_cut(), spec.known_min_cut_side()) {
                let measured = g.cut_out(&side);
                assert!(
                    (measured - value).abs() < 1e-9,
                    "{}: side cut {measured} vs closed form {value}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn every_roster_family_is_strongly_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for spec in FamilySpec::soak_roster() {
            let g = spec.generate(&mut rng);
            assert!(is_strongly_connected(&g), "{}", spec.name());
        }
    }

    #[test]
    fn deterministic_families_ignore_the_rng() {
        for spec in FamilySpec::soak_roster() {
            if !spec.is_deterministic() {
                continue;
            }
            let a = spec.generate(&mut ChaCha8Rng::seed_from_u64(2));
            let b = spec.generate(&mut ChaCha8Rng::seed_from_u64(99));
            assert_eq!(a.num_edges(), b.num_edges(), "{}", spec.name());
            let full = NodeSet::from_indices(a.num_nodes(), 0..a.num_nodes() / 2);
            assert_eq!(
                a.cut_both(&full),
                b.cut_both(&full),
                "{} must not consume randomness",
                spec.name()
            );
        }
    }
}
