//! Gomory–Hu (all-pairs min-cut) trees, via Gusfield's simplification.
//!
//! A Gomory–Hu tree of a weighted undirected graph is a tree on the
//! same vertices such that for every pair `(u, v)` the minimum `u–v`
//! cut value equals the smallest edge weight on the tree path between
//! them — `n − 1` max-flow computations answer all `n(n−1)/2` cut
//! queries. The distributed coordinator and the sketch test suites use
//! it to sanity-check many cuts at once, and it doubles as a
//! strength-estimation substrate.

use crate::digraph::DiGraph;
use crate::flow::FlowNetwork;
use crate::ids::NodeId;

/// A Gomory–Hu tree: `parent[i]` and `flow[i]` for `i ≥ 1` encode the
/// tree edge `i – parent[i]` of capacity `flow[i]` (node 0 is the
/// root).
///
/// # Example
///
/// ```
/// use dircut_graph::{DiGraph, NodeId};
/// use dircut_graph::gomory_hu::GomoryHuTree;
///
/// let mut g = DiGraph::new(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 3.0);
/// g.add_edge(NodeId::new(1), NodeId::new(2), 1.0);
/// g.add_edge(NodeId::new(2), NodeId::new(3), 4.0);
/// let tree = GomoryHuTree::build(&g);
/// // Min cut between 0 and 3 is the light middle edge.
/// assert_eq!(tree.min_cut(NodeId::new(0), NodeId::new(3)), 1.0);
/// assert_eq!(tree.global_min_cut(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct GomoryHuTree {
    parent: Vec<usize>,
    flow: Vec<f64>,
}

impl GomoryHuTree {
    /// Builds the tree for the *undirected symmetrization* of `g`
    /// (each directed edge contributes its weight in both directions),
    /// with `n − 1` max-flows.
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes.
    #[must_use]
    pub fn build(g: &DiGraph) -> Self {
        let n = g.num_nodes();
        assert!(n >= 2, "Gomory–Hu needs ≥ 2 nodes");
        let mut parent = vec![0usize; n];
        let mut flow = vec![0.0f64; n];
        for i in 1..n {
            let mut net: FlowNetwork<f64> = FlowNetwork::new(n);
            for e in g.edges() {
                net.add_undirected(e.from, e.to, e.weight);
            }
            let f = net.max_flow(NodeId::new(i), NodeId::new(parent[i]));
            flow[i] = f;
            let side = net.min_cut_side(NodeId::new(i));
            let pi = parent[i];
            for (j, p) in parent.iter_mut().enumerate().skip(i + 1) {
                if side.contains(NodeId::new(j)) && *p == pi {
                    *p = i;
                }
            }
        }
        Self { parent, flow }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// The tree edges as `(child, parent, capacity)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (1..self.parent.len())
            .map(move |i| (NodeId::new(i), NodeId::new(self.parent[i]), self.flow[i]))
    }

    /// The minimum `u–v` cut value: the bottleneck on the tree path.
    ///
    /// # Panics
    /// Panics if `u == v`.
    #[must_use]
    pub fn min_cut(&self, u: NodeId, v: NodeId) -> f64 {
        assert!(u != v, "min_cut needs distinct endpoints");
        // Walk both nodes to the root, recording path-minimum; the
        // answer is the bottleneck on the unique u–v path, computed by
        // lifting the deeper endpoint via depth arrays.
        let depth = |mut x: usize| {
            let mut d = 0;
            while x != 0 {
                x = self.parent[x];
                d += 1;
            }
            d
        };
        let (mut a, mut b) = (u.index(), v.index());
        let (mut da, mut db) = (depth(a), depth(b));
        let mut best = f64::INFINITY;
        while da > db {
            best = best.min(self.flow[a]);
            a = self.parent[a];
            da -= 1;
        }
        while db > da {
            best = best.min(self.flow[b]);
            b = self.parent[b];
            db -= 1;
        }
        while a != b {
            best = best.min(self.flow[a]).min(self.flow[b]);
            a = self.parent[a];
            b = self.parent[b];
        }
        best
    }

    /// The global (undirected) minimum cut: the lightest tree edge.
    #[must_use]
    pub fn global_min_cut(&self) -> f64 {
        self.flow[1..].iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowNetwork;
    use crate::generators::random_balanced_digraph;
    use crate::mincut::stoer_wagner;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pairwise_min_cut(g: &DiGraph, u: usize, v: usize) -> f64 {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(g.num_nodes());
        for e in g.edges() {
            net.add_undirected(e.from, e.to, e.weight);
        }
        net.max_flow(NodeId::new(u), NodeId::new(v))
    }

    #[test]
    fn tree_answers_all_pairs_on_small_graph() {
        let mut g = DiGraph::new(6);
        let edges = [(0, 1, 1.0), (0, 2, 7.0), (1, 2, 1.0), (1, 3, 3.0), (1, 4, 2.0), (2, 4, 4.0), (3, 4, 1.0), (3, 5, 6.0), (4, 5, 2.0)];
        for (u, v, w) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        let tree = GomoryHuTree::build(&g);
        for u in 0..6 {
            for v in (u + 1)..6 {
                let direct = pairwise_min_cut(&g, u, v);
                let from_tree = tree.min_cut(NodeId::new(u), NodeId::new(v));
                assert!(
                    (direct - from_tree).abs() < 1e-9,
                    "pair ({u},{v}): flow {direct} vs tree {from_tree}"
                );
            }
        }
    }

    #[test]
    fn tree_matches_flows_on_random_graphs() {
        for seed in 0..4u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = random_balanced_digraph(9, 0.5, 2.0, &mut rng);
            let tree = GomoryHuTree::build(&g);
            for u in 0..9 {
                for v in (u + 1)..9 {
                    let direct = pairwise_min_cut(&g, u, v);
                    let from_tree = tree.min_cut(NodeId::new(u), NodeId::new(v));
                    assert!(
                        (direct - from_tree).abs() < 1e-6 * (1.0 + direct),
                        "seed {seed}, pair ({u},{v}): {direct} vs {from_tree}"
                    );
                }
            }
        }
    }

    #[test]
    fn lightest_tree_edge_is_the_global_min_cut() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = random_balanced_digraph(10, 0.6, 3.0, &mut rng);
        let tree = GomoryHuTree::build(&g);
        let sw = stoer_wagner(&g).value;
        assert!((tree.global_min_cut() - sw).abs() < 1e-6 * (1.0 + sw));
    }

    #[test]
    fn tree_has_n_minus_one_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = random_balanced_digraph(8, 0.5, 2.0, &mut rng);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.edges().count(), 7);
        for (_, _, cap) in tree.edges() {
            assert!(cap > 0.0);
        }
    }
}
