//! Gomory–Hu (all-pairs min-cut) trees, via Gusfield's simplification.
//!
//! A Gomory–Hu tree of a weighted undirected graph is a tree on the
//! same vertices such that for every pair `(u, v)` the minimum `u–v`
//! cut value equals the smallest edge weight on the tree path between
//! them — `n − 1` max-flow computations answer all `n(n−1)/2` cut
//! queries. The distributed coordinator and the sketch test suites use
//! it to sanity-check many cuts at once, and it doubles as a
//! strength-estimation substrate.
//!
//! # Parallel construction
//!
//! Gusfield's loop is sequential on paper: sink `i` flows against
//! `parent[i]`, and earlier iterations rewrite later parents. But a
//! parent only *changes* when an earlier sink's cut side captures it —
//! on most graphs the vast majority of parents never move. The builder
//! exploits that with **speculation**: each round solves every
//! unresolved sink against its current parent guess in parallel (one
//! shared network build, per-worker clones, snapshot reset between
//! solves), then commits results in ascending sink order for as long
//! as the guesses still match. A mismatch stops the commit sweep —
//! later sinks may still be rewritten by the uncommitted prefix — and
//! the survivors go into the next round. Because a solve's result
//! depends only on `(sink, guess)`, survivors whose guess still holds
//! next round reuse their cached result instead of re-solving; only
//! sinks whose parent actually moved cost an extra solve. The first
//! unresolved sink's parent is always final, so every round makes
//! progress; when a round commits almost nothing (the parent pointers
//! chain, so each commit invalidates the next sink) or speculative
//! solves exceed `4(n − 1)`, the builder stops speculating and
//! finishes serially, bounding wasted work on pathological graphs.
//! Either way the finished tree is **bit-identical to the serial
//! Gusfield tree for every thread count**.

use crate::digraph::DiGraph;
use crate::flow::{symmetric_network_from_digraph, FlowNetwork};
use crate::ids::NodeId;
use crate::parallel;

/// A Gomory–Hu tree: `parent[i]` and `flow[i]` for `i ≥ 1` encode the
/// tree edge `i – parent[i]` of capacity `flow[i]` (node 0 is the
/// root).
///
/// # Example
///
/// ```
/// use dircut_graph::{DiGraph, NodeId};
/// use dircut_graph::gomory_hu::GomoryHuTree;
///
/// let mut g = DiGraph::new(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 3.0);
/// g.add_edge(NodeId::new(1), NodeId::new(2), 1.0);
/// g.add_edge(NodeId::new(2), NodeId::new(3), 4.0);
/// let tree = GomoryHuTree::build(&g);
/// // Min cut between 0 and 3 is the light middle edge.
/// assert_eq!(tree.min_cut(NodeId::new(0), NodeId::new(3)), 1.0);
/// assert_eq!(tree.global_min_cut(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GomoryHuTree {
    parent: Vec<usize>,
    flow: Vec<f64>,
}

/// Applies Gusfield's parent-relabeling for a committed sink `i`.
fn commit(parent: &mut [usize], flow: &mut [f64], i: usize, f: f64, side: &crate::ids::NodeSet) {
    flow[i] = f;
    let pi = parent[i];
    for (j, p) in parent.iter_mut().enumerate().skip(i + 1) {
        if side.contains(NodeId::new(j)) && *p == pi {
            *p = i;
        }
    }
}

impl GomoryHuTree {
    /// Builds the tree for the *undirected symmetrization* of `g`
    /// (each directed edge contributes its weight in both directions),
    /// with `n − 1` max-flows on [`parallel::default_threads`] workers.
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes.
    #[must_use]
    pub fn build(g: &DiGraph) -> Self {
        Self::build_threaded(g, parallel::default_threads())
    }

    /// [`GomoryHuTree::build`] with an explicit worker count. The tree
    /// is identical for every `threads ≥ 1`.
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes.
    #[must_use]
    pub fn build_threaded(g: &DiGraph, threads: usize) -> Self {
        let mut net = symmetric_network_from_digraph(g);
        Self::build_with_network(g, &mut net, threads)
    }

    /// [`GomoryHuTree::build_threaded`] on a caller-supplied network,
    /// which must be the symmetric network of `g` (as built by
    /// [`symmetric_network_from_digraph`]; residual state is reset as
    /// needed). The point of supplying the network is warm-start reuse:
    /// its solve-replay memo survives between builds, so repeated
    /// builds over the same graph replay their `(sink, parent)` solves
    /// instead of recomputing them. The tree is bit-identical to
    /// [`GomoryHuTree::build`] either way.
    ///
    /// The memo is only sound for the exact graph the network was
    /// built from: it is dropped (never migrated) on any mutation, so
    /// a network held across a graph change must be rebuilt. This
    /// entry point asserts the network still matches `g` structurally
    /// rather than silently answering for a stale graph.
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes, the network's node
    /// count differs from the graph's, or its arc-slot count does not
    /// match `2 · m` — the signature of a network that went stale
    /// against a mutated graph.
    #[must_use]
    pub fn build_with_network(g: &DiGraph, base: &mut FlowNetwork<f64>, threads: usize) -> Self {
        let n = g.num_nodes();
        assert!(n >= 2, "Gomory–Hu needs ≥ 2 nodes");
        assert_eq!(base.num_nodes(), n, "network/graph node count mismatch");
        assert_eq!(
            base.num_arc_slots(),
            2 * g.num_edges(),
            "stale flow network: arc slots disagree with the graph's edges — \
             rebuild the symmetric network after any graph mutation (FlowMemo \
             is dropped, never migrated)"
        );
        crate::stats::timed_stage("gomory_hu/build", || {
            let mut parent = vec![0usize; n];
            let mut flow = vec![0.0f64; n];
            if threads <= 1 {
                // Serial Gusfield on one snapshot-reset network — no
                // speculation, exactly n − 1 solves. The sequence of
                // (sink, parent) pairs is deterministic, so a repeated
                // build over the same network is all warm replays.
                for i in 1..n {
                    base.reset();
                    let f = base.max_flow(NodeId::new(i), NodeId::new(parent[i]));
                    let side = base.min_cut_side(NodeId::new(i));
                    commit(&mut parent, &mut flow, i, f, &side);
                }
                return Self { parent, flow };
            }
            let mut unresolved: Vec<usize> = (1..n).collect();
            // cache[i] = (guess, flow, side) from the latest speculative
            // solve of sink i. A solve depends only on (sink, guess), so
            // a cached result stays valid as long as `parent[i]` still
            // equals the guess it was computed against.
            let mut cache: Vec<Option<(usize, f64, crate::ids::NodeSet)>> = vec![None; n];
            // Speculative solves issued; bounds wasted work on graphs
            // whose parent pointers chain (every reparent after a
            // sink's solve costs one extra solve).
            let mut issued = 0usize;
            let mut bail = false;
            while !unresolved.is_empty() && !bail {
                // Solve (in parallel) every unresolved sink whose cached
                // guess went stale — or which has no cached result yet.
                let todo: Vec<usize> = unresolved
                    .iter()
                    .copied()
                    .filter(|&i| !matches!(&cache[i], Some((g, _, _)) if *g == parent[i]))
                    .collect();
                let guesses: Vec<usize> = todo.iter().map(|&i| parent[i]).collect();
                issued += todo.len();
                // Workers clone the caller's network, so they start from
                // whatever warm entries it already holds; entries they
                // discover themselves drop with the clones (sharing them
                // back would cost a merge the speculative path does not
                // need for determinism).
                let base_ref: &FlowNetwork<f64> = base;
                let results = parallel::run_indexed_with(
                    todo.len(),
                    threads,
                    || base_ref.clone(),
                    |net: &mut FlowNetwork<f64>, idx| {
                        net.reset();
                        let f = net.max_flow(NodeId::new(todo[idx]), NodeId::new(guesses[idx]));
                        (f, net.min_cut_side(NodeId::new(todo[idx])))
                    },
                );
                for (idx, (f, side)) in results.into_iter().enumerate() {
                    cache[todo[idx]] = Some((guesses[idx], f, side));
                }
                // Commit the ascending prefix whose guesses still hold;
                // the first mismatch invalidates everything after it
                // (its own commit may rewrite later parents), so the
                // rest waits for the next round — cached, not re-solved,
                // unless that rewrite actually reaches it.
                let before = unresolved.len();
                let mut committed = 0usize;
                for (idx, &i) in unresolved.iter().enumerate() {
                    let (guess, f, side) = cache[i].as_ref().expect("solved or cached above");
                    if *guess != parent[i] {
                        break;
                    }
                    let (f, side) = (*f, side.clone());
                    commit(&mut parent, &mut flow, i, f, &side);
                    committed = idx + 1;
                }
                debug_assert!(committed > 0, "first unresolved sink always commits");
                unresolved.drain(..committed);
                // Near-zero yield means the parent pointers chain (each
                // commit invalidates the next sink): speculating further
                // would degenerate to serial with extra waste, so switch
                // to the serial path now. Deterministic — the decision
                // depends only on solve results, never on scheduling.
                bail = committed * 8 < before || issued >= 4 * (n - 1);
            }
            // Serial finish for whatever speculation left behind, still
            // reusing the caller's network and any cached solve whose
            // guess held.
            if !unresolved.is_empty() {
                for &i in &unresolved {
                    let (f, side) = match &cache[i] {
                        Some((g, f, side)) if *g == parent[i] => (*f, side.clone()),
                        _ => {
                            base.reset();
                            let f = base.max_flow(NodeId::new(i), NodeId::new(parent[i]));
                            (f, base.min_cut_side(NodeId::new(i)))
                        }
                    };
                    commit(&mut parent, &mut flow, i, f, &side);
                }
            }
            Self { parent, flow }
        })
    }

    /// The seed (pre-engine) construction: serial Gusfield rebuilding a
    /// fresh [`FlowNetwork`] for every sink. Kept as the baseline the
    /// benches and equivalence tests compare the engine against.
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes.
    #[must_use]
    pub fn build_reference(g: &DiGraph) -> Self {
        let n = g.num_nodes();
        assert!(n >= 2, "Gomory–Hu needs ≥ 2 nodes");
        let mut parent = vec![0usize; n];
        let mut flow = vec![0.0f64; n];
        for i in 1..n {
            let mut net = symmetric_network_from_digraph(g);
            let f = net.max_flow(NodeId::new(i), NodeId::new(parent[i]));
            let side = net.min_cut_side(NodeId::new(i));
            commit(&mut parent, &mut flow, i, f, &side);
        }
        Self { parent, flow }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// The tree edges as `(child, parent, capacity)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (1..self.parent.len())
            .map(move |i| (NodeId::new(i), NodeId::new(self.parent[i]), self.flow[i]))
    }

    /// The minimum `u–v` cut value: the bottleneck on the tree path.
    ///
    /// # Panics
    /// Panics if `u == v`.
    #[must_use]
    pub fn min_cut(&self, u: NodeId, v: NodeId) -> f64 {
        assert!(u != v, "min_cut needs distinct endpoints");
        // Walk both nodes to the root, recording path-minimum; the
        // answer is the bottleneck on the unique u–v path, computed by
        // lifting the deeper endpoint via depth arrays.
        let depth = |mut x: usize| {
            let mut d = 0;
            while x != 0 {
                x = self.parent[x];
                d += 1;
            }
            d
        };
        let (mut a, mut b) = (u.index(), v.index());
        let (mut da, mut db) = (depth(a), depth(b));
        let mut best = f64::INFINITY;
        while da > db {
            best = best.min(self.flow[a]);
            a = self.parent[a];
            da -= 1;
        }
        while db > da {
            best = best.min(self.flow[b]);
            b = self.parent[b];
            db -= 1;
        }
        while a != b {
            best = best.min(self.flow[a]).min(self.flow[b]);
            a = self.parent[a];
            b = self.parent[b];
        }
        best
    }

    /// The global (undirected) minimum cut: the lightest tree edge.
    #[must_use]
    pub fn global_min_cut(&self) -> f64 {
        self.flow[1..].iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowNetwork;
    use crate::generators::random_balanced_digraph;
    use crate::mincut::stoer_wagner;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pairwise_min_cut(g: &DiGraph, u: usize, v: usize) -> f64 {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(g.num_nodes());
        for e in g.edges() {
            net.add_undirected(e.from, e.to, e.weight);
        }
        net.max_flow(NodeId::new(u), NodeId::new(v))
    }

    #[test]
    fn tree_answers_all_pairs_on_small_graph() {
        let mut g = DiGraph::new(6);
        let edges = [
            (0, 1, 1.0),
            (0, 2, 7.0),
            (1, 2, 1.0),
            (1, 3, 3.0),
            (1, 4, 2.0),
            (2, 4, 4.0),
            (3, 4, 1.0),
            (3, 5, 6.0),
            (4, 5, 2.0),
        ];
        for (u, v, w) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        let tree = GomoryHuTree::build(&g);
        for u in 0..6 {
            for v in (u + 1)..6 {
                let direct = pairwise_min_cut(&g, u, v);
                let from_tree = tree.min_cut(NodeId::new(u), NodeId::new(v));
                assert!(
                    (direct - from_tree).abs() < 1e-9,
                    "pair ({u},{v}): flow {direct} vs tree {from_tree}"
                );
            }
        }
    }

    #[test]
    fn tree_matches_flows_on_random_graphs() {
        for seed in 0..4u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = random_balanced_digraph(9, 0.5, 2.0, &mut rng);
            let tree = GomoryHuTree::build(&g);
            for u in 0..9 {
                for v in (u + 1)..9 {
                    let direct = pairwise_min_cut(&g, u, v);
                    let from_tree = tree.min_cut(NodeId::new(u), NodeId::new(v));
                    assert!(
                        (direct - from_tree).abs() < 1e-6 * (1.0 + direct),
                        "seed {seed}, pair ({u},{v}): {direct} vs {from_tree}"
                    );
                }
            }
        }
    }

    #[test]
    fn lightest_tree_edge_is_the_global_min_cut() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = random_balanced_digraph(10, 0.6, 3.0, &mut rng);
        let tree = GomoryHuTree::build(&g);
        let sw = stoer_wagner(&g).value;
        assert!((tree.global_min_cut() - sw).abs() < 1e-6 * (1.0 + sw));
    }

    #[test]
    fn tree_has_n_minus_one_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = random_balanced_digraph(8, 0.5, 2.0, &mut rng);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.edges().count(), 7);
        for (_, _, cap) in tree.edges() {
            assert!(cap > 0.0);
        }
    }

    #[test]
    fn repeated_builds_on_one_network_replay_warm_and_stay_billed() {
        let _guard = crate::cache::test_lock();
        crate::cache::set_enabled(true);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = random_balanced_digraph(12, 0.5, 2.0, &mut rng);
        let mut net = crate::flow::symmetric_network_from_digraph(&g);
        let first = GomoryHuTree::build_with_network(&g, &mut net, 1);
        let hits_before = crate::stats::total_cache_hits();
        let solves_before = crate::stats::total_solves();
        let second = GomoryHuTree::build_with_network(&g, &mut net, 1);
        assert_eq!(first.parent, second.parent);
        let bits: Vec<u64> = first.flow.iter().map(|f| f.to_bits()).collect();
        let again: Vec<u64> = second.flow.iter().map(|f| f.to_bits()).collect();
        assert_eq!(bits, again);
        // Every one of the n − 1 repeat solves was a warm replay, yet
        // all of them were billed as solves.
        assert_eq!(crate::stats::total_cache_hits(), hits_before + 11);
        assert_eq!(crate::stats::total_solves(), solves_before + 11);
        // The threaded path on the same warm network agrees too.
        let threaded = GomoryHuTree::build_with_network(&g, &mut net, 4);
        assert_eq!(threaded.parent, first.parent);
    }

    #[test]
    fn threaded_build_matches_reference_exactly() {
        for seed in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = random_balanced_digraph(12, 0.4, 2.0, &mut rng);
            let reference = GomoryHuTree::build_reference(&g);
            for threads in [1usize, 2, 8] {
                let tree = GomoryHuTree::build_threaded(&g, threads);
                assert_eq!(
                    tree.parent, reference.parent,
                    "seed {seed} threads {threads}"
                );
                let bits: Vec<u64> = tree.flow.iter().map(|f| f.to_bits()).collect();
                let ref_bits: Vec<u64> = reference.flow.iter().map(|f| f.to_bits()).collect();
                assert_eq!(bits, ref_bits, "seed {seed} threads {threads}");
            }
        }
    }
}
