//! Global minimum cuts.
//!
//! * [`stoer_wagner`] — deterministic global min-cut of a weighted
//!   undirected graph in `O(n³)` (plenty at gadget scale),
//! * [`global_min_cut_directed`] — directed global min-cut via
//!   `2(n−1)` max-flow computations,
//! * [`edge_connectivity`] — exact `λ(G)` of an unweighted undirected
//!   graph with integer flows (used to verify Lemma 5.5).
//!
//! The flow-based solvers run on the parallel engine: the network is
//! built **once**, each worker clones it, and per-sink solves reuse the
//! clone through [`FlowNetwork::reset`] instead of rebuilding. Results
//! are folded in sink order, so the answer is bit-identical for every
//! thread count (including the serial path).

use crate::digraph::DiGraph;
use crate::flow::{network_from_digraph, unit_network_from_ungraph, FlowNetwork};
use crate::ids::{NodeId, NodeSet};
use crate::parallel;
use crate::ungraph::UnGraph;

/// A global minimum cut: its value and one side of the partition.
#[derive(Debug, Clone)]
pub struct GlobalCut {
    /// The cut value (`w(S, V∖S)` for directed graphs, total crossing
    /// weight for undirected).
    pub value: f64,
    /// One side of the partition.
    pub side: NodeSet,
}

/// Stoer–Wagner global minimum cut of a weighted *undirected* graph,
/// given as a symmetric pairwise weight accumulation of a [`DiGraph`]
/// (each directed edge contributes its weight to the unordered pair).
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes.
#[must_use]
pub fn stoer_wagner(g: &DiGraph) -> GlobalCut {
    let n = g.num_nodes();
    assert!(n >= 2, "global min-cut needs ≥ 2 nodes");
    // Dense symmetric weight matrix.
    let mut w = vec![vec![0.0f64; n]; n];
    for e in g.edges() {
        w[e.from.index()][e.to.index()] += e.weight;
        w[e.to.index()][e.from.index()] += e.weight;
    }
    // merged[v] = list of original nodes contracted into v.
    let mut merged: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best_value = f64::INFINITY;
    let mut best_side: Vec<usize> = Vec::new();

    while active.len() > 1 {
        // Maximum adjacency (minimum cut phase).
        let mut in_a = vec![false; n];
        let mut weights = vec![0.0f64; n];
        let first = active[0];
        in_a[first] = true;
        for &v in &active {
            weights[v] = w[first][v];
        }
        let mut prev = first;
        let mut last = first;
        for _ in 1..active.len() {
            // Select the most tightly connected remaining node.
            let mut sel = usize::MAX;
            let mut sel_w = f64::NEG_INFINITY;
            for &v in &active {
                if !in_a[v] && weights[v] > sel_w {
                    sel = v;
                    sel_w = weights[v];
                }
            }
            in_a[sel] = true;
            prev = last;
            last = sel;
            for &v in &active {
                if !in_a[v] {
                    weights[v] += w[sel][v];
                }
            }
        }
        // Cut-of-the-phase: `last` alone (in contracted terms).
        let phase_value = weights[last];
        if phase_value < best_value {
            best_value = phase_value;
            best_side = merged[last].clone();
        }
        // Contract `last` into `prev`.
        let moved = std::mem::take(&mut merged[last]);
        merged[prev].extend(moved);
        for &v in &active {
            if v != prev && v != last {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        active.retain(|&v| v != last);
    }

    GlobalCut {
        value: best_value,
        side: NodeSet::from_indices(n, best_side),
    }
}

/// Global minimum *directed* cut `min_S w(S, V∖S)` via max-flows:
/// fixing node 0, the optimal `S` either contains 0 (then some `t ∉ S`
/// gives `maxflow(0, t)`) or not (then `maxflow(t, 0)` for some `t ∈ S`).
///
/// Runs the `2(n−1)` solves on [`parallel::default_threads`] workers;
/// see [`global_min_cut_directed_threaded`] for an explicit count.
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes.
#[must_use]
pub fn global_min_cut_directed(g: &DiGraph) -> GlobalCut {
    global_min_cut_directed_threaded(g, parallel::default_threads())
}

/// [`global_min_cut_directed`] with an explicit worker count. The
/// result is identical for every `threads ≥ 1`.
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes.
#[must_use]
pub fn global_min_cut_directed_threaded(g: &DiGraph, threads: usize) -> GlobalCut {
    let n = g.num_nodes();
    assert!(n >= 2, "global min-cut needs ≥ 2 nodes");
    crate::stats::timed_stage("global_min_cut_directed", || {
        let zero = NodeId::new(0);
        let base = network_from_digraph(g);
        // Task 2i   : maxflow(0, t), t = i + 1  (0 on the source side)
        // Task 2i+1 : maxflow(t, 0)             (0 on the sink side)
        let solves: Vec<(f64, NodeSet)> = parallel::run_indexed_with(
            2 * (n - 1),
            threads,
            || base.clone(),
            |net, task| {
                net.reset();
                let t = NodeId::new(1 + task / 2);
                let (s, d) = if task % 2 == 0 { (zero, t) } else { (t, zero) };
                let f = net.max_flow(s, d);
                (f, net.min_cut_side(s))
            },
        );
        let mut best = GlobalCut {
            value: f64::INFINITY,
            side: NodeSet::empty(n),
        };
        for (f, side) in solves {
            if f < best.value {
                best = GlobalCut { value: f, side };
            }
        }
        best
    })
}

/// Exact edge connectivity `λ(G)` of an unweighted undirected graph,
/// with a certifying minimum cut side. Returns `None` for graphs with
/// fewer than 2 nodes.
///
/// Uses the standard `min_{t≠0} maxflow(0, t)` identity with integer
/// unit capacities, one network build and `n − 1` snapshot-reset
/// solves fanned across [`parallel::default_threads`] workers.
#[must_use]
pub fn edge_connectivity(g: &UnGraph) -> Option<(u64, NodeSet)> {
    edge_connectivity_threaded(g, parallel::default_threads())
}

/// [`edge_connectivity`] with an explicit worker count. The result is
/// identical for every `threads ≥ 1`.
#[must_use]
pub fn edge_connectivity_threaded(g: &UnGraph, threads: usize) -> Option<(u64, NodeSet)> {
    if g.num_nodes() < 2 {
        return None;
    }
    let mut base = unit_network_from_ungraph(g);
    edge_connectivity_with_network(g, &mut base, threads)
}

/// [`edge_connectivity_threaded`] on a caller-supplied unit network
/// (as built by [`unit_network_from_ungraph`]); residual state is
/// reset as needed. Supplying the network lets its solve-replay memo
/// survive between calls, so repeated connectivity checks of the same
/// graph (the Lemma 5.5 verification flows) replay their per-sink
/// solves instead of recomputing. The answer is bit-identical either
/// way.
///
/// The memo is only sound for the exact graph the network was built
/// from: it is dropped (never migrated) on any mutation, so a network
/// held across a graph change must be rebuilt. This entry point
/// asserts the network still matches `g` structurally rather than
/// silently answering for a stale graph.
///
/// # Panics
/// Panics if the network's node count differs from the graph's, or if
/// its arc-slot count does not match `2 · m` — the signature of a
/// network that went stale against a mutated graph.
#[must_use]
pub fn edge_connectivity_with_network(
    g: &UnGraph,
    base: &mut FlowNetwork<u64>,
    threads: usize,
) -> Option<(u64, NodeSet)> {
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    assert_eq!(base.num_nodes(), n, "network/graph node count mismatch");
    assert_eq!(
        base.num_arc_slots(),
        2 * g.num_edges(),
        "stale flow network: arc slots disagree with the graph's edges — \
         rebuild the unit network after any graph mutation (FlowMemo is \
         dropped, never migrated)"
    );
    Some(crate::stats::timed_stage("edge_connectivity", || {
        let zero = NodeId::new(0);
        let solves: Vec<(u64, NodeSet)> = if threads <= 1 {
            // Serial path on the caller's network itself, so warm
            // entries discovered here persist for the next call.
            (0..n - 1)
                .map(|task| {
                    base.reset();
                    let f = base.max_flow(zero, NodeId::new(task + 1));
                    (f, base.min_cut_side(zero))
                })
                .collect()
        } else {
            let base_ref: &FlowNetwork<u64> = base;
            parallel::run_indexed_with(
                n - 1,
                threads,
                || base_ref.clone(),
                |net: &mut FlowNetwork<u64>, task| {
                    net.reset();
                    let f = net.max_flow(zero, NodeId::new(task + 1));
                    (f, net.min_cut_side(zero))
                },
            )
        };
        // Fold in sink order with strict improvement — same winner as
        // the serial loop (and its `f == 0` early break).
        let mut best: Option<(u64, NodeSet)> = None;
        for (f, side) in solves {
            if best.as_ref().is_none_or(|(b, _)| f < *b) {
                let done = f == 0;
                best = Some((f, side));
                if done {
                    break;
                }
            }
        }
        best.expect("n ≥ 2 yields at least one solve")
    }))
}

/// Exact size of the global minimum cut of an unweighted undirected
/// graph (`0` when disconnected). Convenience wrapper over
/// [`edge_connectivity`].
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes.
#[must_use]
pub fn min_cut_unweighted(g: &UnGraph) -> u64 {
    edge_connectivity(g).expect("min-cut needs ≥ 2 nodes").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize, f64)]) -> DiGraph {
        // Encode an undirected weighted graph as one directed edge per
        // undirected edge; stoer_wagner symmetrizes internally.
        let mut g = DiGraph::new(n);
        for &(u, v, w) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        g
    }

    #[test]
    fn stoer_wagner_on_dumbbell() {
        // Two triangles joined by a single light edge.
        let g = undirected(
            6,
            &[
                (0, 1, 3.0),
                (1, 2, 3.0),
                (0, 2, 3.0),
                (3, 4, 3.0),
                (4, 5, 3.0),
                (3, 5, 3.0),
                (2, 3, 1.0),
            ],
        );
        let cut = stoer_wagner(&g);
        assert!((cut.value - 1.0).abs() < 1e-9);
        let side = cut.side.canonical_cut_side();
        assert!(side.len() == 3);
    }

    #[test]
    fn stoer_wagner_on_classic_eight_node_instance() {
        // The instance from the Stoer–Wagner paper; min cut value 4.
        let g = undirected(
            8,
            &[
                (0, 1, 2.0),
                (0, 4, 3.0),
                (1, 2, 3.0),
                (1, 4, 2.0),
                (1, 5, 2.0),
                (2, 3, 4.0),
                (2, 6, 2.0),
                (3, 6, 2.0),
                (3, 7, 2.0),
                (4, 5, 3.0),
                (5, 6, 1.0),
                (6, 7, 3.0),
            ],
        );
        let cut = stoer_wagner(&g);
        assert!((cut.value - 4.0).abs() < 1e-9, "got {}", cut.value);
    }

    #[test]
    fn stoer_wagner_cut_value_matches_reported_side() {
        let g = undirected(
            5,
            &[
                (0, 1, 1.5),
                (1, 2, 2.5),
                (2, 3, 0.5),
                (3, 4, 4.0),
                (4, 0, 1.0),
            ],
        );
        let cut = stoer_wagner(&g);
        // Verify the reported side really has the reported (undirected) value.
        let (out, into) = g.cut_both(&cut.side);
        assert!((out + into - cut.value).abs() < 1e-9);
    }

    #[test]
    fn directed_min_cut_on_asymmetric_cycle() {
        // 0→1→2→0 with weights 1, 10, 10: min directed cut is 1
        // (S = {0} has out-weight 1).
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 10.0);
        g.add_edge(NodeId::new(2), NodeId::new(0), 10.0);
        let cut = global_min_cut_directed(&g);
        assert!((cut.value - 1.0).abs() < 1e-9);
        assert!((g.cut_out(&cut.side) - cut.value).abs() < 1e-9);
    }

    #[test]
    fn directed_min_cut_finds_zero_cut_when_not_strongly_connected() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 2.0);
        let cut = global_min_cut_directed(&g);
        assert_eq!(cut.value, 0.0);
    }

    #[test]
    fn directed_min_cut_is_thread_count_invariant() {
        let mut g = DiGraph::new(5);
        let edges = [
            (0, 1, 1.5),
            (1, 2, 2.0),
            (2, 3, 0.7),
            (3, 4, 2.2),
            (4, 0, 1.1),
            (1, 3, 0.4),
            (2, 0, 3.0),
        ];
        for (u, v, w) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        let one = global_min_cut_directed_threaded(&g, 1);
        for threads in [2, 4, 8] {
            let k = global_min_cut_directed_threaded(&g, threads);
            assert_eq!(one.value.to_bits(), k.value.to_bits(), "threads={threads}");
            assert_eq!(one.side, k.side, "threads={threads}");
        }
    }

    #[test]
    fn edge_connectivity_of_cycle_is_two() {
        let mut g = UnGraph::new(7);
        for i in 0..7 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 7));
        }
        let (lambda, side) = edge_connectivity(&g).unwrap();
        assert_eq!(lambda, 2);
        assert_eq!(g.cut_size(&side) as u64, 2);
    }

    #[test]
    fn edge_connectivity_of_complete_graph() {
        let n = 7;
        let mut g = UnGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
        assert_eq!(min_cut_unweighted(&g), (n - 1) as u64);
    }

    #[test]
    fn edge_connectivity_of_disconnected_graph_is_zero() {
        let mut g = UnGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        assert_eq!(min_cut_unweighted(&g), 0);
    }

    #[test]
    fn edge_connectivity_with_bridge() {
        // Two K4's joined by one bridge: λ = 1.
        let mut g = UnGraph::new(8);
        for base in [0, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(NodeId::new(base + i), NodeId::new(base + j));
                }
            }
        }
        g.add_edge(NodeId::new(3), NodeId::new(4));
        let (lambda, side) = edge_connectivity(&g).unwrap();
        assert_eq!(lambda, 1);
        assert_eq!(side.len(), 4);
    }

    #[test]
    fn edge_connectivity_is_thread_count_invariant() {
        let mut g = UnGraph::new(9);
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (5, 7),
            (6, 8),
            (7, 8),
            (2, 7),
            (0, 8),
        ];
        for &(u, v) in &edges {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
        let (l1, s1) = edge_connectivity_threaded(&g, 1).unwrap();
        for threads in [2, 4, 8] {
            let (lk, sk) = edge_connectivity_threaded(&g, threads).unwrap();
            assert_eq!(l1, lk, "threads={threads}");
            assert_eq!(s1, sk, "threads={threads}");
        }
    }

    #[test]
    fn edge_connectivity_with_network_replays_warm_and_matches() {
        let _guard = crate::cache::test_lock();
        crate::cache::set_enabled(true);
        let mut g = UnGraph::new(7);
        for i in 0..7 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 7));
        }
        let mut net = unit_network_from_ungraph(&g);
        let first = edge_connectivity_with_network(&g, &mut net, 1).unwrap();
        let hits_before = crate::stats::total_cache_hits();
        let solves_before = crate::stats::total_solves();
        let second = edge_connectivity_with_network(&g, &mut net, 1).unwrap();
        // All six repeat solves replayed warm, and all were billed.
        assert_eq!(crate::stats::total_cache_hits(), hits_before + 6);
        assert_eq!(crate::stats::total_solves(), solves_before + 6);
        assert_eq!(first, second);
        assert_eq!(first, edge_connectivity_threaded(&g, 1).unwrap());
    }

    #[test]
    fn stoer_wagner_agrees_with_flow_based_connectivity() {
        // Unweighted random-ish graph: Stoer–Wagner (weights 1.0) must
        // agree with integer-flow edge connectivity.
        let mut ug = UnGraph::new(9);
        let mut dg = DiGraph::new(9);
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (5, 7),
            (6, 8),
            (7, 8),
            (2, 7),
            (0, 8),
        ];
        for &(u, v) in &edges {
            ug.add_edge(NodeId::new(u), NodeId::new(v));
            dg.add_edge(NodeId::new(u), NodeId::new(v), 1.0);
        }
        let sw = stoer_wagner(&dg);
        let lambda = min_cut_unweighted(&ug);
        assert!(
            (sw.value - lambda as f64).abs() < 1e-9,
            "SW {} vs λ {}",
            sw.value,
            lambda
        );
    }
}
