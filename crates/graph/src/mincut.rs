//! Global minimum cuts.
//!
//! * [`stoer_wagner`] — deterministic global min-cut of a weighted
//!   undirected graph in `O(n³)` (plenty at gadget scale),
//! * [`global_min_cut_directed`] — directed global min-cut via
//!   `2(n−1)` max-flow computations,
//! * [`edge_connectivity`] — exact `λ(G)` of an unweighted undirected
//!   graph with integer flows (used to verify Lemma 5.5).

use crate::digraph::DiGraph;
use crate::flow::{network_from_digraph, FlowNetwork};
use crate::ids::{NodeId, NodeSet};
use crate::ungraph::UnGraph;

/// A global minimum cut: its value and one side of the partition.
#[derive(Debug, Clone)]
pub struct GlobalCut {
    /// The cut value (`w(S, V∖S)` for directed graphs, total crossing
    /// weight for undirected).
    pub value: f64,
    /// One side of the partition.
    pub side: NodeSet,
}

/// Stoer–Wagner global minimum cut of a weighted *undirected* graph,
/// given as a symmetric pairwise weight accumulation of a [`DiGraph`]
/// (each directed edge contributes its weight to the unordered pair).
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes.
#[must_use]
pub fn stoer_wagner(g: &DiGraph) -> GlobalCut {
    let n = g.num_nodes();
    assert!(n >= 2, "global min-cut needs ≥ 2 nodes");
    // Dense symmetric weight matrix.
    let mut w = vec![vec![0.0f64; n]; n];
    for e in g.edges() {
        w[e.from.index()][e.to.index()] += e.weight;
        w[e.to.index()][e.from.index()] += e.weight;
    }
    // merged[v] = list of original nodes contracted into v.
    let mut merged: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best_value = f64::INFINITY;
    let mut best_side: Vec<usize> = Vec::new();

    while active.len() > 1 {
        // Maximum adjacency (minimum cut phase).
        let mut in_a = vec![false; n];
        let mut weights = vec![0.0f64; n];
        let first = active[0];
        in_a[first] = true;
        for &v in &active {
            weights[v] = w[first][v];
        }
        let mut prev = first;
        let mut last = first;
        for _ in 1..active.len() {
            // Select the most tightly connected remaining node.
            let mut sel = usize::MAX;
            let mut sel_w = f64::NEG_INFINITY;
            for &v in &active {
                if !in_a[v] && weights[v] > sel_w {
                    sel = v;
                    sel_w = weights[v];
                }
            }
            in_a[sel] = true;
            prev = last;
            last = sel;
            for &v in &active {
                if !in_a[v] {
                    weights[v] += w[sel][v];
                }
            }
        }
        // Cut-of-the-phase: `last` alone (in contracted terms).
        let phase_value = weights[last];
        if phase_value < best_value {
            best_value = phase_value;
            best_side = merged[last].clone();
        }
        // Contract `last` into `prev`.
        let moved = std::mem::take(&mut merged[last]);
        merged[prev].extend(moved);
        for &v in &active {
            if v != prev && v != last {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        active.retain(|&v| v != last);
    }

    GlobalCut { value: best_value, side: NodeSet::from_indices(n, best_side) }
}

/// Global minimum *directed* cut `min_S w(S, V∖S)` via max-flows:
/// fixing node 0, the optimal `S` either contains 0 (then some `t ∉ S`
/// gives `maxflow(0, t)`) or not (then `maxflow(t, 0)` for some `t ∈ S`).
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes.
#[must_use]
pub fn global_min_cut_directed(g: &DiGraph) -> GlobalCut {
    let n = g.num_nodes();
    assert!(n >= 2, "global min-cut needs ≥ 2 nodes");
    let zero = NodeId::new(0);
    let mut best = GlobalCut { value: f64::INFINITY, side: NodeSet::empty(n) };
    for t in 1..n {
        let t = NodeId::new(t);
        // 0 on the source side.
        let mut net = network_from_digraph(g);
        let f = net.max_flow(zero, t);
        if f < best.value {
            best = GlobalCut { value: f, side: net.min_cut_side(zero) };
        }
        // 0 on the sink side.
        let mut net = network_from_digraph(g);
        let f = net.max_flow(t, zero);
        if f < best.value {
            best = GlobalCut { value: f, side: net.min_cut_side(t) };
        }
    }
    best
}

/// Exact edge connectivity `λ(G)` of an unweighted undirected graph,
/// with a certifying minimum cut side. Returns `None` for graphs with
/// fewer than 2 nodes.
///
/// Uses the standard `min_{t≠0} maxflow(0, t)` identity with integer
/// unit capacities.
#[must_use]
pub fn edge_connectivity(g: &UnGraph) -> Option<(u64, NodeSet)> {
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    let zero = NodeId::new(0);
    let mut best: Option<(u64, NodeSet)> = None;
    for t in 1..n {
        let mut net: FlowNetwork<u64> = FlowNetwork::new(n);
        for (u, v) in g.edges() {
            net.add_undirected(u, v, 1);
        }
        let f = net.max_flow(zero, NodeId::new(t));
        if best.as_ref().is_none_or(|(b, _)| f < *b) {
            let side = net.min_cut_side(zero);
            best = Some((f, side));
            if f == 0 {
                break;
            }
        }
    }
    best
}

/// Exact size of the global minimum cut of an unweighted undirected
/// graph (`0` when disconnected). Convenience wrapper over
/// [`edge_connectivity`].
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes.
#[must_use]
pub fn min_cut_unweighted(g: &UnGraph) -> u64 {
    edge_connectivity(g).expect("min-cut needs ≥ 2 nodes").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize, f64)]) -> DiGraph {
        // Encode an undirected weighted graph as one directed edge per
        // undirected edge; stoer_wagner symmetrizes internally.
        let mut g = DiGraph::new(n);
        for &(u, v, w) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        g
    }

    #[test]
    fn stoer_wagner_on_dumbbell() {
        // Two triangles joined by a single light edge.
        let g = undirected(
            6,
            &[
                (0, 1, 3.0),
                (1, 2, 3.0),
                (0, 2, 3.0),
                (3, 4, 3.0),
                (4, 5, 3.0),
                (3, 5, 3.0),
                (2, 3, 1.0),
            ],
        );
        let cut = stoer_wagner(&g);
        assert!((cut.value - 1.0).abs() < 1e-9);
        let side = cut.side.canonical_cut_side();
        assert!(side.len() == 3);
    }

    #[test]
    fn stoer_wagner_on_classic_eight_node_instance() {
        // The instance from the Stoer–Wagner paper; min cut value 4.
        let g = undirected(
            8,
            &[
                (0, 1, 2.0),
                (0, 4, 3.0),
                (1, 2, 3.0),
                (1, 4, 2.0),
                (1, 5, 2.0),
                (2, 3, 4.0),
                (2, 6, 2.0),
                (3, 6, 2.0),
                (3, 7, 2.0),
                (4, 5, 3.0),
                (5, 6, 1.0),
                (6, 7, 3.0),
            ],
        );
        let cut = stoer_wagner(&g);
        assert!((cut.value - 4.0).abs() < 1e-9, "got {}", cut.value);
    }

    #[test]
    fn stoer_wagner_cut_value_matches_reported_side() {
        let g = undirected(5, &[(0, 1, 1.5), (1, 2, 2.5), (2, 3, 0.5), (3, 4, 4.0), (4, 0, 1.0)]);
        let cut = stoer_wagner(&g);
        // Verify the reported side really has the reported (undirected) value.
        let (out, into) = g.cut_both(&cut.side);
        assert!((out + into - cut.value).abs() < 1e-9);
    }

    #[test]
    fn directed_min_cut_on_asymmetric_cycle() {
        // 0→1→2→0 with weights 1, 10, 10: min directed cut is 1
        // (S = {0} has out-weight 1).
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 10.0);
        g.add_edge(NodeId::new(2), NodeId::new(0), 10.0);
        let cut = global_min_cut_directed(&g);
        assert!((cut.value - 1.0).abs() < 1e-9);
        assert!((g.cut_out(&cut.side) - cut.value).abs() < 1e-9);
    }

    #[test]
    fn directed_min_cut_finds_zero_cut_when_not_strongly_connected() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 2.0);
        let cut = global_min_cut_directed(&g);
        assert_eq!(cut.value, 0.0);
    }

    #[test]
    fn edge_connectivity_of_cycle_is_two() {
        let mut g = UnGraph::new(7);
        for i in 0..7 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 7));
        }
        let (lambda, side) = edge_connectivity(&g).unwrap();
        assert_eq!(lambda, 2);
        assert_eq!(g.cut_size(&side) as u64, 2);
    }

    #[test]
    fn edge_connectivity_of_complete_graph() {
        let n = 7;
        let mut g = UnGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
        assert_eq!(min_cut_unweighted(&g), (n - 1) as u64);
    }

    #[test]
    fn edge_connectivity_of_disconnected_graph_is_zero() {
        let mut g = UnGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        assert_eq!(min_cut_unweighted(&g), 0);
    }

    #[test]
    fn edge_connectivity_with_bridge() {
        // Two K4's joined by one bridge: λ = 1.
        let mut g = UnGraph::new(8);
        for base in [0, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(NodeId::new(base + i), NodeId::new(base + j));
                }
            }
        }
        g.add_edge(NodeId::new(3), NodeId::new(4));
        let (lambda, side) = edge_connectivity(&g).unwrap();
        assert_eq!(lambda, 1);
        assert_eq!(side.len(), 4);
    }

    #[test]
    fn stoer_wagner_agrees_with_flow_based_connectivity() {
        // Unweighted random-ish graph: Stoer–Wagner (weights 1.0) must
        // agree with integer-flow edge connectivity.
        let mut ug = UnGraph::new(9);
        let mut dg = DiGraph::new(9);
        let edges =
            [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (3, 5), (4, 6), (5, 6), (5, 7), (6, 8), (7, 8), (2, 7), (0, 8)];
        for &(u, v) in &edges {
            ug.add_edge(NodeId::new(u), NodeId::new(v));
            dg.add_edge(NodeId::new(u), NodeId::new(v), 1.0);
        }
        let sw = stoer_wagner(&dg);
        let lambda = min_cut_unweighted(&ug);
        assert!((sw.value - lambda as f64).abs() < 1e-9, "SW {} vs λ {}", sw.value, lambda);
    }
}
