//! Process-global instrumentation for the flow/min-cut engine.
//!
//! The parallel engine's entry points record one entry per *stage*
//! (e.g. `"gomory_hu/speculate"`, `"edge_connectivity"`): how many
//! max-flow solves the stage issued and how much wall-clock it took.
//! The bench bins read [`stage_report`] to print scaling tables; the
//! counters are cheap atomics plus one short mutex acquisition per
//! stage, so leaving them on in production costs nothing measurable.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Global count of individual `max_flow` solves since process start
/// (or the last [`reset`]).
static SOLVES: AtomicU64 = AtomicU64::new(0);

/// Global count of cut queries (single and batched) since process
/// start (or the last [`reset`]).
static CUT_QUERIES: AtomicU64 = AtomicU64::new(0);

/// Logical queries/solves answered from the PR-5 result cache (cut
/// memo hits, flow warm-start replays, skeleton memo hits) whose entry
/// was computed at the current epoch. These are *observability only*:
/// every hit was still billed through [`count_cut_queries`] /
/// [`count_solve`], so resource accounting is invariant under
/// `DIRCUT_CACHE`.
static CACHE_HITS_FRESH: AtomicU64 = AtomicU64::new(0);

/// Cache hits served by a memo entry that survived a delta-epoch
/// migration (see [`crate::cache`]): the entry was computed before a
/// mutation and retained because its mask avoided every touched
/// vertex. Split out from the fresh hits so the `DIRCUT_STATS` line
/// and the bench JSON can show what delta invalidation saves.
static CACHE_HITS_RETAINED: AtomicU64 = AtomicU64::new(0);

/// Logical queries/solves that consulted the cache and had to compute.
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread mirror of [`SOLVES`], read by [`scoped`] to
    /// attribute solves to one closure without racing other threads.
    static SCOPED_SOLVES: Cell<u64> = const { Cell::new(0) };
    /// Per-thread mirror of [`CUT_QUERIES`] for [`scoped`].
    static SCOPED_CUT_QUERIES: Cell<u64> = const { Cell::new(0) };
}

/// Aggregated per-stage timings.
#[derive(Debug, Clone, Default)]
pub struct StageStat {
    /// Number of times the stage ran.
    pub runs: u64,
    /// Max-flow solves attributed to the stage.
    pub solves: u64,
    /// Cut queries attributed to the stage.
    pub cut_queries: u64,
    /// Total wall-clock across runs.
    pub wall: Duration,
    /// Free-form named counters (summed across runs). The distributed
    /// runtime records per-link transcript totals here — bytes sent,
    /// retries, latency buckets — without this crate having to know
    /// those names.
    pub metrics: BTreeMap<String, u64>,
}

fn registry() -> &'static Mutex<BTreeMap<String, StageStat>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, StageStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Records one `max_flow` solve. Called by the flow network itself.
pub(crate) fn count_solve() {
    SOLVES.fetch_add(1, Ordering::Relaxed);
    SCOPED_SOLVES.with(|c| c.set(c.get() + 1));
}

/// Records `k` cut queries. Called by the cut-query entry points
/// ([`crate::digraph::DiGraph::cut_out`] and friends, and the
/// [`crate::cuteval`] batch kernels).
pub(crate) fn count_cut_queries(k: u64) {
    CUT_QUERIES.fetch_add(k, Ordering::Relaxed);
    SCOPED_CUT_QUERIES.with(|c| c.set(c.get() + k));
}

/// Records `k` cache hits on entries computed at the current epoch.
/// Called by the memo lookup paths only — never affects the billed
/// query/solve counters above. Public so cache layers in downstream
/// crates (e.g. the local-query skeleton memo) report into the same
/// process-wide tally.
pub fn count_cache_hits(k: u64) {
    CACHE_HITS_FRESH.fetch_add(k, Ordering::Relaxed);
}

/// Records `k` cache hits on delta-retained entries: memo values that
/// survived a mutation because their masks avoided every touched
/// vertex. Counted separately from [`count_cache_hits`];
/// [`total_cache_hits`] sums both.
pub fn count_cache_hits_retained(k: u64) {
    CACHE_HITS_RETAINED.fetch_add(k, Ordering::Relaxed);
}

/// Records `k` cache misses (lookups that went on to compute).
pub fn count_cache_misses(k: u64) {
    CACHE_MISSES.fetch_add(k, Ordering::Relaxed);
}

/// Counters attributed to one [`scoped`] closure on one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopedCounts {
    /// `max_flow` solves issued inside the scope.
    pub solves: u64,
    /// Cut queries issued inside the scope.
    pub cut_queries: u64,
}

/// Credits counts issued elsewhere to the current thread's scope
/// mirrors (globals are untouched — the issuing threads already
/// counted them). The worker pool calls this when a fan-out joins, so
/// a [`scoped`] frame sees work it spawned through the pool.
pub(crate) fn add_scoped_counts(counts: ScopedCounts) {
    SCOPED_SOLVES.with(|c| c.set(c.get() + counts.solves));
    SCOPED_CUT_QUERIES.with(|c| c.set(c.get() + counts.cut_queries));
}

/// Runs `f` and returns its result together with the solves and cut
/// queries issued by the **current thread** while inside it —
/// including work `f` fanned out through the
/// [`crate::parallel`] pool, which credits its workers' counts back
/// to the spawning thread when the fan-out joins. Counts are therefore
/// independent of the pool's thread count.
///
/// The attribution is delta-based over thread-local mirrors of the
/// global counters, so concurrent work on *unrelated* threads never
/// bleeds in (and the global [`total_solves`] / [`total_cut_queries`]
/// totals are untouched — `DIRCUT_STATS` reports keep working).
/// Scopes nest: an inner scope's counts are included in the outer
/// one's.
pub fn scoped<T>(f: impl FnOnce() -> T) -> (T, ScopedCounts) {
    let solves_before = SCOPED_SOLVES.with(Cell::get);
    let queries_before = SCOPED_CUT_QUERIES.with(Cell::get);
    let out = f();
    let counts = ScopedCounts {
        solves: SCOPED_SOLVES.with(Cell::get).saturating_sub(solves_before),
        cut_queries: SCOPED_CUT_QUERIES
            .with(Cell::get)
            .saturating_sub(queries_before),
    };
    (out, counts)
}

/// Total `max_flow` solves recorded so far.
#[must_use]
pub fn total_solves() -> u64 {
    SOLVES.load(Ordering::Relaxed)
}

/// Total cut queries recorded so far.
#[must_use]
pub fn total_cut_queries() -> u64 {
    CUT_QUERIES.load(Ordering::Relaxed)
}

/// Total cache hits recorded so far (see [`crate::cache`]): fresh
/// hits plus delta-retained hits.
#[must_use]
pub fn total_cache_hits() -> u64 {
    total_cache_hits_fresh() + total_cache_hits_retained()
}

/// Cache hits on entries computed at the current epoch.
#[must_use]
pub fn total_cache_hits_fresh() -> u64 {
    CACHE_HITS_FRESH.load(Ordering::Relaxed)
}

/// Cache hits on entries that survived a delta-epoch migration.
#[must_use]
pub fn total_cache_hits_retained() -> u64 {
    CACHE_HITS_RETAINED.load(Ordering::Relaxed)
}

/// Total cache misses recorded so far (see [`crate::cache`]).
#[must_use]
pub fn total_cache_misses() -> u64 {
    CACHE_MISSES.load(Ordering::Relaxed)
}

/// Adds one run of `stage` with the given solve count and wall-clock.
pub fn record_stage(stage: &str, solves: u64, wall: Duration) {
    record_stage_counts(stage, solves, 0, wall);
}

/// Adds one run of `stage` with solve, cut-query, and wall-clock
/// attribution.
pub fn record_stage_counts(stage: &str, solves: u64, cut_queries: u64, wall: Duration) {
    let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let entry = map.entry(stage.to_owned()).or_default();
    entry.runs += 1;
    entry.solves += solves;
    entry.cut_queries += cut_queries;
    entry.wall += wall;
}

/// Adds named counter values to `stage` without counting a run.
///
/// Counters with the same name accumulate; callers that want one
/// logical run per invocation should pair this with
/// [`record_stage_counts`] (or [`timed_stage`]).
pub fn record_stage_metrics(stage: &str, metrics: &[(&str, u64)]) {
    let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let entry = map.entry(stage.to_owned()).or_default();
    for (name, value) in metrics {
        *entry.metrics.entry((*name).to_owned()).or_insert(0) += value;
    }
}

/// Snapshot of every stage recorded so far, sorted by stage name.
#[must_use]
pub fn stage_report() -> Vec<(String, StageStat)> {
    let map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

/// Clears all counters (tests and bench harnesses call this between
/// measurements).
pub fn reset() {
    SOLVES.store(0, Ordering::Relaxed);
    CUT_QUERIES.store(0, Ordering::Relaxed);
    CACHE_HITS_FRESH.store(0, Ordering::Relaxed);
    CACHE_HITS_RETAINED.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Runs `f`, recording it as one run of `stage` with the number of
/// solves and cut queries it issued (measured by the global counters)
/// and its wall-clock. Returns `f`'s result.
pub fn timed_stage<T>(stage: &str, f: impl FnOnce() -> T) -> T {
    let solves_before = total_solves();
    let queries_before = total_cut_queries();
    let start = std::time::Instant::now();
    let out = f();
    record_stage_counts(
        stage,
        total_solves().saturating_sub(solves_before),
        total_cut_queries().saturating_sub(queries_before),
        start.elapsed(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_accumulate_runs_and_wall_clock() {
        // Serialized against other tests by the registry mutex; use a
        // unique stage name so parallel test threads cannot interfere.
        let stage = "stats-test-stage-accumulate";
        record_stage(stage, 3, Duration::from_millis(5));
        record_stage(stage, 4, Duration::from_millis(7));
        let report = stage_report();
        let (_, stat) = report
            .iter()
            .find(|(name, _)| name == stage)
            .expect("stage recorded");
        assert_eq!(stat.runs, 2);
        assert_eq!(stat.solves, 7);
        assert!(stat.wall >= Duration::from_millis(12));
    }

    #[test]
    fn stage_metrics_accumulate_by_name() {
        let stage = "stats-test-stage-metrics";
        record_stage_metrics(stage, &[("bytes_sent", 100), ("retries", 1)]);
        record_stage_metrics(stage, &[("bytes_sent", 50)]);
        let report = stage_report();
        let (_, stat) = report
            .iter()
            .find(|(name, _)| name == stage)
            .expect("stage recorded");
        assert_eq!(stat.metrics.get("bytes_sent"), Some(&150));
        assert_eq!(stat.metrics.get("retries"), Some(&1));
        // Metrics alone do not count a run.
        assert_eq!(stat.runs, 0);
    }

    #[test]
    fn timed_stage_attributes_cut_queries() {
        use crate::ids::{NodeId, NodeSet};
        let stage = "stats-test-cut-queries";
        let before = total_cut_queries();
        timed_stage(stage, || {
            let mut g = crate::digraph::DiGraph::new(3);
            g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
            let s = NodeSet::from_indices(3, [0]);
            let _ = g.cut_out(&s);
            let _ = crate::cuteval::cut_both_batch_threaded(&g, &[s.clone(), s], 1);
        });
        assert!(total_cut_queries() >= before + 3);
        let report = stage_report();
        let (_, stat) = report
            .iter()
            .find(|(name, _)| name == stage)
            .expect("stage recorded");
        assert!(stat.cut_queries >= 3);
    }

    #[test]
    fn scoped_attributes_only_this_threads_work() {
        use crate::ids::{NodeId, NodeSet};
        let ((), counts) = scoped(|| {
            let mut g = crate::digraph::DiGraph::new(3);
            g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
            let s = NodeSet::from_indices(3, [0]);
            let _ = g.cut_out(&s);
            let _ = g.cut_out(&s);
        });
        assert_eq!(counts.cut_queries, 2);
        assert_eq!(counts.solves, 0);
        // Work on a different thread is invisible to this scope.
        let ((), outer) = scoped(|| {
            std::thread::scope(|sc| {
                sc.spawn(|| {
                    let mut g = crate::digraph::DiGraph::new(2);
                    g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
                    let s = NodeSet::from_indices(2, [0]);
                    let _ = g.cut_out(&s);
                });
            });
        });
        assert_eq!(outer.cut_queries, 0);
    }

    #[test]
    fn scoped_sees_work_fanned_through_the_pool() {
        use crate::ids::{NodeId, NodeSet};
        for threads in [1, 4] {
            let ((), counts) = scoped(|| {
                let _ = crate::parallel::run_indexed(8, threads, |i| {
                    let mut g = crate::digraph::DiGraph::new(2);
                    g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
                    let s = NodeSet::from_indices(2, [0]);
                    let _ = g.cut_out(&s);
                    i
                });
            });
            assert_eq!(counts.cut_queries, 8, "threads={threads}");
        }
    }

    #[test]
    fn scoped_nests_and_leaves_globals_intact() {
        use crate::ids::{NodeId, NodeSet};
        let global_before = total_cut_queries();
        let ((inner_counts,), outer_counts) = scoped(|| {
            let mut g = crate::digraph::DiGraph::new(2);
            g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
            let s = NodeSet::from_indices(2, [0]);
            let _ = g.cut_out(&s);
            let ((), inner) = scoped(|| {
                let _ = g.cut_out(&s);
            });
            (inner,)
        });
        assert_eq!(inner_counts.cut_queries, 1);
        assert_eq!(outer_counts.cut_queries, 2);
        assert!(total_cut_queries() >= global_before + 2);
    }

    #[test]
    fn timed_stage_attributes_solves() {
        use crate::ids::NodeId;
        let stage = "stats-test-timed-stage";
        let flow = timed_stage(stage, || {
            let mut net: crate::flow::FlowNetwork<u64> = crate::flow::FlowNetwork::new(2);
            net.add_arc(NodeId::new(0), NodeId::new(1), 2);
            net.max_flow(NodeId::new(0), NodeId::new(1))
        });
        assert_eq!(flow, 2);
        let report = stage_report();
        let (_, stat) = report
            .iter()
            .find(|(name, _)| name == stage)
            .expect("stage recorded");
        assert!(stat.solves >= 1);
    }
}
