//! Shared error vocabulary for checked graph queries.
//!
//! The `try_*` entry points of the batch cut kernels, the sketch
//! oracles, and the local-query estimators all reject the same
//! malformed input — a [`NodeSet`](crate::NodeSet) whose universe does
//! not match the structure it is queried against. The error type lives
//! here, in the one crate everything depends on, so downstream crates
//! (`dircut-sketch`, `dircut-localquery`, `dircut-dist`, the CLI) can
//! compose it with their own failure modes (wire errors, fault-runtime
//! errors) in a single `Result` chain instead of each redefining it.

use std::fmt;

/// Error returned by checked cut queries when a
/// [`NodeSet`](crate::NodeSet)'s universe does not match the node
/// count of the graph or sketch it is queried against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniverseMismatch {
    /// The structure's node count.
    pub expected: usize,
    /// The set's universe.
    pub got: usize,
}

impl fmt::Display for UniverseMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node-set universe mismatch: graph has {} nodes, set universe is {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for UniverseMismatch {}

/// Checks a queried universe against an expected node count — the
/// shared guard every checked query runs first.
///
/// # Errors
/// [`UniverseMismatch`] when the two differ.
pub fn check_universe(expected: usize, got: usize) -> Result<(), UniverseMismatch> {
    if expected == got {
        Ok(())
    } else {
        Err(UniverseMismatch { expected, got })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_universe_accepts_match_rejects_mismatch() {
        assert_eq!(check_universe(5, 5), Ok(()));
        assert_eq!(
            check_universe(5, 7),
            Err(UniverseMismatch {
                expected: 5,
                got: 7
            })
        );
    }

    #[test]
    fn display_names_both_sides() {
        let e = UniverseMismatch {
            expected: 3,
            got: 9,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9'));
    }
}
