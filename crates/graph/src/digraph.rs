//! Weighted directed multigraphs.
//!
//! [`DiGraph`] is the workhorse of the whole workspace: every
//! lower-bound gadget, every sketch, and every flow computation runs on
//! it. It stores an edge list plus a lazily built compressed-sparse-row
//! ([`Csr`]) view of the out/in adjacency, so `O(m)` whole-graph scans,
//! `O(deg)` local walks, and cache-friendly neighbor sweeps are all
//! cheap without paying one heap allocation per node.
//!
//! # CSR layout and the mutation epoch
//!
//! The CSR view packs, for each direction, three flat arrays indexed by
//! a `n + 1`-entry offset table: edge ids, opposite endpoints, and
//! weights. Within a node's slice the edges appear in **insertion
//! order** (the build is a stable counting sort over the edge list), so
//! [`DiGraph::out_edges`] returns exactly the same sequence the old
//! per-node `Vec<EdgeId>` lists did.
//!
//! The view is built on first use and cached. Every mutation
//! ([`DiGraph::add_edge`], [`DiGraph::scale_weights`]) bumps the
//! [`DiGraph::mutation_epoch`] counter and drops the cache, so a stale
//! view can never be observed; the next read rebuilds in `O(n + m)`.
//! The cache is an [`Arc`] of an immutable
//! [`CsrSnapshot`](crate::snapshot::CsrSnapshot) behind a [`OnceLock`]:
//! concurrent readers sharing a `&DiGraph` across the worker pool race
//! only on who builds the snapshot first, never on its contents, and
//! [`DiGraph::snapshot`] hands the same capture to code that must
//! outlive the borrow (the snapshot store, the serve scheduler).

use crate::cache::CutMemo;
use crate::ids::{EdgeId, NodeId, NodeSet};
use crate::snapshot::CsrSnapshot;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Memo state carried across vertex-local mutations (delta epochs):
/// the dropped snapshot's cut memo plus a bitset of every vertex
/// touched since that snapshot was built. When the next snapshot is
/// built, entries whose masks avoid all touched vertices are retained
/// (see [`CutMemo::retain_disjoint`]) instead of cold-starting the
/// whole cache.
#[derive(Debug)]
struct CarriedMemo {
    memo: CutMemo,
    /// One bit per node, [`NodeSet`] word layout.
    delta: Vec<u64>,
}

/// A weighted directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Tail of the edge.
    pub from: NodeId,
    /// Head of the edge.
    pub to: NodeId,
    /// Non-negative weight.
    pub weight: f64,
}

pub use crate::error::UniverseMismatch;

/// Compressed-sparse-row view of a [`DiGraph`]'s adjacency.
///
/// Six flat arrays (edge ids, opposite endpoints, weights — once per
/// direction) indexed through `n + 1`-entry offset tables, plus cached
/// weighted degrees. Per-node slices preserve edge insertion order.
#[derive(Debug, Clone)]
pub struct Csr {
    out_offsets: Vec<u32>,
    out_edge_ids: Vec<EdgeId>,
    out_targets: Vec<u32>,
    out_weights: Vec<f64>,
    in_offsets: Vec<u32>,
    in_edge_ids: Vec<EdgeId>,
    in_sources: Vec<u32>,
    in_weights: Vec<f64>,
    out_wdeg: Vec<f64>,
    in_wdeg: Vec<f64>,
    built_at_epoch: u64,
}

impl Csr {
    pub(crate) fn build(n: usize, edges: &[Edge], epoch: u64) -> Self {
        let m = edges.len();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for e in edges {
            out_offsets[e.from.index() + 1] += 1;
            in_offsets[e.to.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_edge_ids = vec![EdgeId(0); m];
        let mut out_targets = vec![0u32; m];
        let mut out_weights = vec![0.0f64; m];
        let mut in_edge_ids = vec![EdgeId(0); m];
        let mut in_sources = vec![0u32; m];
        let mut in_weights = vec![0.0f64; m];
        // Stable counting sort: ascending edge id within each node, so
        // per-node slices match the historical push order exactly.
        let mut out_cursor = out_offsets[..n].to_vec();
        let mut in_cursor = in_offsets[..n].to_vec();
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::new(i);
            let o = &mut out_cursor[e.from.index()];
            out_edge_ids[*o as usize] = id;
            out_targets[*o as usize] = e.to.0;
            out_weights[*o as usize] = e.weight;
            *o += 1;
            let p = &mut in_cursor[e.to.index()];
            in_edge_ids[*p as usize] = id;
            in_sources[*p as usize] = e.from.0;
            in_weights[*p as usize] = e.weight;
            *p += 1;
        }
        let mut out_wdeg = vec![0.0f64; n];
        let mut in_wdeg = vec![0.0f64; n];
        for v in 0..n {
            let (a, b) = (out_offsets[v] as usize, out_offsets[v + 1] as usize);
            out_wdeg[v] = out_weights[a..b].iter().sum();
            let (a, b) = (in_offsets[v] as usize, in_offsets[v + 1] as usize);
            in_wdeg[v] = in_weights[a..b].iter().sum();
        }
        Self {
            out_offsets,
            out_edge_ids,
            out_targets,
            out_weights,
            in_offsets,
            in_edge_ids,
            in_sources,
            in_weights,
            out_wdeg,
            in_wdeg,
            built_at_epoch: epoch,
        }
    }

    #[inline]
    fn out_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.out_offsets[v.index()] as usize..self.out_offsets[v.index() + 1] as usize
    }

    #[inline]
    fn in_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.in_offsets[v.index()] as usize..self.in_offsets[v.index() + 1] as usize
    }

    /// Ids of edges leaving `v`, in insertion order.
    #[must_use]
    pub fn out_edge_ids(&self, v: NodeId) -> &[EdgeId] {
        &self.out_edge_ids[self.out_range(v)]
    }

    /// Ids of edges entering `v`, in insertion order.
    #[must_use]
    pub fn in_edge_ids(&self, v: NodeId) -> &[EdgeId] {
        &self.in_edge_ids[self.in_range(v)]
    }

    /// Heads of the edges leaving `v`, aligned with
    /// [`Csr::out_edge_ids`].
    #[must_use]
    pub fn out_targets(&self, v: NodeId) -> &[u32] {
        &self.out_targets[self.out_range(v)]
    }

    /// Tails of the edges entering `v`, aligned with
    /// [`Csr::in_edge_ids`].
    #[must_use]
    pub fn in_sources(&self, v: NodeId) -> &[u32] {
        &self.in_sources[self.in_range(v)]
    }

    /// Weights of the edges leaving `v`, aligned with
    /// [`Csr::out_edge_ids`].
    #[must_use]
    pub fn out_weights(&self, v: NodeId) -> &[f64] {
        &self.out_weights[self.out_range(v)]
    }

    /// Weights of the edges entering `v`, aligned with
    /// [`Csr::in_edge_ids`].
    #[must_use]
    pub fn in_weights(&self, v: NodeId) -> &[f64] {
        &self.in_weights[self.in_range(v)]
    }

    /// Cached weighted out-degree of `v`.
    #[must_use]
    pub fn weighted_out_degree(&self, v: NodeId) -> f64 {
        self.out_wdeg[v.index()]
    }

    /// Cached weighted in-degree of `v`.
    #[must_use]
    pub fn weighted_in_degree(&self, v: NodeId) -> f64 {
        self.in_wdeg[v.index()]
    }

    /// The [`DiGraph::mutation_epoch`] value this view was built at.
    #[must_use]
    pub fn built_at_epoch(&self) -> u64 {
        self.built_at_epoch
    }
}

/// A weighted directed multigraph over nodes `{0, …, n−1}`.
///
/// Parallel edges are allowed (the constructions in the paper never
/// need them, but sketches that sample with replacement do). Weights
/// must be non-negative and finite.
///
/// # Example
///
/// ```
/// use dircut_graph::{DiGraph, NodeId, NodeSet};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
/// g.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
/// g.add_edge(NodeId::new(2), NodeId::new(0), 5.0);
/// let s = NodeSet::from_indices(3, [0]);
/// assert_eq!(g.cut_out(&s), 2.0); // edges leaving {0}
/// assert_eq!(g.cut_in(&s), 5.0);  // edges entering {0}
/// ```
#[derive(Debug)]
pub struct DiGraph {
    n: usize,
    edges: Vec<Edge>,
    epoch: u64,
    /// Lazily built immutable capture of the graph at `epoch`: CSR
    /// view plus the per-snapshot cut memo. Pure cache state — ignored
    /// by `PartialEq`, not carried across `Clone`, invalidated by
    /// every mutation.
    snap: OnceLock<Arc<CsrSnapshot>>,
    /// Memo awaiting delta-epoch migration into the next snapshot
    /// (vertex-local mutations only; see [`CarriedMemo`]). Behind a
    /// mutex because `snapshot_ref` consumes it from `&self`. Pure
    /// cache state like `snap`: ignored by `PartialEq`, cold after
    /// `Clone`.
    pending: Mutex<Option<CarriedMemo>>,
}

impl PartialEq for DiGraph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

impl Clone for DiGraph {
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            edges: self.edges.clone(),
            epoch: self.epoch,
            // A clone starts with a cold snapshot cache, exactly like
            // the memo: the capture is rebuildable in O(n + m), so
            // deep-copying it on every clone (as an earlier revision
            // did) pays an O(n + m) memcpy for state the clone may
            // never read — and the trial engines clone graphs far more
            // often than they query all of them.
            snap: OnceLock::new(),
            pending: Mutex::new(None),
        }
    }
}

impl DiGraph {
    /// An empty graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            epoch: 0,
            snap: OnceLock::new(),
            pending: Mutex::new(None),
        }
    }

    /// An empty graph on `n` nodes with capacity for `m` edges.
    #[must_use]
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut g = Self::new(n);
        g.edges.reserve(m);
        g
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges (counting parallels).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId::new)
    }

    /// How many times the graph has been mutated since construction.
    /// The CSR view records the epoch it was built at, so stale views
    /// are impossible: any mutation drops the cache.
    #[must_use]
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable capture of this graph at its current epoch,
    /// building it on first use after any mutation. `O(n + m)` to
    /// build, `O(1)` afterwards. Used internally by every CSR and
    /// memo-backed path.
    pub(crate) fn snapshot_ref(&self) -> &Arc<CsrSnapshot> {
        self.snap.get_or_init(|| {
            let carried = self
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            Arc::new(match carried {
                // Delta-epoch migration: seed the new snapshot's memo
                // with the carried entries whose masks avoid every
                // touched vertex. The toggle is re-checked here so a
                // cache disabled after the mutation doesn't smuggle
                // old entries in.
                Some(c) if crate::cache::enabled() => {
                    CsrSnapshot::build_migrated(self.n, &self.edges, self.epoch, c.memo, &c.delta)
                }
                _ => CsrSnapshot::build(self.n, &self.edges, self.epoch),
            })
        })
    }

    /// A shareable immutable capture of the graph at its current
    /// epoch. The `Arc` stays valid (and keeps answering at its own
    /// epoch) across later mutations of `self` — this is what a
    /// [`crate::snapshot::SnapshotStore`] publishes to concurrent
    /// readers. Repeated calls between mutations return the same
    /// capture.
    #[must_use]
    pub fn snapshot(&self) -> Arc<CsrSnapshot> {
        Arc::clone(self.snapshot_ref())
    }

    /// The compressed-sparse-row adjacency view, building it on first
    /// use after any mutation. `O(n + m)` to build, `O(1)` afterwards.
    #[must_use]
    pub fn csr(&self) -> &Csr {
        self.snapshot_ref().csr()
    }

    /// Drops the cached snapshot (CSR view + cut memo) and bumps the
    /// epoch, discarding any pending carried memo. For mutations that
    /// touch every edge (`scale_weights`): nothing cached survives. A
    /// snapshot previously handed out via [`DiGraph::snapshot`] lives
    /// on unchanged — only this graph's own cache is reset.
    fn invalidate_full(&mut self) {
        self.epoch += 1;
        self.snap.take();
        *self
            .pending
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Delta-epoch invalidation for a mutation touching exactly the
    /// vertices `a` and `b` (`add_edge`): bumps the epoch and drops
    /// the snapshot like [`DiGraph::invalidate_full`], but parks the
    /// snapshot's cut memo together with a touched-vertex bitset so
    /// the *next* snapshot build can retain every entry whose mask is
    /// disjoint from all vertices touched since (see
    /// [`CsrSnapshot::build_migrated`]). Consecutive mutations between
    /// two snapshot builds accumulate into one delta.
    fn invalidate_touched(&mut self, a: NodeId, b: NodeId) {
        self.epoch += 1;
        let pending = self
            .pending
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        if !crate::cache::enabled() {
            self.snap.take();
            *pending = None;
            return;
        }
        let mark = |delta: &mut [u64], v: NodeId| {
            delta[v.index() / 64] |= 1u64 << (v.index() % 64);
        };
        if let Some(snap) = self.snap.take() {
            let memo = match Arc::try_unwrap(snap) {
                Ok(owned) => owned.into_memo(),
                // The capture is still shared (a store/reader holds
                // it): leave that Arc untouched and carry a copy.
                Err(shared) => shared.clone_memo(),
            };
            if memo.len() == 0 {
                *pending = None;
                return;
            }
            let mut delta = vec![0u64; self.n.div_ceil(64)];
            mark(&mut delta, a);
            mark(&mut delta, b);
            *pending = Some(CarriedMemo { memo, delta });
        } else if let Some(c) = pending.as_mut() {
            mark(&mut c.delta, a);
            mark(&mut c.delta, b);
        }
    }

    /// Adds a directed edge and returns its id.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, negative/non-finite weight, or
    /// self-loops (which never affect cuts and would only distort
    /// degree-based reasoning).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) -> EdgeId {
        assert!(from.index() < self.n, "edge tail {from} out of range");
        assert!(to.index() < self.n, "edge head {to} out of range");
        assert!(from != to, "self-loops are not allowed");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and ≥ 0, got {weight}"
        );
        self.invalidate_touched(from, to);
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { from, to, weight });
        id
    }

    /// The edge with the given id.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All edges in insertion order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of edges leaving `v`, in insertion order.
    #[must_use]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        self.csr().out_edge_ids(v)
    }

    /// Ids of edges entering `v`, in insertion order.
    #[must_use]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        self.csr().in_edge_ids(v)
    }

    /// Out-degree (number of outgoing edges) of `v`.
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.csr().out_range(v).len()
    }

    /// In-degree of `v`.
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.csr().in_range(v).len()
    }

    /// Weighted out-degree `w(v, V)`.
    #[must_use]
    pub fn weighted_out_degree(&self, v: NodeId) -> f64 {
        self.csr().weighted_out_degree(v)
    }

    /// Weighted in-degree `w(V, v)`.
    #[must_use]
    pub fn weighted_in_degree(&self, v: NodeId) -> f64 {
        self.csr().weighted_in_degree(v)
    }

    /// Total edge weight `w(V, V)`.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// The total weight of edges from `u` to `v` (merging parallels).
    #[must_use]
    pub fn pair_weight(&self, u: NodeId, v: NodeId) -> f64 {
        let csr = self.csr();
        csr.out_targets(u)
            .iter()
            .zip(csr.out_weights(u))
            .filter(|&(&t, _)| t == v.0)
            .map(|(_, &w)| w)
            .sum()
    }

    /// Multiplies every edge weight by `scale` (used by sketches).
    pub fn scale_weights(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale >= 0.0);
        self.invalidate_full();
        for e in &mut self.edges {
            e.weight *= scale;
        }
    }

    /// The reverse graph (every edge flipped).
    #[must_use]
    pub fn reversed(&self) -> Self {
        let mut g = Self::with_edge_capacity(self.n, self.edges.len());
        for e in &self.edges {
            g.add_edge(e.to, e.from, e.weight);
        }
        g
    }

    fn check_universe(&self, s: &NodeSet) -> Result<(), UniverseMismatch> {
        crate::error::check_universe(self.n, s.universe())
    }

    // The three cut scans accumulate with an explicit `+0.0`-seeded
    // fold in edge order (NOT `Iterator::sum`, whose float identity is
    // `-0.0`), so single queries, the fused `cut_both` pass, and the
    // `cuteval` batch kernels all produce the same bits — including
    // the sign of an exactly-zero cut.
    fn cut_out_unchecked(&self, s: &NodeSet) -> f64 {
        let mut out = 0.0;
        for e in &self.edges {
            if s.contains(e.from) && !s.contains(e.to) {
                out += e.weight;
            }
        }
        out
    }

    fn cut_in_unchecked(&self, s: &NodeSet) -> f64 {
        let mut into = 0.0;
        for e in &self.edges {
            if !s.contains(e.from) && s.contains(e.to) {
                into += e.weight;
            }
        }
        into
    }

    fn cut_both_unchecked(&self, s: &NodeSet) -> (f64, f64) {
        let (mut out, mut into) = (0.0, 0.0);
        for e in &self.edges {
            match (s.contains(e.from), s.contains(e.to)) {
                (true, false) => out += e.weight,
                (false, true) => into += e.weight,
                _ => {}
            }
        }
        (out, into)
    }

    // Memo-backed single-query paths. Billing (`count_cut_queries`)
    // already happened at the public entry point, so a hit changes only
    // wall-clock and the cache_hits/cache_misses observability
    // counters — never the resource accounting. The memo lives on the
    // per-epoch snapshot (see [`crate::snapshot`]); with the cache
    // disabled the scan runs directly over this graph's edge list and
    // no snapshot is built.
    fn cut_out_cached(&self, s: &NodeSet) -> f64 {
        if !crate::cache::enabled() {
            return self.cut_out_unchecked(s);
        }
        self.snapshot_ref().cut_out_memo(s)
    }

    fn cut_in_cached(&self, s: &NodeSet) -> f64 {
        if !crate::cache::enabled() {
            return self.cut_in_unchecked(s);
        }
        self.snapshot_ref().cut_in_memo(s)
    }

    fn cut_both_cached(&self, s: &NodeSet) -> (f64, f64) {
        if !crate::cache::enabled() {
            return self.cut_both_unchecked(s);
        }
        self.snapshot_ref().cut_both_memo(s)
    }

    /// The directed cut value `w(S, V∖S)`: total weight of edges from
    /// `S` to its complement. `O(m)`.
    ///
    /// A mismatched universe is a caller bug; it is checked with a
    /// debug-only assertion here (release decoders fed a bad set get a
    /// garbage-in answer, not a panic). Use [`DiGraph::try_cut_out`]
    /// for a checked variant.
    #[must_use]
    pub fn cut_out(&self, s: &NodeSet) -> f64 {
        debug_assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        crate::stats::count_cut_queries(1);
        self.cut_out_cached(s)
    }

    /// The reverse cut value `w(V∖S, S)`. See [`DiGraph::cut_out`] for
    /// the universe-check contract.
    #[must_use]
    pub fn cut_in(&self, s: &NodeSet) -> f64 {
        debug_assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        crate::stats::count_cut_queries(1);
        self.cut_in_cached(s)
    }

    /// Both directions of the cut in one scan: `(w(S,V∖S), w(V∖S,S))`.
    /// See [`DiGraph::cut_out`] for the universe-check contract.
    #[must_use]
    pub fn cut_both(&self, s: &NodeSet) -> (f64, f64) {
        debug_assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        crate::stats::count_cut_queries(1);
        self.cut_both_cached(s)
    }

    /// Checked [`DiGraph::cut_out`]: returns a typed error instead of
    /// asserting when the set's universe does not match.
    ///
    /// # Errors
    /// [`UniverseMismatch`] if `s.universe() != self.num_nodes()`.
    pub fn try_cut_out(&self, s: &NodeSet) -> Result<f64, UniverseMismatch> {
        self.check_universe(s)?;
        crate::stats::count_cut_queries(1);
        Ok(self.cut_out_cached(s))
    }

    /// Checked [`DiGraph::cut_in`].
    ///
    /// # Errors
    /// [`UniverseMismatch`] if `s.universe() != self.num_nodes()`.
    pub fn try_cut_in(&self, s: &NodeSet) -> Result<f64, UniverseMismatch> {
        self.check_universe(s)?;
        crate::stats::count_cut_queries(1);
        Ok(self.cut_in_cached(s))
    }

    /// Checked [`DiGraph::cut_both`].
    ///
    /// # Errors
    /// [`UniverseMismatch`] if `s.universe() != self.num_nodes()`.
    pub fn try_cut_both(&self, s: &NodeSet) -> Result<(f64, f64), UniverseMismatch> {
        self.check_universe(s)?;
        crate::stats::count_cut_queries(1);
        Ok(self.cut_both_cached(s))
    }

    /// The total weight of edges from set `a` to set `b`
    /// (`w(A, B)` in the paper's notation). Sets may overlap; edges
    /// inside the overlap count when both endpoints qualify. See
    /// [`DiGraph::cut_out`] for the universe-check contract.
    #[must_use]
    pub fn weight_between(&self, a: &NodeSet, b: &NodeSet) -> f64 {
        debug_assert_eq!(a.universe(), self.n, "node-set universe mismatch");
        debug_assert_eq!(b.universe(), self.n, "node-set universe mismatch");
        crate::stats::count_cut_queries(1);
        self.edges
            .iter()
            .filter(|e| a.contains(e.from) && b.contains(e.to))
            .map(|e| e.weight)
            .sum()
    }

    /// Collapses parallel edges, summing weights; edge ids change.
    #[must_use]
    pub fn coalesced(&self) -> Self {
        use std::collections::HashMap;
        let mut acc: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        for e in &self.edges {
            *acc.entry((e.from, e.to)).or_insert(0.0) += e.weight;
        }
        let mut pairs: Vec<_> = acc.into_iter().collect();
        pairs.sort_by_key(|((u, v), _)| (*u, *v));
        let mut g = Self::with_edge_capacity(self.n, pairs.len());
        for ((u, v), w) in pairs {
            g.add_edge(u, v, w);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph {
        // 0 → 1 (2.0), 1 → 2 (3.0), 2 → 0 (5.0)
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
        g.add_edge(NodeId::new(2), NodeId::new(0), 5.0);
        g
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(NodeId::new(0)), 1);
        assert_eq!(g.in_degree(NodeId::new(0)), 1);
        assert_eq!(g.weighted_out_degree(NodeId::new(0)), 2.0);
        assert_eq!(g.weighted_in_degree(NodeId::new(0)), 5.0);
        assert_eq!(g.total_weight(), 10.0);
    }

    #[test]
    fn cut_values() {
        let g = triangle();
        let s = NodeSet::from_indices(3, [0]);
        assert_eq!(g.cut_out(&s), 2.0);
        assert_eq!(g.cut_in(&s), 5.0);
        assert_eq!(g.cut_both(&s), (2.0, 5.0));
        let s01 = NodeSet::from_indices(3, [0, 1]);
        assert_eq!(g.cut_out(&s01), 3.0);
        assert_eq!(g.cut_in(&s01), 5.0);
    }

    #[test]
    fn checked_cut_queries_reject_bad_universe() {
        let g = triangle();
        let bad = NodeSet::from_indices(4, [0]);
        let err = UniverseMismatch {
            expected: 3,
            got: 4,
        };
        assert_eq!(g.try_cut_out(&bad), Err(err));
        assert_eq!(g.try_cut_in(&bad), Err(err));
        assert_eq!(g.try_cut_both(&bad), Err(err));
        assert!(err.to_string().contains("universe mismatch"));
        let good = NodeSet::from_indices(3, [0]);
        assert_eq!(g.try_cut_out(&good), Ok(2.0));
        assert_eq!(g.try_cut_in(&good), Ok(5.0));
        assert_eq!(g.try_cut_both(&good), Ok((2.0, 5.0)));
    }

    #[test]
    fn cut_out_plus_in_is_symmetric_under_complement() {
        let g = triangle();
        let s = NodeSet::from_indices(3, [1]);
        let c = s.complement();
        assert_eq!(g.cut_out(&s), g.cut_in(&c));
        assert_eq!(g.cut_in(&s), g.cut_out(&c));
    }

    #[test]
    fn weight_between_sets() {
        let g = triangle();
        let a = NodeSet::from_indices(3, [0, 1]);
        let b = NodeSet::from_indices(3, [1, 2]);
        // edges 0→1 (2.0, from∈a, to∈b) and 1→2 (3.0) qualify.
        assert_eq!(g.weight_between(&a, &b), 5.0);
    }

    #[test]
    fn reversed_swaps_cut_directions() {
        let g = triangle();
        let r = g.reversed();
        let s = NodeSet::from_indices(3, [0]);
        assert_eq!(g.cut_out(&s), r.cut_in(&s));
        assert_eq!(g.cut_in(&s), r.cut_out(&s));
    }

    #[test]
    fn coalesced_merges_parallels() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.5);
        let c = g.coalesced();
        assert_eq!(c.num_edges(), 1);
        assert_eq!(c.pair_weight(NodeId::new(0), NodeId::new(1)), 3.5);
    }

    #[test]
    fn pair_weight_sums_parallels() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(0), NodeId::new(1), 4.0);
        assert_eq!(g.pair_weight(NodeId::new(0), NodeId::new(1)), 5.0);
        assert_eq!(g.pair_weight(NodeId::new(1), NodeId::new(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(1), NodeId::new(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_weight() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), -1.0);
    }

    #[test]
    fn scale_weights_scales_cuts() {
        let mut g = triangle();
        g.scale_weights(2.0);
        let s = NodeSet::from_indices(3, [0]);
        assert_eq!(g.cut_out(&s), 4.0);
    }

    #[test]
    fn csr_slices_match_edge_list() {
        let mut g = DiGraph::new(4);
        // Parallel edges and an isolated node (3) on purpose.
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(2), NodeId::new(0), 2.0);
        g.add_edge(NodeId::new(0), NodeId::new(1), 3.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 4.0);
        let csr = g.csr();
        assert_eq!(csr.out_edge_ids(NodeId::new(0)), &[EdgeId(0), EdgeId(2)]);
        assert_eq!(csr.out_targets(NodeId::new(0)), &[1, 1]);
        assert_eq!(csr.out_weights(NodeId::new(0)), &[1.0, 3.0]);
        assert_eq!(csr.in_edge_ids(NodeId::new(1)), &[EdgeId(0), EdgeId(2)]);
        assert_eq!(csr.in_sources(NodeId::new(1)), &[0, 0]);
        assert_eq!(g.out_edges(NodeId::new(3)), &[] as &[EdgeId]);
        assert_eq!(g.in_edges(NodeId::new(3)), &[] as &[EdgeId]);
        assert_eq!(g.out_degree(NodeId::new(0)), 2);
        assert_eq!(g.in_degree(NodeId::new(1)), 2);
        assert_eq!(g.weighted_out_degree(NodeId::new(0)), 4.0);
        assert_eq!(g.weighted_in_degree(NodeId::new(1)), 4.0);
    }

    #[test]
    fn mutation_epoch_invalidates_csr() {
        let mut g = triangle();
        let e0 = g.mutation_epoch();
        assert_eq!(g.csr().built_at_epoch(), e0);
        assert_eq!(g.out_degree(NodeId::new(0)), 1);
        g.add_edge(NodeId::new(0), NodeId::new(2), 1.0);
        assert!(g.mutation_epoch() > e0);
        assert_eq!(g.out_degree(NodeId::new(0)), 2);
        assert_eq!(g.csr().built_at_epoch(), g.mutation_epoch());
        g.scale_weights(2.0);
        assert_eq!(g.weighted_out_degree(NodeId::new(0)), 6.0);
    }

    #[test]
    fn cut_memo_serves_repeats_bills_them_and_invalidates_on_mutation() {
        let _guard = crate::cache::test_lock();
        crate::cache::set_enabled(true);
        let mut g = triangle();
        let s = NodeSet::from_indices(3, [0]);
        let queries_before = crate::stats::total_cut_queries();
        let hits_before = crate::stats::total_cache_hits();
        let first = g.cut_out(&s);
        let again = g.cut_out(&s);
        assert_eq!(first.to_bits(), again.to_bits());
        // The repeat was served from the memo but still billed.
        assert_eq!(crate::stats::total_cut_queries(), queries_before + 2);
        assert_eq!(crate::stats::total_cache_hits(), hits_before + 1);
        // cut_both fills both slots; a later cut_in hits without computing.
        let (_, into) = g.cut_both(&s);
        assert_eq!(g.cut_in(&s).to_bits(), into.to_bits());
        // Mutation drops the memo: the new answer reflects the new edge.
        g.add_edge(NodeId::new(0), NodeId::new(2), 7.0);
        assert_eq!(g.cut_out(&s), 9.0);
    }

    #[test]
    fn batch_memo_round_trip_serves_cached_indices() {
        let _guard = crate::cache::test_lock();
        crate::cache::set_enabled(true);
        let g = triangle();
        let snap = g.snapshot();
        let sets = [
            NodeSet::from_indices(3, [0]),
            NodeSet::from_indices(3, [0, 1]),
        ];
        let mut out = vec![0.0; 2];
        let todo = snap.memo_lookup_batch(&sets, Some(&mut out), None);
        for &i in &todo {
            out[i] = g.cut_out_unchecked(&sets[i]);
        }
        snap.memo_store_batch(&sets, &todo, Some(&out), None);
        let mut out2 = vec![0.0; 2];
        let todo2 = snap.memo_lookup_batch(&sets, Some(&mut out2), None);
        assert!(todo2.is_empty());
        assert_eq!(out, out2);
        // An in-cut batch over the same sets is still all misses: the
        // memo tracks the two directions independently.
        let mut into = vec![0.0; 2];
        let todo3 = snap.memo_lookup_batch(&sets, None, Some(&mut into));
        assert_eq!(todo3, vec![0, 1]);
    }

    #[test]
    fn clone_and_eq_ignore_cache_state() {
        let mut a = triangle();
        let _ = a.csr(); // cache built on a…
        let b = a.clone();
        let mut c = DiGraph::new(3);
        c.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        c.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
        c.add_edge(NodeId::new(2), NodeId::new(0), 5.0);
        // …but not on c; equality is structural regardless.
        assert_eq!(a, b);
        assert_eq!(a, c);
        a.add_edge(NodeId::new(0), NodeId::new(2), 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn clone_starts_cold_and_never_sees_a_stale_view() {
        // Pin for the Clone bug: an earlier revision deep-copied the
        // cached CSR on clone, paying O(n + m) for rebuildable state.
        // Clones now start cold, and a clone taken after mutate+query
        // answers from its own (fresh) capture, never a stale one.
        let mut g = triangle();
        let s = NodeSet::from_indices(3, [0]);
        let _ = g.cut_out(&s); // build the cache…
        g.add_edge(NodeId::new(0), NodeId::new(2), 7.0); // …mutate…
        assert_eq!(g.cut_out(&s), 9.0); // …rebuild and query.
        let c = g.clone();
        // The clone has no capture yet (cold cache)…
        assert!(c.snap.get().is_none());
        // …and on first query builds its own, observing the mutation.
        assert_eq!(c.cut_out(&s), 9.0);
        assert_eq!(c.out_degree(NodeId::new(0)), 2);
        assert_eq!(c.snapshot().epoch(), c.mutation_epoch());
    }

    #[test]
    fn snapshot_is_shared_until_invalidated() {
        let mut g = triangle();
        let a = g.snapshot();
        let b = g.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
        g.scale_weights(3.0);
        let c = g.snapshot();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(c.epoch() > a.epoch());
    }
}
