//! Weighted directed multigraphs.
//!
//! [`DiGraph`] is the workhorse of the whole workspace: every
//! lower-bound gadget, every sketch, and every flow computation runs on
//! it. It stores an edge list plus out/in adjacency indices so both
//! `O(m)` whole-graph scans and `O(deg)` local walks are cheap.

use crate::ids::{EdgeId, NodeId, NodeSet};

/// A weighted directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Tail of the edge.
    pub from: NodeId,
    /// Head of the edge.
    pub to: NodeId,
    /// Non-negative weight.
    pub weight: f64,
}

/// A weighted directed multigraph over nodes `{0, …, n−1}`.
///
/// Parallel edges are allowed (the constructions in the paper never
/// need them, but sketches that sample with replacement do). Weights
/// must be non-negative and finite.
///
/// # Example
///
/// ```
/// use dircut_graph::{DiGraph, NodeId, NodeSet};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
/// g.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
/// g.add_edge(NodeId::new(2), NodeId::new(0), 5.0);
/// let s = NodeSet::from_indices(3, [0]);
/// assert_eq!(g.cut_out(&s), 2.0); // edges leaving {0}
/// assert_eq!(g.cut_in(&s), 5.0);  // edges entering {0}
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiGraph {
    n: usize,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// An empty graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// An empty graph on `n` nodes with capacity for `m` edges.
    #[must_use]
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut g = Self::new(n);
        g.edges.reserve(m);
        g
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges (counting parallels).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId::new)
    }

    /// Adds a directed edge and returns its id.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, negative/non-finite weight, or
    /// self-loops (which never affect cuts and would only distort
    /// degree-based reasoning).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) -> EdgeId {
        assert!(from.index() < self.n, "edge tail {from} out of range");
        assert!(to.index() < self.n, "edge head {to} out of range");
        assert!(from != to, "self-loops are not allowed");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and ≥ 0, got {weight}"
        );
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { from, to, weight });
        self.out_adj[from.index()].push(id);
        self.in_adj[to.index()].push(id);
        id
    }

    /// The edge with the given id.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All edges in insertion order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of edges leaving `v`.
    #[must_use]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_adj[v.index()]
    }

    /// Ids of edges entering `v`.
    #[must_use]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_adj[v.index()]
    }

    /// Out-degree (number of outgoing edges) of `v`.
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Weighted out-degree `w(v, V)`.
    #[must_use]
    pub fn weighted_out_degree(&self, v: NodeId) -> f64 {
        self.out_adj[v.index()]
            .iter()
            .map(|&e| self.edges[e.index()].weight)
            .sum()
    }

    /// Weighted in-degree `w(V, v)`.
    #[must_use]
    pub fn weighted_in_degree(&self, v: NodeId) -> f64 {
        self.in_adj[v.index()]
            .iter()
            .map(|&e| self.edges[e.index()].weight)
            .sum()
    }

    /// Total edge weight `w(V, V)`.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// The total weight of edges from `u` to `v` (merging parallels).
    #[must_use]
    pub fn pair_weight(&self, u: NodeId, v: NodeId) -> f64 {
        self.out_adj[u.index()]
            .iter()
            .map(|&e| &self.edges[e.index()])
            .filter(|e| e.to == v)
            .map(|e| e.weight)
            .sum()
    }

    /// Multiplies every edge weight by `scale` (used by sketches).
    pub fn scale_weights(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale >= 0.0);
        for e in &mut self.edges {
            e.weight *= scale;
        }
    }

    /// The reverse graph (every edge flipped).
    #[must_use]
    pub fn reversed(&self) -> Self {
        let mut g = Self::with_edge_capacity(self.n, self.edges.len());
        for e in &self.edges {
            g.add_edge(e.to, e.from, e.weight);
        }
        g
    }

    /// The directed cut value `w(S, V∖S)`: total weight of edges from
    /// `S` to its complement. `O(m)`.
    ///
    /// # Panics
    /// Panics if the set's universe differs from the node count.
    #[must_use]
    pub fn cut_out(&self, s: &NodeSet) -> f64 {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        self.edges
            .iter()
            .filter(|e| s.contains(e.from) && !s.contains(e.to))
            .map(|e| e.weight)
            .sum()
    }

    /// The reverse cut value `w(V∖S, S)`.
    #[must_use]
    pub fn cut_in(&self, s: &NodeSet) -> f64 {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        self.edges
            .iter()
            .filter(|e| !s.contains(e.from) && s.contains(e.to))
            .map(|e| e.weight)
            .sum()
    }

    /// Both directions of the cut in one scan: `(w(S,V∖S), w(V∖S,S))`.
    #[must_use]
    pub fn cut_both(&self, s: &NodeSet) -> (f64, f64) {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        let (mut out, mut into) = (0.0, 0.0);
        for e in &self.edges {
            match (s.contains(e.from), s.contains(e.to)) {
                (true, false) => out += e.weight,
                (false, true) => into += e.weight,
                _ => {}
            }
        }
        (out, into)
    }

    /// The total weight of edges from set `a` to set `b`
    /// (`w(A, B)` in the paper's notation). Sets may overlap; edges
    /// inside the overlap count when both endpoints qualify.
    #[must_use]
    pub fn weight_between(&self, a: &NodeSet, b: &NodeSet) -> f64 {
        assert_eq!(a.universe(), self.n, "node-set universe mismatch");
        assert_eq!(b.universe(), self.n, "node-set universe mismatch");
        self.edges
            .iter()
            .filter(|e| a.contains(e.from) && b.contains(e.to))
            .map(|e| e.weight)
            .sum()
    }

    /// Collapses parallel edges, summing weights; edge ids change.
    #[must_use]
    pub fn coalesced(&self) -> Self {
        use std::collections::HashMap;
        let mut acc: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        for e in &self.edges {
            *acc.entry((e.from, e.to)).or_insert(0.0) += e.weight;
        }
        let mut pairs: Vec<_> = acc.into_iter().collect();
        pairs.sort_by_key(|((u, v), _)| (*u, *v));
        let mut g = Self::with_edge_capacity(self.n, pairs.len());
        for ((u, v), w) in pairs {
            g.add_edge(u, v, w);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph {
        // 0 → 1 (2.0), 1 → 2 (3.0), 2 → 0 (5.0)
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
        g.add_edge(NodeId::new(2), NodeId::new(0), 5.0);
        g
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(NodeId::new(0)), 1);
        assert_eq!(g.in_degree(NodeId::new(0)), 1);
        assert_eq!(g.weighted_out_degree(NodeId::new(0)), 2.0);
        assert_eq!(g.weighted_in_degree(NodeId::new(0)), 5.0);
        assert_eq!(g.total_weight(), 10.0);
    }

    #[test]
    fn cut_values() {
        let g = triangle();
        let s = NodeSet::from_indices(3, [0]);
        assert_eq!(g.cut_out(&s), 2.0);
        assert_eq!(g.cut_in(&s), 5.0);
        assert_eq!(g.cut_both(&s), (2.0, 5.0));
        let s01 = NodeSet::from_indices(3, [0, 1]);
        assert_eq!(g.cut_out(&s01), 3.0);
        assert_eq!(g.cut_in(&s01), 5.0);
    }

    #[test]
    fn cut_out_plus_in_is_symmetric_under_complement() {
        let g = triangle();
        let s = NodeSet::from_indices(3, [1]);
        let c = s.complement();
        assert_eq!(g.cut_out(&s), g.cut_in(&c));
        assert_eq!(g.cut_in(&s), g.cut_out(&c));
    }

    #[test]
    fn weight_between_sets() {
        let g = triangle();
        let a = NodeSet::from_indices(3, [0, 1]);
        let b = NodeSet::from_indices(3, [1, 2]);
        // edges 0→1 (2.0, from∈a, to∈b) and 1→2 (3.0) qualify.
        assert_eq!(g.weight_between(&a, &b), 5.0);
    }

    #[test]
    fn reversed_swaps_cut_directions() {
        let g = triangle();
        let r = g.reversed();
        let s = NodeSet::from_indices(3, [0]);
        assert_eq!(g.cut_out(&s), r.cut_in(&s));
        assert_eq!(g.cut_in(&s), r.cut_out(&s));
    }

    #[test]
    fn coalesced_merges_parallels() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.5);
        let c = g.coalesced();
        assert_eq!(c.num_edges(), 1);
        assert_eq!(c.pair_weight(NodeId::new(0), NodeId::new(1)), 3.5);
    }

    #[test]
    fn pair_weight_sums_parallels() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(0), NodeId::new(1), 4.0);
        assert_eq!(g.pair_weight(NodeId::new(0), NodeId::new(1)), 5.0);
        assert_eq!(g.pair_weight(NodeId::new(1), NodeId::new(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(1), NodeId::new(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_weight() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), -1.0);
    }

    #[test]
    fn scale_weights_scales_cuts() {
        let mut g = triangle();
        g.scale_weights(2.0);
        let s = NodeSet::from_indices(3, [0]);
        assert_eq!(g.cut_out(&s), 4.0);
    }
}
